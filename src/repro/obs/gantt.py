"""Deterministic Gantt rendering of one :class:`RuntimeTrace`.

One horizontal bar per data set (release → completion, coloured by terminal
status; lost data sets get a short stub at their release instant), overlaid
with the run's control timeline: crash/repair markers and shaded
rebuild/abort downtime spans.  The output is a static SVG string — or a
self-contained HTML page wrapping it with a legend and a summary table — with
**no** randomness, timestamps or environment-dependent formatting, so a
rendering of a seeded run is byte-stable and golden-testable
(``tests/unit/test_obs.py`` freezes one).

Large traces are downsampled row-wise (every *k*-th data set, first and last
always included); the time axis is never truncated, so the fault/rebuild
timeline stays complete even when individual rows are elided.

This module must not import :mod:`repro.runtime` at runtime — the trace
module imports :mod:`repro.obs` back (see :mod:`repro.obs.metrics`); traces
are duck-typed here.
"""

from __future__ import annotations

from pathlib import Path
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.runtime.trace import RuntimeTrace

__all__ = ["STATUS_COLORS", "render_gantt_svg", "render_gantt_html", "write_gantt"]

#: bar colour of every terminal data-set status (colour-blind-safe palette).
STATUS_COLORS = {
    "completed": "#4c78a8",
    "shed": "#f58518",
    "lost-downtime": "#e45756",
    "lost-abort": "#b279a2",
    "lost-overflow": "#9d755d",
}

_CRASH_COLOR = "#d62728"
_REPAIR_COLOR = "#2ca02c"
_REBUILD_FILL = "#e45756"
_ABORT_FILL = "#888888"
_FAST_FORWARD_FILL = "#54a24b"

_MARGIN_LEFT = 64
_MARGIN_RIGHT = 16
_MARGIN_TOP = 34
_MARGIN_BOTTOM = 32
_ROW_HEIGHT = 9
_ROW_GAP = 2


def _fmt(value: float) -> str:
    """Fixed two-decimal formatting: deterministic, diff-friendly SVG."""
    return f"{value:.2f}"


def _downtime_spans(trace: "RuntimeTrace") -> list[tuple[str, float, float]]:
    """Reconstruct the shaded downtime intervals from the event log."""
    spans: list[tuple[str, float, float]] = []
    rebuild_start: float | None = None
    for event in trace.events:
        if event.kind in ("crash-rebuild", "repair-rebuild"):
            if rebuild_start is None:
                rebuild_start = event.time
        elif event.kind == "rebuild-complete":
            if rebuild_start is not None:
                spans.append(("rebuild", rebuild_start, event.time))
                rebuild_start = None
        elif event.kind == "abort":
            if rebuild_start is not None:
                spans.append(("rebuild", rebuild_start, event.time))
                rebuild_start = None
            spans.append(("abort", event.time, trace.horizon))
    if rebuild_start is not None:  # still rebuilding when the horizon ended
        spans.append(("rebuild", rebuild_start, trace.horizon))
    return spans


def _sample_rows(num_records: int, max_rows: int) -> list[int]:
    """Evenly spaced record indices (all of them when they fit)."""
    if num_records <= max_rows:
        return list(range(num_records))
    last = num_records - 1
    picked = {round(i * last / (max_rows - 1)) for i in range(max_rows)}
    return sorted(picked)


def render_gantt_svg(
    trace: "RuntimeTrace", width: int = 960, max_rows: int = 60, spans=()
) -> str:
    """Render *trace* as a static SVG Gantt chart (see module docstring).

    *spans* are optional extra ``(kind, start, end)`` intervals to shade —
    the fast-forward spans of a :class:`~repro.obs.probe.MetricsProbe`
    render the analytically-skipped stretches as compressed green bands.
    The trace itself never records them (traces are bit-identical with the
    fast path on and off), so with the default empty *spans* the rendering
    is byte-identical to a non-fast-forwarded run's.
    """
    rows = _sample_rows(len(trace.records), max_rows)
    plot_w = width - _MARGIN_LEFT - _MARGIN_RIGHT
    plot_h = len(rows) * (_ROW_HEIGHT + _ROW_GAP)
    height = _MARGIN_TOP + plot_h + _MARGIN_BOTTOM
    t_max = max(
        trace.horizon,
        max((r.completion for r in trace.records if r.completion is not None), default=0.0),
    )
    if t_max <= 0:
        t_max = 1.0

    def x_of(t: float) -> float:
        return _MARGIN_LEFT + (t / t_max) * plot_w

    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}" '
        'font-family="monospace" font-size="10">',
        f'<rect x="0" y="0" width="{width}" height="{height}" fill="#ffffff"/>',
    ]
    elided = "" if len(rows) == len(trace.records) else f", {len(rows)} rows shown"
    title = (
        f"online run: {trace.num_datasets} datasets, "
        f"{trace.completed_count} completed, {trace.num_rebuilds} rebuilds, "
        f"policy={trace.policy}, admission={trace.admission}{elided}"
    )
    parts.append(f'<text x="{_MARGIN_LEFT}" y="14" font-size="11">{title}</text>')

    # shaded downtime (and overlay) spans behind everything
    fills = {"rebuild": _REBUILD_FILL, "fast-forward": _FAST_FORWARD_FILL}
    for kind, start, end in [*_downtime_spans(trace), *spans]:
        fill = fills.get(kind, _ABORT_FILL)
        parts.append(
            f'<rect x="{_fmt(x_of(start))}" y="{_MARGIN_TOP}" '
            f'width="{_fmt(max(x_of(end) - x_of(start), 0.5))}" height="{plot_h}" '
            f'fill="{fill}" fill-opacity="0.15"><title>{kind} '
            f"{_fmt(start)}-{_fmt(end)}</title></rect>"
        )

    # one bar per (sampled) data set
    for row, index in enumerate(rows):
        record = trace.records[index]
        y = _MARGIN_TOP + row * (_ROW_HEIGHT + _ROW_GAP)
        color = STATUS_COLORS[record.status]
        if record.completion is not None:
            x0, x1 = x_of(record.release), x_of(record.completion)
            bar_w = max(x1 - x0, 0.5)
        else:
            # lost data set: a stub at its release instant
            x0 = x_of(record.release)
            bar_w = max(plot_w * 0.004, 2.0)
        parts.append(
            f'<rect x="{_fmt(x0)}" y="{y}" width="{_fmt(bar_w)}" '
            f'height="{_ROW_HEIGHT}" fill="{color}"><title>dataset {record.index}: '
            f"{record.status}, release={_fmt(record.release)}</title></rect>"
        )
        if row % 10 == 0:
            parts.append(
                f'<text x="4" y="{y + _ROW_HEIGHT - 1}" fill="#444444">'
                f"#{record.index}</text>"
            )

    # crash / repair markers on top
    for event in trace.events:
        if event.kind.startswith("crash"):
            stroke = _CRASH_COLOR
        elif event.kind.startswith("repair"):
            stroke = _REPAIR_COLOR
        else:
            continue
        x = _fmt(x_of(event.time))
        parts.append(
            f'<line x1="{x}" y1="{_MARGIN_TOP}" x2="{x}" '
            f'y2="{_MARGIN_TOP + plot_h}" stroke="{stroke}" stroke-width="1" '
            f'stroke-dasharray="3,2"><title>{event.kind} '
            f"{event.processor or ''} @ {_fmt(event.time)}</title></line>"
        )

    # time axis with five ticks
    axis_y = _MARGIN_TOP + plot_h
    parts.append(
        f'<line x1="{_MARGIN_LEFT}" y1="{axis_y}" x2="{_MARGIN_LEFT + plot_w}" '
        f'y2="{axis_y}" stroke="#000000" stroke-width="1"/>'
    )
    for i in range(5):
        t = t_max * i / 4
        x = _fmt(x_of(t))
        parts.append(
            f'<line x1="{x}" y1="{axis_y}" x2="{x}" y2="{axis_y + 4}" '
            'stroke="#000000" stroke-width="1"/>'
        )
        parts.append(
            f'<text x="{x}" y="{axis_y + 16}" text-anchor="middle">{_fmt(t)}</text>'
        )
    parts.append(
        f'<text x="{_MARGIN_LEFT + plot_w}" y="{axis_y + 28}" '
        'text-anchor="end">time</text>'
    )
    parts.append("</svg>")
    return "\n".join(parts)


def render_gantt_html(
    trace: "RuntimeTrace", width: int = 960, max_rows: int = 60, spans=()
) -> str:
    """Self-contained HTML page: the SVG plus a legend and a summary table."""
    svg = render_gantt_svg(trace, width=width, max_rows=max_rows, spans=spans)
    legend = "".join(
        f'<li><span style="background:{color}">&nbsp;&nbsp;&nbsp;</span> {status}</li>'
        for status, color in STATUS_COLORS.items()
    )
    stats = [
        ("datasets", str(trace.num_datasets)),
        ("completed", str(trace.completed_count)),
        ("loss rate", f"{trace.loss_rate:.4f}"),
        ("rebuilds", str(trace.num_rebuilds)),
        ("downtime", f"{trace.downtime:.2f}"),
        ("availability", f"{trace.availability:.4f}"),
        ("mean latency", f"{trace.mean_latency:.2f}"),
        ("p95 latency", f"{trace.p95_latency:.2f}"),
        ("p99 latency", f"{trace.p99_latency:.2f}"),
        ("max latency", f"{trace.max_latency:.2f}"),
    ]
    rows = "".join(f"<tr><td>{k}</td><td>{v}</td></tr>" for k, v in stats)
    return (
        "<!DOCTYPE html>\n"
        '<html><head><meta charset="utf-8"/>'
        "<title>repro-streaming run</title>"
        "<style>body{font-family:monospace;margin:16px}"
        "table{border-collapse:collapse}td{border:1px solid #ccc;padding:2px 8px}"
        "ul{list-style:none;padding:0}li{display:inline-block;margin-right:12px}"
        "</style></head><body>\n"
        f"<h1>online run ({trace.policy}/{trace.admission})</h1>\n"
        f"<ul>{legend}</ul>\n"
        f"{svg}\n"
        f"<table>{rows}</table>\n"
        "</body></html>\n"
    )


def write_gantt(
    trace: "RuntimeTrace", path: str | Path, max_rows: int = 60, spans=()
) -> Path:
    """Write the Gantt chart to *path*, HTML for ``.html``/``.htm``, else SVG."""
    path = Path(path)
    if path.suffix.lower() in (".html", ".htm"):
        content = render_gantt_html(trace, max_rows=max_rows, spans=spans)
    else:
        content = render_gantt_svg(trace, max_rows=max_rows, spans=spans)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(content)
    return path
