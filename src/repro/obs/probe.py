"""The instrumentation hook threaded through the kernel and the runtime.

A :class:`Probe` is an *optional* observer handed to
:class:`~repro.sim.kernel.PipelineKernel` and
:class:`~repro.runtime.engine.OnlineRuntime`.  The contract with the PR 5
performance work is strict: when no probe is attached the instrumented code
pays exactly one ``is None`` comparison per call site — the kernel hot loop
keeps a local per-kind event counter and flushes it **once per drain**, never
per event, so a probe-off run is indistinguishable from an uninstrumented one
(the ``obs_overhead`` benchmark in ``benchmarks/bench_runtime.py`` gates this
at 2 %).

:class:`Probe` itself is a base class of no-ops: subclass it and override the
callbacks you care about.  :class:`MetricsProbe` is the batteries-included
implementation that folds everything into a
:class:`~repro.obs.metrics.MetricsRegistry` (this is what the CLI's
``--metrics out.json`` flag attaches).

Callback cadence (who calls what, and how often):

========================  =====================================================
callback                  cadence
========================  =====================================================
``on_kernel_events``      once per kernel drain (window boundary / control
                          event), with a dense per-kind count list
``on_dataset``            once per data set, at the moment its fate is sealed
``on_runtime_event``      once per logged control decision (crash, rebuild,
                          repair, abort) — rare by construction
``on_span``               once per closed downtime interval (rebuild, abort)
``on_gauges``             once per control-loop pass (window boundary)
========================  =====================================================
"""

from __future__ import annotations

from typing import Sequence

from repro.obs.metrics import MetricsRegistry
from repro.sim.kernel import EVENT_KIND_NAMES

__all__ = ["Probe", "MetricsProbe"]


class Probe:
    """Base instrumentation hook — every callback is a no-op.

    Subclasses override what they need; the runtime only promises the
    cadences documented in the module docstring, never call order between
    different callbacks at the same instant.
    """

    def on_kernel_events(self, counts: Sequence[int], now: float) -> None:
        """*counts[k]* events of kind ``EVENT_KIND_NAMES[k]`` were processed
        since the previous flush; *now* is the kernel clock at the flush."""

    def on_dataset(
        self, index: int, release: float, completion: float | None, status: str
    ) -> None:
        """Data set *index*'s fate was sealed (*completion* is ``None`` for
        every lost status)."""

    def on_runtime_event(self, event) -> None:
        """One :class:`~repro.runtime.trace.RuntimeEvent` was logged."""

    def on_span(self, kind: str, start: float, end: float) -> None:
        """A downtime interval of *kind* (``rebuild`` | ``abort``) closed."""

    def on_gauges(self, now: float, live: int, evicted: int) -> None:
        """Kernel occupancy sample: *live* data sets hold state, *evicted*
        have been retired at their watermark."""


class MetricsProbe(Probe):
    """Fold every callback into a :class:`MetricsRegistry`.

    Metric names (all cumulative over the run):

    * ``kernel.events.<kind>`` / ``kernel.events.total`` — counters;
    * ``datasets.<status>`` — counters, one per terminal status;
    * ``runtime.events.<kind>`` — counters of control decisions;
    * ``runtime.spans.<kind>`` — counter, ``runtime.downtime.<kind>`` — the
      accumulated duration gauge;
    * ``latency`` — histogram of completed-data-set latencies, plus the exact
      ``latency.max`` gauge;
    * ``kernel.live_datasets.peak`` / ``kernel.evicted_datasets`` — gauges.
    """

    def __init__(self) -> None:
        self.registry = MetricsRegistry()
        #: closed downtime intervals as ``(kind, start, end)`` tuples.
        self.spans: list[tuple[str, float, float]] = []

    def on_kernel_events(self, counts: Sequence[int], now: float) -> None:
        registry = self.registry
        total = 0
        for kind, count in zip(EVENT_KIND_NAMES, counts):
            if count:
                registry.inc(f"kernel.events.{kind}", count)
                total += count
        if total:
            registry.inc("kernel.events.total", total)
        registry.max_gauge("kernel.time", now)

    def on_dataset(
        self, index: int, release: float, completion: float | None, status: str
    ) -> None:
        registry = self.registry
        registry.inc(f"datasets.{status}")
        if completion is not None:
            latency = completion - release
            registry.observe("latency", latency)
            registry.max_gauge("latency.max", latency)

    def on_runtime_event(self, event) -> None:
        self.registry.inc(f"runtime.events.{event.kind}")

    def on_span(self, kind: str, start: float, end: float) -> None:
        self.spans.append((kind, start, end))
        self.registry.inc(f"runtime.spans.{kind}")
        self.registry.add_gauge(f"runtime.downtime.{kind}", end - start)

    def on_gauges(self, now: float, live: int, evicted: int) -> None:
        registry = self.registry
        registry.max_gauge("kernel.live_datasets.peak", live)
        registry.set_gauge("kernel.evicted_datasets", evicted)

    def as_dict(self) -> dict:
        """JSON-ready snapshot: the registry plus the closed spans."""
        payload = self.registry.as_dict()
        payload["spans"] = [
            {"kind": kind, "start": start, "end": end, "duration": end - start}
            for kind, start, end in self.spans
        ]
        return payload
