"""The instrumentation hook threaded through the kernel and the runtime.

A :class:`Probe` is an *optional* observer handed to
:class:`~repro.sim.kernel.PipelineKernel` and
:class:`~repro.runtime.engine.OnlineRuntime`.  The contract with the PR 5
performance work is strict: when no probe is attached the instrumented code
pays exactly one ``is None`` comparison per call site — the kernel hot loop
keeps a local per-kind event counter and flushes it **once per drain**, never
per event, so a probe-off run is indistinguishable from an uninstrumented one
(the ``obs_overhead`` benchmark in ``benchmarks/bench_runtime.py`` gates this
at 2 %).

:class:`Probe` itself is a base class of no-ops: subclass it and override the
callbacks you care about.  :class:`MetricsProbe` is the batteries-included
implementation that folds everything into a
:class:`~repro.obs.metrics.MetricsRegistry` (this is what the CLI's
``--metrics out.json`` flag attaches).

Callback cadence (who calls what, and how often):

========================  =====================================================
callback                  cadence
========================  =====================================================
``on_kernel_events``      once per kernel drain (window boundary / control
                          event), with a dense per-kind count list
``on_dataset``            once per data set, at the moment its fate is sealed
``on_runtime_event``      once per logged control decision (crash, rebuild,
                          repair, abort) — rare by construction
``on_span``               once per closed downtime interval (rebuild, abort)
``on_gauges``             once per control-loop pass (window boundary)
``on_fast_forward``       once per steady-state jump (quiet streams only),
                          with the skipped span, the number of data sets
                          synthesized in closed form, and their repeated
                          latency values as ``(value, count)`` bulk pairs
========================  =====================================================

Fast-forward and probes
-----------------------

The steady-state fast path (:mod:`repro.sim.steady`) replaces the per-dataset
``on_dataset`` calls of a skipped stretch with one ``on_fast_forward`` bulk
call.  Aggregate metrics stay **exact** — the latency histogram, the maximum
latency and the ``datasets.completed`` counter receive the same totals bit
for bit — but per-event cadences change: no ``on_kernel_events`` /
``on_gauges`` samples arrive for the skipped stretch (the events were never
simulated), so ``kernel.events.*`` counters are smaller with the flag on.  A
probe must opt in by setting :attr:`Probe.supports_fast_forward`; the runtime
disables the fast path for any probe that does not, so a custom probe that
relies on per-dataset callbacks keeps seeing every one of them.
"""

from __future__ import annotations

from typing import Sequence

from repro.obs.metrics import MetricsRegistry
from repro.sim.kernel import EVENT_KIND_NAMES

__all__ = ["Probe", "MetricsProbe"]


class Probe:
    """Base instrumentation hook — every callback is a no-op.

    Subclasses override what they need; the runtime only promises the
    cadences documented in the module docstring, never call order between
    different callbacks at the same instant.
    """

    #: set ``True`` to let the runtime keep its steady-state fast forward on
    #: while this probe is attached (the probe then receives
    #: :meth:`on_fast_forward` bulk calls instead of per-dataset callbacks
    #: for skipped stretches).  ``False`` — the safe default for custom
    #: probes — guards the fast path off automatically.
    supports_fast_forward = False

    def on_kernel_events(self, counts: Sequence[int], now: float) -> None:
        """*counts[k]* events of kind ``EVENT_KIND_NAMES[k]`` were processed
        since the previous flush; *now* is the kernel clock at the flush."""

    def on_dataset(
        self, index: int, release: float, completion: float | None, status: str
    ) -> None:
        """Data set *index*'s fate was sealed (*completion* is ``None`` for
        every lost status)."""

    def on_runtime_event(self, event) -> None:
        """One :class:`~repro.runtime.trace.RuntimeEvent` was logged."""

    def on_span(self, kind: str, start: float, end: float) -> None:
        """A downtime interval of *kind* (``rebuild`` | ``abort``) closed."""

    def on_gauges(self, now: float, live: int, evicted: int) -> None:
        """Kernel occupancy sample: *live* data sets hold state, *evicted*
        have been retired at their watermark."""

    def on_fast_forward(
        self,
        span: tuple[float, float],
        n_datasets: int,
        latencies: Sequence[tuple[float, int]] = (),
    ) -> None:
        """The steady-state fast path skipped ``span = (start, end)`` of the
        clock, synthesizing *n_datasets* completed data sets in closed form.
        *latencies* carries their exact repeated latency values as
        ``(value, count)`` pairs with ``sum(counts) == n_datasets``."""


class MetricsProbe(Probe):
    """Fold every callback into a :class:`MetricsRegistry`.

    Metric names (all cumulative over the run):

    * ``kernel.events.<kind>`` / ``kernel.events.total`` — counters;
    * ``datasets.<status>`` — counters, one per terminal status;
    * ``runtime.events.<kind>`` — counters of control decisions;
    * ``runtime.spans.<kind>`` — counter, ``runtime.downtime.<kind>`` — the
      accumulated duration gauge;
    * ``latency`` — histogram of completed-data-set latencies, plus the exact
      ``latency.max`` gauge;
    * ``kernel.live_datasets.peak`` / ``kernel.evicted_datasets`` — gauges;
    * ``runtime.fast_forward.spans`` / ``runtime.fast_forward.datasets`` —
      counters of steady-state jumps and the data sets they synthesized,
      ``runtime.fast_forward.time`` — the accumulated skipped clock span.
      Latency/data-set aggregates stay exact across jumps (bulk counts);
      ``kernel.events.*`` shrink, because skipped events were never simulated.
    """

    supports_fast_forward = True

    def __init__(self) -> None:
        self.registry = MetricsRegistry()
        #: closed downtime and fast-forward intervals as ``(kind, start,
        #: end)`` tuples (kinds: ``rebuild`` | ``abort`` | ``fast-forward``).
        self.spans: list[tuple[str, float, float]] = []

    def on_kernel_events(self, counts: Sequence[int], now: float) -> None:
        registry = self.registry
        total = 0
        for kind, count in zip(EVENT_KIND_NAMES, counts):
            if count:
                registry.inc(f"kernel.events.{kind}", count)
                total += count
        if total:
            registry.inc("kernel.events.total", total)
        registry.max_gauge("kernel.time", now)

    def on_dataset(
        self, index: int, release: float, completion: float | None, status: str
    ) -> None:
        registry = self.registry
        registry.inc(f"datasets.{status}")
        if completion is not None:
            latency = completion - release
            registry.observe("latency", latency)
            registry.max_gauge("latency.max", latency)

    def on_runtime_event(self, event) -> None:
        self.registry.inc(f"runtime.events.{event.kind}")

    def on_span(self, kind: str, start: float, end: float) -> None:
        self.spans.append((kind, start, end))
        self.registry.inc(f"runtime.spans.{kind}")
        self.registry.add_gauge(f"runtime.downtime.{kind}", end - start)

    def on_gauges(self, now: float, live: int, evicted: int) -> None:
        registry = self.registry
        registry.max_gauge("kernel.live_datasets.peak", live)
        registry.set_gauge("kernel.evicted_datasets", evicted)

    def on_fast_forward(
        self,
        span: tuple[float, float],
        n_datasets: int,
        latencies: Sequence[tuple[float, int]] = (),
    ) -> None:
        start, end = span
        registry = self.registry
        self.spans.append(("fast-forward", start, end))
        registry.inc("runtime.fast_forward.spans")
        registry.inc("runtime.fast_forward.datasets", n_datasets)
        registry.add_gauge("runtime.fast_forward.time", end - start)
        registry.inc("datasets.completed", n_datasets)
        for value, count in latencies:
            registry.observe("latency", value, count)
            registry.max_gauge("latency.max", value)

    def as_dict(self) -> dict:
        """JSON-ready snapshot: the registry plus the closed spans."""
        payload = self.registry.as_dict()
        payload["spans"] = [
            {"kind": kind, "start": start, "end": end, "duration": end - start}
            for kind, start, end in self.spans
        ]
        return payload
