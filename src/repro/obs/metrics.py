"""Counters, gauges and merge-exact fixed-bucket latency histograms.

The paper's scheduling model is evaluated on *distributions*, not means: a
fault-tolerant mapping that keeps mean latency flat while the p99 triples
during rebuilds is a worse service, and ROADMAP's observability item asks for
exactly that tail visibility.  The obstacle is the campaign engine's
``reduce="stats"`` transport (PR 5): worker processes ship one small
:class:`~repro.runtime.trace.TraceSummary` per trial instead of the full
trace, so any percentile carried there must be computable from *mergeable*
per-trial state — raw quantiles do not merge, histograms with **shared fixed
bucket edges** do, exactly (merging is element-wise integer addition, and a
quantile read off the merged counts equals the quantile read off a histogram
of the concatenated observations, bucket for bucket).

Bucket layout
-------------

One global geometric ladder, fixed at import time:

* bucket ``0`` — observations at or below :data:`LATENCY_LOW`;
* buckets ``1 .. NUM_FINITE_BUCKETS`` — geometric steps from
  :data:`LATENCY_LOW` to :data:`LATENCY_HIGH`; with 256 steps over nine
  decades each bucket spans a factor of ``10**(9/256)`` ≈ 1.084, so any
  reported percentile overestimates the true value by at most ~8.5 %
  (quantiles are reported as the **upper edge** of their bucket);
* one overflow bucket for observations above :data:`LATENCY_HIGH` —
  :meth:`LatencyHistogram.quantile` lets the caller substitute an exact
  maximum when a quantile lands there.

Latencies are in the schedule's abstract time units (the same units as the
period); the nine-decade span covers everything the simulator produces.

This module must not import :mod:`repro.runtime` (the trace module imports it
back — keeping the dependency one-way avoids a cycle).
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Iterable, Mapping, Sequence

__all__ = [
    "LATENCY_LOW",
    "LATENCY_HIGH",
    "NUM_FINITE_BUCKETS",
    "NUM_BUCKETS",
    "LATENCY_BUCKET_EDGES",
    "LatencyHistogram",
    "MetricsRegistry",
]

#: upper edge of the underflow bucket (values ``<= LATENCY_LOW`` land there).
LATENCY_LOW = 1e-3
#: upper edge of the last finite bucket (values above overflow).
LATENCY_HIGH = 1e6
#: geometric steps between :data:`LATENCY_LOW` and :data:`LATENCY_HIGH`.
NUM_FINITE_BUCKETS = 256

#: upper edge of every non-overflow bucket, ascending.  ``EDGES[i]`` is the
#: value reported for a quantile landing in bucket ``i``.
LATENCY_BUCKET_EDGES: tuple[float, ...] = tuple(
    LATENCY_LOW * (LATENCY_HIGH / LATENCY_LOW) ** (i / NUM_FINITE_BUCKETS)
    for i in range(NUM_FINITE_BUCKETS + 1)
)

#: total bucket count, including the overflow bucket at the end.
NUM_BUCKETS = len(LATENCY_BUCKET_EDGES) + 1


class LatencyHistogram:
    """Fixed-bucket histogram over the global latency ladder.

    Two histograms always share the same edges, so :meth:`merge` is exact:
    quantiles of a merged histogram equal quantiles of a histogram built from
    the concatenated observations (property-tested in ``tests/property``).
    """

    __slots__ = ("counts",)

    def __init__(self, counts: Sequence[int] | None = None):
        if counts is None:
            self.counts = [0] * NUM_BUCKETS
        else:
            counts = [int(c) for c in counts]
            if len(counts) != NUM_BUCKETS:
                raise ValueError(
                    f"expected {NUM_BUCKETS} bucket counts, got {len(counts)}"
                )
            if any(c < 0 for c in counts):
                raise ValueError("bucket counts must be non-negative")
            self.counts = counts

    # ----------------------------------------------------------- construction
    @classmethod
    def from_values(cls, values: Iterable[float]) -> "LatencyHistogram":
        hist = cls()
        for value in values:
            hist.observe(value)
        return hist

    @classmethod
    def from_sparse(cls, sparse: Iterable[tuple[int, int]]) -> "LatencyHistogram":
        """Rebuild from the ``((bucket, count), ...)`` transport form."""
        hist = cls()
        counts = hist.counts
        for bucket, count in sparse:
            if not 0 <= bucket < NUM_BUCKETS:
                raise ValueError(f"bucket index {bucket} out of range")
            if count < 0:
                raise ValueError("bucket counts must be non-negative")
            counts[bucket] += int(count)
        return hist

    # ------------------------------------------------------------- recording
    def observe(self, value: float, count: int = 1) -> None:
        """Record *count* observations of *value* (NaN is ignored — nothing
        was measured).  The bulk form is what the steady-state fast path
        uses: a fast-forwarded stretch repeats a handful of exact latency
        values, so one bucket increment per distinct value keeps the
        histogram bit-identical to observing every data set individually."""
        if value != value:  # NaN
            return
        self.counts[bisect_left(LATENCY_BUCKET_EDGES, value)] += count

    def update_sparse(self, sparse: Iterable[tuple[int, int]]) -> None:
        """Add the counts of a sparse transport tuple in place (exact merge)."""
        counts = self.counts
        for bucket, count in sparse:
            counts[bucket] += count

    def merge(self, other: "LatencyHistogram") -> "LatencyHistogram":
        """Element-wise sum with *other* — the exact distributed reduction."""
        return LatencyHistogram(
            [a + b for a, b in zip(self.counts, other.counts)]
        )

    # --------------------------------------------------------------- queries
    @property
    def total(self) -> int:
        """Number of recorded observations."""
        return sum(self.counts)

    def as_sparse(self) -> tuple[tuple[int, int], ...]:
        """Non-empty buckets as sorted ``(bucket, count)`` pairs.

        This is the transport form carried by
        :class:`~repro.runtime.trace.TraceSummary`: a trace touches a handful
        of buckets, so the sparse tuple stays tiny, hashes/compares
        deterministically, and merges exactly via :meth:`update_sparse`.
        """
        return tuple((i, c) for i, c in enumerate(self.counts) if c)

    def quantile(self, q: float, overflow: float = float("inf")) -> float:
        """Upper bucket edge of the ``q``-quantile observation.

        The rank is ``ceil(q * total)`` (clamped to ``[1, total]``), i.e. the
        smallest observation such that at least a ``q`` fraction is at or
        below it — the standard nearest-rank definition, evaluated on bucket
        boundaries.  Returns NaN for an empty histogram and *overflow* when
        the rank lands in the overflow bucket (callers substitute the exact
        tracked maximum there).
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        total = self.total
        if total == 0:
            return float("nan")
        rank = -int(-q * total // 1)  # ceil without importing math
        rank = min(max(rank, 1), total)
        cumulative = 0
        for bucket, count in enumerate(self.counts):
            cumulative += count
            if cumulative >= rank:
                if bucket >= len(LATENCY_BUCKET_EDGES):
                    return overflow
                return LATENCY_BUCKET_EDGES[bucket]
        raise AssertionError("unreachable: rank <= total")

    def as_dict(self) -> dict:
        """JSON-ready view: totals, the sparse buckets, and key quantiles."""
        return {
            "total": self.total,
            "buckets": {str(i): c for i, c in self.as_sparse()},
            "p50": self.quantile(0.5),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
        }

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, LatencyHistogram):
            return NotImplemented
        return self.counts == other.counts

    def __repr__(self) -> str:
        return f"LatencyHistogram(total={self.total}, buckets={len(self.as_sparse())})"


class MetricsRegistry:
    """Named counters, gauges and histograms for one instrumented run.

    The registry is the sink behind :class:`repro.obs.probe.MetricsProbe`; it
    is also usable directly for ad-hoc instrumentation.  Counters are
    integers, gauges are floats with ``set`` / ``max`` / ``add`` semantics,
    histograms are :class:`LatencyHistogram` instances created on demand.
    """

    def __init__(self) -> None:
        self._counters: dict[str, int] = {}
        self._gauges: dict[str, float] = {}
        self._histograms: dict[str, LatencyHistogram] = {}

    # -------------------------------------------------------------- counters
    def inc(self, name: str, amount: int = 1) -> None:
        self._counters[name] = self._counters.get(name, 0) + amount

    def counter(self, name: str) -> int:
        return self._counters.get(name, 0)

    # ---------------------------------------------------------------- gauges
    def set_gauge(self, name: str, value: float) -> None:
        self._gauges[name] = float(value)

    def max_gauge(self, name: str, value: float) -> None:
        """Keep the running maximum (peak gauges: live datasets, max latency)."""
        current = self._gauges.get(name)
        if current is None or value > current:
            self._gauges[name] = float(value)

    def add_gauge(self, name: str, delta: float) -> None:
        """Accumulate a float total (e.g. downtime seconds per span kind)."""
        self._gauges[name] = self._gauges.get(name, 0.0) + float(delta)

    def gauge(self, name: str) -> float | None:
        return self._gauges.get(name)

    # ------------------------------------------------------------ histograms
    def histogram(self, name: str) -> LatencyHistogram:
        hist = self._histograms.get(name)
        if hist is None:
            hist = self._histograms[name] = LatencyHistogram()
        return hist

    def observe(self, name: str, value: float, count: int = 1) -> None:
        self.histogram(name).observe(value, count)

    # ----------------------------------------------------------------- views
    @property
    def counters(self) -> Mapping[str, int]:
        return dict(sorted(self._counters.items()))

    @property
    def gauges(self) -> Mapping[str, float]:
        return dict(sorted(self._gauges.items()))

    @property
    def histograms(self) -> Mapping[str, LatencyHistogram]:
        return dict(sorted(self._histograms.items()))

    def as_dict(self) -> dict:
        """JSON-ready snapshot (what ``--metrics out.json`` writes)."""
        return {
            "counters": dict(sorted(self._counters.items())),
            "gauges": dict(sorted(self._gauges.items())),
            "histograms": {
                name: hist.as_dict()
                for name, hist in sorted(self._histograms.items())
            },
        }

    def __repr__(self) -> str:
        return (
            f"MetricsRegistry(counters={len(self._counters)}, "
            f"gauges={len(self._gauges)}, histograms={len(self._histograms)})"
        )
