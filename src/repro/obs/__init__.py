"""Observability: instrumentation probes, metrics, trace export, sampling.

The ``repro.obs`` package is the inspection layer over the simulation kernel
and the online runtime (ROADMAP: "Observability & runtime resilience"):

* :mod:`repro.obs.metrics` — counters, gauges and the merge-exact
  fixed-bucket :class:`LatencyHistogram` behind the campaign percentiles;
* :mod:`repro.obs.probe` — the optional :class:`Probe` hook threaded through
  :class:`~repro.sim.kernel.PipelineKernel` and
  :class:`~repro.runtime.engine.OnlineRuntime`, and the batteries-included
  :class:`MetricsProbe`;
* :mod:`repro.obs.gantt` — deterministic SVG/HTML Gantt rendering of one
  :class:`~repro.runtime.trace.RuntimeTrace`;
* :mod:`repro.obs.sample` — seeded sampled-trace retention (keep all faulted
  data sets, a fraction of the clean ones).

Import-order constraint: :mod:`repro.runtime.trace` imports
:mod:`repro.obs.metrics` for its percentile fields, so nothing in this
package may import :mod:`repro.runtime` at module import time (the Gantt and
sampling helpers duck-type the trace instead).

See ``docs/observability.md`` for the user-facing tour.
"""

from repro.obs.gantt import (
    STATUS_COLORS,
    render_gantt_html,
    render_gantt_svg,
    write_gantt,
)
from repro.obs.metrics import (
    LATENCY_BUCKET_EDGES,
    LatencyHistogram,
    MetricsRegistry,
)
from repro.obs.probe import MetricsProbe, Probe
from repro.obs.sample import sample_trace

__all__ = [
    "LATENCY_BUCKET_EDGES",
    "LatencyHistogram",
    "MetricsRegistry",
    "MetricsProbe",
    "Probe",
    "STATUS_COLORS",
    "render_gantt_svg",
    "render_gantt_html",
    "write_gantt",
    "sample_trace",
]
