"""Sampled trace retention: keep every faulted data set, a fraction of the rest.

At 10⁵+-dataset scale retaining the full per-dataset record of every run is
what the stats-only transport was built to avoid — but dropping records
uniformly throws away exactly the interesting ones (the few data sets that
were shed, aborted or lost to downtime).  The retention rule here follows the
standard tracing discipline: **100 % of non-completed ("faulted") records are
kept, a seeded p-fraction of completed ones**, so a retained trace still
shows every loss with enough clean context around it to see the shape of the
run.

The decision is a pure function of ``(trace, p, seed)`` — the per-record
draws come from one :func:`~repro.utils.rng.ensure_rng` generator — so two
calls retain the identical subset, and retained traces compare with ``==``.

A sampled trace is a *retention* artifact, not a statistics source: its
derived rates (``loss_rate``, ``completed_count`` …) are biased by
construction since losses are over-represented by ``1/p``.  Compute
statistics on the full trace (or its :class:`~repro.runtime.trace.TraceSummary`)
before sampling.
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING

from repro.utils.rng import ensure_rng

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.runtime.trace import RuntimeTrace

__all__ = ["sample_trace"]


def sample_trace(trace: "RuntimeTrace", p: float, seed: int = 0) -> "RuntimeTrace":
    """Return *trace* with all faulted records and a *p*-fraction of clean ones.

    ``p=1`` keeps everything (the result equals the input), ``p=0`` keeps
    only the non-completed records.  One uniform draw is made per record —
    completed or not — so the retained subset of the completed records does
    not depend on where the losses fell.
    """
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"sampling fraction must be in [0, 1], got {p}")
    rng = ensure_rng(seed)
    draws = rng.random(len(trace.records))
    kept = tuple(
        record
        for record, draw in zip(trace.records, draws)
        if not record.completed or draw < p
    )
    return dataclasses.replace(trace, records=kept)
