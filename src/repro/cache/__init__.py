"""Content-addressed result caching for scenario executions.

Every execution in this library is a pure function of ``(spec, seed)`` — the
online trace, the Monte-Carlo campaign, every point of a suite sweep.  That
purity is what makes results *cacheable by content*: a canonical hash of the
serialized spec, the seed and the code version addresses the result, so a
cache hit is guaranteed to be bit-identical to re-running the point, and any
edit to any spec field (or the seed, or the library version) changes the
address and forces a re-run.

* :mod:`repro.cache.keys` — canonical JSON serialization and the
  ``sha256(spec.to_dict(), seed, code_version)`` key derivation;
* :mod:`repro.cache.disk` — the on-disk backend (checksummed, atomically
  written entries; corrupted entries are quarantined, never trusted) plus the
  in-memory :class:`NullCache` used by ``--no-cache``, and the hit/miss
  counters surfaced in sweep reports.

The cache layer deliberately knows nothing about scenarios or campaigns —
callers derive keys with :func:`result_key` / :func:`campaign_key` /
:func:`trial_key` and store whatever picklable result object they like.  The
suite runner (:func:`repro.experiments.sweep.run_suite`) is the primary
customer: re-running a suite after editing one axis only re-executes the
changed points, and with ``resume=True`` an interrupted suite re-executes
only the missing *trials* of each point.

>>> from repro.cache import NullCache, MISS
>>> cache = NullCache()
>>> cache.get("deadbeef") is MISS
True
"""

from repro.cache.disk import (
    MISS,
    CacheEntry,
    CacheStats,
    CacheUsage,
    DiskCache,
    NullCache,
    default_cache_dir,
    open_cache,
)
from repro.cache.keys import (
    CACHE_SCHEMA,
    cache_code_version,
    campaign_key,
    canonical_json,
    result_key,
    source_digest,
    trial_key,
)

__all__ = [
    "MISS",
    "CacheEntry",
    "CacheStats",
    "CacheUsage",
    "DiskCache",
    "NullCache",
    "open_cache",
    "default_cache_dir",
    "CACHE_SCHEMA",
    "cache_code_version",
    "campaign_key",
    "canonical_json",
    "result_key",
    "source_digest",
    "trial_key",
]
