"""Disk-backed result cache with integrity checking.

One cache entry is one file under the cache root, named by its content key
(sharded by the first two hex characters to keep directories small)::

    <root>/ab/abcdef0123....pkl

The payload is a pickled ``(key, value)`` pair wrapped in a checksummed
envelope — a magic line identifying the format plus the SHA-256 of the pickle
bytes.  A corrupted entry (truncated file, bit rot, a partial write from a
crashed process, an unpicklable blob, or a key mismatch) is **quarantined,
never trusted**: the file is moved out of the addressed tree into
``<root>/quarantine/`` for post-mortem diagnosis, the error is counted, and
the lookup reports a miss so the caller recomputes.  Writes are atomic (temp
file + ``os.replace``) so concurrent readers never observe a half-written
entry.

Hit/miss/error counters accumulate on :attr:`DiskCache.stats` and are surfaced
by the sweep reports; :class:`NullCache` implements the same interface for
``--no-cache`` runs (every lookup misses, nothing is stored).

.. warning:: Entries are **pickles**: loading one executes whatever the
   payload describes, and the checksum is integrity, not authentication.
   Only point a cache at directories you trust — which is why the default
   location (:func:`default_cache_dir`) lives under the *user's* cache
   directory, never under the current working directory, where a cloned
   repository could plant entries.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Iterator

__all__ = [
    "MISS",
    "CacheStats",
    "CacheEntry",
    "CacheUsage",
    "DiskCache",
    "NullCache",
    "open_cache",
    "default_cache_dir",
]


def default_cache_dir() -> Path:
    """The default cache location: the *user's* cache dir, never the cwd.

    ``$REPRO_CACHE_DIR`` overrides outright; otherwise
    ``$XDG_CACHE_HOME/repro-streaming`` (or ``~/.cache/repro-streaming``).
    A cwd-relative default would let an untrusted checkout ship poisoned
    pickle entries (see the module warning).
    """
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    xdg = os.environ.get("XDG_CACHE_HOME")
    root = Path(xdg) if xdg else Path.home() / ".cache"
    return root / "repro-streaming"


class _Miss:
    """Sentinel distinguishing 'not cached' from a cached ``None``."""

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return "<cache MISS>"

    def __bool__(self) -> bool:
        return False


#: returned by ``get`` when the key has no (trustworthy) entry.
MISS = _Miss()

#: format tag of the on-disk envelope; changing the layout changes the magic.
_MAGIC = b"repro-cache/1\n"

#: pickle protocol 4 is supported by every Python this library runs on and is
#: stable across the 3.10–3.13 matrix, so one machine's cache serves them all.
_PICKLE_PROTOCOL = 4


@dataclass
class CacheStats:
    """Hit/miss accounting of one cache instance (mutable counters).

    ``errors`` counts discarded entries (corruption, key mismatch, unexpected
    type) and failed writes; an errored lookup also counts as a miss, so
    ``hits + misses`` always equals the number of ``get`` calls.
    """

    hits: int = 0
    misses: int = 0
    errors: int = 0
    writes: int = 0
    #: subset of ``errors``: entries that failed validation and were moved to
    #: the quarantine directory (vs. failed writes, which leave no file).
    quarantined: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0.0 when none happened)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def snapshot(self) -> "CacheStats":
        """An independent copy (results hold one; counters keep moving)."""
        return replace(self)

    def describe(self) -> str:
        """One-line summary used by the sweep reports."""
        text = (
            f"{self.hits} hits, {self.misses} misses, {self.errors} errors "
            f"({self.hit_rate:.0%} hit rate)"
        )
        if self.quarantined:
            text += f", {self.quarantined} quarantined"
        return text


@dataclass(frozen=True)
class CacheEntry:
    """Metadata of one on-disk cache entry (maintenance views only)."""

    key: str
    path: Path
    size: int
    #: last-use instant (seconds since the epoch): hits touch the file, so
    #: this is a true least-recently-*used* ordering, not creation order.
    used: float


@dataclass(frozen=True)
class CacheUsage:
    """Aggregate accounting of a cache directory (``repro-streaming cache ls``)."""

    entries: int
    total_bytes: int
    oldest_used: float | None  # last-use instant of the LRU entry
    newest_used: float | None


class NullCache:
    """The no-op cache behind ``--no-cache``: every lookup misses."""

    #: distinguishes a disabled cache in reports without isinstance checks.
    enabled = False

    def __init__(self) -> None:
        self.stats = CacheStats()

    def get(self, key: str, expect: type | None = None):
        self.stats.misses += 1
        return MISS

    def put(self, key: str, value) -> None:
        return None


class DiskCache:
    """Content-addressed cache of picklable results under one directory."""

    enabled = True

    def __init__(self, root: str | Path):
        self.root = Path(root)
        self.stats = CacheStats()

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"DiskCache({str(self.root)!r}, {self.stats.describe()})"

    # ------------------------------------------------------------------ layout
    def path_of(self, key: str) -> Path:
        """The entry file of *key* (whether or not it exists)."""
        return self.root / key[:2] / f"{key}.pkl"

    @property
    def quarantine_dir(self) -> Path:
        """Where failed-validation entries are preserved for diagnosis.

        The directory name is longer than the two-hex shard names, so
        :meth:`entries` (and therefore ``usage``/``gc``) never walks into it
        — quarantined bytes are outside the addressed tree and only
        maintenance commands look at them.
        """
        return self.root / "quarantine"

    # ------------------------------------------------------------------ lookup
    def get(self, key: str, expect: type | None = None):
        """The cached value of *key*, or :data:`MISS`.

        With *expect* set, an entry holding any other type is treated exactly
        like corruption: discarded and reported as a miss.  Any I/O or
        unpickling failure is likewise a discard-and-miss, never an exception
        — a damaged cache must degrade to recomputation, not take the run
        down.
        """
        path = self.path_of(key)
        try:
            blob = path.read_bytes()
        except FileNotFoundError:
            self.stats.misses += 1
            return MISS
        except OSError:
            # a transient read failure (EIO, stale NFS handle) is not
            # corruption: degrade to a miss but leave the entry on disk —
            # only a blob that was read and failed validation gets discarded
            self.stats.errors += 1
            self.stats.misses += 1
            return MISS
        value = self._decode(key, blob)
        if value is MISS:
            return self._discard(path)
        if expect is not None and not isinstance(value, expect):
            return self._discard(path)
        self.stats.hits += 1
        try:
            # touch on hit: mtime is the LRU ordering `gc` evicts by, so a
            # hot entry survives a size-bound collection over a stale one
            os.utime(path)
        except OSError:  # pragma: no cover - perms / racing unlink
            pass
        return value

    def _decode(self, key: str, blob: bytes):
        if not blob.startswith(_MAGIC):
            return MISS
        body = blob[len(_MAGIC) :]
        digest, sep, payload = body.partition(b"\n")
        if not sep or hashlib.sha256(payload).hexdigest().encode() != digest:
            return MISS
        try:
            stored_key, value = pickle.loads(payload)
        except Exception:
            return MISS
        if stored_key != key:
            return MISS
        return value

    def _discard(self, path: Path):
        """Quarantine an untrustworthy entry and report the lookup as a miss.

        The entry leaves the addressed tree (its slot is immediately
        reusable) but the bytes survive under ``quarantine/`` so a corrupted
        result can be diagnosed — was it a truncated write, bit rot, or a
        worker returning garbage? — instead of vanishing.  Quarantine is a
        best effort: if the move itself fails the entry is deleted, matching
        the old behaviour.
        """
        try:
            quarantine = self.quarantine_dir
            quarantine.mkdir(parents=True, exist_ok=True)
            os.replace(path, quarantine / path.name)
            self.stats.quarantined += 1
        except OSError:
            try:
                path.unlink()
            except OSError:  # pragma: no cover - racing unlink / perms
                pass
        self.stats.errors += 1
        self.stats.misses += 1
        return MISS

    # ------------------------------------------------------------------- store
    def put(self, key: str, value) -> None:
        """Store *value* under *key* (atomically; failures never propagate)."""
        path = self.path_of(key)
        try:
            payload = pickle.dumps((key, value), protocol=_PICKLE_PROTOCOL)
            blob = (
                _MAGIC + hashlib.sha256(payload).hexdigest().encode() + b"\n" + payload
            )
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
            try:
                with os.fdopen(fd, "wb") as handle:
                    handle.write(blob)
                os.replace(tmp, path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except (OSError, pickle.PicklingError, TypeError, AttributeError):
            # a full disk or unpicklable value (pickle raises TypeError or
            # AttributeError for most of those, not PicklingError) must not
            # kill the campaign; the run just loses this entry's reuse.
            self.stats.errors += 1
            return
        self.stats.writes += 1

    # ------------------------------------------------------------- maintenance
    def entries(self) -> Iterator[CacheEntry]:
        """Every entry currently on disk (no particular order).

        Only well-formed entry files (``<2-hex>/<64-hex>.pkl``) are listed;
        stray files are ignored, never deleted.  Entries racing a concurrent
        unlink are skipped.
        """
        if not self.root.is_dir():
            return
        for shard in sorted(self.root.iterdir()):
            if not (shard.is_dir() and len(shard.name) == 2):
                continue
            for path in sorted(shard.glob("*.pkl")):
                key = path.stem
                if len(key) != 64 or not key.startswith(shard.name):
                    continue
                try:
                    stat = path.stat()
                except OSError:
                    continue
                yield CacheEntry(
                    key=key, path=path, size=stat.st_size, used=stat.st_mtime
                )

    def usage(self) -> CacheUsage:
        """Aggregate entry count / byte total / last-use range of the cache."""
        count = total = 0
        oldest: float | None = None
        newest: float | None = None
        for entry in self.entries():
            count += 1
            total += entry.size
            oldest = entry.used if oldest is None else min(oldest, entry.used)
            newest = entry.used if newest is None else max(newest, entry.used)
        return CacheUsage(
            entries=count, total_bytes=total, oldest_used=oldest, newest_used=newest
        )

    def quarantine_usage(self) -> tuple[int, int]:
        """``(entries, total_bytes)`` sitting in quarantine (``cache ls`` row)."""
        count = total = 0
        if self.quarantine_dir.is_dir():
            for path in self.quarantine_dir.glob("*.pkl"):
                try:
                    total += path.stat().st_size
                except OSError:  # pragma: no cover - racing unlink
                    continue
                count += 1
        return count, total

    def gc(self, max_bytes: int) -> list[CacheEntry]:
        """Evict least-recently-used entries until the cache fits *max_bytes*.

        Entries are removed oldest-``used`` first (lookup hits touch their
        file, so recently served results survive) until the remaining total
        is at or under the bound; the evicted entries are returned, in
        eviction order.  ``max_bytes=0`` empties the cache.  Losing an entry
        is always safe — the next lookup recomputes it.
        """
        if max_bytes < 0:
            raise ValueError(f"max_bytes must be >= 0, got {max_bytes}")
        entries = sorted(self.entries(), key=lambda e: (e.used, e.key))
        total = sum(e.size for e in entries)
        evicted: list[CacheEntry] = []
        for entry in entries:
            if total <= max_bytes:
                break
            try:
                entry.path.unlink()
            except OSError:  # pragma: no cover - racing unlink / perms
                continue
            total -= entry.size
            evicted.append(entry)
        return evicted


def open_cache(cache_dir: str | Path | None, enabled: bool = True):
    """The cache for a run: a :class:`DiskCache` at *cache_dir*, or null.

    ``enabled=False`` (the ``--no-cache`` flag) and ``cache_dir=None`` both
    produce a :class:`NullCache`; an already-constructed cache object passes
    through unchanged, so custom backends plug in.  The full backend
    interface the runners consume is ``get(key, expect=None)`` /
    ``put(key, value)`` plus an ``enabled`` flag and a ``stats``
    :class:`CacheStats` — model a new backend on :class:`DiskCache`.
    """
    if not enabled or cache_dir is None:
        return NullCache()
    if hasattr(cache_dir, "get") and hasattr(cache_dir, "put"):
        return cache_dir
    return DiskCache(cache_dir)
