"""Canonical cache-key derivation for spec-addressed results.

A cache key is the SHA-256 of a *canonical JSON* rendering of everything the
result depends on: the serialized spec tree, the seed, the kind of execution,
any extra execution parameters (e.g. the trial count of a campaign), the cache
schema version and the library version.  Canonical means key-order
independent — two dicts that compare equal hash equal — so a spec loaded from
JSON, built in Python, or round-tripped through :meth:`ScenarioSpec.to_dict
<repro.scenario.spec.ScenarioSpec.to_dict>` all produce the same address.

>>> canonical_json({"b": 1, "a": [1, None, "x"]})
'{"a":[1,null,"x"],"b":1}'
>>> canonical_json({"a": 1}) == canonical_json({"a": 1.0})
False
"""

from __future__ import annotations

import hashlib
import json
from functools import lru_cache
from pathlib import Path
from typing import Mapping

__all__ = [
    "CACHE_SCHEMA",
    "cache_code_version",
    "source_digest",
    "canonical_json",
    "result_key",
    "campaign_key",
    "trial_key",
]

#: version of the cache *envelope and key layout*; bumping it invalidates
#: every existing entry (they simply stop being addressed).
CACHE_SCHEMA = 1


@lru_cache(maxsize=None)
def source_digest(root: str) -> str:
    """SHA-256 over every ``*.py`` file under *root* (path-sorted, recursive).

    Both the relative path and the content of each module are hashed, so
    editing, adding, renaming or deleting any source file changes the digest.
    Cached per *root* for the process lifetime: results saved by this process
    keep one consistent address even if the checkout is edited mid-run (the
    next process sees the new digest and re-executes).
    """
    digest = hashlib.sha256()
    base = Path(root)
    for path in sorted(base.rglob("*.py")):
        digest.update(str(path.relative_to(base)).encode("utf-8", "replace"))
        digest.update(b"\x00")
        digest.update(path.read_bytes())
        digest.update(b"\x00")
    return digest.hexdigest()


def cache_code_version() -> str:
    """The code-version component of every key: package version + source digest.

    Results are pure functions of ``(spec, seed)`` *for one version of the
    code* — a new release may legitimately change traces, so the version is
    hashed into the address and old entries become unreachable instead of
    stale.  Because a source checkout can change without a version bump, the
    declared version is combined with a :func:`source_digest` of the
    installed ``repro`` package tree: editing any execution module re-keys
    the cache immediately, no ``pyproject.toml`` bump required.
    """
    # Imported lazily: repro/__init__ pulls the whole public API and must not
    # load just because the cache machinery was imported.
    import repro
    from repro import __version__

    return f"{__version__}+src.{source_digest(str(Path(repro.__file__).parent))[:16]}"


def canonical_json(data) -> str:
    """Deterministic, key-order-independent JSON rendering of *data*.

    Only JSON types are accepted (dict/list/tuple/str/int/float/bool/None);
    NaN and infinities are rejected rather than serialized ambiguously.  Note
    that ``1`` and ``1.0`` render differently (``1`` vs ``1.0``) — spec
    validation already coerces numeric fields to one type, so equal specs
    render equally.

    >>> canonical_json({"y": (1, 2), "x": {"b": None, "a": True}})
    '{"x":{"a":true,"b":null},"y":[1,2]}'
    """

    def _reject(obj):
        raise TypeError(
            f"cache keys only accept JSON types, got {type(obj).__name__}: {obj!r}"
        )

    text = json.dumps(
        data,
        sort_keys=True,
        separators=(",", ":"),
        ensure_ascii=True,
        allow_nan=False,
        default=_reject,
    )
    # json.dumps serializes float keys etc. silently; a canonical key must not
    # depend on such coercions, so insist on string keys explicitly.
    _check_string_keys(data)
    return text


def _check_string_keys(data) -> None:
    if isinstance(data, Mapping):
        for key, value in data.items():
            if not isinstance(key, str):
                raise TypeError(
                    f"cache keys only accept string dict keys, got {key!r}"
                )
            _check_string_keys(value)
    elif isinstance(data, (list, tuple)):
        for item in data:
            _check_string_keys(item)


def result_key(kind: str, spec, seed: int, **extra) -> str:
    """The content address of one ``(kind, spec, seed)`` execution.

    *spec* is anything with a ``to_dict()`` (a
    :class:`~repro.scenario.spec.ScenarioSpec`) or an already-serialized
    mapping.  *extra* carries the execution parameters that change the result
    beyond the spec itself (e.g. ``trials=20``).  The returned key is a
    64-character hex digest, stable across processes and platforms.
    """
    spec_dict = spec.to_dict() if hasattr(spec, "to_dict") else dict(spec)
    payload = {
        "schema": CACHE_SCHEMA,
        "code": cache_code_version(),
        "kind": str(kind),
        "spec": spec_dict,
        "seed": int(seed),
        "extra": dict(extra),
    }
    return hashlib.sha256(canonical_json(payload).encode("ascii")).hexdigest()


def campaign_key(spec, seed: int, trials: int, reduce: str = "traces") -> str:
    """The address of a Monte-Carlo campaign: ``(spec, seed)`` × *trials*.

    This is the unit cached by the suite runner — one grid point's campaign —
    and by :func:`repro.experiments.parallel.run_runtime_campaign`.  *reduce*
    records the worker-side reduction the payload was produced with
    (``"traces"`` keeps full traces, ``"stats"`` only per-trial summaries):
    the two payload shapes carry different information, so they address
    different entries and never serve each other.
    """
    return result_key(
        "runtime-campaign", spec, seed, trials=int(trials), reduce=str(reduce)
    )


def trial_key(spec, seed: int, trial: int, reduce: str = "traces") -> str:
    """The address of a *single trial* of a campaign: the checkpoint unit.

    Derived like :func:`campaign_key` but per trial index — and deliberately
    **without** the campaign's total trial count, because trial ``k``'s seed
    is drawn by index from the campaign RNG stream
    (:func:`~repro.experiments.parallel.campaign_trial_seeds`) and therefore
    does not depend on how many trials follow it.  Growing a campaign from
    ``trials=1000`` to ``2000`` re-uses the first 1000 checkpoints, which is
    the trial-level granularity the ROADMAP's distributed-suites item names.

    *seed* is the campaign seed (the grid point's seed in a suite), not the
    trial's own derived seed: the trial seed is already a pure function of
    ``(seed, trial)``, so keying on the pair is equivalent and keeps the key
    derivable before any RNG work happens.
    """
    return result_key(
        "runtime-trial", spec, seed, trial=int(trial), reduce=str(reduce)
    )
