"""Binary search for the minimal period (Hoang & Rabaey [5]).

The DSP scheduler of [5] performs a binary search on the period: for a
candidate period, a mapping routine partitions the graph into stages top-down
and reports how many processors it needs; the search keeps the smallest period
whose mapping fits on the available processors.  Here the mapping routine is
the fault-free R-LTF scheduler itself (which fails explicitly when the period
is too small), so the result is directly comparable to the other schedules.
"""

from __future__ import annotations

from repro.core.fault_free import fault_free_schedule
from repro.exceptions import SchedulingError
from repro.graph.dag import TaskGraph
from repro.platform.platform import Platform
from repro.schedule.schedule import Schedule
from repro.utils.checks import check_positive

__all__ = ["minimal_period_schedule"]


def minimal_period_schedule(
    graph: TaskGraph,
    platform: Platform,
    tolerance: float = 1e-3,
    max_iterations: int = 60,
) -> Schedule:
    """Schedule at (close to) the smallest feasible period for *graph* on *platform*.

    Returns the fault-free schedule obtained at the smallest period the binary
    search could certify; its ``period`` attribute carries the value.
    """
    check_positive(tolerance, "tolerance")
    low = max(t.work for t in graph.tasks) / platform.max_speed
    high = graph.total_work / platform.min_speed + graph.total_volume / platform.min_bandwidth

    def probe(period: float) -> Schedule | None:
        try:
            return fault_free_schedule(graph, platform, period=period)
        except SchedulingError:
            return None

    best = probe(high)
    if best is None:
        raise SchedulingError("even the most generous period is infeasible")
    for _ in range(max_iterations):
        if high - low <= tolerance * max(1.0, low):
            break
        mid = 0.5 * (low + high)
        schedule = probe(mid)
        if schedule is None:
            low = mid
        else:
            best, high = schedule, mid
    best.algorithm = "minimal-period"
    return best
