"""Pre-clustering baseline (Hary & Özgüner [4]).

The algorithm of [4] satisfies a prescribed throughput by minimising
inter-processor communication: edges are sorted by decreasing data volume and
processed greedily, merging the clusters of their endpoints whenever the
combined computation still fits within the period; remaining tasks are
assigned to clusters on a first-fit basis; clusters are finally mapped to
processors.  The two refinement phases of the original paper are approximated
by a final least-loaded cluster-to-processor mapping.
"""

from __future__ import annotations

from repro.core.rebuild import build_forward_schedule
from repro.core.engine import resolve_period
from repro.graph.dag import TaskGraph
from repro.platform.platform import Platform
from repro.schedule.schedule import Schedule

__all__ = ["preclustering_schedule", "cluster_by_edges"]


class _UnionFind:
    def __init__(self, items):
        self.parent = {i: i for i in items}

    def find(self, item):
        root = item
        while self.parent[root] != root:
            root = self.parent[root]
        while self.parent[item] != root:
            self.parent[item], item = root, self.parent[item]
        return root

    def union(self, a, b):
        self.parent[self.find(a)] = self.find(b)


def cluster_by_edges(graph: TaskGraph, platform: Platform, period: float) -> list[list[str]]:
    """Greedy edge-zeroing clustering bounded by the per-cluster compute load.

    Edges are visited by decreasing volume; the two end clusters are merged
    when the merged average execution time stays below the period.
    """
    uf = _UnionFind(graph.task_names)
    load = {t: graph.work(t) * platform.mean_inverse_speed for t in graph.task_names}
    cluster_load = dict(load)

    edges = sorted(graph.edges(), key=lambda e: (-e[2], e[0], e[1]))
    for src, dst, _vol in edges:
        a, b = uf.find(src), uf.find(dst)
        if a == b:
            continue
        if cluster_load[a] + cluster_load[b] <= period:
            uf.union(a, b)
            root = uf.find(a)
            cluster_load[root] = cluster_load[a] + cluster_load[b]

    groups: dict[str, list[str]] = {}
    for task in graph.task_names:
        groups.setdefault(uf.find(task), []).append(task)
    return list(groups.values())


def preclustering_schedule(
    graph: TaskGraph,
    platform: Platform,
    throughput: float | None = None,
    period: float | None = None,
) -> Schedule:
    """Pre-clustering mapping in the spirit of Hary & Özgüner [4] (ε = 0)."""
    resolved = resolve_period(throughput, period)
    clusters = cluster_by_edges(graph, platform, resolved)
    # Map clusters to processors: biggest cluster first, least-loaded (fastest) processor.
    proc_load = {p: 0.0 for p in platform.processor_names}
    assignment: dict[str, list[str]] = {}
    for cluster in sorted(clusters, key=lambda c: -sum(graph.work(t) for t in c)):
        proc = min(
            platform.processor_names,
            key=lambda p: (proc_load[p] + sum(graph.work(t) for t in cluster) / platform.speed(p), p),
        )
        for task in cluster:
            assignment[task] = [proc]
        proc_load[proc] += sum(graph.work(t) for t in cluster) / platform.speed(proc)
    schedule = build_forward_schedule(
        graph, platform, resolved, epsilon=0, assignment=assignment, algorithm="preclustering"
    )
    return schedule
