"""WMSH-style baseline (Vydyanathan et al. [10]).

WMSH proceeds in three phases: (1) clustering assuming unlimited processors so
that the throughput requirement is met, (2) merging clusters down to the
available processors, and (3) a latency refinement that reduces the
communication along the critical path.  This implementation mirrors those
phases with the substrate of this library:

1. edge-zeroing clustering bounded by the period (same engine as the
   pre-clustering baseline, but starting from one cluster per task and always
   zeroing the heaviest remaining edge first);
2. iterative merging of the two lightest clusters while more clusters than
   processors remain (and the merge fits in the period where possible);
3. critical-path refinement: tasks on the current critical path are pulled
   into the cluster of their heaviest-communicating neighbour when the period
   allows it.
"""

from __future__ import annotations

from repro.baselines.clustering import cluster_by_edges
from repro.core.engine import resolve_period
from repro.core.rebuild import build_forward_schedule
from repro.graph.analysis import critical_path
from repro.graph.dag import TaskGraph
from repro.platform.platform import Platform
from repro.schedule.schedule import Schedule

__all__ = ["wmsh_schedule"]


def wmsh_schedule(
    graph: TaskGraph,
    platform: Platform,
    throughput: float | None = None,
    period: float | None = None,
) -> Schedule:
    """WMSH-style three-phase mapping (ε = 0)."""
    resolved = resolve_period(throughput, period)
    mean_inv_speed = platform.mean_inverse_speed

    # Phase 1: throughput-bounded clustering on an unbounded platform.
    clusters = [list(c) for c in cluster_by_edges(graph, platform, resolved)]

    def load(cluster: list[str]) -> float:
        return sum(graph.work(t) for t in cluster) * mean_inv_speed

    # Phase 2: merge down to the number of physical processors.
    m = platform.num_processors
    clusters.sort(key=load)
    while len(clusters) > m:
        a = clusters.pop(0)
        b = clusters.pop(0)
        clusters.append(a + b)
        clusters.sort(key=load)

    # Phase 3: latency refinement along the critical path.
    owner = {t: i for i, c in enumerate(clusters) for t in c}
    for task in critical_path(graph, platform):
        neighbours = list(graph.predecessors(task)) + list(graph.successors(task))
        if not neighbours:
            continue
        heaviest = max(
            neighbours,
            key=lambda n: graph.volume(task, n) if graph.has_edge(task, n) else graph.volume(n, task),
        )
        src, dst = owner[task], owner[heaviest]
        if src == dst:
            continue
        if load(clusters[dst]) + graph.work(task) * mean_inv_speed <= resolved:
            clusters[src].remove(task)
            clusters[dst].append(task)
            owner[task] = dst
    clusters = [c for c in clusters if c]

    # Map clusters to processors: heaviest cluster on the fastest free processor.
    procs_by_speed = sorted(platform.processor_names, key=lambda p: (-platform.speed(p), p))
    assignment: dict[str, list[str]] = {}
    proc_load = {p: 0.0 for p in platform.processor_names}
    for cluster in sorted(clusters, key=lambda c: -load(c)):
        proc = min(
            procs_by_speed,
            key=lambda p: (proc_load[p] + sum(graph.work(t) for t in cluster) / platform.speed(p), p),
        )
        proc_load[proc] += sum(graph.work(t) for t in cluster) / platform.speed(proc)
        for task in cluster:
            assignment[task] = [proc]

    return build_forward_schedule(
        graph, platform, resolved, epsilon=0, assignment=assignment, algorithm="wmsh"
    )
