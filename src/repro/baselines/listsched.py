"""Classical list-scheduling baselines: HEFT and ETF.

* **HEFT** (Heterogeneous Earliest Finish Time, Topcuoglu et al. [9]) ranks
  tasks by their *upward rank* (the bottom level computed with average
  execution and communication times) and assigns each task, in rank order, to
  the processor minimising its earliest finish time.
* **ETF** (Earliest Task First, Hwang et al. [6]) repeatedly picks, among all
  (ready task, processor) pairs, the pair with the earliest possible start
  time, breaking ties by the higher bottom level.

Both are makespan-oriented heuristics without replication; they are used by
the benchmark suite as fault-free latency baselines and as building blocks of
TDA and of the binary-search period minimiser.
"""

from __future__ import annotations

from repro.graph.analysis import bottom_levels
from repro.graph.dag import TaskGraph
from repro.platform.platform import Platform
from repro.schedule.schedule import PlacementPlan, Schedule, plan_placement

__all__ = ["heft_schedule", "etf_schedule"]


def _plan_on(schedule: Schedule, task: str, proc: str) -> PlacementPlan:
    sources = {pred: schedule.replicas(pred) for pred in schedule.graph.predecessors(task)}
    return plan_placement(schedule, task, proc, sources)


def _best_plan(schedule: Schedule, task: str, platform: Platform) -> PlacementPlan:
    best: PlacementPlan | None = None
    for proc in platform.processor_names:
        plan = _plan_on(schedule, task, proc)
        if best is None or (plan.finish, schedule.compute_load(proc), proc) < (
            best.finish,
            schedule.compute_load(best.processor),
            best.processor,
        ):
            best = plan
    assert best is not None
    return best


def heft_schedule(
    graph: TaskGraph,
    platform: Platform,
    period: float | None = None,
    throughput: float | None = None,
) -> Schedule:
    """HEFT mapping of *graph* on *platform* (no replication, no throughput constraint).

    The *period* argument only sets the period recorded in the returned
    schedule (needed to convert stages into a pipelined latency); when omitted
    it defaults to the schedule's own maximum cycle time, i.e. the best
    throughput this mapping can sustain.
    """
    resolved = _resolve_reporting_period(graph, platform, period, throughput)
    schedule = Schedule(graph, platform, resolved, epsilon=0, algorithm="heft")
    ranks = bottom_levels(graph, platform)
    for task in sorted(graph.task_names, key=lambda t: (-ranks[t], t)):
        # list scheduling requires predecessors first; sorting by decreasing
        # upward rank guarantees it on a DAG.
        schedule.apply_placement(_best_plan(schedule, task, platform))
    return schedule


def etf_schedule(
    graph: TaskGraph,
    platform: Platform,
    period: float | None = None,
    throughput: float | None = None,
) -> Schedule:
    """ETF mapping of *graph* on *platform* (no replication)."""
    resolved = _resolve_reporting_period(graph, platform, period, throughput)
    schedule = Schedule(graph, platform, resolved, epsilon=0, algorithm="etf")
    ranks = bottom_levels(graph, platform)
    in_degree = {t: graph.in_degree(t) for t in graph.task_names}
    ready = {t for t in graph.task_names if in_degree[t] == 0}
    while ready:
        best_pair: tuple[str, PlacementPlan] | None = None
        for task in sorted(ready):
            for proc in platform.processor_names:
                plan = _plan_on(schedule, task, proc)
                if best_pair is None or (plan.start, -ranks[task], plan.finish, task) < (
                    best_pair[1].start,
                    -ranks[best_pair[0]],
                    best_pair[1].finish,
                    best_pair[0],
                ):
                    best_pair = (task, plan)
        assert best_pair is not None
        task, plan = best_pair
        schedule.apply_placement(plan)
        ready.discard(task)
        for succ in graph.successors(task):
            in_degree[succ] -= 1
            if in_degree[succ] == 0:
                ready.add(succ)
    return schedule


def _resolve_reporting_period(
    graph: TaskGraph,
    platform: Platform,
    period: float | None,
    throughput: float | None,
) -> float:
    if period is not None and throughput is not None:
        raise ValueError("provide at most one of 'period' and 'throughput'")
    if throughput is not None:
        return 1.0 / throughput
    if period is not None:
        return float(period)
    # Default: a generous period that any mapping satisfies; callers interested
    # in a specific throughput pass it explicitly.
    return graph.total_work / platform.min_speed + graph.total_volume / platform.min_bandwidth
