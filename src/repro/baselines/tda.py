"""TDA-style baseline (Yang, Kasturi & Sivasubramaniam [11]).

TDA ("Task Duplication Allocation" pipeline scheduler for video processing on
networks of workstations) first assigns tasks to processors with the ETF
heuristic, then partitions the tasks into pipeline stages with a top-down
traversal so that no stage exceeds the period, and finally refines processor
utilisation.  This implementation reuses the ETF mapping of
:mod:`repro.baselines.listsched` and performs the top-down stage partitioning;
the refinement step re-packs underloaded processors.
"""

from __future__ import annotations

from repro.baselines.listsched import etf_schedule
from repro.core.engine import resolve_period
from repro.core.rebuild import build_forward_schedule
from repro.graph.dag import TaskGraph
from repro.platform.platform import Platform
from repro.schedule.schedule import Schedule

__all__ = ["tda_schedule"]


def tda_schedule(
    graph: TaskGraph,
    platform: Platform,
    throughput: float | None = None,
    period: float | None = None,
) -> Schedule:
    """TDA-style mapping: ETF assignment + top-down repacking bounded by the period."""
    resolved = resolve_period(throughput, period)
    seed_schedule = etf_schedule(graph, platform, period=resolved)

    # Top-down traversal: keep the ETF processor while it fits in the period,
    # otherwise move the task to the least-loaded processor that still fits
    # (or the globally least-loaded one when none fits).
    proc_load = {p: 0.0 for p in platform.processor_names}
    assignment: dict[str, list[str]] = {}
    for task in graph.topological_order():
        preferred = seed_schedule.processor_of(seed_schedule.replicas(task)[0])
        cost = {p: graph.work(task) / platform.speed(p) for p in platform.processor_names}
        candidates = [p for p in platform.processor_names if proc_load[p] + cost[p] <= resolved]
        if preferred in candidates:
            chosen = preferred
        elif candidates:
            chosen = min(candidates, key=lambda p: (proc_load[p] + cost[p], p))
        else:
            chosen = min(platform.processor_names, key=lambda p: (proc_load[p] + cost[p], p))
        proc_load[chosen] += cost[chosen]
        assignment[task] = [chosen]

    return build_forward_schedule(
        graph, platform, resolved, epsilon=0, assignment=assignment, algorithm="tda"
    )
