"""Baseline heuristics from the related-work section (Section 3).

The paper positions LTF / R-LTF against the heuristics of the literature,
which all target homogeneous platforms, ignore communication-port contention
and do not handle failures.  This package implements faithful-in-spirit
versions of each of them so that the fault-free comparison of the benchmark
suite (`benchmarks/bench_baselines.py`) can be regenerated.  Every baseline
returns a regular :class:`~repro.schedule.schedule.Schedule` (``ε = 0``) built
with the same one-port substrate as LTF / R-LTF, so all metrics are directly
comparable.

* :func:`~repro.baselines.listsched.heft_schedule` — HEFT list scheduling [9];
* :func:`~repro.baselines.listsched.etf_schedule` — Earliest Task First [6];
* :func:`~repro.baselines.clustering.preclustering_schedule` — the
  communication-minimising pre-clustering of Hary & Özgüner [4];
* :func:`~repro.baselines.expert.expert_schedule` — the path-based stage
  grouping of EXPERT [3];
* :func:`~repro.baselines.tda.tda_schedule` — the ETF + top-down stage
  partitioning of TDA [11];
* :func:`~repro.baselines.wmsh.wmsh_schedule` — the cluster-merge-refine
  pipeline of WMSH [10];
* :func:`~repro.baselines.binary_search.minimal_period_schedule` — the binary
  search over the period of Hoang & Rabaey [5].
"""

from repro.baselines.listsched import heft_schedule, etf_schedule
from repro.baselines.clustering import preclustering_schedule
from repro.baselines.expert import expert_schedule
from repro.baselines.tda import tda_schedule
from repro.baselines.wmsh import wmsh_schedule
from repro.baselines.binary_search import minimal_period_schedule

__all__ = [
    "heft_schedule",
    "etf_schedule",
    "preclustering_schedule",
    "expert_schedule",
    "tda_schedule",
    "wmsh_schedule",
    "minimal_period_schedule",
    "BASELINES",
]

#: registry used by the benchmark harness.
BASELINES = {
    "heft": heft_schedule,
    "etf": etf_schedule,
    "preclustering": preclustering_schedule,
    "expert": expert_schedule,
    "tda": tda_schedule,
    "wmsh": wmsh_schedule,
}
