"""EXPERT-style baseline (Guirado et al. [3]).

EXPERT enumerates the paths of the application graph by decreasing execution
time and greedily groups consecutive sub-path tasks whose combined execution
fits within one period into *stages*; clusters are then built inside and
across stages to balance the load.  This implementation follows the same
structure: longest paths first, greedy packing of consecutive tasks into
period-bounded groups, then a least-loaded mapping of groups to processors.
"""

from __future__ import annotations

from repro.core.engine import resolve_period
from repro.core.rebuild import build_forward_schedule
from repro.graph.analysis import bottom_levels, top_levels
from repro.graph.dag import TaskGraph
from repro.platform.platform import Platform
from repro.schedule.schedule import Schedule

__all__ = ["expert_schedule", "path_decomposition"]


def path_decomposition(graph: TaskGraph, platform: Platform) -> list[list[str]]:
    """Decompose the DAG into vertex-disjoint paths, longest (in time) first.

    Every iteration extracts the current critical path among the not-yet-used
    tasks, which mirrors EXPERT's "paths sorted by execution time" processing
    order while keeping the decomposition disjoint.
    """
    remaining = set(graph.task_names)
    bl = bottom_levels(graph, platform)
    tl = top_levels(graph, platform)
    paths: list[list[str]] = []
    while remaining:
        start = max(remaining, key=lambda t: (tl[t] + bl[t], t))
        path = [start]
        current = start
        while True:
            nxt = [s for s in graph.successors(current) if s in remaining and s not in path]
            if not nxt:
                break
            current = max(nxt, key=lambda t: (bl[t], t))
            path.append(current)
        current = start
        while True:
            prv = [p for p in graph.predecessors(current) if p in remaining and p not in path]
            if not prv:
                break
            current = max(prv, key=lambda t: (tl[t] + graph.work(t), t))
            path.insert(0, current)
        for task in path:
            remaining.discard(task)
        paths.append(path)
    return paths


def expert_schedule(
    graph: TaskGraph,
    platform: Platform,
    throughput: float | None = None,
    period: float | None = None,
) -> Schedule:
    """EXPERT-style stage grouping and mapping (ε = 0)."""
    resolved = resolve_period(throughput, period)
    paths = path_decomposition(graph, platform)

    groups: list[list[str]] = []
    for path in paths:
        current: list[str] = []
        current_load = 0.0
        for task in path:
            cost = graph.work(task) * platform.mean_inverse_speed
            if current and current_load + cost > resolved:
                groups.append(current)
                current, current_load = [], 0.0
            current.append(task)
            current_load += cost
        if current:
            groups.append(current)

    proc_load = {p: 0.0 for p in platform.processor_names}
    assignment: dict[str, list[str]] = {}
    for group in sorted(groups, key=lambda g: -sum(graph.work(t) for t in g)):
        work = sum(graph.work(t) for t in group)
        proc = min(platform.processor_names, key=lambda p: (proc_load[p] + work / platform.speed(p), p))
        proc_load[proc] += work / platform.speed(proc)
        for task in group:
            assignment[task] = [proc]
    return build_forward_schedule(
        graph, platform, resolved, epsilon=0, assignment=assignment, algorithm="expert"
    )
