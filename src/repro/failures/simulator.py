"""Event-driven simulation of the pipelined streaming execution.

The analytic latency model of the paper, ``L = (2S − 1)·Δ``, abstracts the
steady-state behaviour of the pipeline.  This module provides an independent,
event-driven simulator of the actual execution of ``K`` consecutive data sets
under the one-port model, used to sanity-check the analytic model (and to
observe what really happens when processors crash mid-stream):

* every replica executes one *compute operation* per data set, on its assigned
  processor, in FIFO order of the data sets;
* every recorded communication gives one *transfer operation* per data set,
  occupying the sender's out-port and the receiver's in-port simultaneously;
* a replica starts processing data set ``j`` once, for each predecessor task,
  the first input for ``j`` has arrived (active replication: the earliest
  valid copy wins), and data set ``j`` enters the system at time ``j·Δ``;
* crashed processors execute nothing and send nothing.

The simulator reports the latency of each data set (completion of the last
exit task minus release time) and the asymptotic period actually achieved,
which should match ``max_u Δ_u`` of the schedule.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

from repro.exceptions import ScheduleError
from repro.failures.scenarios import CrashScenario
from repro.schedule.replica import Replica
from repro.schedule.schedule import Schedule
from repro.schedule.validation import valid_replicas_under_failures

__all__ = ["StreamingSimulator", "SimulationResult", "simulate_stream"]


@dataclass(frozen=True)
class SimulationResult:
    """Outcome of simulating ``K`` data sets through the pipeline."""

    latencies: tuple[float, ...]
    completion_times: tuple[float, ...]
    period: float

    @property
    def num_datasets(self) -> int:
        """Number of simulated data sets."""
        return len(self.latencies)

    @property
    def steady_state_latency(self) -> float:
        """Latency of the last simulated data set (the pipeline is warmed up)."""
        return self.latencies[-1]

    @property
    def max_latency(self) -> float:
        """Worst latency over the simulated data sets."""
        return max(self.latencies)

    @property
    def achieved_period(self) -> float:
        """Average inter-completion time once the pipeline is full."""
        if len(self.completion_times) < 2:
            return self.period
        gaps = np.diff(self.completion_times)
        tail = gaps[len(gaps) // 2 :]
        return float(np.mean(tail)) if len(tail) else self.period

    @property
    def achieved_throughput(self) -> float:
        """Inverse of :attr:`achieved_period`."""
        p = self.achieved_period
        return float("inf") if p == 0 else 1.0 / p


@dataclass
class _ReplicaState:
    """Book-keeping of one alive replica during the simulation."""

    replica: Replica
    processor: str
    duration: float
    needed: dict[str, int]  # predecessor task -> number of inputs required (always 1)
    received: dict[int, set[str]] = field(default_factory=dict)  # dataset -> preds satisfied
    finished: dict[int, float] = field(default_factory=dict)  # dataset -> completion time


class StreamingSimulator:
    """Discrete-event simulator for a complete :class:`~repro.schedule.schedule.Schedule`."""

    def __init__(self, schedule: Schedule, scenario: CrashScenario | Iterable[str] = ()):
        if not schedule.is_complete():
            raise ScheduleError("cannot simulate an incomplete schedule")
        if not isinstance(scenario, CrashScenario):
            scenario = CrashScenario(frozenset(scenario))
        self.schedule = schedule
        self.scenario = scenario
        # Replicas that can produce valid results under the crash pattern.
        valid = valid_replicas_under_failures(schedule, scenario.failed)
        self._valid: set[Replica] = {r for reps in valid.values() for r in reps}
        for task in schedule.graph.exit_tasks():
            if not valid[task]:
                raise ScheduleError(
                    f"exit task {task!r} has no valid replica under scenario {scenario!r}"
                )

    # ------------------------------------------------------------------ running
    def run(
        self,
        num_datasets: int = 10,
        release_times: Sequence[float] | None = None,
    ) -> SimulationResult:
        """Simulate *num_datasets* consecutive data sets and return their latencies.

        Parameters
        ----------
        release_times:
            Optional per-dataset release instants (non-decreasing, one per data
            set).  By default data set ``j`` enters the system at ``j·Δ``; the
            online runtime passes explicit admission times so that a stream
            segment can resume mid-trace.
        """
        if num_datasets < 1:
            raise ValueError(f"num_datasets must be >= 1, got {num_datasets}")
        schedule = self.schedule
        graph = schedule.graph
        period = schedule.period
        if release_times is None:
            releases = [j * period for j in range(num_datasets)]
        else:
            releases = [float(t) for t in release_times]
            if len(releases) != num_datasets:
                raise ValueError(
                    f"release_times has {len(releases)} entries, expected {num_datasets}"
                )
            if any(b < a for a, b in zip(releases, releases[1:])) or (
                releases and releases[0] < 0
            ):
                raise ValueError("release_times must be non-negative and non-decreasing")

        states: dict[Replica, _ReplicaState] = {}
        for replica in schedule.all_replicas():
            if replica not in self._valid:
                continue
            proc = schedule.processor_of(replica)
            states[replica] = _ReplicaState(
                replica=replica,
                processor=proc,
                duration=schedule.platform.execution_time(graph.work(replica.task), proc),
                needed={pred: 1 for pred in graph.predecessors(replica.task)},
            )

        # communications between valid replicas only
        comm_links: dict[Replica, list[tuple[Replica, float]]] = {}
        for event in schedule.comm_events:
            if event.source in states and event.destination in states:
                comm_links.setdefault(event.source, []).append(
                    (event.destination, event.duration)
                )

        compute_free: dict[str, float] = {p: 0.0 for p in schedule.platform.processor_names}
        out_free: dict[str, float] = dict(compute_free)
        in_free: dict[str, float] = dict(compute_free)

        counter = 0
        heap: list[tuple[float, int, str, object]] = []

        def push(time: float, kind: str, payload: object) -> None:
            nonlocal counter
            counter += 1
            heapq.heappush(heap, (time, counter, kind, payload))

        def try_start(state: _ReplicaState, dataset: int, now: float) -> None:
            """Start the compute of (replica, dataset) if all inputs are in."""
            if dataset in state.finished:
                return
            got = state.received.get(dataset, set())
            if len(got) < len(state.needed):
                return
            start = max(now, compute_free[state.processor])
            finish = start + state.duration
            compute_free[state.processor] = finish
            state.finished[dataset] = finish
            push(finish, "computed", (state.replica, dataset))

        # release entry tasks
        for replica, state in states.items():
            if not state.needed:
                for dataset in range(num_datasets):
                    push(releases[dataset], "release", (replica, dataset))

        exit_tasks = graph.exit_tasks()
        exit_done: dict[int, dict[str, float]] = {j: {} for j in range(num_datasets)}
        completion: dict[int, float] = {}

        while heap:
            now, _, kind, payload = heapq.heappop(heap)
            if kind == "release":
                replica, dataset = payload
                try_start(states[replica], dataset, now)
            elif kind == "computed":
                replica, dataset = payload
                state = states[replica]
                task = replica.task
                if task in exit_tasks and task not in exit_done[dataset]:
                    exit_done[dataset][task] = now
                    if len(exit_done[dataset]) == len(exit_tasks):
                        completion[dataset] = now
                # forward the result along every recorded communication
                for destination, duration in comm_links.get(replica, ()):
                    if duration == 0.0:
                        push(now, "arrived", (replica, destination, dataset))
                    else:
                        src_proc = state.processor
                        dst_proc = states[destination].processor
                        start = max(now, out_free[src_proc], in_free[dst_proc])
                        out_free[src_proc] = start + duration
                        in_free[dst_proc] = start + duration
                        push(start + duration, "arrived", (replica, destination, dataset))
            elif kind == "arrived":
                source, destination, dataset = payload
                dst_state = states[destination]
                dst_state.received.setdefault(dataset, set()).add(source.task)
                try_start(dst_state, dataset, now)

        latencies = []
        completions = []
        for dataset in range(num_datasets):
            if dataset not in completion:
                raise ScheduleError(
                    f"data set {dataset} never completed — inconsistent schedule or scenario"
                )
            completions.append(completion[dataset])
            latencies.append(completion[dataset] - releases[dataset])
        return SimulationResult(
            latencies=tuple(latencies),
            completion_times=tuple(completions),
            period=period,
        )


def simulate_stream(
    schedule: Schedule,
    num_datasets: int = 10,
    failed_processors: Iterable[str] = (),
) -> SimulationResult:
    """Convenience wrapper: simulate *num_datasets* data sets through *schedule*."""
    return StreamingSimulator(schedule, CrashScenario(frozenset(failed_processors))).run(num_datasets)
