"""Event-driven simulation of the pipelined streaming execution.

The analytic latency model of the paper, ``L = (2S − 1)·Δ``, abstracts the
steady-state behaviour of the pipeline.  This module provides an independent,
event-driven simulator of the actual execution of ``K`` consecutive data sets
under the one-port model, used to sanity-check the analytic model (and to
observe what really happens when processors crash mid-stream).

Since the kernel extraction, the actual event loop lives in
:class:`repro.sim.kernel.PipelineKernel` — the same loop that powers the
online runtime (:mod:`repro.runtime.engine`).  :class:`StreamingSimulator` is
the *batch driver* of that kernel: it admits every data set up front
(replica-major event order, preserved byte-for-byte across the extraction),
runs the kernel to completion under a fixed crash scenario, and packages the
per-dataset latencies into a :class:`SimulationResult`:

* every replica executes one *compute operation* per data set, on its assigned
  processor, in FIFO order of the data sets;
* every recorded communication gives one *transfer operation* per data set,
  occupying the sender's out-port and the receiver's in-port simultaneously;
* a replica starts processing data set ``j`` once, for each predecessor task,
  the first input for ``j`` has arrived (active replication: the earliest
  valid copy wins), and data set ``j`` enters the system at time ``j·Δ``;
* crashed processors execute nothing and send nothing.

The simulator reports the latency of each data set (completion of the last
exit task minus release time) and the asymptotic period actually achieved,
which should match ``max_u Δ_u`` of the schedule.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.exceptions import ScheduleError
from repro.failures.scenarios import CrashScenario
from repro.schedule.replica import Replica
from repro.schedule.schedule import Schedule
from repro.schedule.validation import valid_replicas_under_failures
from repro.sim import steady
from repro.sim.kernel import PipelineKernel
from repro.utils.gcpause import gc_paused

__all__ = ["StreamingSimulator", "SimulationResult", "simulate_stream"]


@dataclass(frozen=True)
class SimulationResult:
    """Outcome of simulating ``K`` data sets through the pipeline."""

    latencies: tuple[float, ...]
    completion_times: tuple[float, ...]
    period: float

    @property
    def num_datasets(self) -> int:
        """Number of simulated data sets."""
        return len(self.latencies)

    @property
    def steady_state_latency(self) -> float:
        """Latency of the last simulated data set (the pipeline is warmed up)."""
        return self.latencies[-1]

    @property
    def max_latency(self) -> float:
        """Worst latency over the simulated data sets."""
        return max(self.latencies)

    @property
    def achieved_period(self) -> float:
        """Average inter-completion time once the pipeline is full."""
        if len(self.completion_times) < 2:
            return self.period
        gaps = np.diff(self.completion_times)
        tail = gaps[len(gaps) // 2 :]
        return float(np.mean(tail)) if len(tail) else self.period

    @property
    def achieved_throughput(self) -> float:
        """Inverse of :attr:`achieved_period`."""
        p = self.achieved_period
        return float("inf") if p == 0 else 1.0 / p


class StreamingSimulator:
    """Batch driver of the shared pipeline kernel for a complete schedule.

    *fast_forward* (default on) enables the analytic steady-state fast path
    for uniform ``j·Δ`` streams: once two successive admission windows prove
    a repeating kernel state under the exactness certificate of
    :mod:`repro.sim.steady`, the remaining quiet stretch is emitted in
    closed form — O(warm-up + pipeline depth) events instead of
    O(num_datasets) — with results bit-identical to the full event loop.
    Workloads that fail the certificate (non-grid durations), explicit
    release lists, and short streams simply take the historical batch path.
    """

    def __init__(
        self,
        schedule: Schedule,
        scenario: CrashScenario | Iterable[str] = (),
        fast_forward: bool = True,
    ):
        if not schedule.is_complete():
            raise ScheduleError("cannot simulate an incomplete schedule")
        if not isinstance(scenario, CrashScenario):
            scenario = CrashScenario(frozenset(scenario))
        self.schedule = schedule
        self.scenario = scenario
        self.fast_forward = bool(fast_forward)
        #: diagnostics of the last :meth:`run`: how many windows/data sets
        #: the steady-state fast path skipped (zeros when it never engaged).
        self.last_fast_forward: dict[str, int] = {"windows": 0, "datasets": 0}
        # Replicas that can produce valid results under the crash pattern.
        valid = valid_replicas_under_failures(schedule, scenario.failed)
        self._valid_map: dict[str, list[Replica]] = valid
        self._valid: set[Replica] = {r for reps in valid.values() for r in reps}
        for task in schedule.graph.exit_tasks():
            if not valid[task]:
                raise ScheduleError(
                    f"exit task {task!r} has no valid replica under scenario {scenario!r}"
                )

    # ------------------------------------------------------------------ running
    def run(
        self,
        num_datasets: int = 10,
        release_times: Sequence[float] | None = None,
    ) -> SimulationResult:
        """Simulate *num_datasets* consecutive data sets and return their latencies.

        Parameters
        ----------
        release_times:
            Optional per-dataset release instants (non-decreasing, one per data
            set).  By default data set ``j`` enters the system at ``j·Δ``; the
            online runtime passes explicit admission times so that a stream
            segment can resume mid-trace.
        """
        if num_datasets < 1:
            raise ValueError(f"num_datasets must be >= 1, got {num_datasets}")
        period = self.schedule.period
        uniform = release_times is None
        if uniform:
            releases = (np.arange(num_datasets, dtype=np.float64) * period).tolist()
        else:
            releases = [float(t) for t in release_times]
            if len(releases) != num_datasets:
                raise ValueError(
                    f"release_times has {len(releases)} entries, expected {num_datasets}"
                )
            if any(b < a for a, b in zip(releases, releases[1:])) or (
                releases and releases[0] < 0
            ):
                raise ValueError("release_times must be non-negative and non-decreasing")

        self.last_fast_forward = {"windows": 0, "datasets": 0}
        if uniform and self.fast_forward and period > 0:
            window = steady.DEFAULT_WINDOW
            if num_datasets >= 3 * window:
                kernel = PipelineKernel(
                    self.schedule,
                    self.scenario.failed,
                    require_exit_coverage=False,
                    valid_replicas=self._valid_map,
                    retain_history=False,
                    fast_forward=True,
                )
                grid_exp = steady.certified_grid(
                    kernel, period, num_datasets * period
                )
                if grid_exp is not None:
                    return self._run_fast(
                        kernel, num_datasets, period, grid_exp, window
                    )

        # The constructor already computed the validity closure and checked
        # exit coverage; hand both over so the kernel does not redo the work.
        kernel = PipelineKernel(
            self.schedule,
            self.scenario.failed,
            require_exit_coverage=False,
            valid_replicas=self._valid_map,
        )
        if uniform:
            # Uniform j·Δ releases take the vectorized fast path: the release
            # events come from a numpy arange + one heapify, event-for-event
            # identical to admit_batch on the equivalent release list.
            kernel.admit_batch_vectorized(num_datasets, period)
        else:
            kernel.admit_batch(releases)
        with gc_paused():
            # millions of acyclic allocations; the cycle detector's scans are
            # pure overhead that grows with the stream (see repro.utils.gcpause)
            kernel.run_to_completion()

        latencies = []
        completions = []
        for dataset in range(num_datasets):
            completion = kernel.completion_of(dataset)
            if completion is None:
                raise ScheduleError(
                    f"data set {dataset} never completed — inconsistent schedule or scenario"
                )
            completions.append(completion)
            latencies.append(completion - releases[dataset])
        return SimulationResult(
            latencies=tuple(latencies),
            completion_times=tuple(completions),
            period=period,
        )

    def _run_fast(
        self,
        kernel: PipelineKernel,
        num_datasets: int,
        period: float,
        grid_exp: int,
        window: int,
    ) -> SimulationResult:
        """The steady-state windowed drive (certified workloads only).

        Admission happens one window at a time through
        :meth:`~repro.sim.kernel.PipelineKernel.admit_stream_window`, whose
        preassigned sequence numbers make the pop order identical to the
        one-shot vectorized admission.  Each ``run_until`` stops just *below*
        the next window's first release, so same-instant release/compute
        ties keep resolving release-first exactly as they would with every
        release already in the heap.  At each boundary the detector
        fingerprints the kernel; on a lock the remaining quiet windows are
        emitted as the last window's completions shifted by exact multiples
        of ``(window·Δ, window)`` and the kernel lands at the far end.
        """
        completions: list[float | None] = [None] * num_datasets
        detector = steady.SteadyStateDetector(kernel, grid_exp, period, window)
        delta = detector.delta
        skipped_windows = 0
        template: list[tuple[int, float]] = []
        j = 0
        with gc_paused():
            while j < num_datasets:
                stop = min(j + window, num_datasets)
                kernel.admit_stream_window(j, stop, period, num_datasets)
                j = stop
                if j >= num_datasets:
                    break
                boundary = j * period
                drained = kernel.run_until(math.nextafter(boundary, -math.inf))
                for d, t in drained:
                    completions[d] = t
                template.extend(drained)
                locked = detector.observe(boundary, j, True)
                if not locked or len(template) != window:
                    template.clear()
                    continue
                m = detector.max_windows(
                    boundary, (num_datasets - j) // window, math.inf
                )
                if m >= 1:
                    for s in range(1, m + 1):
                        base = boundary + s * delta
                        step = s * window
                        for d, t in template:
                            completions[d + step] = (t - boundary) + base
                    detector.jump(m)
                    j += m * window
                    skipped_windows += m
                template.clear()
            for d, t in kernel.run_to_completion():
                completions[d] = t
        self.last_fast_forward = {
            "windows": skipped_windows,
            "datasets": skipped_windows * window,
        }
        latencies = []
        for dataset, completion in enumerate(completions):
            if completion is None:
                raise ScheduleError(
                    f"data set {dataset} never completed — inconsistent schedule or scenario"
                )
            latencies.append(completion - dataset * period)
        return SimulationResult(
            latencies=tuple(latencies),
            completion_times=tuple(completions),  # type: ignore[arg-type]
            period=period,
        )


def simulate_stream(
    schedule: Schedule,
    num_datasets: int = 10,
    failed_processors: Iterable[str] = (),
) -> SimulationResult:
    """Convenience wrapper: simulate *num_datasets* data sets through *schedule*."""
    return StreamingSimulator(schedule, CrashScenario(frozenset(failed_processors))).run(num_datasets)
