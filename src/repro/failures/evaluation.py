"""Latency of a schedule when processors actually crash.

The latency reported by :func:`repro.schedule.metrics.latency_upper_bound` is
a *bound*: it assumes every replica (including the redundant ones) must be
waited for.  The experimental section of the paper also measures "the real
execution time for a given schedule rather than just bounds" when ``c``
processors crash.  This module implements that evaluation:

* a replica is *valid* under a crash pattern when its processor is alive and,
  for each predecessor task, at least one of the source replicas it receives
  data from is valid (active replication proceeds on the first arriving input
  per predecessor);
* the *effective stage* of a valid replica takes, for every predecessor task,
  the minimum over its valid sources (first-arrival semantics), instead of the
  worst case over all sources;
* the *crash latency* is ``(2·S_c − 1)·Δ`` where ``S_c`` is the maximum over
  exit tasks of the effective stage of their best valid replica.

Because the schedulers guarantee at least one valid replica per task for any
``c ≤ ε`` crashes, the crash latency is always defined in the experiments; a
:class:`~repro.exceptions.ScheduleError` is raised otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.exceptions import ScheduleError
from repro.failures.scenarios import CrashScenario, sample_crash_scenarios
from repro.schedule.schedule import Schedule
from repro.schedule.stages import num_stages
from repro.utils.checks import check_positive
from repro.utils.rng import ensure_rng

__all__ = [
    "CrashEvaluation",
    "crash_latency",
    "evaluate_crashes",
    "expected_crash_latency",
]


@dataclass(frozen=True)
class CrashEvaluation:
    """Outcome of evaluating one schedule under one crash scenario."""

    scenario: CrashScenario
    stages: int
    latency: float

    @property
    def crashes(self) -> int:
        """Number of crashed processors."""
        return self.scenario.count


def crash_latency(
    schedule: Schedule,
    scenario: CrashScenario | Iterable[str],
    on_invalid: str = "raise",
) -> CrashEvaluation:
    """Real pipelined latency of *schedule* under *scenario*.

    Parameters
    ----------
    on_invalid:
        What to do when some exit task has no valid replica under the
        scenario.  ``"raise"`` (default) raises
        :class:`~repro.exceptions.ScheduleError`; ``"upper_bound"`` falls back
        to the fault-free stage count — the data item is effectively lost, and
        charging the upper bound is the mild penalty used by the experiment
        campaign (schedules built with ``strict_resilience=True`` never hit
        this case for ``c ≤ ε``).
    """
    if on_invalid not in ("raise", "upper_bound"):
        raise ValueError(f"on_invalid must be 'raise' or 'upper_bound', got {on_invalid!r}")
    if not isinstance(scenario, CrashScenario):
        scenario = CrashScenario(frozenset(scenario))
    alive = scenario.alive(schedule.platform)
    try:
        stages = num_stages(schedule, alive_only=alive)
    except ScheduleError:
        if on_invalid == "raise":
            raise
        stages = num_stages(schedule)
    return CrashEvaluation(
        scenario=scenario,
        stages=stages,
        latency=(2 * stages - 1) * schedule.period,
    )


def evaluate_crashes(
    schedule: Schedule,
    crashes: int,
    samples: int = 10,
    seed: int | np.random.Generator | None = None,
    on_invalid: str = "raise",
) -> list[CrashEvaluation]:
    """Evaluate *samples* random crash scenarios of *crashes* processors each.

    The crash patterns are drawn from a generator coerced once with
    :func:`repro.utils.rng.ensure_rng`, so an ``int`` seed makes the whole
    evaluation deterministic and a shared generator (as passed by the
    experiment campaign) advances exactly once per sampled scenario.
    """
    rng = ensure_rng(seed)
    scenarios = sample_crash_scenarios(schedule.platform, crashes, samples, rng)
    return [crash_latency(schedule, sc, on_invalid=on_invalid) for sc in scenarios]


def expected_crash_latency(
    schedule: Schedule,
    crashes: int,
    samples: int = 10,
    seed: int | np.random.Generator | None = None,
    unit: float = 1.0,
    on_invalid: str = "raise",
) -> float:
    """Mean crash latency over random scenarios, optionally normalized by *unit*.

    Seed flow (end-to-end reproducibility): *seed* may be an ``int`` (a fresh
    generator is derived from it and the result only depends on its value), an
    existing :class:`numpy.random.Generator` (the campaign threads one shared
    generator through every evaluation of a point, consuming one draw per
    scenario), or ``None`` (fresh OS entropy — not reproducible).  The seed is
    coerced exactly once here and handed to
    :func:`~repro.failures.scenarios.sample_crash_scenarios`; no other random
    draw is involved, so two calls with the same integer seed return the same
    value bit-for-bit.
    """
    check_positive(unit, "unit")
    if crashes == 0:
        # No crash: the execution still proceeds on the first arriving input of
        # each predecessor (all replicas are valid), which is what the paper
        # plots as the "With 0 Crash" curves — lower than the upper bound.
        return crash_latency(schedule, CrashScenario(frozenset())).latency / unit
    evaluations: Sequence[CrashEvaluation] = evaluate_crashes(
        schedule, crashes, samples, seed, on_invalid=on_invalid
    )
    return float(np.mean([ev.latency for ev in evaluations])) / unit
