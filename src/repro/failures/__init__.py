"""Failure model, crash evaluation and streaming execution simulation.

* :mod:`repro.failures.scenarios` — generation of crash scenarios (which
  processors fail), matching the experimental protocol of the paper
  ("processors that fail during the schedule process are chosen uniformly");
* :mod:`repro.failures.evaluation` — the *real* latency of a schedule under a
  given crash pattern (effective pipeline stages over the surviving replicas);
* :mod:`repro.failures.simulator` — an event-driven simulator of the pipelined
  execution of consecutive data sets, with or without crashes, used to
  validate the analytic latency model ``L = (2S−1)·Δ``; since the kernel
  extraction it is a thin batch driver over :mod:`repro.sim` (the same event
  loop that powers the online runtime).

The module also provides the *timed* failure model consumed by the online
runtime (:mod:`repro.runtime`): :class:`~repro.failures.scenarios.FaultTrace`
and :func:`~repro.failures.scenarios.sample_fault_trace`, the fault-process
classes behind it (:mod:`repro.failures.processes` — correlated crash groups,
load-dependent hazards, elastic joins/preemptions), and availability-log
ingestion (:mod:`repro.failures.trace_io`).
"""

from repro.failures.scenarios import (
    CrashScenario,
    sample_crash_scenarios,
    all_crash_scenarios,
    FaultEvent,
    FaultTrace,
    sample_fault_trace,
    FAULT_DISTRIBUTIONS,
    FAULT_EVENT_KINDS,
)
from repro.failures.processes import (
    FaultProcess,
    RenewalFaultProcess,
    ElasticFaultProcess,
    TraceReplayProcess,
    resolve_groups,
)
from repro.failures.trace_io import load_fault_trace, dump_fault_trace
from repro.failures.evaluation import (
    CrashEvaluation,
    crash_latency,
    evaluate_crashes,
    expected_crash_latency,
)
from repro.failures.simulator import StreamingSimulator, SimulationResult, simulate_stream

__all__ = [
    "CrashScenario",
    "sample_crash_scenarios",
    "all_crash_scenarios",
    "FaultEvent",
    "FaultTrace",
    "sample_fault_trace",
    "FAULT_DISTRIBUTIONS",
    "FAULT_EVENT_KINDS",
    "FaultProcess",
    "RenewalFaultProcess",
    "ElasticFaultProcess",
    "TraceReplayProcess",
    "resolve_groups",
    "load_fault_trace",
    "dump_fault_trace",
    "CrashEvaluation",
    "crash_latency",
    "evaluate_crashes",
    "expected_crash_latency",
    "StreamingSimulator",
    "SimulationResult",
    "simulate_stream",
]
