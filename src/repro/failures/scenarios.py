"""Crash-scenario generation — static crash sets and timed fault traces.

A *crash scenario* is simply the set of processors that fail (fail-silent /
fail-stop: a failed processor produces no output and never recovers).  The
experiments of the paper evaluate each schedule under ``c`` crashes with the
failed processors drawn uniformly among the platform; this module provides
both random sampling and exhaustive enumeration (used by the validation
tests).

The online runtime (:mod:`repro.runtime`) needs the *dynamic* counterpart: a
timed sequence of failure (and optionally repair) events.  A
:class:`FaultTrace` records such a sequence; :func:`sample_fault_trace` draws
one from a per-processor renewal process with exponential or Weibull
inter-failure times, seeded through :func:`repro.utils.rng.ensure_rng` so that
Monte-Carlo campaigns are reproducible.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from repro.failures.processes import (
    FAULT_DISTRIBUTIONS,
    ElasticFaultProcess,
    RenewalFaultProcess,
)
from repro.platform.platform import Platform
from repro.utils.checks import check_positive
from repro.utils.rng import ensure_rng

__all__ = [
    "CrashScenario",
    "sample_crash_scenarios",
    "all_crash_scenarios",
    "FaultEvent",
    "FaultTrace",
    "sample_fault_trace",
    "FAULT_DISTRIBUTIONS",
    "FAULT_EVENT_KINDS",
]

#: event kinds in tie-break order: simultaneous events on the same processor
#: apply crash first, then repair, then join (see FaultTrace.__post_init__).
FAULT_EVENT_KINDS = ("crash", "repair", "join")
_KIND_ORDER = {kind: rank for rank, kind in enumerate(FAULT_EVENT_KINDS)}


@dataclass(frozen=True)
class CrashScenario:
    """A set of simultaneously failed processors."""

    failed: frozenset[str]

    def __post_init__(self) -> None:
        object.__setattr__(self, "failed", frozenset(self.failed))

    @property
    def count(self) -> int:
        """Number of failed processors ``c``."""
        return len(self.failed)

    def is_alive(self, processor: str) -> bool:
        """True when *processor* did not crash."""
        return processor not in self.failed

    def alive(self, platform: Platform) -> tuple[str, ...]:
        """The surviving processors of *platform*."""
        return tuple(p for p in platform.processor_names if p not in self.failed)

    def __repr__(self) -> str:
        return f"CrashScenario({sorted(self.failed)})"


def sample_crash_scenarios(
    platform: Platform,
    crashes: int,
    count: int = 1,
    seed: int | np.random.Generator | None = None,
) -> list[CrashScenario]:
    """Draw *count* scenarios of *crashes* distinct processors chosen uniformly."""
    if crashes < 0:
        raise ValueError(f"crashes must be >= 0, got {crashes}")
    if crashes > platform.num_processors:
        raise ValueError(
            f"cannot crash {crashes} processors on a platform of {platform.num_processors}"
        )
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    rng = ensure_rng(seed)
    names = platform.processor_names
    scenarios = []
    for _ in range(count):
        idx = rng.choice(len(names), size=crashes, replace=False)
        scenarios.append(CrashScenario(frozenset(names[i] for i in idx)))
    return scenarios


def all_crash_scenarios(platform: Platform, crashes: int) -> list[CrashScenario]:
    """Every scenario of exactly *crashes* failed processors (use with care)."""
    if crashes < 0 or crashes > platform.num_processors:
        raise ValueError(f"invalid number of crashes {crashes}")
    return [
        CrashScenario(frozenset(combo))
        for combo in itertools.combinations(platform.processor_names, crashes)
    ]


# ------------------------------------------------------------- timed fault traces
@dataclass(frozen=True)
class FaultEvent:
    """One timed event of a fault trace.

    ``crash`` takes a processor down, ``repair`` brings a crashed processor
    back, ``join`` adds capacity — a spare (or preempted spot node) entering
    the platform on an elastic regime.  The online runtime treats repair and
    join alike for availability but always probes a rebuild on join.
    """

    time: float
    processor: str
    kind: str  # "crash" | "repair" | "join"

    def __post_init__(self) -> None:
        if self.kind not in FAULT_EVENT_KINDS:
            raise ValueError(
                f"kind must be one of {FAULT_EVENT_KINDS}, got {self.kind!r}"
            )
        if self.time < 0:
            raise ValueError(f"event time must be >= 0, got {self.time}")

    @property
    def is_crash(self) -> bool:
        return self.kind == "crash"

    @property
    def is_join(self) -> bool:
        return self.kind == "join"


@dataclass(frozen=True)
class FaultTrace:
    """A time-ordered sequence of crash/repair/join events over a horizon.

    The trace is purely descriptive (it does not know about schedules); the
    online runtime interprets it.  Events are sorted by ``(time, processor,
    kind)`` at construction, where the kind tie-break is the *documented*
    order ``crash < repair < join`` (``FAULT_EVENT_KINDS``): simultaneous
    events on one processor crash it first, so a crash+repair pair at the
    same instant leaves it up.

    *initially_down* lists processors absent when the stream starts (elastic
    spares that have not joined yet); it seeds :meth:`failed_at` and the
    runtime's initial dead set.
    """

    events: tuple[FaultEvent, ...]
    horizon: float
    initially_down: frozenset[str] = field(default=frozenset())

    def __post_init__(self) -> None:
        check_positive(self.horizon, "horizon")
        ordered = tuple(
            sorted(self.events, key=lambda e: (e.time, e.processor, _KIND_ORDER[e.kind]))
        )
        object.__setattr__(self, "events", ordered)
        object.__setattr__(self, "initially_down", frozenset(self.initially_down))

    @property
    def num_crashes(self) -> int:
        """Total number of crash events in the trace."""
        return sum(1 for e in self.events if e.is_crash)

    @property
    def crashed_processors(self) -> frozenset[str]:
        """Every processor that crashes at least once."""
        return frozenset(e.processor for e in self.events if e.is_crash)

    def failed_at(self, time: float) -> frozenset[str]:
        """Processors down at *time* (events up to and including it, applied
        on top of *initially_down*)."""
        down: set[str] = set(self.initially_down)
        for event in self.events:
            if event.time > time:
                break
            if event.is_crash:
                down.add(event.processor)
            else:  # repair or join both restore availability
                down.discard(event.processor)
        return frozenset(down)

    def __iter__(self):
        return iter(self.events)

    def __len__(self) -> int:
        return len(self.events)


def sample_fault_trace(
    platform: Platform,
    horizon: float,
    mttf: float,
    distribution: str = "exponential",
    shape: float = 1.5,
    mttr: float | None = None,
    seed: int | np.random.Generator | None = None,
    *,
    repair_shape: float | None = None,
    groups: Sequence[Sequence[str]] | None = None,
    load_coupling: float = 0.0,
    utilization: Mapping[str, float] | None = None,
    spares: int = 0,
    join_mean: float | None = None,
    preempt_mean: float | None = None,
) -> FaultTrace:
    """Draw a timed fault trace over ``[0, horizon)`` for every processor.

    The default regime is the paper's: each processor follows an independent
    renewal process whose first failure arrives after an exponential(*mttf*)
    or Weibull(*shape*, mean *mttf*) delay.  When *mttr* is ``None`` the
    failure is terminal (fail-stop); otherwise the processor is repaired
    after an exponential(*mttr*) delay — or Weibull(*repair_shape*, mean
    *mttr*) when *repair_shape* is set — and may fail again, until the
    horizon is exceeded.  ``repair_shape=None`` keeps the historical
    exponential repair draw bit-for-bit.

    The keyword-only arguments open three further failure worlds (see
    :mod:`repro.failures.processes`):

    * *groups* — correlated crash groups: one hazard clock per group, every
      member crashes (and is repaired) together.  Singleton groups are
      bit-identical to the independent regime.
    * *load_coupling* / *utilization* — load-dependent hazards: a group's
      inter-failure delays are divided by ``1 + load_coupling * mean
      utilization`` of its members.  ``load_coupling=0`` is bit-identical to
      the uncoupled regime.
    * *spares* / *join_mean* / *preempt_mean* — elastic platforms: the last
      *spares* processors start absent and join after exponential
      (*join_mean*) delays; *preempt_mean* adds spot-preemption renewals
      (crash, then rejoin) on the active processors.  Elastic draws happen
      strictly after the renewal draws, so disabling elasticity leaves the
      base stream untouched.

    Processors (and groups, at their first member's slot) are visited in
    platform declaration order with a single generator, so a given seed
    always produces the same trace.
    """
    rng = ensure_rng(seed)
    elastic = (
        ElasticFaultProcess(
            platform, horizon, spares=spares, join_mean=join_mean, preempt_mean=preempt_mean
        )
        if spares or preempt_mean is not None
        else None
    )
    renewal = RenewalFaultProcess(
        platform,
        horizon,
        mttf,
        distribution=distribution,
        shape=shape,
        mttr=mttr,
        repair_shape=repair_shape,
        groups=groups,
        load_coupling=load_coupling,
        utilization=utilization,
        exclude=elastic.spare_names if elastic is not None else (),
    )
    raw = renewal.sample(rng)
    initially_down: frozenset[str] = frozenset()
    if elastic is not None:
        raw += elastic.sample(rng)
        initially_down = elastic.initially_down
    events = tuple(FaultEvent(t, p, k) for t, p, k in raw)
    return FaultTrace(events=events, horizon=horizon, initially_down=initially_down)
