"""Crash-scenario generation — static crash sets and timed fault traces.

A *crash scenario* is simply the set of processors that fail (fail-silent /
fail-stop: a failed processor produces no output and never recovers).  The
experiments of the paper evaluate each schedule under ``c`` crashes with the
failed processors drawn uniformly among the platform; this module provides
both random sampling and exhaustive enumeration (used by the validation
tests).

The online runtime (:mod:`repro.runtime`) needs the *dynamic* counterpart: a
timed sequence of failure (and optionally repair) events.  A
:class:`FaultTrace` records such a sequence; :func:`sample_fault_trace` draws
one from a per-processor renewal process with exponential or Weibull
inter-failure times, seeded through :func:`repro.utils.rng.ensure_rng` so that
Monte-Carlo campaigns are reproducible.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass

import numpy as np

from repro.platform.platform import Platform
from repro.utils.checks import check_positive
from repro.utils.rng import ensure_rng

__all__ = [
    "CrashScenario",
    "sample_crash_scenarios",
    "all_crash_scenarios",
    "FaultEvent",
    "FaultTrace",
    "sample_fault_trace",
]

#: fault-arrival distributions understood by :func:`sample_fault_trace`.
FAULT_DISTRIBUTIONS = ("exponential", "weibull")


@dataclass(frozen=True)
class CrashScenario:
    """A set of simultaneously failed processors."""

    failed: frozenset[str]

    def __post_init__(self) -> None:
        object.__setattr__(self, "failed", frozenset(self.failed))

    @property
    def count(self) -> int:
        """Number of failed processors ``c``."""
        return len(self.failed)

    def is_alive(self, processor: str) -> bool:
        """True when *processor* did not crash."""
        return processor not in self.failed

    def alive(self, platform: Platform) -> tuple[str, ...]:
        """The surviving processors of *platform*."""
        return tuple(p for p in platform.processor_names if p not in self.failed)

    def __repr__(self) -> str:
        return f"CrashScenario({sorted(self.failed)})"


def sample_crash_scenarios(
    platform: Platform,
    crashes: int,
    count: int = 1,
    seed: int | np.random.Generator | None = None,
) -> list[CrashScenario]:
    """Draw *count* scenarios of *crashes* distinct processors chosen uniformly."""
    if crashes < 0:
        raise ValueError(f"crashes must be >= 0, got {crashes}")
    if crashes > platform.num_processors:
        raise ValueError(
            f"cannot crash {crashes} processors on a platform of {platform.num_processors}"
        )
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    rng = ensure_rng(seed)
    names = platform.processor_names
    scenarios = []
    for _ in range(count):
        idx = rng.choice(len(names), size=crashes, replace=False)
        scenarios.append(CrashScenario(frozenset(names[i] for i in idx)))
    return scenarios


def all_crash_scenarios(platform: Platform, crashes: int) -> list[CrashScenario]:
    """Every scenario of exactly *crashes* failed processors (use with care)."""
    if crashes < 0 or crashes > platform.num_processors:
        raise ValueError(f"invalid number of crashes {crashes}")
    return [
        CrashScenario(frozenset(combo))
        for combo in itertools.combinations(platform.processor_names, crashes)
    ]


# ------------------------------------------------------------- timed fault traces
@dataclass(frozen=True)
class FaultEvent:
    """One timed event of a fault trace: a processor crashes or comes back."""

    time: float
    processor: str
    kind: str  # "crash" | "repair"

    def __post_init__(self) -> None:
        if self.kind not in ("crash", "repair"):
            raise ValueError(f"kind must be 'crash' or 'repair', got {self.kind!r}")
        if self.time < 0:
            raise ValueError(f"event time must be >= 0, got {self.time}")

    @property
    def is_crash(self) -> bool:
        return self.kind == "crash"


@dataclass(frozen=True)
class FaultTrace:
    """A time-ordered sequence of crash/repair events over a horizon.

    The trace is purely descriptive (it does not know about schedules); the
    online runtime interprets it.  Events are sorted by ``(time, processor)``
    at construction.
    """

    events: tuple[FaultEvent, ...]
    horizon: float

    def __post_init__(self) -> None:
        check_positive(self.horizon, "horizon")
        ordered = tuple(sorted(self.events, key=lambda e: (e.time, e.processor, e.kind)))
        object.__setattr__(self, "events", ordered)

    @property
    def num_crashes(self) -> int:
        """Total number of crash events in the trace."""
        return sum(1 for e in self.events if e.is_crash)

    @property
    def crashed_processors(self) -> frozenset[str]:
        """Every processor that crashes at least once."""
        return frozenset(e.processor for e in self.events if e.is_crash)

    def failed_at(self, time: float) -> frozenset[str]:
        """Processors down at *time* (crashes and repairs up to and including it)."""
        down: set[str] = set()
        for event in self.events:
            if event.time > time:
                break
            if event.is_crash:
                down.add(event.processor)
            else:
                down.discard(event.processor)
        return frozenset(down)

    def __iter__(self):
        return iter(self.events)

    def __len__(self) -> int:
        return len(self.events)


def _inter_failure_time(
    rng: np.random.Generator, distribution: str, mttf: float, shape: float
) -> float:
    if distribution == "exponential":
        return float(rng.exponential(mttf))
    # Weibull with mean mttf: scale = mttf / Gamma(1 + 1/shape).
    scale = mttf / math.gamma(1.0 + 1.0 / shape)
    return float(scale * rng.weibull(shape))


def sample_fault_trace(
    platform: Platform,
    horizon: float,
    mttf: float,
    distribution: str = "exponential",
    shape: float = 1.5,
    mttr: float | None = None,
    seed: int | np.random.Generator | None = None,
) -> FaultTrace:
    """Draw a timed fault trace over ``[0, horizon)`` for every processor.

    Each processor follows an independent renewal process: its first failure
    arrives after an exponential(*mttf*) or Weibull(*shape*, mean *mttf*) delay.
    When *mttr* is ``None`` the failure is terminal (fail-stop, as in the
    paper); otherwise the processor is repaired after an exponential(*mttr*)
    delay and may fail again, until the horizon is exceeded.

    Processors are visited in platform declaration order with a single
    generator, so a given seed always produces the same trace.
    """
    check_positive(horizon, "horizon")
    check_positive(mttf, "mttf")
    check_positive(shape, "shape")
    if mttr is not None:
        check_positive(mttr, "mttr")
    if distribution not in FAULT_DISTRIBUTIONS:
        raise ValueError(
            f"distribution must be one of {FAULT_DISTRIBUTIONS}, got {distribution!r}"
        )
    rng = ensure_rng(seed)
    events: list[FaultEvent] = []
    for name in platform.processor_names:
        t = 0.0
        while True:
            t += _inter_failure_time(rng, distribution, mttf, shape)
            if t >= horizon:
                break
            events.append(FaultEvent(t, name, "crash"))
            if mttr is None:
                break
            t += float(rng.exponential(mttr))
            if t >= horizon:
                break
            events.append(FaultEvent(t, name, "repair"))
    return FaultTrace(events=tuple(events), horizon=horizon)
