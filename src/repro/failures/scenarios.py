"""Crash-scenario generation.

A *crash scenario* is simply the set of processors that fail (fail-silent /
fail-stop: a failed processor produces no output and never recovers).  The
experiments of the paper evaluate each schedule under ``c`` crashes with the
failed processors drawn uniformly among the platform; this module provides
both random sampling and exhaustive enumeration (used by the validation
tests).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

import numpy as np

from repro.platform.platform import Platform
from repro.utils.rng import ensure_rng

__all__ = ["CrashScenario", "sample_crash_scenarios", "all_crash_scenarios"]


@dataclass(frozen=True)
class CrashScenario:
    """A set of simultaneously failed processors."""

    failed: frozenset[str]

    def __post_init__(self) -> None:
        object.__setattr__(self, "failed", frozenset(self.failed))

    @property
    def count(self) -> int:
        """Number of failed processors ``c``."""
        return len(self.failed)

    def is_alive(self, processor: str) -> bool:
        """True when *processor* did not crash."""
        return processor not in self.failed

    def alive(self, platform: Platform) -> tuple[str, ...]:
        """The surviving processors of *platform*."""
        return tuple(p for p in platform.processor_names if p not in self.failed)

    def __repr__(self) -> str:
        return f"CrashScenario({sorted(self.failed)})"


def sample_crash_scenarios(
    platform: Platform,
    crashes: int,
    count: int = 1,
    seed: int | np.random.Generator | None = None,
) -> list[CrashScenario]:
    """Draw *count* scenarios of *crashes* distinct processors chosen uniformly."""
    if crashes < 0:
        raise ValueError(f"crashes must be >= 0, got {crashes}")
    if crashes > platform.num_processors:
        raise ValueError(
            f"cannot crash {crashes} processors on a platform of {platform.num_processors}"
        )
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    rng = ensure_rng(seed)
    names = platform.processor_names
    scenarios = []
    for _ in range(count):
        idx = rng.choice(len(names), size=crashes, replace=False)
        scenarios.append(CrashScenario(frozenset(names[i] for i in idx)))
    return scenarios


def all_crash_scenarios(platform: Platform, crashes: int) -> list[CrashScenario]:
    """Every scenario of exactly *crashes* failed processors (use with care)."""
    if crashes < 0 or crashes > platform.num_processors:
        raise ValueError(f"invalid number of crashes {crashes}")
    return [
        CrashScenario(frozenset(combo))
        for combo in itertools.combinations(platform.processor_names, crashes)
    ]
