"""Ingest and emit cluster availability logs as :class:`FaultTrace` objects.

The on-disk format is the common denominator of published availability traces:
a CSV of ``time,node,state`` rows where *state* is ``down`` (the node crashes)
or ``up`` (it comes back).  Times are absolute simulation-time units, rows may
appear in any order, ``#`` comment lines and an optional header row are
ignored.  :func:`load_fault_trace` validates aggressively — unknown node (when
a platform is given, with a close-match hint), negative time, a ``down`` for a
node already down, an ``up`` for a node that is up — and raises
:class:`~repro.exceptions.FaultTraceError` carrying the file and line number.
Events at or past the horizon are clipped, matching what
:func:`~repro.failures.scenarios.sample_fault_trace` samples.

:func:`dump_fault_trace` is the exact inverse: times are written with
``repr`` so a dump/load round-trip reproduces the trace bit-for-bit (the
replay-of-a-sampled-trace equivalence oracle in the property suite depends on
this).  ``join`` events are written as ``up`` and therefore reload as
``repair`` — both restore availability; only the runtime's rebuild probing
distinguishes them.
"""

from __future__ import annotations

import difflib
from pathlib import Path

from repro.exceptions import FaultTraceError
from repro.failures.scenarios import FaultEvent, FaultTrace
from repro.platform.platform import Platform

__all__ = ["load_fault_trace", "dump_fault_trace"]

_STATES = {"down": "crash", "up": "repair"}


def _fail(path: Path, lineno: int, message: str) -> FaultTraceError:
    return FaultTraceError(f"{path}:{lineno}: {message}")


def load_fault_trace(
    path: str | Path,
    platform: Platform | None = None,
    horizon: float | None = None,
) -> FaultTrace:
    """Parse an availability log into a :class:`FaultTrace`.

    Parameters
    ----------
    path:
        CSV file of ``time,node,down|up`` rows (``#`` comments and a
        ``time,node,state`` header row are skipped).
    platform:
        When given, every node must name one of its processors — a typo gets
        a did-you-mean hint instead of silently simulating a ghost node.
    horizon:
        Trace horizon; events at ``time >= horizon`` are clipped.  Defaults
        to just past the last event (last time + 1, or 1 for an empty log).
    """
    path = Path(path)
    try:
        lines = path.read_text().splitlines()
    except OSError as exc:
        raise FaultTraceError(f"cannot read fault trace {path}: {exc}") from exc

    rows: list[tuple[float, str, str, int]] = []
    for lineno, line in enumerate(lines, start=1):
        text = line.strip()
        if not text or text.startswith("#"):
            continue
        parts = [p.strip() for p in text.split(",")]
        if len(parts) != 3:
            raise _fail(path, lineno, f"expected 3 comma-separated fields, got {len(parts)}")
        raw_time, node, state = parts
        if not rows and (raw_time.lower(), state.lower()) == ("time", "state"):
            continue  # header row (first data-bearing line, after any comments)
        try:
            time = float(raw_time)
        except ValueError:
            raise _fail(path, lineno, f"invalid time {raw_time!r}") from None
        if time < 0:
            raise _fail(path, lineno, f"negative time {time!r}")
        state = state.lower()
        if state not in _STATES:
            raise _fail(path, lineno, f"state must be 'down' or 'up', got {state!r}")
        if platform is not None and node not in platform:
            hint = difflib.get_close_matches(node, platform.processor_names, n=1)
            suffix = f" — did you mean {hint[0]!r}?" if hint else ""
            raise _fail(path, lineno, f"unknown node {node!r}{suffix}")
        rows.append((time, node, _STATES[state], lineno))

    # Replay in trace order (time, node, crash-before-repair) to catch
    # out-of-order transitions exactly as FaultTrace will apply them.
    down: set[str] = set()
    for time, node, kind, lineno in sorted(rows, key=lambda r: (r[0], r[1], r[2] != "crash")):
        if kind == "crash":
            if node in down:
                raise _fail(path, lineno, f"node {node!r} goes down at {time!r} but is already down")
            down.add(node)
        else:
            if node not in down:
                raise _fail(path, lineno, f"node {node!r} comes up at {time!r} but is not down")
            down.discard(node)

    if horizon is None:
        horizon = (max(r[0] for r in rows) + 1.0) if rows else 1.0
    events = tuple(
        FaultEvent(time, node, kind) for time, node, kind, _ in rows if time < horizon
    )
    return FaultTrace(events=events, horizon=horizon)


def dump_fault_trace(trace: FaultTrace, path: str | Path) -> None:
    """Write *trace* as a ``time,node,state`` CSV (the :func:`load_fault_trace`
    format).  Times use ``repr`` so the round-trip is bit-exact."""
    path = Path(path)
    lines = ["time,node,state"]
    for event in trace.events:
        state = "down" if event.is_crash else "up"
        lines.append(f"{event.time!r},{event.processor},{state}")
    path.write_text("\n".join(lines) + "\n")
