"""Fault-process classes — the samplers behind :func:`sample_fault_trace`.

Each process turns a seeded generator into a list of raw ``(time, processor,
kind)`` tuples; :func:`repro.failures.scenarios.sample_fault_trace` wraps them
into :class:`~repro.failures.scenarios.FaultEvent` objects and a
:class:`~repro.failures.scenarios.FaultTrace`.  Keeping the samplers here (and
event types in :mod:`repro.failures.scenarios`) avoids an import cycle while
giving each failure *world* a named, independently testable class:

* :class:`RenewalFaultProcess` — the paper's independent per-processor
  exponential/Weibull renewal regime, generalised to correlated crash groups
  (one hazard clock per group) and load-dependent hazards (intensity scaled by
  the group's mean utilization in the current schedule);
* :class:`ElasticFaultProcess` — spare processors that *join* the platform
  after an exponential delay, plus optional spot-preemption (crash then
  rejoin) renewals on the active processors;
* :class:`TraceReplayProcess` — replays a fixed event list (a parsed cluster
  availability log, see :mod:`repro.failures.trace_io`) ignoring the RNG.

Determinism contract: every process draws from the single generator it is
handed, visiting processors (or groups, positioned by their first member) in
platform declaration order, so a given seed always produces the same trace.
With singleton groups, ``load_coupling=0`` and no elastic process, the draw
stream is bit-identical to the historical per-processor loop — the frozen
fingerprints under ``tests/golden/`` pin this.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

import numpy as np

from repro.platform.platform import Platform
from repro.utils.checks import check_positive

__all__ = [
    "FAULT_DISTRIBUTIONS",
    "FaultProcess",
    "RenewalFaultProcess",
    "ElasticFaultProcess",
    "TraceReplayProcess",
    "resolve_groups",
]

#: fault-arrival distributions understood by :class:`RenewalFaultProcess`.
FAULT_DISTRIBUTIONS = ("exponential", "weibull")

#: a raw event before it becomes a FaultEvent: (time, processor, kind).
RawEvent = tuple[float, str, str]


def _inter_failure_time(
    rng: np.random.Generator, distribution: str, mttf: float, shape: float
) -> float:
    if distribution == "exponential":
        return float(rng.exponential(mttf))
    # Weibull with mean mttf: scale = mttf / Gamma(1 + 1/shape).
    scale = mttf / math.gamma(1.0 + 1.0 / shape)
    return float(scale * rng.weibull(shape))


def resolve_groups(
    platform: Platform,
    groups: Sequence[Sequence[str]] | None,
    exclude: Sequence[str] = (),
) -> tuple[tuple[str, ...], ...]:
    """Order crash groups for sampling.

    Returns one group per *active* processor cluster, positioned at its first
    member's slot in platform declaration order; processors in no explicit
    group become singletons.  ``groups=None`` therefore yields exactly one
    singleton per processor — the historical independent regime.  Groups must
    be disjoint, non-empty and name known processors; *exclude* (elastic
    spares) is removed from every group.
    """
    excluded = set(exclude)
    member_to_group: dict[str, tuple[str, ...]] = {}
    for group in groups or ():
        members = tuple(m for m in group if m not in excluded)
        if not tuple(group):
            raise ValueError("crash groups must be non-empty")
        for member in group:
            if member not in platform:
                raise ValueError(f"crash group names unknown processor {member!r}")
            if member in member_to_group:
                raise ValueError(f"processor {member!r} appears in more than one crash group")
        for member in members:
            member_to_group[member] = members
    ordered: list[tuple[str, ...]] = []
    emitted: set[str] = set()
    for name in platform.processor_names:
        if name in excluded or name in emitted:
            continue
        group = member_to_group.get(name, (name,))
        ordered.append(group)
        emitted.update(group)
    return tuple(ordered)


class FaultProcess:
    """A sampler of raw fault events; concrete processes implement ``sample``."""

    #: processors absent when the trace starts (non-empty only for elastic).
    initially_down: frozenset[str] = frozenset()

    def sample(self, rng: np.random.Generator) -> list[RawEvent]:
        raise NotImplementedError


class RenewalFaultProcess(FaultProcess):
    """Independent / correlated / load-dependent renewal failures.

    One hazard clock per group: the first failure of a group arrives after an
    exponential(*mttf*) or Weibull(*shape*, mean *mttf*) delay divided by the
    group's hazard multiplier ``1 + load_coupling * mean(utilization)``; when
    it fires, *every* member crashes at the same instant.  With *mttr* the
    whole group is repaired after an exponential(*mttr*) delay — or, with
    *repair_shape* set, a Weibull(*repair_shape*, mean *mttr*) delay — and
    its clock restarts, until the horizon is exceeded.

    ``repair_shape=None`` (the default) keeps the historical exponential
    repair draw bit-for-bit: a Weibull with shape 1 has the same *law* as the
    exponential but consumes the RNG stream differently, so the identity
    default must skip the Weibull path entirely, not set shape to 1.
    """

    def __init__(
        self,
        platform: Platform,
        horizon: float,
        mttf: float,
        distribution: str = "exponential",
        shape: float = 1.5,
        mttr: float | None = None,
        groups: Sequence[Sequence[str]] | None = None,
        load_coupling: float = 0.0,
        utilization: Mapping[str, float] | None = None,
        exclude: Sequence[str] = (),
        repair_shape: float | None = None,
    ):
        check_positive(horizon, "horizon")
        check_positive(mttf, "mttf")
        check_positive(shape, "shape")
        if mttr is not None:
            check_positive(mttr, "mttr")
        if repair_shape is not None:
            check_positive(repair_shape, "repair_shape")
        if distribution not in FAULT_DISTRIBUTIONS:
            raise ValueError(
                f"distribution must be one of {FAULT_DISTRIBUTIONS}, got {distribution!r}"
            )
        if load_coupling < 0:
            raise ValueError(f"load_coupling must be >= 0, got {load_coupling}")
        self.platform = platform
        self.horizon = float(horizon)
        self.mttf = float(mttf)
        self.distribution = distribution
        self.shape = float(shape)
        self.mttr = None if mttr is None else float(mttr)
        self.repair_shape = None if repair_shape is None else float(repair_shape)
        self.load_coupling = float(load_coupling)
        self.utilization = dict(utilization or {})
        self.groups = resolve_groups(platform, groups, exclude=exclude)

    def _repair_time(self, rng: np.random.Generator) -> float:
        """One repair delay: exponential(mttr), or Weibull when shaped.

        The exponential fast path is load-bearing for reproducibility — see
        the class docstring on why ``repair_shape=None`` must not become
        ``weibull(1.0)``.
        """
        if self.repair_shape is None:
            return float(rng.exponential(self.mttr))
        return _inter_failure_time(rng, "weibull", self.mttr, self.repair_shape)

    def _hazard(self, group: tuple[str, ...]) -> float:
        if not self.load_coupling:
            return 1.0
        load = sum(self.utilization.get(m, 0.0) for m in group) / len(group)
        return 1.0 + self.load_coupling * load

    def sample(self, rng: np.random.Generator) -> list[RawEvent]:
        events: list[RawEvent] = []
        for group in self.groups:
            hazard = self._hazard(group)
            t = 0.0
            while True:
                t += _inter_failure_time(rng, self.distribution, self.mttf, self.shape) / hazard
                if t >= self.horizon:
                    break
                events.extend((t, m, "crash") for m in group)
                if self.mttr is None:
                    break
                t += self._repair_time(rng)
                if t >= self.horizon:
                    break
                events.extend((t, m, "repair") for m in group)
        return events


class ElasticFaultProcess(FaultProcess):
    """Node joins and spot preemptions on an elastic platform.

    The last *spares* processors (declaration order) start absent and each
    joins after an independent exponential(*join_mean*) delay.  With
    *preempt_mean*, every initially-active processor additionally follows a
    spot-preemption renewal: crash after exponential(*preempt_mean*), rejoin
    after exponential(*join_mean*), repeating until the horizon.
    """

    def __init__(
        self,
        platform: Platform,
        horizon: float,
        spares: int = 0,
        join_mean: float | None = None,
        preempt_mean: float | None = None,
    ):
        check_positive(horizon, "horizon")
        if not isinstance(spares, int) or spares < 0:
            raise ValueError(f"spares must be an int >= 0, got {spares!r}")
        if spares >= platform.num_processors:
            raise ValueError(
                f"spares must leave at least one active processor "
                f"(got {spares} of {platform.num_processors})"
            )
        if (spares or preempt_mean is not None) and join_mean is None:
            raise ValueError("join_mean is required when spares > 0 or preempt_mean is set")
        if join_mean is not None:
            check_positive(join_mean, "join_mean")
        if preempt_mean is not None:
            check_positive(preempt_mean, "preempt_mean")
        self.platform = platform
        self.horizon = float(horizon)
        self.spares = spares
        self.join_mean = None if join_mean is None else float(join_mean)
        self.preempt_mean = None if preempt_mean is None else float(preempt_mean)
        names = platform.processor_names
        self.spare_names = names[len(names) - spares :] if spares else ()
        self.active_names = names[: len(names) - spares]
        self.initially_down = frozenset(self.spare_names)

    def sample(self, rng: np.random.Generator) -> list[RawEvent]:
        events: list[RawEvent] = []
        for name in self.spare_names:
            t = float(rng.exponential(self.join_mean))
            if t < self.horizon:
                events.append((t, name, "join"))
        if self.preempt_mean is not None:
            for name in self.active_names:
                t = 0.0
                while True:
                    t += float(rng.exponential(self.preempt_mean))
                    if t >= self.horizon:
                        break
                    events.append((t, name, "crash"))
                    t += float(rng.exponential(self.join_mean))
                    if t >= self.horizon:
                        break
                    events.append((t, name, "join"))
        return events


class TraceReplayProcess(FaultProcess):
    """Replays a fixed raw-event list (a parsed availability log) verbatim."""

    def __init__(
        self,
        events: Sequence[RawEvent],
        initially_down: frozenset[str] = frozenset(),
    ):
        self.events = list(events)
        self.initially_down = frozenset(initially_down)

    def sample(self, rng: np.random.Generator) -> list[RawEvent]:
        return list(self.events)
