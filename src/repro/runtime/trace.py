"""Execution record of one online streaming run.

The online runtime (:mod:`repro.runtime.engine`) produces a
:class:`RuntimeTrace`: one :class:`DatasetRecord` per data set of the stream
(completed with a latency, or lost with a reason), one :class:`RuntimeEvent`
per runtime decision (tolerated crash, rebuild, repair, abort), and aggregate
statistics (downtime, rebuild count, achieved period).

Everything here is a frozen dataclass built from plain floats and strings, so
traces compare with ``==`` (two runs with the same seed must produce *equal*
traces), pickle across process boundaries (the Monte-Carlo engine fans trials
out with :mod:`concurrent.futures`), and aggregate cheaply.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

from repro.obs.metrics import LatencyHistogram

__all__ = [
    "DatasetRecord",
    "RuntimeEvent",
    "RuntimeTrace",
    "RuntimeStats",
    "TraceSummary",
    "summarize_trace",
    "summarize_traces",
    "combine_summaries",
]

#: terminal states of one data set of the stream.  ``lost-overflow`` is the
#: bounded-queue admission policy dropping the backlog that no longer fits.
DATASET_STATUSES = ("completed", "lost-downtime", "shed", "lost-abort", "lost-overflow")


@dataclass(frozen=True)
class DatasetRecord:
    """Fate of one data set of the stream."""

    index: int
    release: float
    completion: float | None
    status: str  # one of DATASET_STATUSES

    def __post_init__(self) -> None:
        if self.status not in DATASET_STATUSES:
            raise ValueError(f"unknown dataset status {self.status!r}")
        if (self.completion is None) == (self.status == "completed"):
            raise ValueError(
                f"dataset {self.index}: status {self.status!r} inconsistent with "
                f"completion {self.completion!r}"
            )

    @property
    def completed(self) -> bool:
        return self.status == "completed"

    @property
    def latency(self) -> float | None:
        """Completion minus release time (``None`` for lost data sets)."""
        if self.completion is None:
            return None
        return self.completion - self.release


@dataclass(frozen=True)
class RuntimeEvent:
    """One logged runtime decision."""

    time: float
    kind: str  # crash-tolerated | crash-rebuild | crash-unused | crash-during-rebuild
    #          # | rebuild-complete | repair | repair-rebuild | repair-rebuild-skipped | abort
    processor: str | None = None
    detail: str = ""


@dataclass(frozen=True)
class RuntimeTrace:
    """Complete record of one online run (see module docstring)."""

    records: tuple[DatasetRecord, ...]
    events: tuple[RuntimeEvent, ...]
    period: float
    horizon: float
    num_rebuilds: int
    downtime: float
    aborted: bool
    final_alive: tuple[str, ...]
    policy: str
    #: admission policy name and execution mode of the run (see
    #: :mod:`repro.runtime.admission` and :mod:`repro.runtime.engine`).
    admission: str = "shed"
    checkpoint: bool = True

    # ------------------------------------------------------------------ counts
    @property
    def num_datasets(self) -> int:
        return len(self.records)

    @property
    def completed_count(self) -> int:
        return sum(1 for r in self.records if r.completed)

    @property
    def lost_count(self) -> int:
        return self.num_datasets - self.completed_count

    def lost_by_reason(self) -> dict[str, int]:
        """Number of lost data sets per status (``shed``, ``lost-downtime``...)."""
        out: dict[str, int] = {}
        for r in self.records:
            if not r.completed:
                out[r.status] = out.get(r.status, 0) + 1
        return out

    @property
    def loss_rate(self) -> float:
        """Fraction of the stream that never completed."""
        if not self.records:
            return 0.0
        return self.lost_count / self.num_datasets

    # ---------------------------------------------------------------- latencies
    @property
    def latencies(self) -> tuple[float, ...]:
        """Latency of every completed data set, in stream order."""
        return tuple(r.latency for r in self.records if r.completed)

    @property
    def mean_latency(self) -> float:
        lats = self.latencies
        return float(np.mean(lats)) if lats else float("nan")

    @property
    def max_latency(self) -> float:
        lats = self.latencies
        return float(max(lats)) if lats else float("nan")

    def latency_histogram(self) -> LatencyHistogram:
        """Completed-data-set latencies on the global fixed bucket ladder.

        Histograms of different traces share the bucket edges, so they merge
        exactly — this is what :class:`TraceSummary` transports and what the
        campaign percentiles (:attr:`RuntimeStats.p95_latency` …) are read
        from.
        """
        return LatencyHistogram.from_values(self.latencies)

    def _latency_quantile(self, q: float) -> float:
        # overflow bucket falls back to the exact maximum; the bucket ladder
        # spans nine decades, so this only triggers on absurd latencies
        return self.latency_histogram().quantile(q, overflow=self.max_latency)

    @property
    def p50_latency(self) -> float:
        """Median completed-data-set latency (bucket upper edge, ≤ ~8.5 % high)."""
        return self._latency_quantile(0.5)

    @property
    def p95_latency(self) -> float:
        return self._latency_quantile(0.95)

    @property
    def p99_latency(self) -> float:
        return self._latency_quantile(0.99)

    @property
    def achieved_period(self) -> float:
        """Average inter-completion gap over the tail half of the completions.

        Mirrors :attr:`repro.failures.simulator.SimulationResult.achieved_period`
        so that, with zero fault arrivals, the runtime and the offline
        simulator report the same number.
        """
        completions = [r.completion for r in self.records if r.completed]
        if len(completions) < 2:
            return self.period
        gaps = np.diff(completions)
        tail = gaps[len(gaps) // 2 :]
        return float(np.mean(tail)) if len(tail) else self.period

    # -------------------------------------------------------------- availability
    @property
    def availability(self) -> float:
        """Fraction of the horizon the runtime was accepting data sets."""
        if self.horizon <= 0:
            return 1.0
        return max(0.0, 1.0 - self.downtime / self.horizon)

    def events_of_kind(self, kind: str) -> tuple[RuntimeEvent, ...]:
        return tuple(e for e in self.events if e.kind == kind)

    def __repr__(self) -> str:
        return (
            f"RuntimeTrace(datasets={self.num_datasets}, completed={self.completed_count}, "
            f"rebuilds={self.num_rebuilds}, downtime={self.downtime:g}, "
            f"aborted={self.aborted})"
        )


@dataclass(frozen=True)
class RuntimeStats:
    """Aggregate statistics over a collection of runtime traces."""

    trials: int
    aborted_trials: int
    mean_rebuilds: float
    mean_downtime: float
    mean_availability: float
    mean_loss_rate: float
    mean_latency: float
    mean_achieved_period: float
    total_crashes: int
    lost_by_reason: dict[str, int] = field(default_factory=dict)
    #: latency-distribution tail over *all* completed data sets of all trials,
    #: read off the merged fixed-bucket histogram (each percentile is its
    #: bucket's upper edge — an overestimate of at most ~8.5 %; the maximum is
    #: exact).  NaN when no trial completed anything.
    p50_latency: float = float("nan")
    p95_latency: float = float("nan")
    p99_latency: float = float("nan")
    max_latency: float = float("nan")
    #: the merged histogram itself, in sparse ``((bucket, count), ...)`` form.
    latency_histogram: tuple[tuple[int, int], ...] = ()

    def as_rows(self) -> list[list[object]]:
        """Rows ``[statistic, value]`` for ASCII reporting."""
        rows: list[list[object]] = [
            ["trials", self.trials],
            ["aborted trials", self.aborted_trials],
            ["crash events (total)", self.total_crashes],
            ["rebuilds (mean/trial)", self.mean_rebuilds],
            ["downtime (mean/trial)", self.mean_downtime],
            ["availability (mean)", self.mean_availability],
            ["loss rate (mean)", self.mean_loss_rate],
            ["latency (mean, completed)", self.mean_latency],
            ["latency (p50)", self.p50_latency],
            ["latency (p95)", self.p95_latency],
            ["latency (p99)", self.p99_latency],
            ["latency (max)", self.max_latency],
            ["achieved period (mean)", self.mean_achieved_period],
        ]
        for reason in sorted(self.lost_by_reason):
            rows.append([f"lost: {reason} (total)", self.lost_by_reason[reason]])
        return rows


@dataclass(frozen=True)
class TraceSummary:
    """The per-trace scalars that :func:`summarize_traces` aggregates.

    This is the *stats-only transport* unit of the campaign engine: a worker
    process summarizes its trace to one of these (a dozen floats plus a small
    dict) instead of shipping the full :class:`RuntimeTrace` pickle — per-
    dataset records and all — back through the process pool.  The reduction
    is lossless for statistics: :func:`combine_summaries` over the summaries
    of a trace collection produces a :class:`RuntimeStats` **equal** to
    :func:`summarize_traces` over the traces themselves (it is how
    ``summarize_traces`` is implemented).
    """

    num_datasets: int
    completed_count: int
    num_rebuilds: int
    downtime: float
    availability: float
    loss_rate: float
    mean_latency: float
    achieved_period: float
    aborted: bool
    crashes: int
    lost_by_reason: dict[str, int] = field(default_factory=dict)
    #: exact per-trace latency maximum and the trace's fixed-bucket latency
    #: histogram in sparse form — the merge-exact distribution transport
    #: behind the campaign percentiles (see :mod:`repro.obs.metrics`).
    max_latency: float = float("nan")
    latency_histogram: tuple[tuple[int, int], ...] = ()


def summarize_trace(trace: RuntimeTrace) -> TraceSummary:
    """Reduce one trace to the scalars campaign statistics are built from."""
    return TraceSummary(
        num_datasets=trace.num_datasets,
        completed_count=trace.completed_count,
        num_rebuilds=trace.num_rebuilds,
        downtime=trace.downtime,
        availability=trace.availability,
        loss_rate=trace.loss_rate,
        mean_latency=trace.mean_latency,
        achieved_period=trace.achieved_period,
        aborted=trace.aborted,
        crashes=sum(1 for e in trace.events if e.kind.startswith("crash")),
        lost_by_reason=trace.lost_by_reason(),
        max_latency=trace.max_latency,
        latency_histogram=trace.latency_histogram().as_sparse(),
    )


def combine_summaries(
    summaries: Sequence[TraceSummary] | Iterable[TraceSummary],
) -> RuntimeStats:
    """Aggregate per-trace summaries into a :class:`RuntimeStats`.

    Exactly the aggregation of :func:`summarize_traces` — every mean is taken
    over the identical per-trace value list, so ``combine_summaries(map(
    summarize_trace, traces))`` equals ``summarize_traces(traces)`` bit for
    bit, regardless of which process produced the summaries.  (One ``==``
    caveat: when no trial completed anything, ``mean_latency`` is NaN on both
    sides and dataclass equality reports the two identical stats as unequal —
    compare NaN-aware if that regime matters to you.)
    """
    summaries = list(summaries)
    if not summaries:
        raise ValueError("cannot summarize an empty collection of traces")
    lost: dict[str, int] = {}
    for summary in summaries:
        for reason, count in summary.lost_by_reason.items():
            lost[reason] = lost.get(reason, 0) + count
    latencies = [s.mean_latency for s in summaries if s.completed_count]
    # element-wise histogram merge: integer bucket counts add exactly, so the
    # percentiles below equal the percentiles of one histogram built from
    # every completed data set of every trial — regardless of how the trials
    # were partitioned across processes (property-tested in tests/property)
    merged = LatencyHistogram()
    for summary in summaries:
        merged.update_sparse(summary.latency_histogram)
    maxes = [s.max_latency for s in summaries if s.completed_count]
    max_latency = max(maxes) if maxes else float("nan")
    return RuntimeStats(
        trials=len(summaries),
        aborted_trials=sum(1 for s in summaries if s.aborted),
        mean_rebuilds=float(np.mean([s.num_rebuilds for s in summaries])),
        mean_downtime=float(np.mean([s.downtime for s in summaries])),
        mean_availability=float(np.mean([s.availability for s in summaries])),
        mean_loss_rate=float(np.mean([s.loss_rate for s in summaries])),
        mean_latency=float(np.mean(latencies)) if latencies else float("nan"),
        mean_achieved_period=float(np.mean([s.achieved_period for s in summaries])),
        total_crashes=sum(s.crashes for s in summaries),
        lost_by_reason=lost,
        p50_latency=merged.quantile(0.5, overflow=max_latency),
        p95_latency=merged.quantile(0.95, overflow=max_latency),
        p99_latency=merged.quantile(0.99, overflow=max_latency),
        max_latency=max_latency,
        latency_histogram=merged.as_sparse(),
    )


def summarize_traces(traces: Sequence[RuntimeTrace] | Iterable[RuntimeTrace]) -> RuntimeStats:
    """Aggregate *traces* into a :class:`RuntimeStats`."""
    return combine_summaries(summarize_trace(trace) for trace in traces)
