"""The online streaming runtime: execute a schedule while processors fail.

:class:`OnlineRuntime` drives a :class:`~repro.schedule.schedule.Schedule`
over an open-ended stream while a :class:`~repro.failures.scenarios.FaultTrace`
injects crashes (and optionally repairs) mid-stream.  The control plane:

* data set ``j`` is released at ``j·Δ`` where ``Δ`` is the period of the
  *initial* schedule (the source rate never changes); an
  :class:`~repro.runtime.admission.AdmissionPolicy` decides the fate of every
  released data set (``shed`` drops what the pipeline cannot take, ``queue``
  buffers it through downtime and throttling);
* a crash that leaves every exit task with a valid replica — the active
  replication absorbing it — is **tolerated**: the stream continues on the
  surviving replicas at a degraded latency;
* a crash beyond the surviving guarantee (no valid exit replica, or more than
  ``ε`` crashes charged against the current schedule when
  ``rebuild_beyond_epsilon`` is set) triggers an **online rebuild**: the
  rescheduling policy (:mod:`repro.runtime.policies`) builds a new schedule on
  the survivors.  The rebuild takes ``rebuild_overhead·Δ`` time units of
  downtime;
* a rebuilt schedule may have a longer period (the survivors cannot sustain
  the source rate) or overloaded processors (remap policy) — the runtime then
  throttles admission to the achievable rate;
* repaired processors rejoin the candidate pool of the *next* rebuild (a
  processor lost its state when it crashed, so the current schedule never
  resurrects it); ``rebuild_on_repair=True`` additionally triggers an
  *anticipatory* rebuild — but only after a speculative reschedule shows the
  repaired processor actually improves the achievable period or the
  resilience margin, so repairs that change nothing no longer cost downtime;
* when no schedule can be built on the survivors the stream **aborts** and
  every remaining data set is lost.

The data plane is the shared simulation kernel
(:class:`repro.sim.kernel.PipelineKernel`), driven in one of two modes:

* ``checkpoint=True`` (default) — **true incremental execution**: one kernel
  carries compute/transfer state across fault events.  A tolerated crash
  cancels the dead processor's operations in place (no pipeline restart, no
  re-paid warm-up), and a rebuild *checkpoints* the in-flight data sets:
  their completed per-task outputs are replayed into a fresh kernel built on
  the new schedule, so partial work survives the rebuild;
* ``checkpoint=False`` — the historical **flush-and-restart** semantics of
  PR 1, kept as a baseline: a data set's fate is decided at its release time,
  each batch of releases between two control events is simulated from a cold
  pipeline, and in-flight work is conceptually flushed at every state change.
  Traces in this mode are bit-for-bit identical to the pre-kernel engine.

The resulting :class:`~repro.runtime.trace.RuntimeTrace` is a pure function of
``(schedule, fault_trace, options)``: two runs with the same inputs produce
equal traces.
"""

from __future__ import annotations

from typing import Iterable

from repro.exceptions import ScheduleError, SchedulingError
from repro.failures.scenarios import FaultEvent, FaultTrace
from repro.runtime.admission import (
    ADMIT,
    DROP,
    AdmissionPolicy,
    QueueAdmissionPolicy,
    ShedAdmissionPolicy,
    resolve_admission,
)
from repro.runtime.policies import ReschedulePolicy, resolve_policy
from repro.runtime.trace import DatasetRecord, RuntimeEvent, RuntimeTrace
from repro.schedule.schedule import Schedule
from repro.schedule.validation import valid_replicas_under_failures
from repro.sim.kernel import PipelineKernel
from repro.sim.steady import SteadyStateDetector, certified_grid
from repro.utils.gcpause import gc_paused

__all__ = ["OnlineRuntime", "run_online"]

_INF = float("inf")

#: data sets admitted per control-loop pass in ``checkpoint=True`` mode.
#: Without a cap the zero-fault stream is admitted in one go and the kernel
#: heap holds every release event of the stream at once — on 10⁵-dataset
#: streams the heap's log factor (and its memory) then grows with the stream
#: instead of the pipeline depth.  For the incremental executor the window is
#: control-flow only — the admission policy sees the same ``on_release``
#: calls in the same order with the same arguments and the kernel processes
#: the same events, so traces are bit-identical for any window size.  The
#: ``checkpoint=False`` flush executor is **exempt**: it seals whatever batch
#: has accumulated every time it advances, so an extra advance at a window
#: boundary would split one segment's batch across two cold-pipeline
#: simulations and lose their cross-dataset contention — flush mode therefore
#: keeps the historical unwindowed scan (its memory is per-segment anyway).
_ADMIT_WINDOW = 256


def _effective_period(schedule: Schedule) -> float:
    """Admission spacing of *schedule*: its period, or its real cycle time when
    the mapping is overloaded (remap fallback after heavy failures)."""
    if schedule.max_cycle_time <= schedule.period * (1 + 1e-6):
        return schedule.period
    return schedule.max_cycle_time


class _IncrementalExecutor:
    """Data plane of ``checkpoint=True``: one kernel across fault events.

    The kernel runs with ``retain_history=False``: completions reach the
    control plane exclusively through the ``run_until`` drains, so a data
    set's book-keeping is evicted at its watermark and the executor's live
    state is bounded by the pipeline depth, not the stream length (the
    constant-memory fast path for 10⁵+-dataset streams — bit-identical to
    the retaining kernel, see ``tests/property``).
    """

    def __init__(self, schedule: Schedule, probe=None, fast_forward: bool = False):
        self._probe = probe
        self._fast_forward = bool(fast_forward)
        self._kernel: PipelineKernel | None = PipelineKernel(
            schedule, retain_history=False, probe=probe, fast_forward=self._fast_forward
        )
        self._ckpt: dict[int, frozenset[str]] = {}

    def kernel(self) -> PipelineKernel | None:
        """The live kernel (``None`` mid-rebuild or after an abort) — what
        the steady-state detector snapshots at window boundaries."""
        return self._kernel

    def admit(self, dataset: int, release: float, admit_time: float) -> None:
        assert self._kernel is not None
        self._kernel.admit(dataset, admit_time)

    def advance(self, now, schedule, failed_cur, seg_start, tol):
        if self._kernel is None:
            return []
        return self._kernel.run_until(now)

    def on_tolerated_crash(self, processor: str, now: float) -> None:
        if self._kernel is not None:
            self._kernel.crash(processor)

    def on_crash_charged(self, schedule, failed_cur, seg_start, tol):
        return []  # the kernel handles the crash in place

    def on_rebuild_start(self, now: float, pending: Iterable[int]) -> None:
        # Checkpoint the in-flight data sets and abandon the dead pipeline:
        # every task output produced so far is in stable storage and will be
        # replayed into the rebuilt schedule.
        kernel = self._kernel
        if kernel is None:
            return
        for dataset in pending:
            self._ckpt[dataset] = kernel.completed_tasks(dataset)
        self._kernel = None

    def on_rebuild_complete(self, schedule: Schedule, now: float, pending: Iterable[int]) -> None:
        self._kernel = PipelineKernel(
            schedule,
            retain_history=False,
            probe=self._probe,
            fast_forward=self._fast_forward,
        )
        for dataset in pending:
            self._kernel.admit_restored(dataset, now, self._ckpt.pop(dataset, ()))

    def on_abort(self, now: float) -> None:
        self._kernel = None
        self._ckpt.clear()

    def sample_gauges(self, probe, now: float) -> None:
        """Report kernel occupancy (live / evicted data sets) to *probe*."""
        kernel = self._kernel
        if kernel is not None:
            probe.on_gauges(now, kernel.live_datasets, kernel.evicted_datasets)

    def finalize(self, schedule, failed_cur, seg_start, tol):
        if self._kernel is None:
            return []
        return self._kernel.run_to_completion()


class _FlushExecutor:
    """Data plane of ``checkpoint=False``: the historical flush-and-restart.

    Every batch of admissions between two control events is simulated from a
    cold pipeline under the segment's crash set; the fate of a data set is
    sealed the moment it is admitted (bit-for-bit the pre-kernel behaviour).
    """

    def __init__(self, schedule: Schedule, probe=None):
        self._probe = probe
        self._batch: list[tuple[int, float]] = []  # (dataset, admission instant)

    def kernel(self) -> PipelineKernel | None:
        return None  # cold pipelines per batch: nothing to fast-forward

    def admit(self, dataset: int, release: float, admit_time: float) -> None:
        self._batch.append((dataset, admit_time))

    def _simulate(self, batch, schedule, failed_cur, seg_start):
        kernel = PipelineKernel(schedule, frozenset(failed_cur), probe=self._probe)
        # A data set admitted within float tolerance of the segment start can
        # land a hair before it; clamp to keep the kernel releases
        # non-negative (its recorded release stays exact).
        kernel.admit_batch([max(0.0, t - seg_start) for _, t in batch])
        kernel.run_to_completion()
        completions = []
        for k, (dataset, _) in enumerate(batch):
            completion = kernel.completion_of(k)
            if completion is None:
                raise ScheduleError(
                    f"data set {dataset} never completed — inconsistent schedule or scenario"
                )
            completions.append((dataset, seg_start + completion))
        return completions

    def advance(self, now, schedule, failed_cur, seg_start, tol):
        ready = [(j, t) for j, t in self._batch if t < now - tol]
        if not ready or schedule is None:
            return []
        self._batch = [(j, t) for j, t in self._batch if t >= now - tol]
        return self._simulate(ready, schedule, failed_cur, seg_start)

    def on_tolerated_crash(self, processor: str, now: float) -> None:
        pass  # the next batch restarts under the enlarged crash set anyway

    def on_crash_charged(self, schedule, failed_cur, seg_start, tol):
        """Seal the outstanding batch before a new crash is charged.

        Queue admission can leave entries with admission instants in the
        future (drained backlog waiting for its slot).  Their fate was sealed
        when they were admitted, so they must be simulated under the crash
        set of *that* moment — a later crash may destroy exit coverage and
        the kernel would (rightly) refuse to simulate under it.  With shed
        admission the batch is always empty here (every admission instant is
        in the past and was flushed by the preceding advance), so the
        historical traces are untouched.
        """
        if not self._batch or schedule is None:
            return []
        batch, self._batch = self._batch, []
        return self._simulate(batch, schedule, failed_cur, seg_start)

    def on_rebuild_start(self, now: float, pending: Iterable[int]) -> None:
        pass  # fates were sealed at admission; nothing in flight survives

    def on_rebuild_complete(self, schedule: Schedule, now: float, pending: Iterable[int]) -> None:
        pass

    def on_abort(self, now: float) -> None:
        self._batch.clear()

    def sample_gauges(self, probe, now: float) -> None:
        """No persistent kernel here: report the sealed-but-unsimulated backlog."""
        probe.on_gauges(now, len(self._batch), 0)

    def finalize(self, schedule, failed_cur, seg_start, tol):
        if not self._batch or schedule is None:
            return []
        batch, self._batch = self._batch, []
        return self._simulate(batch, schedule, failed_cur, seg_start)


class OnlineRuntime:
    """Discrete-event online executor (see module docstring)."""

    def __init__(
        self,
        schedule: Schedule,
        fault_trace: FaultTrace | Iterable[FaultEvent],
        policy: str | ReschedulePolicy = "rltf",
        rebuild_overhead: float = 1.0,
        rebuild_beyond_epsilon: bool = True,
        rebuild_on_repair: bool = False,
        admission: str | AdmissionPolicy = "shed",
        checkpoint: bool = True,
        probe=None,
        fast_forward: bool = True,
        platform=None,
    ):
        """*fast_forward* enables the analytic steady-state fast path
        (:mod:`repro.sim.steady`): quiet stretches whose kernel state repeats
        window for window are skipped in closed form, bit-identically.  It
        guards itself off automatically whenever the regime is not provably
        stationary — flush mode, bounded queue admission, a probe that does
        not opt in, or a workload whose durations fail the exactness
        certificate — so the flag is safe to leave on everywhere.

        *platform* widens the rebuild candidate pool beyond
        ``schedule.platform`` (elastic regimes: spare processors that start
        outside the schedule and *join* mid-stream).  Pool members absent
        from the schedule's platform start dead until a join event brings
        them up.  ``None`` (default) keeps the pool equal to the schedule's
        platform — bit-identical to the historical behaviour."""
        if not schedule.is_complete():
            raise ScheduleError("cannot run an incomplete schedule online")
        if rebuild_overhead < 0:
            raise ValueError(f"rebuild_overhead must be >= 0, got {rebuild_overhead}")
        if platform is not None:
            missing = [n for n in schedule.platform.processor_names if n not in platform]
            if missing:
                raise ScheduleError(
                    f"schedule processors {missing} are not in the runtime "
                    f"platform pool"
                )
        if not isinstance(fault_trace, FaultTrace):
            events = tuple(fault_trace)
            horizon = max([e.time for e in events], default=0.0) + schedule.period
            fault_trace = FaultTrace(events=events, horizon=max(horizon, schedule.period))
        self.schedule = schedule
        self.platform = platform
        self.fault_trace = fault_trace
        self.policy = resolve_policy(policy)
        self.admission = resolve_admission(admission)
        self.rebuild_overhead = float(rebuild_overhead)
        self.rebuild_beyond_epsilon = bool(rebuild_beyond_epsilon)
        self.rebuild_on_repair = bool(rebuild_on_repair)
        self.checkpoint = bool(checkpoint)
        self.fast_forward = bool(fast_forward)
        #: optional :class:`repro.obs.probe.Probe`; ``None`` costs one pointer
        #: comparison at each instrumented site (see docs/observability.md)
        self.probe = probe

    # ---------------------------------------------------------------- execution
    def run(self, num_datasets: int = 100) -> RuntimeTrace:
        """Stream *num_datasets* consecutive data sets through the fault trace."""
        if num_datasets < 1:
            raise ValueError(f"num_datasets must be >= 1, got {num_datasets}")
        # The run allocates millions of acyclic objects and the cyclic GC's
        # scans grow with the accumulated stream history; pausing it keeps
        # per-dataset cost flat (see repro.utils.gcpause).
        with gc_paused():
            return self._run(num_datasets)

    def _run(self, num_datasets: int) -> RuntimeTrace:
        initial = self.schedule
        graph = initial.graph
        platform0 = self.platform if self.platform is not None else initial.platform
        period = initial.period
        tol = 1e-9 * period
        horizon = num_datasets * period
        releases = [j * period for j in range(num_datasets)]
        fault_events = [e for e in self.fault_trace.events if e.time < horizon]

        # records accumulate as plain (index, release, completion, status)
        # tuples during the run: CPython untracks tuples of atomics, so the
        # cyclic GC's full collections skip the stream history instead of
        # rescanning it (on 10⁵-dataset streams that rescan is what turns
        # per-dataset cost super-linear).  The DatasetRecord objects are
        # materialized once, at trace construction.
        records: list[tuple | None] = [None] * num_datasets
        log: list[RuntimeEvent] = []
        admission = self.admission
        admission.reset()
        probe = self.probe
        # Steady-state fast forward is only attempted where the regime can be
        # stationary: incremental execution, an admission policy that never
        # builds regime-changing backlog pressure (shed, or an unbounded
        # queue), and a probe that opted into bulk callbacks.  Everything
        # else runs the exact per-event loop unchanged.
        ff_eligible = (
            self.fast_forward
            and self.checkpoint
            and (probe is None or getattr(probe, "supports_fast_forward", False))
            and (
                isinstance(admission, ShedAdmissionPolicy)
                or (
                    isinstance(admission, QueueAdmissionPolicy)
                    and admission.capacity is None
                )
            )
        )
        executor = (
            _IncrementalExecutor(initial, probe, fast_forward=ff_eligible)
            if self.checkpoint
            else _FlushExecutor(initial, probe)
        )

        # --- mutable runtime state
        schedule: Schedule | None = initial
        used: frozenset[str] = frozenset(initial.used_processors())
        failed_cur: set[str] = set()  # failures charged against `schedule`
        # globally down processors (repairs/joins remove): pool members not
        # yet in the schedule's platform (elastic spares) start dead, as do
        # the trace's initially_down processors.
        dead: set[str] = {
            n for n in platform0.processor_names if n not in initial.platform
        } | set(self.fault_trace.initially_down)
        seg_start = 0.0
        next_j = 0  # next dataset index to place
        next_slot = 0.0  # earliest admission instant (one per effective period)
        admit_period = _effective_period(initial)
        rebuilding = False
        rebuild_done = _INF
        down_since: float | None = None
        downtime = 0.0
        rebuilds = 0
        aborted = False
        abort_time = _INF
        pending: dict[int, float] = {}  # admitted, in flight: dataset -> release

        # --- steady-state fast forward (see repro.sim.steady): the detector
        # watches quiet window boundaries; ff_clean tracks whether every
        # release since the last boundary was admitted at its own instant;
        # ff_window buffers the boundary-to-boundary drained completions
        # (the synthesis template once the detector locks).
        window = _ADMIT_WINDOW
        ff_detector: SteadyStateDetector | None = None
        ff_clean = True
        ff_window: list[tuple[int, float]] = []

        def ff_bind() -> None:
            """(Re)attach the detector to the executor's current kernel —
            every (re)built schedule needs its own exactness certificate."""
            nonlocal ff_detector, ff_clean
            ff_detector = None
            ff_clean = True
            ff_window.clear()
            kernel = executor.kernel() if ff_eligible else None
            if kernel is None:
                return
            grid_exp = certified_grid(kernel, period, horizon)
            if grid_exp is not None:
                ff_detector = SteadyStateDetector(kernel, grid_exp, period, window)

        def ff_reset() -> None:
            """Forget detector history across any control event: the
            periodicity proof only covers undisturbed evolution."""
            nonlocal ff_clean
            if ff_detector is not None:
                ff_detector.reset()
                ff_clean = True
                ff_window.clear()

        def record_completions(completions) -> None:
            if ff_detector is not None and completions:
                ff_window.extend(completions)
            for j, t in completions:
                r = pending.pop(j)
                records[j] = (j, r, t, "completed")
                if probe is not None:
                    probe.on_dataset(j, r, t, "completed")

        def lose(j: int, r: float, status: str) -> None:
            nonlocal ff_clean
            ff_clean = False
            records[j] = (j, r, None, status)
            if probe is not None:
                probe.on_dataset(j, r, None, status)

        def note(event: RuntimeEvent) -> None:
            log.append(event)
            if probe is not None:
                probe.on_runtime_event(event)

        def admit(j: int, release: float, admit_time: float) -> None:
            nonlocal next_slot, ff_clean
            if admit_time != release:
                ff_clean = False  # throttled/deferred slot: not a quiet window
            pending[j] = release
            executor.admit(j, release, admit_time)
            next_slot = admit_time + admit_period

        def scan_releases(end: float) -> None:
            """Decide the fate of data sets released in ``[seg_start, end)``."""
            nonlocal next_j
            while next_j < num_datasets and releases[next_j] < end - tol:
                j, r = next_j, releases[next_j]
                next_j += 1
                if aborted:
                    lose(j, r, "lost-abort")
                    continue
                verb, arg = admission.on_release(
                    j,
                    r,
                    rebuilding=rebuilding,
                    next_slot=next_slot,
                    admit_period=admit_period,
                    tol=tol,
                )
                if verb == DROP:
                    lose(j, r, arg)
                elif verb == ADMIT:
                    admit(j, r, arg)
                # "defer": buffered inside the admission policy

        def drain_admission() -> None:
            for j, r in admission.drain():
                admit(j, r, max(r, next_slot))

        def ff_boundary(t_base: float, limit: float) -> None:
            """One quiet window boundary: fingerprint, and jump when locked.

            *limit* bounds the landing instant (the next fault arrival or
            the horizon).  A lock proves the stream repeats the last window
            forever under the exactness certificate, so the skipped records
            are the template shifted by exact multiples of ``(window·Δ,
            window)`` — synthesized in closed form, bit-identical to
            simulating them event by event.
            """
            nonlocal next_j, next_slot, ff_clean
            template, clean = tuple(ff_window), ff_clean
            ff_window.clear()
            ff_clean = True
            if not ff_detector.observe(t_base, next_j, clean):
                return
            if len(template) != window:
                ff_detector.reset()  # steady throughput must match admission
                return
            budget = (num_datasets - next_j) // window
            m = ff_detector.max_windows(t_base, budget, limit)
            if m < 1:
                return
            delta = ff_detector.delta
            for s in range(1, m + 1):
                base = t_base + s * delta
                step = s * window
                for j, t in template:
                    jj = j + step
                    assert records[jj] is None
                    records[jj] = (jj, releases[jj], (t - t_base) + base, "completed")
            if probe is not None:
                bulk: dict[float, int] = {}
                for j, t in template:
                    lat = t - releases[j]
                    bulk[lat] = bulk.get(lat, 0) + m
                probe.on_fast_forward(
                    (t_base, t_base + m * delta), m * window, tuple(bulk.items())
                )
            _, j_new = ff_detector.jump(m)
            live = sorted(pending)
            pending.clear()
            shift = m * window
            for j in live:
                pending[j + shift] = releases[j + shift]
            next_j = j_new
            next_slot = releases[j_new - 1] + admit_period

        def start_rebuild(now: float, kind: str, processor: str | None) -> None:
            nonlocal rebuilding, rebuild_done, down_since
            rebuilding = True
            down_since = now
            rebuild_done = now + self.rebuild_overhead * period
            note(RuntimeEvent(now, kind, processor))
            executor.on_rebuild_start(now, tuple(pending))

        def abort(now: float, reason: str) -> None:
            nonlocal aborted, schedule, abort_time
            aborted = True
            schedule = None
            abort_time = now
            note(RuntimeEvent(now, "abort", None, reason))
            executor.on_abort(now)
            ff_bind()  # no kernel left: detaches the detector
            for j, r in admission.drain():
                lose(j, r, "lost-abort")
            for j, r in pending.items():
                lose(j, r, "lost-abort")
            pending.clear()

        ff_bind()
        i = 0
        windowed = self.checkpoint  # see _ADMIT_WINDOW: flush mode is exempt
        while True:
            next_fault = fault_events[i].time if i < len(fault_events) else _INF
            now = min(next_fault, rebuild_done, horizon)
            if windowed and next_j + _ADMIT_WINDOW < num_datasets:
                now = min(now, releases[next_j + _ADMIT_WINDOW])
            scan_releases(now)
            if now >= horizon:
                break  # the final advance happens in executor.finalize()
            record_completions(executor.advance(now, schedule, failed_cur, seg_start, tol))
            if probe is not None:
                executor.sample_gauges(probe, now)
            if now < rebuild_done and now < next_fault:
                # window boundary only: admit + advance, no control event —
                # exactly the quiet cadence the steady-state detector watches
                if ff_detector is not None and not rebuilding and not aborted:
                    ff_boundary(now, min(next_fault, horizon))
                continue

            if rebuilding and rebuild_done <= next_fault:
                # ------------------------------------------------ rebuild done
                rebuilding = False
                rebuild_done = _INF
                downtime += now - down_since
                if probe is not None:
                    probe.on_span("rebuild", down_since, now)
                down_since = None
                rebuilds += 1
                survivors = [p for p in platform0.processor_names if p not in dead]
                if not survivors:
                    abort(now, "no surviving processor")
                else:
                    target_eps = min(initial.epsilon, len(survivors) - 1)
                    try:
                        schedule = self.policy.reschedule(
                            graph,
                            platform0.subset(survivors),
                            period,
                            target_eps,
                            previous=schedule or initial,
                        )
                    except SchedulingError as exc:
                        abort(now, f"reschedule failed: {exc}")
                    else:
                        used = frozenset(schedule.used_processors())
                        failed_cur = set()
                        admit_period = _effective_period(schedule)
                        next_slot = now
                        executor.on_rebuild_complete(schedule, now, tuple(pending))
                        drain_admission()
                        note(
                            RuntimeEvent(
                                now,
                                "rebuild-complete",
                                None,
                                f"{len(survivors)} survivors, epsilon={schedule.epsilon}, "
                                f"period={schedule.period:g}",
                            )
                        )
                        ff_bind()  # fresh kernel: re-certify and re-warm
                seg_start = now
                continue

            event = fault_events[i]
            i += 1
            ff_reset()  # any control event invalidates the periodicity proof
            if event.is_crash:
                if event.processor in dead:
                    continue
                dead.add(event.processor)
                if aborted:
                    continue
                if rebuilding:
                    # Restart the rebuild clock: the survivor set just changed.
                    rebuild_done = now + self.rebuild_overhead * period
                    note(RuntimeEvent(now, "crash-during-rebuild", event.processor))
                    continue
                if event.processor not in used:
                    note(RuntimeEvent(now, "crash-unused", event.processor))
                    continue
                record_completions(
                    executor.on_crash_charged(schedule, failed_cur, seg_start, tol)
                )
                failed_cur.add(event.processor)
                valid = valid_replicas_under_failures(schedule, failed_cur)
                survives = all(valid[t] for t in graph.exit_tasks())
                within_guarantee = len(failed_cur) <= schedule.epsilon
                if survives and (within_guarantee or not self.rebuild_beyond_epsilon):
                    note(
                        RuntimeEvent(
                            now,
                            "crash-tolerated",
                            event.processor,
                            f"{len(failed_cur)}/{schedule.epsilon} crashes absorbed",
                        )
                    )
                    executor.on_tolerated_crash(event.processor, now)
                    seg_start = now
                else:
                    start_rebuild(now, "crash-rebuild", event.processor)
                    seg_start = now
            elif event.is_join:
                # A join adds capacity (an elastic spare, or a preempted spot
                # node returning): unlike a repair it always probes whether a
                # rebuild onto the enlarged platform pays for its downtime —
                # even when the current schedule is not degraded.
                dead.discard(event.processor)
                note(RuntimeEvent(now, "join", event.processor))
                if not rebuilding and not aborted:
                    improves, why = self._repair_improves(
                        schedule, failed_cur, admit_period, dead, graph, platform0,
                        period, initial, require_degraded=False,
                    )
                    if improves:
                        start_rebuild(now, "join-rebuild", event.processor)
                        seg_start = now
                    else:
                        note(
                            RuntimeEvent(now, "join-rebuild-skipped", event.processor, why)
                        )
            else:  # repair
                dead.discard(event.processor)
                note(RuntimeEvent(now, "repair", event.processor))
                if self.rebuild_on_repair and not rebuilding and not aborted:
                    improves, why = self._repair_improves(
                        schedule, failed_cur, admit_period, dead, graph, platform0,
                        period, initial,
                    )
                    if improves:
                        start_rebuild(now, "repair-rebuild", event.processor)
                        seg_start = now
                    else:
                        note(
                            RuntimeEvent(now, "repair-rebuild-skipped", event.processor, why)
                        )

        if rebuilding and down_since is not None:
            downtime += horizon - down_since
            if probe is not None:
                probe.on_span("rebuild", down_since, horizon)
        if aborted and abort_time < horizon:
            # An aborted stream accepts nothing for the rest of the horizon.
            downtime += horizon - abort_time
            if probe is not None:
                probe.on_span("abort", abort_time, horizon)

        record_completions(executor.finalize(schedule, failed_cur, seg_start, tol))
        if probe is not None:
            executor.sample_gauges(probe, horizon)
        if pending:
            # The data plane was abandoned mid-rebuild and the horizon ended
            # before a new schedule could replay the checkpointed data sets.
            for j, r in pending.items():
                lose(j, r, "lost-downtime")
            pending.clear()
        for j, r in admission.drain():
            lose(j, r, "lost-downtime")

        assert all(r is not None for r in records)
        return RuntimeTrace(
            records=tuple(DatasetRecord(*r) for r in records),
            events=tuple(log),
            period=period,
            horizon=horizon,
            num_rebuilds=rebuilds,
            downtime=downtime,
            aborted=aborted,
            final_alive=tuple(p for p in platform0.processor_names if p not in dead),
            policy=self.policy.name,
            admission=admission.name,
            checkpoint=self.checkpoint,
        )

    # ------------------------------------------------------------- repair probe
    def _repair_improves(
        self, schedule, failed_cur, admit_period, dead, graph, platform0, period, initial,
        require_degraded: bool = True,
    ) -> tuple[bool, str]:
        """Anticipatory ``rebuild_on_repair`` probe: is a rebuild worth downtime?

        Runs the rescheduling policy *speculatively* (no downtime charged) on
        the repaired platform and commits to a real rebuild only when the
        candidate improves the achievable admission period or the resilience
        margin left by the crashes charged against the current schedule.

        With ``require_degraded=False`` (join events) the speculative
        reschedule runs even when the current schedule is healthy — added
        capacity can still shorten the achievable period.
        """
        degraded = (
            bool(failed_cur)
            or admit_period > period * (1 + 1e-6)
            or schedule.epsilon < initial.epsilon
        )
        if require_degraded and not degraded:
            return False, "current schedule already meets the original period and resilience"
        survivors = [p for p in platform0.processor_names if p not in dead]
        target_eps = min(initial.epsilon, len(survivors) - 1)
        try:
            candidate = self.policy.reschedule(
                graph, platform0.subset(survivors), period, target_eps, previous=schedule
            )
        except SchedulingError:
            return False, "no feasible schedule on the repaired platform"
        cand_period = _effective_period(candidate)
        margin = schedule.epsilon - len(failed_cur)
        if cand_period < admit_period * (1 - 1e-9):
            return True, f"period {admit_period:g} -> {cand_period:g}"
        if cand_period <= admit_period * (1 + 1e-9) and candidate.epsilon > margin:
            return True, f"resilience margin {margin} -> {candidate.epsilon}"
        return False, "candidate schedule is no better than the current one"


def run_online(
    schedule: Schedule,
    fault_trace: FaultTrace | Iterable[FaultEvent],
    num_datasets: int = 100,
    policy: str | ReschedulePolicy = "rltf",
    rebuild_overhead: float = 1.0,
    admission: str | AdmissionPolicy = "shed",
    checkpoint: bool = True,
    probe=None,
    fast_forward: bool = True,
    platform=None,
) -> RuntimeTrace:
    """Convenience wrapper: run *schedule* online through *fault_trace*."""
    runtime = OnlineRuntime(
        schedule,
        fault_trace,
        policy=policy,
        rebuild_overhead=rebuild_overhead,
        admission=admission,
        checkpoint=checkpoint,
        probe=probe,
        fast_forward=fast_forward,
        platform=platform,
    )
    return runtime.run(num_datasets)
