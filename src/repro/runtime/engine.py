"""The online streaming runtime: execute a schedule while processors fail.

:class:`OnlineRuntime` drives a :class:`~repro.schedule.schedule.Schedule`
over an open-ended stream while a :class:`~repro.failures.scenarios.FaultTrace`
injects crashes (and optionally repairs) mid-stream.  The execution model:

* data set ``j`` is released at ``j·Δ`` where ``Δ`` is the period of the
  *initial* schedule (the source rate never changes);
* the timeline is cut into **segments** of constant state (current schedule +
  set of processors failed against it).  Within a segment, admitted data sets
  are executed by the event-driven :class:`~repro.failures.simulator.
  StreamingSimulator` under the segment's crash set, so with zero fault
  arrivals the runtime reproduces the offline simulation exactly;
* a crash that leaves every exit task with a valid replica — the active
  replication absorbing it — is **tolerated**: the stream continues on the
  surviving replicas at a degraded latency;
* a crash beyond the surviving guarantee (no valid exit replica, or more than
  ``ε`` crashes charged against the current schedule when
  ``rebuild_beyond_epsilon`` is set) triggers an **online rebuild**: the
  rescheduling policy (:mod:`repro.runtime.policies`) builds a new schedule on
  the survivors.  The rebuild takes ``rebuild_overhead·Δ`` time units of
  downtime during which released data sets are lost;
* a rebuilt schedule may have a longer period (the survivors cannot sustain
  the source rate) or overloaded processors (remap policy) — the runtime then
  throttles admission to the achievable rate and *sheds* the excess data sets;
* repaired processors rejoin the candidate pool of the *next* rebuild (a
  processor lost its state when it crashed, so the current schedule never
  resurrects it); ``rebuild_on_repair=True`` additionally triggers a rebuild
  to reclaim the capacity immediately;
* when no schedule can be built on the survivors the stream **aborts** and
  every remaining data set is lost.

Model simplification (documented, deliberate): a data set's fate is decided by
the runtime state at its release time — data sets in flight when a crash lands
are re-evaluated under the new segment only if released after it.  Each
segment restarts the pipeline (the warm-up transient is paid again after a
state change), which mirrors a flush-and-restart runtime.

The resulting :class:`~repro.runtime.trace.RuntimeTrace` is a pure function of
``(schedule, fault_trace, options)``: two runs with the same inputs produce
equal traces.
"""

from __future__ import annotations

from typing import Iterable

from repro.exceptions import ScheduleError, SchedulingError
from repro.failures.scenarios import CrashScenario, FaultEvent, FaultTrace
from repro.failures.simulator import StreamingSimulator
from repro.runtime.policies import ReschedulePolicy, resolve_policy
from repro.runtime.trace import DatasetRecord, RuntimeEvent, RuntimeTrace
from repro.schedule.schedule import Schedule
from repro.schedule.validation import valid_replicas_under_failures

__all__ = ["OnlineRuntime", "run_online"]

_INF = float("inf")


def _effective_period(schedule: Schedule) -> float:
    """Admission spacing of *schedule*: its period, or its real cycle time when
    the mapping is overloaded (remap fallback after heavy failures)."""
    if schedule.max_cycle_time <= schedule.period * (1 + 1e-6):
        return schedule.period
    return schedule.max_cycle_time


class OnlineRuntime:
    """Discrete-event online executor (see module docstring)."""

    def __init__(
        self,
        schedule: Schedule,
        fault_trace: FaultTrace | Iterable[FaultEvent],
        policy: str | ReschedulePolicy = "rltf",
        rebuild_overhead: float = 1.0,
        rebuild_beyond_epsilon: bool = True,
        rebuild_on_repair: bool = False,
    ):
        if not schedule.is_complete():
            raise ScheduleError("cannot run an incomplete schedule online")
        if rebuild_overhead < 0:
            raise ValueError(f"rebuild_overhead must be >= 0, got {rebuild_overhead}")
        if not isinstance(fault_trace, FaultTrace):
            events = tuple(fault_trace)
            horizon = max([e.time for e in events], default=0.0) + schedule.period
            fault_trace = FaultTrace(events=events, horizon=max(horizon, schedule.period))
        self.schedule = schedule
        self.fault_trace = fault_trace
        self.policy = resolve_policy(policy)
        self.rebuild_overhead = float(rebuild_overhead)
        self.rebuild_beyond_epsilon = bool(rebuild_beyond_epsilon)
        self.rebuild_on_repair = bool(rebuild_on_repair)

    # ---------------------------------------------------------------- execution
    def run(self, num_datasets: int = 100) -> RuntimeTrace:
        """Stream *num_datasets* consecutive data sets through the fault trace."""
        if num_datasets < 1:
            raise ValueError(f"num_datasets must be >= 1, got {num_datasets}")
        initial = self.schedule
        graph = initial.graph
        platform0 = initial.platform
        period = initial.period
        tol = 1e-9 * period
        horizon = num_datasets * period
        releases = [j * period for j in range(num_datasets)]
        fault_events = [e for e in self.fault_trace.events if e.time < horizon]

        records: list[DatasetRecord | None] = [None] * num_datasets
        log: list[RuntimeEvent] = []

        # --- mutable runtime state
        schedule: Schedule | None = initial
        used: frozenset[str] = frozenset(initial.used_processors())
        failed_cur: set[str] = set()  # failures charged against `schedule`
        dead: set[str] = set()  # globally down processors (repairs remove)
        seg_start = 0.0
        next_j = 0  # next dataset index to place
        next_slot = 0.0  # earliest admission instant (one per effective period)
        admit_period = _effective_period(initial)
        rebuilding = False
        rebuild_done = _INF
        down_since: float | None = None
        downtime = 0.0
        rebuilds = 0
        aborted = False
        abort_time = _INF

        def flush(end: float) -> None:
            """Decide the fate of data sets released in ``[seg_start, end)``."""
            nonlocal next_j, next_slot
            admitted: list[tuple[int, float]] = []
            while next_j < num_datasets and releases[next_j] < end - tol:
                r = releases[next_j]
                if aborted:
                    records[next_j] = DatasetRecord(next_j, r, None, "lost-abort")
                elif rebuilding:
                    records[next_j] = DatasetRecord(next_j, r, None, "lost-downtime")
                elif r >= next_slot - tol:
                    admitted.append((next_j, r))
                    next_slot = r + admit_period
                else:
                    records[next_j] = DatasetRecord(next_j, r, None, "shed")
                next_j += 1
            if admitted and schedule is not None:
                # A data set released within float tolerance of the segment
                # start can land a hair before it; clamp to keep the simulator
                # releases non-negative (its recorded release stays exact).
                sim = StreamingSimulator(
                    schedule, CrashScenario(frozenset(failed_cur))
                ).run(
                    len(admitted),
                    release_times=[max(0.0, r - seg_start) for _, r in admitted],
                )
                for k, (j, r) in enumerate(admitted):
                    records[j] = DatasetRecord(
                        j, r, seg_start + sim.completion_times[k], "completed"
                    )

        def start_rebuild(now: float, kind: str, processor: str | None) -> None:
            nonlocal rebuilding, rebuild_done, down_since
            rebuilding = True
            down_since = now
            rebuild_done = now + self.rebuild_overhead * period
            log.append(RuntimeEvent(now, kind, processor))

        def abort(now: float, reason: str) -> None:
            nonlocal aborted, schedule, abort_time
            aborted = True
            schedule = None
            abort_time = now
            log.append(RuntimeEvent(now, "abort", None, reason))

        i = 0
        while True:
            next_fault = fault_events[i].time if i < len(fault_events) else _INF
            now = min(next_fault, rebuild_done, horizon)
            flush(now)
            if now >= horizon:
                break

            if rebuilding and rebuild_done <= next_fault:
                # ------------------------------------------------ rebuild done
                rebuilding = False
                rebuild_done = _INF
                downtime += now - down_since
                down_since = None
                rebuilds += 1
                survivors = [p for p in platform0.processor_names if p not in dead]
                if not survivors:
                    abort(now, "no surviving processor")
                else:
                    target_eps = min(initial.epsilon, len(survivors) - 1)
                    try:
                        schedule = self.policy.reschedule(
                            graph,
                            platform0.subset(survivors),
                            period,
                            target_eps,
                            previous=schedule or initial,
                        )
                    except SchedulingError as exc:
                        abort(now, f"reschedule failed: {exc}")
                    else:
                        used = frozenset(schedule.used_processors())
                        failed_cur = set()
                        admit_period = _effective_period(schedule)
                        next_slot = now
                        log.append(
                            RuntimeEvent(
                                now,
                                "rebuild-complete",
                                None,
                                f"{len(survivors)} survivors, epsilon={schedule.epsilon}, "
                                f"period={schedule.period:g}",
                            )
                        )
                seg_start = now
                continue

            event = fault_events[i]
            i += 1
            if event.is_crash:
                if event.processor in dead:
                    continue
                dead.add(event.processor)
                if aborted:
                    continue
                if rebuilding:
                    # Restart the rebuild clock: the survivor set just changed.
                    rebuild_done = now + self.rebuild_overhead * period
                    log.append(RuntimeEvent(now, "crash-during-rebuild", event.processor))
                    continue
                if event.processor not in used:
                    log.append(RuntimeEvent(now, "crash-unused", event.processor))
                    continue
                failed_cur.add(event.processor)
                valid = valid_replicas_under_failures(schedule, failed_cur)
                survives = all(valid[t] for t in graph.exit_tasks())
                within_guarantee = len(failed_cur) <= schedule.epsilon
                if survives and (within_guarantee or not self.rebuild_beyond_epsilon):
                    log.append(
                        RuntimeEvent(
                            now,
                            "crash-tolerated",
                            event.processor,
                            f"{len(failed_cur)}/{schedule.epsilon} crashes absorbed",
                        )
                    )
                    seg_start = now
                else:
                    start_rebuild(now, "crash-rebuild", event.processor)
                    seg_start = now
            else:  # repair
                dead.discard(event.processor)
                log.append(RuntimeEvent(now, "repair", event.processor))
                if self.rebuild_on_repair and not rebuilding and not aborted:
                    start_rebuild(now, "repair-rebuild", event.processor)
                    seg_start = now

        if rebuilding and down_since is not None:
            downtime += horizon - down_since
        if aborted and abort_time < horizon:
            # An aborted stream accepts nothing for the rest of the horizon.
            downtime += horizon - abort_time

        assert all(r is not None for r in records)
        return RuntimeTrace(
            records=tuple(records),
            events=tuple(log),
            period=period,
            horizon=horizon,
            num_rebuilds=rebuilds,
            downtime=downtime,
            aborted=aborted,
            final_alive=tuple(p for p in platform0.processor_names if p not in dead),
            policy=self.policy.name,
        )


def run_online(
    schedule: Schedule,
    fault_trace: FaultTrace | Iterable[FaultEvent],
    num_datasets: int = 100,
    policy: str | ReschedulePolicy = "rltf",
    rebuild_overhead: float = 1.0,
) -> RuntimeTrace:
    """Convenience wrapper: run *schedule* online through *fault_trace*."""
    runtime = OnlineRuntime(
        schedule, fault_trace, policy=policy, rebuild_overhead=rebuild_overhead
    )
    return runtime.run(num_datasets)
