"""One Monte-Carlo trial of the online runtime.

A trial is a pure, picklable function of ``(spec, seed)`` — the parallel
campaign engine (:mod:`repro.experiments.parallel`) fans trials out across
processes and the result must not depend on how many workers ran them.  Each
trial derives two child seeds from its own seed (workload, fault trace), so
trials are mutually independent and individually reproducible.

Since the declarative-scenario redesign the canonical execution path lives in
:func:`repro.scenario.run.run_scenario_online`; :class:`RuntimeTrialSpec` is
kept as a thin, backward-compatible alias that converts to a
:class:`~repro.scenario.spec.ScenarioSpec` (:meth:`RuntimeTrialSpec.
to_scenario`), and :func:`run_trial` accepts either spec type.  Traces are
bit-for-bit identical to the pre-redesign direct path.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Union

from repro.failures.scenarios import FAULT_DISTRIBUTIONS
from repro.runtime.admission import ADMISSION_POLICIES
from repro.runtime.policies import RESCHEDULE_POLICIES
from repro.runtime.trace import RuntimeTrace, TraceSummary, summarize_trace
from repro.utils.checks import check_positive

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.scenario.spec import ScenarioSpec

__all__ = ["RuntimeTrialSpec", "run_trial", "run_trial_summary"]


@dataclass(frozen=True)
class RuntimeTrialSpec:
    """Parameters of one online-runtime Monte-Carlo trial (legacy flat form).

    Times are expressed in multiples of the schedule period ``Δ`` so that a
    spec is meaningful across workloads: ``mttf_periods=60`` means a processor
    fails on average after 60 stream iterations.

    This is the historical flat spec, kept for backward compatibility
    (including positional construction).  New code should build a
    :class:`~repro.scenario.spec.ScenarioSpec` — :meth:`to_scenario` is the
    exact mapping between the two.
    """

    granularity: float = 1.0
    num_tasks: int = 30
    num_processors: int = 10
    epsilon: int = 2
    num_datasets: int = 200
    mttf_periods: float = 500.0
    distribution: str = "exponential"
    weibull_shape: float = 1.5
    mttr_periods: float | None = None
    policy: str = "rltf"
    admission: str = "shed"
    queue_capacity: int | None = 64
    checkpoint: bool = True
    rebuild_on_repair: bool = False
    rebuild_overhead: float = 1.0
    period_slack: float = 2.0
    fast_forward: bool = True

    def __post_init__(self) -> None:
        check_positive(self.granularity, "granularity")
        check_positive(self.mttf_periods, "mttf_periods")
        check_positive(self.weibull_shape, "weibull_shape")
        check_positive(self.period_slack, "period_slack")
        if self.mttr_periods is not None:
            check_positive(self.mttr_periods, "mttr_periods")
        if self.num_tasks < 2:
            raise ValueError(f"num_tasks must be >= 2, got {self.num_tasks}")
        if self.num_processors < 2:
            raise ValueError(f"num_processors must be >= 2, got {self.num_processors}")
        if self.epsilon < 0 or self.epsilon >= self.num_processors:
            raise ValueError(
                f"epsilon={self.epsilon} needs 0 <= epsilon < {self.num_processors}"
            )
        if self.num_datasets < 1:
            raise ValueError(f"num_datasets must be >= 1, got {self.num_datasets}")
        if self.distribution not in FAULT_DISTRIBUTIONS:
            raise ValueError(
                f"distribution must be one of {FAULT_DISTRIBUTIONS}, "
                f"got {self.distribution!r}"
            )
        if self.policy not in RESCHEDULE_POLICIES:
            raise ValueError(RESCHEDULE_POLICIES.describe_unknown(self.policy))
        if self.admission not in ADMISSION_POLICIES:
            raise ValueError(ADMISSION_POLICIES.describe_unknown(self.admission))
        if self.queue_capacity is not None and self.queue_capacity < 1:
            raise ValueError(
                f"queue_capacity must be >= 1 or None, got {self.queue_capacity}"
            )
        if self.rebuild_overhead < 0:
            raise ValueError(
                f"rebuild_overhead must be >= 0, got {self.rebuild_overhead}"
            )

    def with_overrides(self, **kwargs) -> "RuntimeTrialSpec":
        """A copy of the spec with some fields replaced."""
        return replace(self, **kwargs)

    def to_scenario(self, name: str = "runtime-trial") -> "ScenarioSpec":
        """The equivalent declarative :class:`~repro.scenario.spec.ScenarioSpec`.

        The mapping is exact: running the returned scenario produces a trace
        bit-for-bit identical to running this trial spec on the same seed.
        """
        # Imported lazily: repro.runtime.__init__ loads this module, so a
        # top-level import of repro.scenario (which imports the runtime
        # package for its policy registries) would close a cycle.
        from repro.scenario.spec import (
            FaultSpec,
            RuntimeSpec,
            ScenarioSpec,
            SchedulerSpec,
            WorkloadSpec,
        )

        return ScenarioSpec(
            name=name,
            workload=WorkloadSpec(
                generator="paper",
                granularity=self.granularity,
                num_tasks=self.num_tasks,
                num_processors=self.num_processors,
            ),
            scheduler=SchedulerSpec(
                name="rltf",
                epsilon=self.epsilon,
                period_slack=self.period_slack,
                fallback=True,
            ),
            faults=FaultSpec(
                mttf_periods=self.mttf_periods,
                mttr_periods=self.mttr_periods,
                distribution=self.distribution,
                weibull_shape=self.weibull_shape,
            ),
            runtime=RuntimeSpec(
                num_datasets=self.num_datasets,
                policy=self.policy,
                admission=self.admission,
                queue_capacity=self.queue_capacity,
                checkpoint=self.checkpoint,
                rebuild_on_repair=self.rebuild_on_repair,
                rebuild_overhead=self.rebuild_overhead,
                fast_forward=self.fast_forward,
            ),
        )


def run_trial(
    spec: Union[RuntimeTrialSpec, "ScenarioSpec"], seed: int
) -> RuntimeTrace:
    """Run one seeded trial: workload → schedule → fault trace → online run.

    Deterministic: the trace only depends on ``(spec, seed)``.  Accepts
    either a legacy :class:`RuntimeTrialSpec` or a declarative
    :class:`~repro.scenario.spec.ScenarioSpec`; both run through
    :func:`repro.scenario.run.run_scenario_online`, the single execution
    path shared with the :class:`~repro.api.Session` facade.
    """
    from repro.scenario.run import run_scenario_online
    from repro.scenario.spec import ScenarioSpec

    scenario = spec if isinstance(spec, ScenarioSpec) else spec.to_scenario()
    return run_scenario_online(scenario, seed)


def run_trial_summary(
    spec: Union[RuntimeTrialSpec, "ScenarioSpec"], seed: int
) -> TraceSummary:
    """One seeded trial reduced to its :class:`~repro.runtime.trace.
    TraceSummary` — the ``reduce="stats"`` worker mode of the campaign engine.

    Running **and summarizing** inside the worker process means only a dozen
    floats cross the process boundary instead of the full trace pickle.  The
    summary is exactly ``summarize_trace(run_trial(spec, seed))``.
    """
    return summarize_trace(run_trial(spec, seed))
