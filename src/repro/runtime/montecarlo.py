"""One Monte-Carlo trial of the online runtime.

A trial is a pure, picklable function of ``(spec, seed)`` — the parallel
campaign engine (:mod:`repro.experiments.parallel`) fans trials out across
processes and the result must not depend on how many workers ran them.  Each
trial derives two child seeds from its own seed (workload, fault trace), so
trials are mutually independent and individually reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.core.ltf import ltf_schedule
from repro.core.rltf import rltf_schedule
from repro.exceptions import SchedulingError
from repro.failures.scenarios import FAULT_DISTRIBUTIONS, sample_fault_trace
from repro.graph.generator import random_paper_workload
from repro.runtime.admission import ADMISSION_POLICIES, QueueAdmissionPolicy
from repro.runtime.engine import OnlineRuntime
from repro.runtime.policies import RESCHEDULE_POLICIES
from repro.runtime.trace import RuntimeTrace
from repro.utils.checks import check_positive
from repro.utils.rng import derive_seed, ensure_rng

__all__ = ["RuntimeTrialSpec", "run_trial"]


@dataclass(frozen=True)
class RuntimeTrialSpec:
    """Parameters of one online-runtime Monte-Carlo trial.

    Times are expressed in multiples of the schedule period ``Δ`` so that a
    spec is meaningful across workloads: ``mttf_periods=60`` means a processor
    fails on average after 60 stream iterations.
    """

    granularity: float = 1.0
    num_tasks: int = 30
    num_processors: int = 10
    epsilon: int = 2
    num_datasets: int = 200
    mttf_periods: float = 500.0
    distribution: str = "exponential"
    weibull_shape: float = 1.5
    mttr_periods: float | None = None
    policy: str = "rltf"
    admission: str = "shed"
    queue_capacity: int | None = 64
    checkpoint: bool = True
    rebuild_on_repair: bool = False
    rebuild_overhead: float = 1.0
    period_slack: float = 2.0

    def __post_init__(self) -> None:
        check_positive(self.granularity, "granularity")
        check_positive(self.mttf_periods, "mttf_periods")
        check_positive(self.weibull_shape, "weibull_shape")
        check_positive(self.period_slack, "period_slack")
        if self.mttr_periods is not None:
            check_positive(self.mttr_periods, "mttr_periods")
        if self.num_tasks < 2:
            raise ValueError(f"num_tasks must be >= 2, got {self.num_tasks}")
        if self.num_processors < 2:
            raise ValueError(f"num_processors must be >= 2, got {self.num_processors}")
        if self.epsilon < 0 or self.epsilon >= self.num_processors:
            raise ValueError(
                f"epsilon={self.epsilon} needs 0 <= epsilon < {self.num_processors}"
            )
        if self.num_datasets < 1:
            raise ValueError(f"num_datasets must be >= 1, got {self.num_datasets}")
        if self.distribution not in FAULT_DISTRIBUTIONS:
            raise ValueError(
                f"distribution must be one of {FAULT_DISTRIBUTIONS}, "
                f"got {self.distribution!r}"
            )
        if self.policy not in RESCHEDULE_POLICIES:
            raise ValueError(
                f"policy must be one of {RESCHEDULE_POLICIES.names}, got {self.policy!r}"
            )
        if self.admission not in ADMISSION_POLICIES:
            raise ValueError(
                f"admission must be one of {ADMISSION_POLICIES.names}, "
                f"got {self.admission!r}"
            )
        if self.queue_capacity is not None and self.queue_capacity < 1:
            raise ValueError(
                f"queue_capacity must be >= 1 or None, got {self.queue_capacity}"
            )
        if self.rebuild_overhead < 0:
            raise ValueError(
                f"rebuild_overhead must be >= 0, got {self.rebuild_overhead}"
            )

    def with_overrides(self, **kwargs) -> "RuntimeTrialSpec":
        """A copy of the spec with some fields replaced."""
        return replace(self, **kwargs)


def run_trial(spec: RuntimeTrialSpec, seed: int) -> RuntimeTrace:
    """Run one seeded trial: workload → schedule → fault trace → online run.

    Deterministic: the trace only depends on ``(spec, seed)``.  If neither
    R-LTF nor LTF can schedule the generated workload the trial degrades to
    ``epsilon=0`` (the online rebuild machinery still exercises the failures).
    """
    # Imported lazily: repro.experiments.parallel imports this module, so a
    # top-level import of repro.experiments.config would close a cycle through
    # the repro.experiments package __init__.
    from repro.experiments.config import ExperimentConfig, workload_period

    rng = ensure_rng(seed)
    workload_seed = derive_seed(rng)
    fault_seed = derive_seed(rng)

    workload = random_paper_workload(
        spec.granularity,
        seed=workload_seed,
        num_tasks=spec.num_tasks,
        num_processors=spec.num_processors,
    )
    config = ExperimentConfig(period_slack=spec.period_slack)
    period = workload_period(workload, spec.epsilon, config)
    schedule = None
    for epsilon in dict.fromkeys((spec.epsilon, max(0, spec.epsilon - 1), 0)):
        for scheduler in (rltf_schedule, ltf_schedule):
            try:
                schedule = scheduler(
                    workload.graph, workload.platform, period=period, epsilon=epsilon
                )
                break
            except SchedulingError:
                continue
        if schedule is not None:
            break
    if schedule is None:
        raise SchedulingError(
            f"no schedule found for trial seed {seed} (granularity {spec.granularity})"
        )

    fault_trace = sample_fault_trace(
        workload.platform,
        horizon=spec.num_datasets * schedule.period,
        mttf=spec.mttf_periods * schedule.period,
        distribution=spec.distribution,
        shape=spec.weibull_shape,
        mttr=None
        if spec.mttr_periods is None
        else spec.mttr_periods * schedule.period,
        seed=fault_seed,
    )
    admission = spec.admission
    if admission == "queue":
        admission = QueueAdmissionPolicy(capacity=spec.queue_capacity)
    runtime = OnlineRuntime(
        schedule,
        fault_trace,
        policy=spec.policy,
        rebuild_overhead=spec.rebuild_overhead,
        rebuild_on_repair=spec.rebuild_on_repair,
        admission=admission,
        checkpoint=spec.checkpoint,
    )
    return runtime.run(spec.num_datasets)
