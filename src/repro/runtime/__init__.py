"""Online streaming runtime: live execution under stochastic failures.

The static side of the reproduction builds an ε-fault-tolerant schedule once
and evaluates fixed crash sets against it.  This package is the dynamic
counterpart:

* :mod:`repro.runtime.engine` — :class:`OnlineRuntime`, a discrete-event
  executor that streams data sets through a schedule while a timed fault
  process injects crashes, tolerating failures within the ε guarantee and
  rebuilding the schedule online beyond it;
* :mod:`repro.runtime.policies` — the online rescheduling policies (re-run
  R-LTF on the survivors, or remap the dead replicas onto survivors),
  resolved by name through a :class:`~repro.utils.registry.PolicyRegistry`;
* :mod:`repro.runtime.admission` — the admission policies deciding the fate
  of data sets the pipeline cannot take (``shed`` drops, ``queue`` buffers
  through downtime with a bounded backlog);
* :mod:`repro.runtime.trace` — the :class:`RuntimeTrace` execution record
  (per-dataset latency, downtime, rebuilds) and its aggregation;
* :mod:`repro.runtime.montecarlo` — one seeded Monte-Carlo trial, fanned out
  in parallel by :mod:`repro.experiments.parallel`.
"""

from repro.runtime.admission import (
    AdmissionPolicy,
    ShedAdmissionPolicy,
    QueueAdmissionPolicy,
    ADMISSION_POLICIES,
    resolve_admission,
)
from repro.runtime.engine import OnlineRuntime, run_online
from repro.runtime.policies import (
    ReschedulePolicy,
    RLTFReschedulePolicy,
    RemapReschedulePolicy,
    RESCHEDULE_POLICIES,
    resolve_policy,
)
from repro.runtime.trace import (
    DatasetRecord,
    RuntimeEvent,
    RuntimeTrace,
    RuntimeStats,
    TraceSummary,
    combine_summaries,
    summarize_trace,
    summarize_traces,
)
from repro.runtime.montecarlo import RuntimeTrialSpec, run_trial, run_trial_summary

__all__ = [
    "OnlineRuntime",
    "run_online",
    "AdmissionPolicy",
    "ShedAdmissionPolicy",
    "QueueAdmissionPolicy",
    "ADMISSION_POLICIES",
    "resolve_admission",
    "ReschedulePolicy",
    "RLTFReschedulePolicy",
    "RemapReschedulePolicy",
    "RESCHEDULE_POLICIES",
    "resolve_policy",
    "DatasetRecord",
    "RuntimeEvent",
    "RuntimeTrace",
    "RuntimeStats",
    "TraceSummary",
    "combine_summaries",
    "summarize_trace",
    "summarize_traces",
    "RuntimeTrialSpec",
    "run_trial",
    "run_trial_summary",
]
