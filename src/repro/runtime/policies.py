"""Online rescheduling policies.

When a crash exceeds the surviving guarantee of the current schedule, the
runtime asks a policy for a replacement schedule on the surviving sub-platform.
Two policies are provided:

* :class:`RLTFReschedulePolicy` (``"rltf"``) — re-runs the R-LTF heuristic on
  the survivors, degrading gracefully: it first tries the original period and
  the highest feasible ε, then lowers ε, then relaxes the period by successive
  backoff factors (a longer period means the stream is shed to a sustainable
  rate rather than dying).  As a last resort it falls back to remapping the
  previous schedule, which never rejects.
* :class:`RemapReschedulePolicy` (``"remap"``) — keeps the surviving part of
  the previous mapping and only re-places the replicas that were hosted by
  dead processors (least-loaded survivor first), then rebuilds the forward
  schedule with :func:`repro.core.rebuild.build_forward_schedule`.  Much
  cheaper than a full re-run and minimally disruptive, at the price of
  possibly overloading survivors (the runtime then throttles admission to the
  achievable rate).

Both are deterministic: given the same inputs they return the same schedule.

Policies are resolved *by name* through the :data:`RESCHEDULE_POLICIES`
registry (:class:`~repro.utils.registry.PolicyRegistry`): the CLI derives its
``--policy`` choices from it, :class:`~repro.runtime.montecarlo.RuntimeTrialSpec`
validates against it, and the experiment sweeps iterate it — registering a new
policy class here is all it takes to expose it everywhere.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

from repro.core.rebuild import build_forward_schedule
from repro.core.rltf import rltf_schedule
from repro.exceptions import SchedulingError
from repro.graph.dag import TaskGraph
from repro.platform.platform import Platform
from repro.schedule.schedule import Schedule
from repro.utils.registry import PolicyRegistry

__all__ = [
    "ReschedulePolicy",
    "RLTFReschedulePolicy",
    "RemapReschedulePolicy",
    "RESCHEDULE_POLICIES",
    "resolve_policy",
]


@runtime_checkable
class ReschedulePolicy(Protocol):
    """Interface of an online rescheduling policy."""

    name: str

    def reschedule(
        self,
        graph: TaskGraph,
        platform: Platform,
        period: float,
        epsilon: int,
        previous: Schedule | None = None,
    ) -> Schedule:
        """Build a schedule of *graph* on the surviving *platform*.

        *period* and *epsilon* are the original targets; the policy may degrade
        either when the survivors cannot sustain them.  *previous* is the
        schedule being replaced (its platform may be larger).  Raises
        :class:`~repro.exceptions.SchedulingError` when no schedule can be
        produced at all.
        """
        ...  # pragma: no cover - protocol


class RemapReschedulePolicy:
    """Keep the surviving mapping, re-place only the replicas of dead processors."""

    name = "remap"

    def reschedule(
        self,
        graph: TaskGraph,
        platform: Platform,
        period: float,
        epsilon: int,
        previous: Schedule | None = None,
    ) -> Schedule:
        if previous is None:
            raise SchedulingError("the remap policy needs a previous schedule to start from")
        m = platform.num_processors
        if m < 1:
            raise SchedulingError("no surviving processor to remap onto")
        eps = min(epsilon, m - 1)
        factor = eps + 1

        load = {p: 0.0 for p in platform.processor_names}
        assignment: dict[str, list[str]] = {}
        # First pass: keep every replica whose processor survived.
        for task in graph.task_names:
            work = graph.work(task)
            keep = [p for p in previous.processors_of_task(task) if p in platform][:factor]
            assignment[task] = keep
            for p in keep:
                load[p] += platform.execution_time(work, p)
        # Second pass: refill the missing replicas, least-loaded survivor first.
        for task in graph.task_names:
            work = graph.work(task)
            hosts = assignment[task]
            while len(hosts) < factor:
                candidates = [p for p in platform.processor_names if p not in hosts]
                best = min(candidates, key=lambda p: (load[p], p))
                hosts.append(best)
                load[best] += platform.execution_time(work, best)
        return build_forward_schedule(
            graph, platform, period, eps, assignment, algorithm="online-remap"
        )


class RLTFReschedulePolicy:
    """Re-run R-LTF on the survivors, degrading ε then the period as needed."""

    name = "rltf"

    def __init__(self, period_backoffs: tuple[float, ...] = (1.0, 2.0, 4.0, 8.0)):
        if not period_backoffs or any(f < 1.0 for f in period_backoffs):
            raise ValueError("period_backoffs must be non-empty factors >= 1")
        self.period_backoffs = tuple(period_backoffs)

    def reschedule(
        self,
        graph: TaskGraph,
        platform: Platform,
        period: float,
        epsilon: int,
        previous: Schedule | None = None,
    ) -> Schedule:
        if platform.num_processors < 1:
            raise SchedulingError("no surviving processor to reschedule onto")
        eps_max = min(epsilon, platform.num_processors - 1)
        for factor in self.period_backoffs:
            for eps in range(eps_max, -1, -1):
                try:
                    return rltf_schedule(
                        graph, platform, period=period * factor, epsilon=eps
                    )
                except SchedulingError:
                    continue
        if previous is not None:
            # Overload-tolerant last resort: the stream survives at a degraded
            # rate instead of aborting.
            return RemapReschedulePolicy().reschedule(
                graph, platform, period, epsilon, previous
            )
        raise SchedulingError(
            f"R-LTF found no feasible schedule on {platform.num_processors} survivors "
            f"(period backoffs {self.period_backoffs})"
        )


#: registry of rescheduling policies: name -> zero-argument factory.
RESCHEDULE_POLICIES = PolicyRegistry("rescheduling policy")
RESCHEDULE_POLICIES.register(RLTFReschedulePolicy)
RESCHEDULE_POLICIES.register(RemapReschedulePolicy)


def resolve_policy(policy: str | ReschedulePolicy) -> ReschedulePolicy:
    """Coerce a policy name or instance into a policy instance."""
    return RESCHEDULE_POLICIES.resolve(policy, ReschedulePolicy)
