"""Admission policies: what happens to data sets the pipeline cannot take.

The online runtime admits at most one data set per *effective period* of the
current schedule, and admits nothing at all while a rebuild is in progress.
An :class:`AdmissionPolicy` decides the fate of every released data set under
those constraints:

* :class:`ShedAdmissionPolicy` (``"shed"``) — the historical behaviour: a
  data set released during rebuild downtime is lost (``lost-downtime``), a
  data set released faster than the achievable rate is dropped (``shed``).
  Memoryless, loses data, never builds backlog.
* :class:`QueueAdmissionPolicy` (``"queue"``) — a bounded admission buffer:
  data sets released during downtime are *queued* and drained once the
  rebuild completes, and a data set released faster than the achievable rate
  simply waits for the next free slot (its latency grows by the waiting
  time).  When the buffer is full the overflow is dropped with status
  ``lost-overflow``.  An unbounded buffer (``capacity=None``) never drops on
  its own — data is then lost only if the stream aborts or the horizon ends
  mid-rebuild.

Policies are resolved by name through :data:`ADMISSION_POLICIES`
(:class:`~repro.utils.registry.PolicyRegistry`), mirroring the rescheduling
policies of :mod:`repro.runtime.policies`.
"""

from __future__ import annotations

from collections import deque
from typing import Protocol, runtime_checkable

from repro.utils.registry import PolicyRegistry

__all__ = [
    "AdmissionPolicy",
    "ShedAdmissionPolicy",
    "QueueAdmissionPolicy",
    "ADMISSION_POLICIES",
    "resolve_admission",
]

#: decision verbs returned by :meth:`AdmissionPolicy.on_release`.
ADMIT, DROP, DEFER = "admit", "drop", "defer"


@runtime_checkable
class AdmissionPolicy(Protocol):
    """Interface of an admission policy (see module docstring)."""

    name: str

    def reset(self) -> None:
        """Forget any buffered state (called at the start of every run)."""
        ...  # pragma: no cover - protocol

    def on_release(
        self,
        dataset: int,
        release: float,
        *,
        rebuilding: bool,
        next_slot: float,
        admit_period: float,
        tol: float,
    ) -> tuple[str, object]:
        """Decide the fate of *dataset* released at *release*.

        Returns one of ``("admit", admission_instant)``,
        ``("drop", status)`` with a terminal
        :data:`~repro.runtime.trace.DATASET_STATUSES` entry, or
        ``("defer", None)`` when the data set is buffered inside the policy.
        *admit_period* is the current admission spacing — one data set per
        period at most — which a backlog-bounding policy needs to know how
        many admitted data sets are still waiting for their slot.
        """
        ...  # pragma: no cover - protocol

    def drain(self) -> list[tuple[int, float]]:
        """Hand back the buffered ``(dataset, release)`` pairs, FIFO."""
        ...  # pragma: no cover - protocol


class ShedAdmissionPolicy:
    """Drop everything the pipeline cannot take right now (no backlog)."""

    name = "shed"

    def reset(self) -> None:  # stateless
        pass

    def on_release(
        self,
        dataset: int,
        release: float,
        *,
        rebuilding: bool,
        next_slot: float,
        admit_period: float,
        tol: float,
    ) -> tuple[str, object]:
        if rebuilding:
            return DROP, "lost-downtime"
        if release >= next_slot - tol:
            return ADMIT, release
        return DROP, "shed"

    def drain(self) -> list[tuple[int, float]]:
        return []


class QueueAdmissionPolicy:
    """Buffer data sets through downtime and rate throttling.

    The *capacity* bounds the backlog in **both** phases: during a rebuild it
    is the number of buffered data sets waiting for the new schedule; while
    running it is the number of admitted data sets still waiting for their
    admission slot (``(next_slot - release) / admit_period`` of them are in
    the waiting line when a new release arrives).  Either way, a release that
    would push the backlog past *capacity* is dropped with ``lost-overflow``.

    Parameters
    ----------
    capacity:
        Maximum backlog; ``None`` means unbounded.
    """

    name = "queue"

    def __init__(self, capacity: int | None = 64):
        if capacity is not None and capacity < 1:
            raise ValueError(f"capacity must be >= 1 or None, got {capacity}")
        self.capacity = capacity
        self._buffer: deque[tuple[int, float]] = deque()

    def reset(self) -> None:
        self._buffer.clear()

    def on_release(
        self,
        dataset: int,
        release: float,
        *,
        rebuilding: bool,
        next_slot: float,
        admit_period: float,
        tol: float,
    ) -> tuple[str, object]:
        if rebuilding:
            if self.capacity is not None and len(self._buffer) >= self.capacity:
                return DROP, "lost-overflow"
            self._buffer.append((dataset, release))
            return DEFER, None
        # Running: a data set released too fast waits for the next free slot
        # instead of being shed; its latency absorbs the waiting time — but
        # only while the waiting line fits the configured backlog.
        if self.capacity is not None and next_slot > release + tol and admit_period > 0:
            waiting = (next_slot - release) / admit_period
            if waiting > self.capacity:
                return DROP, "lost-overflow"
        return ADMIT, max(release, next_slot)

    def drain(self) -> list[tuple[int, float]]:
        drained = list(self._buffer)
        self._buffer.clear()
        return drained


#: registry of admission policies: name -> zero-argument factory.
ADMISSION_POLICIES = PolicyRegistry("admission policy")
ADMISSION_POLICIES.register(ShedAdmissionPolicy)
ADMISSION_POLICIES.register(QueueAdmissionPolicy)


def resolve_admission(policy: str | AdmissionPolicy) -> AdmissionPolicy:
    """Coerce an admission-policy name or instance into a policy instance."""
    return ADMISSION_POLICIES.resolve(policy, AdmissionPolicy)
