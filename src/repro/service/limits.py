"""Admission control of the scheduling service: shed early, never queue blind.

The online runtime already has this vocabulary — its bounded-queue admission
policies *shed* datasets instead of queueing them into certain loss — and the
service applies the same principle one level up, to whole jobs:

* :class:`WorkerPool` — a bounded executor with **admission at submit time**:
  when every worker slot and every queue slot is taken, :meth:`submit` raises
  :class:`PoolSaturated` immediately (the HTTP layer turns that into
  ``429 Too Many Requests`` with a ``Retry-After`` estimate) rather than
  letting an unbounded backlog build.  One 10k-point suite can occupy at most
  its admitted slot; it cannot starve the pool for everyone else.
* :class:`CircuitBreaker` — trips open after consecutive job *failures* so a
  poisoned configuration (e.g. a cache directory on a dead disk) fails fast
  for a cooldown instead of burning worker slots, then half-opens to probe.

Both are plain synchronous objects with injectable clocks — no daemon
threads, no HTTP — so the unit tests drive every transition deterministically.
"""

from __future__ import annotations

import threading
from collections import deque
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Callable

from repro.exceptions import ReproError

__all__ = ["PoolSaturated", "CircuitOpen", "WorkerPool", "CircuitBreaker"]


class PoolSaturated(ReproError):
    """Raised at submit time when the worker pool sheds the request.

    *retry_after* is the pool's estimate (seconds, >= 1) of when a slot will
    free up, derived from recent job durations; the HTTP layer forwards it as
    the ``Retry-After`` header.
    """

    def __init__(self, message: str, retry_after: int = 1):
        super().__init__(message)
        self.retry_after = max(1, int(retry_after))


class CircuitOpen(ReproError):
    """Raised while the circuit breaker is open (maps to HTTP 503)."""

    def __init__(self, message: str, retry_after: int = 1):
        super().__init__(message)
        self.retry_after = max(1, int(retry_after))


class WorkerPool:
    """A bounded thread pool that rejects — never queues — beyond capacity.

    Admission happens in :meth:`submit` under the lock: at most *workers*
    jobs run concurrently and at most *queue_capacity* sit admitted-but-idle;
    a submit beyond ``workers + queue_capacity`` raises :class:`PoolSaturated`
    with a duration-based retry hint.  This is the shed-early half of the
    CircuitBreaker/backpressure pattern: the client gets an honest "try again
    in N seconds" instead of a request parked in an invisible backlog.
    """

    def __init__(
        self,
        workers: int = 2,
        queue_capacity: int = 8,
        clock: Callable[[], float] | None = None,
    ):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if queue_capacity < 0:
            raise ValueError(f"queue_capacity must be >= 0, got {queue_capacity}")
        import time

        self.workers = workers
        self.queue_capacity = queue_capacity
        self._clock = clock or time.monotonic
        self._executor = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-service"
        )
        self._lock = threading.Lock()
        self._inflight = 0
        self._durations: deque[float] = deque(maxlen=32)
        self._shed_count = 0
        self._draining = False

    @property
    def capacity(self) -> int:
        """Total admitted jobs the pool holds: running + bounded queue."""
        return self.workers + self.queue_capacity

    @property
    def inflight(self) -> int:
        with self._lock:
            return self._inflight

    @property
    def shed_count(self) -> int:
        """How many submits were rejected with :class:`PoolSaturated`."""
        with self._lock:
            return self._shed_count

    def retry_after_hint(self) -> int:
        """Seconds until a slot plausibly frees (>= 1, from recent durations)."""
        with self._lock:
            if not self._durations:
                return 1
            mean = sum(self._durations) / len(self._durations)
        return max(1, round(mean))

    @property
    def draining(self) -> bool:
        """True once :meth:`drain` started: submits shed, in-flight finishes."""
        with self._lock:
            return self._draining

    def submit(self, fn: Callable, *args, **kwargs) -> Future:
        """Admit and schedule *fn*, or raise :class:`PoolSaturated` now."""
        with self._lock:
            if self._draining:
                self._shed_count += 1
                raise PoolSaturated(
                    "worker pool draining for shutdown; resubmit to the "
                    "replacement instance",
                    retry_after=1,
                )
            if self._inflight >= self.capacity:
                self._shed_count += 1
                hint = (
                    max(1, round(sum(self._durations) / len(self._durations)))
                    if self._durations
                    else 1
                )
                raise PoolSaturated(
                    f"worker pool saturated: {self._inflight} jobs admitted of "
                    f"capacity {self.capacity} ({self.workers} workers + "
                    f"{self.queue_capacity} queued); shedding instead of queueing",
                    retry_after=hint,
                )
            self._inflight += 1
        started = self._clock()

        def tracked():
            try:
                return fn(*args, **kwargs)
            finally:
                elapsed = self._clock() - started
                with self._lock:
                    self._inflight -= 1
                    self._durations.append(elapsed)

        try:
            return self._executor.submit(tracked)
        except BaseException:
            with self._lock:  # pragma: no cover - executor shutdown race
                self._inflight -= 1
            raise

    def shutdown(self, wait: bool = True) -> None:
        self._executor.shutdown(wait=wait)

    def drain(self) -> None:
        """Graceful shutdown: shed new submits, wait for in-flight jobs.

        The running jobs are *not* cancelled — suite jobs observe their
        store's stop event and return at the next trial boundary with every
        completed trial flushed to the cache, so an identical resubmit to a
        fresh instance resumes instead of recomputing.
        """
        with self._lock:
            self._draining = True
        self._executor.shutdown(wait=True)


class CircuitBreaker:
    """Closed → open on consecutive failures → half-open probe after cooldown.

    ``allow()`` is the admission question ("may this job run?"); the caller
    reports the outcome with ``record_success()`` / ``record_failure()``.
    While open, :meth:`check` raises :class:`CircuitOpen` carrying the time
    left on the cooldown.  A half-open probe that succeeds closes the circuit
    and resets the failure count; one that fails re-opens it for a full
    cooldown.
    """

    CLOSED, OPEN, HALF_OPEN = "closed", "open", "half-open"

    def __init__(
        self,
        failure_threshold: int = 5,
        cooldown: float = 30.0,
        clock: Callable[[], float] | None = None,
    ):
        if failure_threshold < 1:
            raise ValueError(f"failure_threshold must be >= 1, got {failure_threshold}")
        import time

        self.failure_threshold = failure_threshold
        self.cooldown = float(cooldown)
        self._clock = clock or time.monotonic
        self._lock = threading.Lock()
        self._state = self.CLOSED
        self._failures = 0
        self._opened_at = 0.0

    @property
    def state(self) -> str:
        with self._lock:
            self._tick()
            return self._state

    def _tick(self) -> None:
        # lock held: open → half-open once the cooldown elapses.
        if (
            self._state == self.OPEN
            and self._clock() - self._opened_at >= self.cooldown
        ):
            self._state = self.HALF_OPEN

    def allow(self) -> bool:
        with self._lock:
            self._tick()
            return self._state != self.OPEN

    def check(self) -> None:
        """Raise :class:`CircuitOpen` unless a job may run now."""
        with self._lock:
            self._tick()
            if self._state == self.OPEN:
                remaining = self.cooldown - (self._clock() - self._opened_at)
                raise CircuitOpen(
                    f"circuit open after {self._failures} consecutive job "
                    f"failures; retry in {max(1, round(remaining))}s",
                    retry_after=max(1, round(remaining)),
                )

    def record_success(self) -> None:
        with self._lock:
            self._failures = 0
            self._state = self.CLOSED

    def record_failure(self) -> None:
        with self._lock:
            self._tick()
            self._failures += 1
            if self._state == self.HALF_OPEN or self._failures >= self.failure_threshold:
                self._state = self.OPEN
                self._opened_at = self._clock()
