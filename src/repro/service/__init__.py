"""Scheduling-as-a-service: the HTTP front end over Session / SuiteSpec.

The service is three small layers over the existing engine, none of which
import a web framework:

* :mod:`repro.service.models` — request validation (the spec schema's own
  errors, surfaced as HTTP 422) and result documents carrying the canonical
  content-hashed ``result_key`` / ``campaign_key`` identity;
* :mod:`repro.service.jobs` — the async job store: jobs keyed by content
  hash, so identical re-submits attach or hit the cache instead of
  re-executing; progress events derived from a :class:`~repro.obs.probe.
  Probe`;
* :mod:`repro.service.app` — the WSGI app (stdlib-servable, ASGI adapter
  included) and :mod:`repro.service.limits` — bounded worker pool with
  shed-early 429 admission plus a circuit breaker.

Start one from the CLI (``repro-streaming serve``) or embed it::

    from repro.cache.disk import open_cache
    from repro.service import JobStore, ServiceApp, WorkerPool, make_threaded_server

    store = JobStore(cache=open_cache(None), pool=WorkerPool(workers=2))
    server = make_threaded_server(ServiceApp(store), "127.0.0.1", 8000)
    server.serve_forever()

See ``docs/service.md`` for the endpoint reference and a curl walkthrough.
"""

from repro.service.app import ServiceApp, make_threaded_server, serve
from repro.service.jobs import Job, JobProbe, JobStore
from repro.service.limits import CircuitBreaker, CircuitOpen, PoolSaturated, WorkerPool
from repro.service.models import (
    ScenarioRequest,
    SuiteRequest,
    scenario_result_key,
    suite_result_key,
    suite_result_payload,
)

__all__ = [
    "ServiceApp",
    "serve",
    "make_threaded_server",
    "Job",
    "JobProbe",
    "JobStore",
    "WorkerPool",
    "PoolSaturated",
    "CircuitBreaker",
    "CircuitOpen",
    "ScenarioRequest",
    "SuiteRequest",
    "scenario_result_key",
    "suite_result_key",
    "suite_result_payload",
]
