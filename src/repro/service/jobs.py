"""The async job store: content-hashed jobs over Session / run_suite.

A job's id **is** its result key — the content hash of ``(spec, seed,
trials, reduce, engine version)`` from :mod:`repro.service.models`.  That one
decision gives the service its semantics for free:

* an identical re-submit while the job runs *attaches* to the in-flight job
  (same id, same eventual result) instead of running the work twice;
* an identical re-submit after completion — even across a service restart —
  is answered from the :class:`~repro.cache.disk.DiskCache` with
  ``executed: 0``, bit-identical to the original execution by the cache's
  own contract;
* two service instances sharing a cache directory share results.

Execution happens on the bounded :class:`~repro.service.limits.WorkerPool`
(shed-early admission; see :mod:`repro.service.limits`).  Progress events are
produced by a :class:`JobProbe` — the same :class:`~repro.obs.probe.Probe`
contract the CLI's ``--metrics`` flag uses, throttled so a million-dataset
run emits hundreds of events, not a million.  Probes are observation-only:
the trace a probed run produces is bit-identical to a bare run, so attaching
one costs nothing in result identity.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Sequence

from repro.cache.disk import MISS
from repro.obs.probe import Probe
from repro.service.models import (
    ScenarioRequest,
    SuiteRequest,
    jsonable,
    scenario_result_payload,
    suite_result_payload,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.service.limits import WorkerPool

__all__ = ["JobProbe", "Job", "JobStore", "JOB_STATES"]

#: lifecycle of one job (terminal states: ``done`` | ``failed``).
JOB_STATES = ("queued", "running", "done", "failed")


class JobProbe(Probe):
    """Derive client-visible progress events from the runtime's probe stream.

    Throttled: one ``progress`` event per *every_datasets* sealed data sets
    (plus one final flush), one event per logged runtime decision (crashes and
    rebuilds are rare by construction), one per closed downtime span and one
    per steady-state fast-forward jump.  ``supports_fast_forward`` stays on —
    the probe is pure observation, so the engine keeps its fast path and the
    trace stays bit-identical to an unprobed run.
    """

    supports_fast_forward = True

    def __init__(self, job: "Job", every_datasets: int = 200):
        self._job = job
        self._every = max(1, int(every_datasets))
        self._datasets = 0
        self._completed = 0

    def _flush_progress(self) -> None:
        self._job.emit(
            "progress", datasets=self._datasets, completed=self._completed
        )

    def on_dataset(
        self, index: int, release: float, completion: float | None, status: str
    ) -> None:
        self._datasets += 1
        if completion is not None:
            self._completed += 1
        if self._datasets % self._every == 0:
            self._flush_progress()

    def on_runtime_event(self, event) -> None:
        self._job.emit(
            "runtime-event",
            at=event.time,
            event=event.kind,
            processor=event.processor,
        )

    def on_span(self, kind: str, start: float, end: float) -> None:
        self._job.emit("span", span=kind, start=start, end=end)

    def on_fast_forward(
        self,
        span: tuple[float, float],
        n_datasets: int,
        latencies: Sequence[tuple[float, int]] = (),
    ) -> None:
        self._datasets += n_datasets
        self._completed += n_datasets
        self._job.emit(
            "fast-forward", start=span[0], end=span[1], datasets=n_datasets
        )

    def finish(self) -> None:
        """Flush the final progress sample (exact totals)."""
        if self._datasets:
            self._flush_progress()


@dataclass
class Job:
    """One submitted unit of work, identified by its result key.

    *events* is an append-only, monotonically ``seq``-numbered list — clients
    poll ``GET /v1/jobs/{id}/events?after=<seq>`` and receive only what they
    have not seen.  All mutation goes through the owning :class:`JobStore`'s
    worker thread plus the probe callbacks; the lock keeps reads consistent.
    """

    id: str
    kind: str  # "scenario" | "suite"
    state: str = "queued"
    #: whether the result was served from the cache without executing.
    cached: bool = False
    #: datasets (scenario) or suite points (suite) actually executed.
    executed: int = 0
    error: str | None = None
    result: dict | None = None
    submitted_at: float = field(default_factory=time.time)
    finished_at: float | None = None
    events: list[dict] = field(default_factory=list)
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)
    _done: threading.Event = field(default_factory=threading.Event, repr=False)

    def emit(self, kind: str, **data) -> None:
        with self._lock:
            self.events.append(
                {"seq": len(self.events), "event": kind, **jsonable(data)}
            )

    def events_after(self, after: int = -1) -> list[dict]:
        with self._lock:
            return [event for event in self.events if event["seq"] > after]

    def finish(self, *, result: dict, cached: bool, executed: int) -> None:
        with self._lock:
            self.result = result
            self.cached = cached
            self.executed = executed
            self.state = "done"
            self.finished_at = time.time()
        self.emit("done", cached=cached, executed=executed)
        self._done.set()

    def fail(self, message: str) -> None:
        with self._lock:
            self.error = message
            self.state = "failed"
            self.finished_at = time.time()
        self.emit("failed", message=message)
        self._done.set()

    def mark_running(self) -> None:
        with self._lock:
            self.state = "running"
        self.emit("running")

    def wait(self, timeout: float | None = None) -> bool:
        """Block until the job reaches a terminal state (tests/clients)."""
        return self._done.wait(timeout)

    @property
    def done(self) -> bool:
        return self._done.is_set()

    def as_dict(self) -> dict:
        """The ``GET /v1/jobs/{id}`` status document."""
        with self._lock:
            payload = {
                "job": self.id,
                "kind": self.kind,
                "state": self.state,
                "cached": self.cached,
                "executed": self.executed,
                "result_key": self.id,
                "num_events": len(self.events),
            }
            if self.error is not None:
                payload["error"] = self.error
            if self.state == "done":
                payload["result_url"] = f"/v1/results/{self.id}"
        return payload


class JobStore:
    """Submit → dedup → (cache probe | execute) → publish, keyed by content.

    The store owns three collaborators: the :class:`DiskCache` (or
    ``NullCache``) holding published result documents, the bounded
    :class:`WorkerPool` running executions, and an optional
    :class:`~repro.service.limits.CircuitBreaker` consulted at submit time.
    ``exec_jobs`` is forwarded to :func:`~repro.experiments.sweep.run_suite`
    as its process-level parallelism (bit-identical at any value).
    """

    def __init__(
        self,
        cache,
        pool: "WorkerPool",
        exec_jobs: int = 1,
        breaker=None,
        progress_every: int = 200,
        max_retries: int = 2,
        trial_timeout: float | None = None,
        chaos=None,
    ):
        self.cache = cache
        self.pool = pool
        self.exec_jobs = max(1, int(exec_jobs))
        self.breaker = breaker
        self.progress_every = progress_every
        self.max_retries = max_retries
        self.trial_timeout = trial_timeout
        self.chaos = chaos
        #: a MetricsRegistry the owning app may attach; resilience events of
        #: suite jobs (retries, worker crashes, ...) are counted into it.
        self.metrics = None
        self._jobs: dict[str, Job] = {}
        self._stop = threading.Event()
        self._lock = threading.Lock()

    def drain(self) -> None:
        """Graceful shutdown: interrupt suite jobs at the next trial boundary.

        Sets the stop event every in-flight :func:`run_suite` observes (its
        completed trials are already checkpointed, so an identical resubmit
        resumes rather than recomputes), then drains the worker pool.
        """
        self._stop.set()
        self.pool.drain()

    # ------------------------------------------------------------------ reads
    def get(self, job_id: str) -> Job | None:
        with self._lock:
            return self._jobs.get(job_id)

    def get_result(self, key: str) -> dict | None:
        """The published result document under *key* (job memory or cache)."""
        job = self.get(key)
        if job is not None and job.result is not None:
            return job.result
        value = self.cache.get(key, expect=dict)
        return None if value is MISS else value

    def counts(self) -> dict:
        with self._lock:
            jobs = list(self._jobs.values())
        summary = {state: 0 for state in JOB_STATES}
        for job in jobs:
            summary[job.state] = summary.get(job.state, 0) + 1
        return summary

    # ---------------------------------------------------------------- submits
    def submit_scenario(self, request: ScenarioRequest) -> Job:
        """Submit one online run; returns its (possibly pre-existing) job."""
        return self._submit(request.result_key, "scenario", self._run_scenario, request)

    def submit_suite(self, request: SuiteRequest) -> Job:
        """Submit one suite run; returns its (possibly pre-existing) job."""
        return self._submit(request.result_key, "suite", self._run_suite, request)

    def _submit(self, key: str, kind: str, runner, request) -> Job:
        if self.breaker is not None:
            self.breaker.check()
        with self._lock:
            existing = self._jobs.get(key)
            if existing is not None and not existing.done:
                # identical re-submit while running: attach to the in-flight
                # job (one execution serves every concurrent submitter).
                return existing
            # done or failed: register a fresh job under the same key before
            # probing the cache, so concurrent identical submits attach to it
            # instead of racing into duplicate executions.
            job = Job(id=key, kind=kind)
            self._jobs[key] = job
        cached = self.cache.get(key, expect=dict)
        if cached is not MISS:
            # re-submit after completion (or a result computed by another
            # instance sharing the cache): served with zero work executed.
            job.emit("cache-hit")
            job.finish(result=cached, cached=True, executed=0)
            return job
        if (
            existing is not None
            and existing.state == "done"
            and existing.result is not None
        ):
            # no persistent cache behind the store (NullCache): the done job
            # itself holds the result — attach rather than re-execute.
            with self._lock:
                self._jobs[key] = existing
            return existing
        try:
            self.pool.submit(self._execute, job, runner, request)
        except BaseException:
            # shed (PoolSaturated) or shutdown: forget the stillborn job so a
            # later re-submit gets a fresh admission decision.
            with self._lock:
                if self._jobs.get(key) is job:
                    del self._jobs[key]
            raise
        return job

    # -------------------------------------------------------------- execution
    def _execute(self, job: Job, runner, request) -> None:
        job.mark_running()
        try:
            result, executed = runner(job, request)
        except Exception as exc:  # publish, never let a worker die silently
            job.fail(f"{type(exc).__name__}: {exc}")
            if self.breaker is not None:
                self.breaker.record_failure()
            return
        self.cache.put(job.id, result)
        job.finish(result=result, cached=False, executed=executed)
        if self.breaker is not None:
            self.breaker.record_success()

    def _run_scenario(self, job: Job, request: ScenarioRequest):
        from repro.api import Session

        probe = JobProbe(job, every_datasets=self.progress_every)
        outcome = Session(request.spec).run_online(seed=request.seed, probe=probe)
        probe.finish()
        payload = scenario_result_payload(request.spec, request.seed, outcome.trace)
        return payload, len(outcome.trace.records)

    def _run_suite(self, job: Job, request: SuiteRequest):
        from repro.experiments.sweep import run_suite

        job.emit(
            "suite-start",
            points=request.suite.num_points,
            trials=request.run_trials,
        )
        result = run_suite(
            request.suite,
            seed=request.seed,
            trials=request.trials,
            jobs=self.exec_jobs,
            cache=self.cache,
            reduce=request.reduce,
            max_retries=self.max_retries,
            trial_timeout=self.trial_timeout,
            resume=getattr(self.cache, "enabled", False),
            chaos=self.chaos,
            stop=self._stop,
        )
        if self.metrics is not None:
            for name, count in result.resilience.items():
                if count:
                    self.metrics.inc(f"resilience.{name}", count)
            if result.resumed_trials:
                self.metrics.inc("resilience.resumed_trials", result.resumed_trials)
        if result.interrupted:
            # a drained job must fail honestly: publishing the partial
            # document under the full result key would serve it as complete
            # to every future identical submit.
            raise RuntimeError(
                "suite drained before completion; completed trials are "
                "checkpointed — resubmit to resume"
            )
        if result.failed_count:
            first = result.failures[0]
            raise RuntimeError(
                f"{result.failed_count} of {len(result.points)} suite points "
                f"lost after retry exhaustion (point #{first[0]}: {first[1]})"
            )
        job.emit(
            "suite-points",
            executed=result.executed_count,
            cached=result.cached_count,
        )
        payload = suite_result_payload(result, reduce=request.reduce, key=job.id)
        return payload, result.executed_count
