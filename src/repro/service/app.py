"""The framework-free HTTP surface of the scheduling service.

One pure-WSGI application — a routing table of ``(method, compiled path)``
pairs over plain functions — servable by anything that speaks WSGI.  The
stdlib is enough::

    from wsgiref.simple_server import make_server
    from repro.service import ServiceApp
    make_server("127.0.0.1", 8000, ServiceApp()).serve_forever()

(Use :func:`serve` instead: it picks a *threaded* WSGI server so status polls
keep answering while jobs run.)  No framework is required or imported, but an
ASGI shim (:attr:`ServiceApp.asgi`) is included so ``uvicorn`` can serve the
same app object where it happens to be installed.

Routes (all JSON in, JSON out):

=========================================  ==================================
``POST /v1/scenarios``                     submit ``{"scenario": {...},
                                           "seed": 0}`` → 202 + job document
``POST /v1/suites``                        submit ``{"suite": {...}, "seed",
                                           "trials", "reduce"}`` → 202 + job
``GET /v1/jobs/{id}``                      job status (state, cached,
                                           executed, result_key)
``GET /v1/jobs/{id}/events``               progress events; ``?after=<seq>``
                                           returns only newer ones
``GET /v1/results/{key}``                  the published result document
``GET /v1/healthz``                        liveness + engine version + jobs
``GET /v1/metrics``                        the service MetricsRegistry
=========================================  ==================================

Error mapping: malformed JSON → 400; spec/schema violations → **422** with
the exact :class:`~repro.exceptions.SpecificationError` message (field path
and close-match suggestions — the same text the CLI prints to stderr);
unknown job/result → 404; pool saturated → **429 + Retry-After**; circuit
open → 503 + Retry-After.
"""

from __future__ import annotations

import json
import re
import time
from typing import Callable

from repro.exceptions import SpecificationError
from repro.obs.metrics import MetricsRegistry
from repro.service.jobs import JobStore
from repro.service.limits import CircuitOpen, PoolSaturated, WorkerPool
from repro.service.models import (
    SERVICE_SCHEMA,
    ScenarioRequest,
    SuiteRequest,
    engine_version,
    error_payload,
)

__all__ = ["ServiceApp", "serve"]

_STATUS_TEXT = {
    200: "200 OK",
    202: "202 Accepted",
    400: "400 Bad Request",
    404: "404 Not Found",
    405: "405 Method Not Allowed",
    422: "422 Unprocessable Entity",
    429: "429 Too Many Requests",
    500: "500 Internal Server Error",
    503: "503 Service Unavailable",
}

#: request bodies beyond this are refused (a suite document is kilobytes;
#: megabytes means a client bug or abuse).
MAX_BODY_BYTES = 8 * 1024 * 1024


class _HTTPError(Exception):
    def __init__(self, status: int, message: str, kind: str = "error",
                 retry_after: int | None = None):
        super().__init__(message)
        self.status = status
        self.kind = kind
        self.retry_after = retry_after


class ServiceApp:
    """The WSGI callable: routes requests into a :class:`JobStore`.

    All collaborators are injectable (tests build the app over a tmp-path
    cache and a one-worker pool); the defaults give a working in-memory
    service with no persistent cache.
    """

    def __init__(self, jobs: JobStore | None = None):
        if jobs is None:
            from repro.cache.disk import NullCache

            jobs = JobStore(cache=NullCache(), pool=WorkerPool())
        self.jobs = jobs
        self.metrics = MetricsRegistry()
        if jobs.metrics is None:
            # suite jobs count their resilience events (retries, worker
            # crashes, resumed trials) into the service registry.
            jobs.metrics = self.metrics
        self.started_at = time.time()
        self._routes: list[tuple[str, re.Pattern, Callable]] = [
            ("POST", re.compile(r"^/v1/scenarios$"), self._post_scenario),
            ("POST", re.compile(r"^/v1/suites$"), self._post_suite),
            ("GET", re.compile(r"^/v1/jobs/(?P<job_id>[0-9a-f]{64})$"), self._get_job),
            ("GET", re.compile(r"^/v1/jobs/(?P<job_id>[0-9a-f]{64})/events$"),
             self._get_events),
            ("GET", re.compile(r"^/v1/results/(?P<key>[0-9a-f]{64})$"),
             self._get_result),
            ("GET", re.compile(r"^/v1/healthz$"), self._get_healthz),
            ("GET", re.compile(r"^/v1/metrics$"), self._get_metrics),
        ]

    # ------------------------------------------------------------------- WSGI
    def __call__(self, environ, start_response):
        method = environ.get("REQUEST_METHOD", "GET").upper()
        path = environ.get("PATH_INFO", "/")
        self.metrics.inc("http.requests.total")
        try:
            status, payload, headers = self._dispatch(method, path, environ)
        except _HTTPError as exc:
            status = exc.status
            payload = error_payload(exc.status, str(exc), kind=exc.kind)
            headers = {}
            if exc.retry_after is not None:
                headers["Retry-After"] = str(exc.retry_after)
        except Exception as exc:  # never leak a traceback as a 500 page
            status = 500
            payload = error_payload(500, f"{type(exc).__name__}: {exc}")
            headers = {}
        body = json.dumps(payload, allow_nan=False).encode()
        self.metrics.inc(f"http.responses.{status}")
        start_response(
            _STATUS_TEXT.get(status, f"{status} Error"),
            [
                ("Content-Type", "application/json"),
                ("Content-Length", str(len(body))),
                *headers.items(),
            ],
        )
        return [body]

    def _dispatch(self, method: str, path: str, environ):
        matched_path = False
        for route_method, pattern, handler in self._routes:
            match = pattern.match(path)
            if match is None:
                continue
            matched_path = True
            if route_method == method:
                return handler(environ, **match.groupdict())
        if matched_path:
            raise _HTTPError(405, f"method {method} not allowed on {path}")
        raise _HTTPError(404, f"no route {path}", kind="not-found")

    def _read_json(self, environ) -> dict:
        try:
            length = int(environ.get("CONTENT_LENGTH") or 0)
        except ValueError:
            raise _HTTPError(400, "invalid Content-Length header")
        if length > MAX_BODY_BYTES:
            raise _HTTPError(400, f"request body exceeds {MAX_BODY_BYTES} bytes")
        raw = environ["wsgi.input"].read(length) if length else b""
        if not raw:
            raise _HTTPError(400, "empty request body, expected a JSON object")
        try:
            return json.loads(raw)
        except ValueError as exc:
            raise _HTTPError(400, f"request body is not valid JSON: {exc}")

    # ----------------------------------------------------------------- routes
    def _submit(self, environ, request_cls, submit):
        data = self._read_json(environ)
        try:
            request = request_cls.from_dict(data)
        except SpecificationError as exc:
            # the same validation text the CLI prints on exit 2.
            raise _HTTPError(422, str(exc), kind="invalid-spec")
        try:
            job = submit(request)
        except PoolSaturated as exc:
            self.metrics.inc("jobs.rejected")
            raise _HTTPError(429, str(exc), kind="saturated",
                             retry_after=exc.retry_after)
        except CircuitOpen as exc:
            raise _HTTPError(503, str(exc), kind="circuit-open",
                             retry_after=exc.retry_after)
        self.metrics.inc("jobs.submitted")
        if job.cached:
            self.metrics.inc("jobs.cache_hits")
        payload = {
            "schema": SERVICE_SCHEMA,
            "engine": engine_version(),
            **job.as_dict(),
        }
        return (200 if job.done else 202), payload, {}

    def _post_scenario(self, environ):
        return self._submit(environ, ScenarioRequest, self.jobs.submit_scenario)

    def _post_suite(self, environ):
        return self._submit(environ, SuiteRequest, self.jobs.submit_suite)

    def _get_job(self, environ, job_id: str):
        job = self.jobs.get(job_id)
        if job is None:
            raise _HTTPError(404, f"no job {job_id}", kind="not-found")
        return 200, {"schema": SERVICE_SCHEMA, **job.as_dict()}, {}

    def _get_events(self, environ, job_id: str):
        job = self.jobs.get(job_id)
        if job is None:
            raise _HTTPError(404, f"no job {job_id}", kind="not-found")
        query = environ.get("QUERY_STRING", "")
        after = -1
        for part in query.split("&"):
            if part.startswith("after="):
                try:
                    after = int(part.partition("=")[2])
                except ValueError:
                    raise _HTTPError(400, f"after must be an integer, got {part!r}")
        events = job.events_after(after)
        return 200, {
            "schema": SERVICE_SCHEMA,
            "job": job.id,
            "state": job.state,
            "events": events,
        }, {}

    def _get_result(self, environ, key: str):
        result = self.jobs.get_result(key)
        if result is None:
            raise _HTTPError(
                404,
                f"no result {key} (not computed on this engine version, or "
                f"evicted from the cache)",
                kind="not-found",
            )
        return 200, result, {}

    def _get_healthz(self, environ):
        return 200, {
            "schema": SERVICE_SCHEMA,
            "status": "ok",
            "engine": engine_version(),
            "uptime": round(time.time() - self.started_at, 3),
            "jobs": self.jobs.counts(),
            "pool": {
                "inflight": self.jobs.pool.inflight,
                "capacity": self.jobs.pool.capacity,
                "shed": self.jobs.pool.shed_count,
            },
        }, {}

    def _get_metrics(self, environ):
        return 200, {"schema": SERVICE_SCHEMA, **self.metrics.as_dict()}, {}

    # ------------------------------------------------------------------- ASGI
    @property
    def asgi(self):
        """An ASGI 3 adapter over this app (``uvicorn module:app.asgi``).

        Minimal by design: buffers the request body, runs the WSGI callable,
        sends one response.  The stdlib :func:`serve` path has no use for it;
        it exists so deployments that already run uvicorn can mount the
        service without a second server layer.
        """
        wsgi_app = self

        async def adapter(scope, receive, send):
            if scope["type"] == "lifespan":  # pragma: no cover - uvicorn only
                while True:
                    message = await receive()
                    if message["type"] == "lifespan.startup":
                        await send({"type": "lifespan.startup.complete"})
                    elif message["type"] == "lifespan.shutdown":
                        await send({"type": "lifespan.shutdown.complete"})
                        return
            if scope["type"] != "http":  # pragma: no cover - defensive
                raise RuntimeError(f"unsupported ASGI scope {scope['type']!r}")
            body = b""
            while True:
                message = await receive()
                body += message.get("body", b"")
                if not message.get("more_body"):
                    break
            import io

            environ = {
                "REQUEST_METHOD": scope["method"],
                "PATH_INFO": scope["path"],
                "QUERY_STRING": scope.get("query_string", b"").decode(),
                "CONTENT_LENGTH": str(len(body)),
                "wsgi.input": io.BytesIO(body),
            }
            captured = {}

            def start_response(status, headers):
                captured["status"] = int(status.split(" ", 1)[0])
                captured["headers"] = headers

            chunks = wsgi_app(environ, start_response)
            await send({
                "type": "http.response.start",
                "status": captured["status"],
                "headers": [
                    (name.lower().encode(), value.encode())
                    for name, value in captured["headers"]
                ],
            })
            await send({
                "type": "http.response.body",
                "body": b"".join(chunks),
            })

        return adapter


def serve(app: ServiceApp, host: str = "127.0.0.1", port: int = 8000):
    """Serve *app* on the stdlib WSGI server, threaded, until interrupted.

    Returns the server object (``.serve_forever()`` already wired); the CLI
    calls this, tests call ``make_threaded_server`` below to get an ephemeral
    port without blocking.
    """
    server = make_threaded_server(app, host, port)
    return server


def make_threaded_server(app: ServiceApp, host: str = "127.0.0.1", port: int = 0):
    """A ``wsgiref`` server with a thread per request.

    Plain ``wsgiref.simple_server`` is single-threaded — a poll would block
    behind a running submit handler.  Mixing in
    :class:`socketserver.ThreadingMixIn` gives each request its own thread;
    actual job execution still runs on the bounded worker pool, so this adds
    request concurrency without unbounded work concurrency.
    """
    import socketserver
    from wsgiref.simple_server import WSGIRequestHandler, WSGIServer

    class ThreadingWSGIServer(socketserver.ThreadingMixIn, WSGIServer):
        daemon_threads = True

    class QuietHandler(WSGIRequestHandler):
        def log_message(self, format, *args):  # stderr noise off; metrics on
            pass

    server = ThreadingWSGIServer((host, port), QuietHandler)
    server.set_app(app)
    return server
