"""Request/response models of the scheduling service.

The service speaks the *same* schema as the files on disk: the body of
``POST /v1/scenarios`` wraps a scenario document exactly as ``repro-streaming
run`` would read it, and ``POST /v1/suites`` wraps a suite document exactly as
``repro-streaming suite run`` would.  Validation is therefore the existing
spec validation — :class:`~repro.scenario.spec.ScenarioSpec.from_dict` /
:class:`~repro.scenario.suite.SuiteSpec.from_dict` — and a bad request gets
the very message (field path, close-match suggestions) the CLI prints, as an
HTTP 422 payload instead of a stderr line.

Result identity is the content hash of the :mod:`repro.cache` key machinery:
every response echoes the canonical ``result_key`` (and, for suite points,
each ``campaign_key``), the submitted seed/trials and the engine version
(package version + source digest), so two clients POSTing the same document
to two service instances on the same code get the same address — and a
re-submit is served from that address without executing anything.

Everything here is pure data transformation: no I/O, no threads, no HTTP —
those live in :mod:`repro.service.jobs` and :mod:`repro.service.app`.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import asdict, dataclass
from typing import TYPE_CHECKING, Mapping

from repro.cache.keys import cache_code_version, canonical_json, result_key
from repro.exceptions import SpecificationError
from repro.scenario.spec import ScenarioSpec
from repro.scenario.suite import SuiteSpec
from repro.utils.registry import close_matches_hint

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.experiments.sweep import SweepResult
    from repro.runtime.trace import RuntimeTrace

__all__ = [
    "SERVICE_SCHEMA",
    "engine_version",
    "jsonable",
    "ScenarioRequest",
    "SuiteRequest",
    "scenario_result_key",
    "suite_result_key",
    "trace_fingerprint",
    "scenario_result_payload",
    "suite_result_payload",
    "error_payload",
]

#: version of the service wire format (stamped into every response).
SERVICE_SCHEMA = 1


def engine_version() -> str:
    """The engine identity echoed in every response.

    This is :func:`repro.cache.keys.cache_code_version` — package version plus
    a digest of the installed source tree — i.e. exactly the code component of
    every ``result_key``: responses carrying different engine versions carry
    incomparable result keys, by construction.
    """
    return cache_code_version()


def jsonable(value):
    """Deep-convert *value* to strict JSON types.

    Tuples become lists, mappings become plain dicts, and non-finite floats
    (NaN from an empty latency distribution, infinities) become ``None`` —
    ``json.dumps(allow_nan=False)`` would otherwise refuse the document, and
    ``NaN`` literals are not JSON at all.
    """
    if isinstance(value, bool) or value is None:
        return value
    if isinstance(value, float):
        return value if math.isfinite(value) else None
    if isinstance(value, (int, str)):
        return value
    if isinstance(value, Mapping):
        return {str(k): jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [jsonable(v) for v in value]
    return str(value)


def _check_keys(data: Mapping, allowed: tuple[str, ...], what: str) -> None:
    if not isinstance(data, Mapping):
        raise SpecificationError(
            f"a {what} request must be a JSON object, got {type(data).__name__}"
        )
    for key in data:
        if key not in allowed:
            raise SpecificationError(
                f"unknown {what} request key {key!r}, expected one of "
                f"{sorted(allowed)}{close_matches_hint(key, allowed)}"
            )


def _check_seed(seed, default: int | None = 0) -> int | None:
    if seed is None:
        return default
    if isinstance(seed, bool) or not isinstance(seed, int) or seed < 0:
        raise SpecificationError(
            f"seed must be a non-negative integer, got {seed!r}"
        )
    return seed


@dataclass(frozen=True)
class ScenarioRequest:
    """One validated ``POST /v1/scenarios`` body: a scenario and a run seed.

    The scenario executes as one seeded online run —
    :meth:`Session.run_online <repro.api.Session.run_online>` — and the result
    is a pure function of ``(spec, seed, engine version)``, which is what
    makes :attr:`result_key` its identity.
    """

    spec: ScenarioSpec
    seed: int = 0

    KEYS = ("scenario", "seed")

    @classmethod
    def from_dict(cls, data: Mapping) -> "ScenarioRequest":
        """Validate a request body; raises :class:`SpecificationError`."""
        _check_keys(data, cls.KEYS, "scenario")
        if "scenario" not in data:
            raise SpecificationError(
                "scenario request must carry a 'scenario' key holding the "
                "scenario document (the same JSON 'repro-streaming run' reads)"
            )
        from repro.scenario.run import validate_spec_options

        spec = ScenarioSpec.from_dict(data["scenario"])
        validate_spec_options(spec)  # bad scheduler.options → 422 now, not a failed job
        return cls(spec=spec, seed=_check_seed(data.get("seed")))

    @property
    def result_key(self) -> str:
        return scenario_result_key(self.spec, self.seed)


@dataclass(frozen=True)
class SuiteRequest:
    """One validated ``POST /v1/suites`` body: a suite plus overrides.

    *seed* and *trials* default to the suite's own declared values (exactly
    the ``--seed`` / ``--trials`` overrides of ``repro-streaming suite run``);
    *reduce* selects the worker transport and is part of the identity — the
    two payload shapes carry different information.
    """

    suite: SuiteSpec
    seed: int | None = None
    trials: int | None = None
    reduce: str = "stats"

    KEYS = ("suite", "seed", "trials", "reduce")

    @classmethod
    def from_dict(cls, data: Mapping) -> "SuiteRequest":
        """Validate a request body; raises :class:`SpecificationError`."""
        _check_keys(data, cls.KEYS, "suite")
        if "suite" not in data:
            raise SpecificationError(
                "suite request must carry a 'suite' key holding the suite "
                "document (the same JSON 'repro-streaming suite run' reads)"
            )
        trials = data.get("trials")
        if trials is not None and (
            isinstance(trials, bool) or not isinstance(trials, int) or trials < 1
        ):
            raise SpecificationError(f"trials must be an int >= 1, got {trials!r}")
        reduce = data.get("reduce", "stats")
        from repro.experiments.parallel import REDUCTIONS

        if reduce not in REDUCTIONS:
            raise SpecificationError(
                f"reduce must be one of {list(REDUCTIONS)}, got {reduce!r}"
                f"{close_matches_hint(reduce, REDUCTIONS)}"
            )
        from repro.scenario.run import validate_spec_options

        suite = SuiteSpec.from_dict(data["suite"])
        validate_spec_options(suite.base)
        return cls(
            suite=suite,
            seed=_check_seed(data.get("seed"), default=None),
            trials=trials,
            reduce=reduce,
        )

    @property
    def run_seed(self) -> int:
        """The seed the run executes with (override or suite default)."""
        return self.suite.seed if self.seed is None else self.seed

    @property
    def run_trials(self) -> int:
        return self.suite.trials if self.trials is None else self.trials

    @property
    def result_key(self) -> str:
        return suite_result_key(self.suite, self.run_seed, self.run_trials, self.reduce)


# ------------------------------------------------------------- result identity
def scenario_result_key(spec: ScenarioSpec, seed: int) -> str:
    """The content address of one online run: ``(spec, seed, engine)``.

    Same derivation as every cache key (:func:`repro.cache.keys.result_key`),
    under its own ``kind`` so service results never collide with campaign
    entries.
    """
    return result_key("service-online-run", spec, seed)


def suite_result_key(
    suite: SuiteSpec, seed: int, trials: int, reduce: str = "stats"
) -> str:
    """The content address of one whole suite run.

    The per-point campaigns keep their own :func:`~repro.cache.keys.
    campaign_key` addresses (the suite runner reuses them point by point);
    this key addresses the assembled suite-level result document.
    """
    return result_key(
        "service-suite-run", suite, seed, trials=int(trials), reduce=str(reduce)
    )


def trace_fingerprint(trace: "RuntimeTrace") -> str:
    """A stable content hash of one runtime trace (bit-identity witness).

    Two traces are equal iff their fingerprints are equal: the digest covers
    every dataset record, every runtime event and the aggregate fields, with
    floats rendered by exact ``repr``.  The CI service smoke test asserts a
    re-POST returns the *same fingerprint* — cached results are bit-identical
    to re-execution, not merely statistically close.
    """
    digest = hashlib.sha256()
    for record in trace.records:
        digest.update(
            f"{record.index}|{record.release!r}|{record.completion!r}|{record.status}\n".encode()
        )
    for event in trace.events:
        digest.update(
            f"{event.time!r}|{event.kind}|{event.processor}|{event.detail}\n".encode()
        )
    digest.update(
        f"{trace.period!r}|{trace.horizon!r}|{trace.num_rebuilds}|"
        f"{trace.downtime!r}|{trace.aborted}|{trace.policy}|"
        f"{trace.admission}|{trace.checkpoint}|{','.join(trace.final_alive)}".encode()
    )
    return digest.hexdigest()


# ------------------------------------------------------------ result payloads
def scenario_result_payload(
    spec: ScenarioSpec, seed: int, trace: "RuntimeTrace"
) -> dict:
    """The JSON result document of one scenario job (``GET /v1/results/{key}``).

    Carries the identity block (key, engine, seed), the same headline summary
    :meth:`OnlineResult.summary <repro.api.OnlineResult.summary>` prints, and
    the exact trace fingerprint.
    """
    from repro.api import OnlineResult

    summary = OnlineResult(spec=spec, seed=seed, trace=trace).summary()
    return jsonable(
        {
            "schema": SERVICE_SCHEMA,
            "kind": "scenario",
            "result_key": scenario_result_key(spec, seed),
            "engine": engine_version(),
            "name": spec.name,
            "seed": seed,
            "summary": {key.replace(" ", "_"): value for key, value in summary.items()},
            "fingerprint": trace_fingerprint(trace),
            "num_events": len(trace.events),
        }
    )


def suite_result_payload(
    result: "SweepResult", reduce: str | None = None, key: str | None = None
) -> dict:
    """The JSON result document of one suite run.

    This is the *one* machine-readable suite summary: ``GET /v1/results/{key}``
    serves it and ``repro-streaming suite report --json`` prints it, so a
    dashboard reads the same document whether the run happened over HTTP or in
    a shell.  Each grid point carries its axis values, its derived campaign
    seed, its canonical ``campaign_key``, whether it was served from cache,
    and the full :class:`~repro.runtime.trace.RuntimeStats` (including the
    sparse merge-exact latency histogram).
    """
    from repro.cache.keys import campaign_key

    suite = result.suite
    points = []
    for point in result.points:
        entry = {
            "axes": {path: point.value_of(path) for path in suite.axes},
            "seed": point.seed,
            "source": "cache" if point.cached else "run",
            "stats": asdict(point.stats),
        }
        if reduce is not None:
            entry["campaign_key"] = campaign_key(
                point.spec, point.seed, result.trials, reduce=reduce
            )
        points.append(entry)
    payload = {
        "schema": SERVICE_SCHEMA,
        "kind": "suite",
        "engine": engine_version(),
        "name": suite.name,
        "seed": result.seed,
        "trials": result.trials,
        "num_points": len(result.points),
        "executed_points": result.executed_count,
        "cached_points": result.cached_count,
        "axes": {path: list(values) for path, values in suite.axes.items()},
        "cache": (
            {
                "enabled": True,
                "hits": result.cache_stats.hits,
                "misses": result.cache_stats.misses,
                "errors": result.cache_stats.errors,
                "writes": result.cache_stats.writes,
            }
            if result.cache_enabled
            else {"enabled": False}
        ),
        "points": points,
    }
    if reduce is not None:
        payload["reduce"] = reduce
    if key is not None:
        payload["result_key"] = key
    return jsonable(payload)


def error_payload(status: int, message: str, kind: str = "error") -> dict:
    """The uniform JSON error body (422 validation, 404, 429 shed, ...)."""
    return {
        "schema": SERVICE_SCHEMA,
        "error": {"status": status, "kind": kind, "message": message},
    }


def request_digest(data) -> str:  # pragma: no cover - debugging helper
    """Content hash of an arbitrary JSON request body (log correlation)."""
    return hashlib.sha256(canonical_json(jsonable(data)).encode()).hexdigest()
