"""Heterogeneous target-platform substrate.

The paper targets ``m`` fully-interconnected heterogeneous processors.
Processor ``P_u`` has speed ``s_u``; the link ``l_kh`` between ``P_k`` and
``P_h`` has bandwidth ``d_kh`` (if the route is made of several physical links,
the bandwidth of the slowest one is retained).  Communications obey the
bi-directional one-port model with full computation/communication overlap.
"""

from repro.platform.processor import Processor
from repro.platform.platform import Platform
from repro.platform.builders import (
    homogeneous_platform,
    heterogeneous_platform,
    paper_platform,
    figure1_platform,
    figure2_platform,
)

__all__ = [
    "Processor",
    "Platform",
    "homogeneous_platform",
    "heterogeneous_platform",
    "paper_platform",
    "figure1_platform",
    "figure2_platform",
]
