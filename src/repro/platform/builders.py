"""Platform factory helpers.

These functions build the platforms used throughout the paper:

* :func:`figure1_platform` — the 4-processor example of Section 1;
* :func:`figure2_platform` — the 8/10-processor homogeneous network of Section 4.3;
* :func:`paper_platform` — the 20-processor heterogeneous platform of the
  experimental section, with link unit message delays drawn uniformly in
  ``[0.5, 1]`` (i.e. bandwidths in ``[1, 2]`` data units per time unit).
"""

from __future__ import annotations

import numpy as np

from repro.platform.platform import Platform
from repro.platform.processor import Processor
from repro.utils.checks import check_positive
from repro.utils.rng import ensure_rng

__all__ = [
    "homogeneous_platform",
    "heterogeneous_platform",
    "paper_platform",
    "figure1_platform",
    "figure2_platform",
]


def homogeneous_platform(m: int, speed: float = 1.0, bandwidth: float = 1.0) -> Platform:
    """A platform of *m* identical processors with identical links."""
    if m < 1:
        raise ValueError(f"m must be >= 1, got {m}")
    check_positive(speed, "speed")
    check_positive(bandwidth, "bandwidth")
    procs = [Processor(f"P{i + 1}", speed) for i in range(m)]
    return Platform(procs, bandwidths=bandwidth)


def heterogeneous_platform(
    m: int,
    speed_range: tuple[float, float] = (0.5, 1.0),
    delay_range: tuple[float, float] = (0.5, 1.0),
    seed: int | np.random.Generator | None = None,
) -> Platform:
    """A random heterogeneous platform.

    Processor speeds are drawn uniformly from *speed_range*.  Link **unit
    message delays** (time to send one data unit, i.e. ``1/bandwidth``) are
    drawn uniformly from *delay_range*, matching the experimental setup of the
    paper ("the unit message delay of the links ... chosen uniformly from
    [0.5, 1]").  Links are symmetric.
    """
    if m < 1:
        raise ValueError(f"m must be >= 1, got {m}")
    lo_s, hi_s = speed_range
    lo_d, hi_d = delay_range
    check_positive(lo_s, "speed_range low")
    check_positive(lo_d, "delay_range low")
    if hi_s < lo_s or hi_d < lo_d:
        raise ValueError("ranges must be (low, high) with low <= high")
    rng = ensure_rng(seed)
    procs = [Processor(f"P{i + 1}", float(rng.uniform(lo_s, hi_s))) for i in range(m)]
    platform = Platform(procs, default_bandwidth=1.0)
    names = platform.processor_names
    for i, src in enumerate(names):
        for dst in names[i + 1 :]:
            delay = float(rng.uniform(lo_d, hi_d))
            platform.set_bandwidth(src, dst, 1.0 / delay, symmetric=True)
    return platform


def paper_platform(seed: int | np.random.Generator | None = None, m: int = 20) -> Platform:
    """The experimental platform of Section 5: 20 heterogeneous processors,
    unit message delays in ``[0.5, 1]``, processor speeds in ``[0.5, 1]``."""
    return heterogeneous_platform(m, speed_range=(0.5, 1.0), delay_range=(0.5, 1.0), seed=seed)


def figure1_platform() -> Platform:
    """The 4-processor platform of the introduction example: ``s1 = s3 = 1.5``,
    ``s2 = s4 = 1``, all links of unit bandwidth."""
    procs = [
        Processor("P1", 1.5),
        Processor("P2", 1.0),
        Processor("P3", 1.5),
        Processor("P4", 1.0),
    ]
    return Platform(procs, bandwidths=1.0)


def figure2_platform(m: int = 8) -> Platform:
    """The fully homogeneous network of the Section 4.3 example (speed 1,
    unit bandwidth); ``m`` defaults to 8 and is set to 10 to show where LTF
    eventually succeeds."""
    return homogeneous_platform(m, speed=1.0, bandwidth=1.0)
