"""The :class:`Processor` resource."""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.checks import check_positive

__all__ = ["Processor"]


@dataclass(frozen=True)
class Processor:
    """A processor of the target platform.

    Parameters
    ----------
    name:
        Unique identifier (e.g. ``"P1"``).
    speed:
        Relative speed ``s_u`` (strictly positive).  A task of work ``E(t)``
        executes in ``E(t) / speed`` time units on this processor.
    """

    name: str
    speed: float = 1.0

    def __post_init__(self) -> None:
        if not isinstance(self.name, str) or not self.name:
            raise ValueError(f"processor name must be a non-empty string, got {self.name!r}")
        check_positive(self.speed, f"speed of processor {self.name!r}")
        object.__setattr__(self, "speed", float(self.speed))

    def execution_time(self, work: float) -> float:
        """Time to execute *work* units of computation on this processor."""
        check_positive(work, "work")
        return work / self.speed

    def __repr__(self) -> str:
        return f"Processor({self.name!r}, speed={self.speed:g})"
