"""The :class:`Platform`: a set of processors fully interconnected by links.

Bandwidths are stored per ordered processor pair; by default the platform is
symmetric (``d_kh = d_hk``), which matches the paper's model, but asymmetric
links are supported because nothing in the algorithms depends on symmetry.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping, Sequence

import numpy as np

from repro.exceptions import PlatformError
from repro.platform.processor import Processor
from repro.utils.checks import check_positive

__all__ = ["Platform"]


class Platform:
    """A fully-connected heterogeneous platform.

    Parameters
    ----------
    processors:
        The processors ``P_1 … P_m`` (at least one; names must be unique).
    bandwidths:
        Either a single float (uniform bandwidth for every link), or a mapping
        ``{(src_name, dst_name): bandwidth}``.  Missing pairs default to
        ``default_bandwidth``.  Bandwidth between a processor and itself is
        irrelevant (local communications are free) and ignored.
    default_bandwidth:
        Bandwidth used for pairs absent from *bandwidths*.
    failure_domains:
        Optional failure-domain topology: a mapping ``{domain_name: [processor
        names]}`` declaring which processors share a rack / power domain and
        therefore crash *together* under a correlated fault regime (see
        :func:`repro.failures.scenarios.sample_fault_trace`).  Domains must be
        disjoint; processors left out of every domain fail independently.
    """

    def __init__(
        self,
        processors: Sequence[Processor],
        bandwidths: float | Mapping[tuple[str, str], float] | None = None,
        default_bandwidth: float = 1.0,
        failure_domains: Mapping[str, Sequence[str]] | None = None,
    ):
        processors = list(processors)
        if not processors:
            raise PlatformError("a platform needs at least one processor")
        names = [p.name for p in processors]
        if len(set(names)) != len(names):
            raise PlatformError(f"duplicate processor names: {names}")
        self._processors: dict[str, Processor] = {p.name: p for p in processors}
        self._order: tuple[str, ...] = tuple(names)
        check_positive(default_bandwidth, "default_bandwidth")
        self._default_bandwidth = float(default_bandwidth)
        self._bandwidths: dict[tuple[str, str], float] = {}
        self._failure_domains = self._check_domains(failure_domains)

        if bandwidths is None:
            pass
        elif isinstance(bandwidths, (int, float)):
            check_positive(float(bandwidths), "bandwidth")
            self._default_bandwidth = float(bandwidths)
        else:
            for (src, dst), bw in bandwidths.items():
                self.set_bandwidth(src, dst, bw)

    def _check_domains(
        self, domains: Mapping[str, Sequence[str]] | None
    ) -> dict[str, tuple[str, ...]]:
        if not domains:
            return {}
        seen: set[str] = set()
        checked: dict[str, tuple[str, ...]] = {}
        for domain, members in domains.items():
            members = tuple(members)
            if not members:
                raise PlatformError(f"failure domain {domain!r} is empty")
            for member in members:
                if member not in self._processors:
                    raise PlatformError(
                        f"failure domain {domain!r} names unknown processor {member!r}"
                    )
                if member in seen:
                    raise PlatformError(
                        f"processor {member!r} belongs to more than one failure domain"
                    )
                seen.add(member)
            checked[domain] = members
        return checked

    # ---------------------------------------------------------------- accessors
    @property
    def failure_domains(self) -> dict[str, tuple[str, ...]]:
        """Failure-domain topology ``{domain: member names}`` (empty if undeclared)."""
        return dict(self._failure_domains)

    @property
    def num_processors(self) -> int:
        """``m`` — number of processors."""
        return len(self._order)

    @property
    def processor_names(self) -> tuple[str, ...]:
        """Processor names in declaration order."""
        return self._order

    @property
    def processors(self) -> tuple[Processor, ...]:
        """Processor objects in declaration order."""
        return tuple(self._processors[n] for n in self._order)

    def processor(self, name: str) -> Processor:
        """Return the processor called *name*."""
        try:
            return self._processors[name]
        except KeyError:
            raise PlatformError(f"unknown processor {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._processors

    def __len__(self) -> int:
        return len(self._order)

    def __iter__(self) -> Iterator[Processor]:
        return iter(self.processors)

    def speed(self, name: str) -> float:
        """Speed ``s_u`` of processor *name*."""
        return self.processor(name).speed

    # --------------------------------------------------------------- bandwidths
    def set_bandwidth(self, src: str, dst: str, bandwidth: float, symmetric: bool = True) -> None:
        """Set the bandwidth of link ``l_{src,dst}`` (and the reverse link if *symmetric*)."""
        self.processor(src)
        self.processor(dst)
        if src == dst:
            return
        check_positive(bandwidth, f"bandwidth of link {src!r}->{dst!r}")
        self._bandwidths[(src, dst)] = float(bandwidth)
        if symmetric:
            self._bandwidths[(dst, src)] = float(bandwidth)

    def bandwidth(self, src: str, dst: str) -> float:
        """Bandwidth ``d_kh`` of the link from *src* to *dst*.

        Local "links" (``src == dst``) report infinite bandwidth, consistent
        with communications between co-located tasks being free.
        """
        self.processor(src)
        self.processor(dst)
        if src == dst:
            return float("inf")
        return self._bandwidths.get((src, dst), self._default_bandwidth)

    # -------------------------------------------------------------------- costs
    def execution_time(self, work: float, processor: str) -> float:
        """Execution time of *work* units on *processor*."""
        return self.processor(processor).execution_time(work)

    def communication_time(self, volume: float, src: str, dst: str) -> float:
        """Transfer time of *volume* data units from *src* to *dst* (0 when co-located)."""
        check_positive(volume, "volume")
        if src == dst:
            return 0.0
        return volume / self.bandwidth(src, dst)

    # ------------------------------------------------------------ aggregate stats
    @property
    def speeds(self) -> np.ndarray:
        """Vector of processor speeds in declaration order."""
        return np.array([self._processors[n].speed for n in self._order], dtype=float)

    @property
    def min_speed(self) -> float:
        """Speed of the slowest processor."""
        return float(self.speeds.min())

    @property
    def max_speed(self) -> float:
        """Speed of the fastest processor."""
        return float(self.speeds.max())

    @property
    def mean_inverse_speed(self) -> float:
        """Average of ``1/s_u`` — used for average execution times in priorities."""
        return float((1.0 / self.speeds).mean())

    def _all_bandwidths(self) -> np.ndarray:
        vals = []
        for src in self._order:
            for dst in self._order:
                if src != dst:
                    vals.append(self.bandwidth(src, dst))
        return np.array(vals, dtype=float) if vals else np.array([self._default_bandwidth])

    @property
    def min_bandwidth(self) -> float:
        """Bandwidth of the slowest link."""
        return float(self._all_bandwidths().min())

    @property
    def mean_inverse_bandwidth(self) -> float:
        """Average of ``1/d_kh`` over distinct pairs — used for average communication times."""
        return float((1.0 / self._all_bandwidths()).mean())

    @property
    def fastest_processor(self) -> str:
        """Name of (one of) the fastest processors."""
        return max(self._order, key=lambda n: (self._processors[n].speed, n))

    def mean_execution_time(self, work: float) -> float:
        """Average over processors of the execution time of *work* units."""
        check_positive(work, "work")
        return work * self.mean_inverse_speed

    # ------------------------------------------------------------------ helpers
    def subset(self, names: Iterable[str]) -> "Platform":
        """A new platform restricted to *names* (bandwidths and failure
        domains are preserved; domains are intersected with *names*)."""
        names = list(names)
        procs = [self.processor(n) for n in names]
        kept = set(names)
        domains = {
            domain: [m for m in members if m in kept]
            for domain, members in self._failure_domains.items()
        }
        domains = {d: m for d, m in domains.items() if m}
        sub = Platform(
            procs,
            default_bandwidth=self._default_bandwidth,
            failure_domains=domains or None,
        )
        for src in names:
            for dst in names:
                if src != dst and (src, dst) in self._bandwidths:
                    sub.set_bandwidth(src, dst, self._bandwidths[(src, dst)], symmetric=False)
        return sub

    def __repr__(self) -> str:
        return f"Platform(m={self.num_processors}, speeds=[{self.min_speed:g}..{self.max_speed:g}])"
