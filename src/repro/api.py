"""The Session facade: one typed entry point for every front end.

A :class:`Session` wraps one :class:`~repro.scenario.spec.ScenarioSpec` and
drives every execution front end of the reproduction through it —

* :meth:`Session.schedule` — build the ε-fault-tolerant schedule (the static
  machinery of the paper);
* :meth:`Session.simulate` — stream data sets through the offline
  discrete-event simulator (sanity check of the ``L = (2S−1)·Δ`` model);
* :meth:`Session.run_online` — one seeded run of the online runtime under
  stochastic failures, bit-identical to a direct
  :class:`~repro.runtime.engine.OnlineRuntime` call on the same inputs;
* :meth:`Session.monte_carlo` — a parallel Monte-Carlo campaign of such runs;
* :meth:`Session.sweep` — a whole grid of such campaigns over arbitrary spec
  axes (or a :class:`~repro.scenario.suite.SuiteSpec` loaded from one file),
  sharded across processes, served from the spec-hash result cache, returning
  figure-ready panels.

The first four return uniform :class:`Result` objects carrying the spec, the
seed and a ``summary()`` of headline metrics, so reports and CLIs render any
of them the same way; sweeps return a
:class:`~repro.experiments.sweep.SweepResult` with pivoting helpers.

>>> from repro.api import Session
>>> session = Session.from_dict({
...     "workload": {"num_tasks": 15, "num_processors": 6},
...     "scheduler": {"epsilon": 1},
... })
>>> result = session.schedule()
>>> result.schedule.epsilon
1

Scenario files make the same session reproducible from disk, and suite files
sweep whole grids of them through the result cache::

    session = Session.from_file("examples/scenario.json")
    print(session.run_online(seed=0).summary())

    suite = SuiteSpec.from_file("examples/suite.json")
    result = session.sweep(suite, cache="results-cache/")
    print(result.panel(x_axis="faults.mttf_periods", metric="availability"))
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import ClassVar, Mapping

from repro.failures.simulator import SimulationResult, StreamingSimulator
from repro.graph.generator import PaperWorkload
from repro.runtime.trace import RuntimeStats, RuntimeTrace
from repro.scenario.run import (
    active_workload,
    build_schedule,
    build_workload,
    execute_online,
    resolve_period,
    resolve_seeds,
)
from repro.scenario.spec import ScenarioSpec
from repro.schedule.metrics import latency_upper_bound
from repro.schedule.stages import num_stages
from repro.schedule.schedule import Schedule

__all__ = [
    "Session",
    "Result",
    "ScheduleResult",
    "SimulateResult",
    "OnlineResult",
    "MonteCarloResult",
]


# ------------------------------------------------------------------- results
@dataclass(frozen=True)
class Result:
    """Common shape of every Session outcome: spec + seed + summary.

    Every front end returns a subclass (:class:`ScheduleResult`,
    :class:`SimulateResult`, :class:`OnlineResult`, :class:`MonteCarloResult`)
    that keeps the full domain objects (schedule, traces, …) *and* renders
    uniformly: ``summary()`` gives the headline metrics, ``as_rows()`` the
    same as table rows, and ``kind`` tags the front end that produced it.

    >>> from repro.api import Session
    >>> result = Session.from_dict({
    ...     "workload": {"num_tasks": 12, "num_processors": 6},
    ...     "scheduler": {"epsilon": 1},
    ... }).schedule()
    >>> result.kind
    'schedule'
    >>> result.seed
    0
    >>> [name for name, _ in result.as_rows()][:3]
    ['algorithm', 'period', 'epsilon']
    """

    spec: ScenarioSpec
    seed: int

    kind: ClassVar[str] = "result"

    def summary(self) -> dict[str, object]:
        """Headline metrics of the run, name → value."""
        raise NotImplementedError  # pragma: no cover - abstract

    def as_rows(self) -> list[list[object]]:
        """The summary as ``[name, value]`` rows for table rendering."""
        return [[name, value] for name, value in self.summary().items()]


@dataclass(frozen=True)
class ScheduleResult(Result):
    """Outcome of :meth:`Session.schedule`."""

    workload: PaperWorkload
    schedule: Schedule

    kind: ClassVar[str] = "schedule"

    def summary(self) -> dict[str, object]:
        return {
            "algorithm": self.schedule.algorithm,
            "period": self.schedule.period,
            "epsilon": self.schedule.epsilon,
            "stages": num_stages(self.schedule),
            "latency upper bound": latency_upper_bound(self.schedule),
            "used processors": len(self.schedule.used_processors()),
        }


@dataclass(frozen=True)
class SimulateResult(Result):
    """Outcome of :meth:`Session.simulate`."""

    workload: PaperWorkload
    schedule: Schedule
    simulation: SimulationResult

    kind: ClassVar[str] = "simulate"

    def summary(self) -> dict[str, object]:
        return {
            "datasets": self.simulation.num_datasets,
            "steady-state latency": self.simulation.steady_state_latency,
            "max latency": self.simulation.max_latency,
            "achieved period": self.simulation.achieved_period,
            "schedule period": self.simulation.period,
        }


@dataclass(frozen=True)
class OnlineResult(Result):
    """Outcome of :meth:`Session.run_online`."""

    trace: RuntimeTrace

    kind: ClassVar[str] = "online"

    def summary(self) -> dict[str, object]:
        trace = self.trace
        return {
            "datasets": trace.num_datasets,
            "completed": trace.completed_count,
            "lost": trace.lost_count,
            "loss rate": trace.loss_rate,
            "mean latency": trace.mean_latency,
            "p95 latency": trace.p95_latency,
            "p99 latency": trace.p99_latency,
            "rebuilds": trace.num_rebuilds,
            "downtime": trace.downtime,
            "availability": trace.availability,
            "aborted": trace.aborted,
        }


@dataclass(frozen=True)
class MonteCarloResult(Result):
    """Outcome of :meth:`Session.monte_carlo`."""

    campaign: "RuntimeCampaignResult"  # noqa: F821 - imported lazily

    kind: ClassVar[str] = "monte-carlo"

    @property
    def traces(self) -> tuple[RuntimeTrace, ...]:
        if self.campaign.traces is None:
            raise ValueError(
                "this campaign ran with reduce='stats': the traces were "
                "summarized inside the workers and never shipped back — "
                "re-run with reduce='traces' to keep them"
            )
        return self.campaign.traces

    @property
    def stats(self) -> RuntimeStats:
        return self.campaign.stats

    def summary(self) -> dict[str, object]:
        return {name: value for name, value in self.stats.as_rows()}


# ------------------------------------------------------------------- session
class Session:
    """Run one declarative scenario through any front end (see module doc)."""

    def __init__(self, spec: ScenarioSpec):
        if not isinstance(spec, ScenarioSpec):
            raise TypeError(
                f"Session expects a ScenarioSpec, got {type(spec).__name__} "
                f"(use Session.from_dict / Session.from_file for raw data)"
            )
        self._spec = spec
        # (workload, schedule, period) per seed — schedule() then simulate()
        # on the same seed builds the pipeline once.
        self._built: dict[int, tuple[PaperWorkload, Schedule]] = {}

    # ------------------------------------------------------------ constructors
    @classmethod
    def from_spec(cls, spec: ScenarioSpec) -> "Session":
        """Session over an already-built spec (alias of the constructor)."""
        return cls(spec)

    @classmethod
    def from_dict(cls, data: Mapping) -> "Session":
        """Session from a nested scenario mapping (validated)."""
        return cls(ScenarioSpec.from_dict(data))

    @classmethod
    def from_json(cls, text: str) -> "Session":
        """Session from a scenario JSON document."""
        return cls(ScenarioSpec.from_json(text))

    @classmethod
    def from_file(cls, path: str | Path) -> "Session":
        """Session from a scenario JSON file (``scenario.json``)."""
        return cls(ScenarioSpec.from_file(path))

    # ----------------------------------------------------------------- access
    @property
    def spec(self) -> ScenarioSpec:
        """The immutable scenario this session runs."""
        return self._spec

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Session({self._spec.describe()})"

    # ------------------------------------------------------------- front ends
    def _pipeline(self, seed: int) -> tuple[PaperWorkload, Schedule]:
        if seed not in self._built:
            workload_seed, _ = resolve_seeds(self._spec, seed)
            workload = build_workload(self._spec.workload, workload_seed)
            period = resolve_period(workload, self._spec.scheduler)
            # Elastic regimes schedule on the initially-active subset (the
            # spares join mid-stream); the cached workload keeps the full
            # platform for the fault trace and the runtime's candidate pool.
            schedule = build_schedule(
                active_workload(workload, self._spec.faults),
                self._spec.scheduler,
                period,
            )
            self._built[seed] = (workload, schedule)
        return self._built[seed]

    def workload(self, seed: int = 0) -> PaperWorkload:
        """Materialize the scenario's workload for one run seed."""
        return self._pipeline(seed)[0]

    def schedule(self, seed: int = 0) -> ScheduleResult:
        """Build the ε-fault-tolerant schedule of the scenario.

        >>> result = Session.from_dict({
        ...     "workload": {"num_tasks": 12, "num_processors": 6},
        ...     "scheduler": {"epsilon": 1},
        ... }).schedule()
        >>> result.schedule.epsilon
        1
        >>> result.summary()["stages"] >= 1
        True
        """
        workload, schedule = self._pipeline(seed)
        return ScheduleResult(
            spec=self._spec, seed=seed, workload=workload, schedule=schedule
        )

    def simulate(
        self, num_datasets: int | None = None, seed: int = 0
    ) -> SimulateResult:
        """Stream data sets through the offline (crash-free) simulator.

        *num_datasets* defaults to the spec's ``runtime.num_datasets``.  The
        steady-state latency sanity-checks the paper's ``L = (2S−1)·Δ`` model.

        >>> result = Session.from_dict({
        ...     "workload": {"num_tasks": 12, "num_processors": 6},
        ...     "scheduler": {"epsilon": 1},
        ... }).simulate(num_datasets=5)
        >>> result.simulation.num_datasets
        5
        >>> result.summary()["steady-state latency"] > 0
        True
        """
        workload, schedule = self._pipeline(seed)
        count = self._spec.runtime.num_datasets if num_datasets is None else num_datasets
        simulation = StreamingSimulator(
            schedule, fast_forward=self._spec.runtime.fast_forward
        ).run(count)
        return SimulateResult(
            spec=self._spec,
            seed=seed,
            workload=workload,
            schedule=schedule,
            simulation=simulation,
        )

    def run_online(self, seed: int = 0, probe=None) -> OnlineResult:
        """One seeded online run under the scenario's stochastic failures.

        The trace is a pure function of ``(spec, seed)`` and bit-identical to
        the equivalent direct :class:`~repro.runtime.engine.OnlineRuntime`
        call (the historical Monte-Carlo trial path).  The workload and
        schedule come from the per-seed pipeline cache, so
        ``schedule()`` / ``simulate()`` / ``run_online()`` on one seed build
        them once.

        *probe* attaches a :class:`repro.obs.probe.Probe` (e.g.
        :class:`~repro.obs.probe.MetricsProbe`) to the run; instrumentation
        observes without perturbing — the trace is identical with and
        without a probe.

        >>> session = Session.from_dict({
        ...     "workload": {"num_tasks": 12, "num_processors": 6},
        ...     "scheduler": {"epsilon": 1},
        ...     "runtime": {"num_datasets": 20},
        ... })
        >>> trace = session.run_online(seed=3).trace
        >>> trace == session.run_online(seed=3).trace  # pure in (spec, seed)
        True
        >>> trace.num_datasets
        20
        """
        workload, schedule = self._pipeline(seed)
        _, fault_seed = resolve_seeds(self._spec, seed)
        return OnlineResult(
            spec=self._spec,
            seed=seed,
            trace=execute_online(self._spec, workload, schedule, fault_seed, probe=probe),
        )

    def monte_carlo(
        self,
        trials: int = 20,
        seed: int = 0,
        jobs: int | None = 1,
        cache=None,
        reduce: str = "traces",
        *,
        max_retries: int = 2,
        trial_timeout: float | None = None,
        resume: bool = False,
        chaos=None,
        stop=None,
    ) -> MonteCarloResult:
        """A Monte-Carlo campaign of online runs, ``jobs`` trials at a time.

        Child seeds derive up front from *seed*, so the result is bit-for-bit
        identical for any ``jobs`` value.  *cache* (a :mod:`repro.cache`
        object or a directory path) serves the whole campaign from its
        content address when the identical ``(spec, seed, trials, reduce)``
        ran before on this code version.  *reduce* selects the worker
        payload: ``"traces"`` (default) keeps every trial's full trace,
        ``"stats"`` summarizes each trace inside the worker so only a few
        floats per trial cross the process boundary — identical
        :attr:`~MonteCarloResult.stats`, but :attr:`~MonteCarloResult.traces`
        is then unavailable.

        The resilience keywords pass straight through to
        :func:`~repro.experiments.parallel.run_runtime_campaign`:
        *max_retries* / *trial_timeout* bound the supervised pool's recovery
        from dead or stuck workers, *resume* checkpoints each trial to the
        cache as it completes (an interrupted campaign re-executes only the
        missing trials), and *chaos* injects seeded toolchain faults for
        testing (see :mod:`repro.resilience`).

        >>> session = Session.from_dict({
        ...     "workload": {"num_tasks": 12, "num_processors": 6},
        ...     "scheduler": {"epsilon": 1},
        ...     "runtime": {"num_datasets": 20},
        ... })
        >>> mc = session.monte_carlo(trials=2, seed=1)
        >>> mc.stats.trials
        2
        >>> lean = session.monte_carlo(trials=2, seed=1, reduce="stats")
        >>> lean.stats == mc.stats
        True
        """
        # Imported lazily: the experiments package must not load on import of
        # the facade (it pulls the whole campaign/figure stack).
        from repro.experiments.parallel import run_runtime_campaign

        campaign = run_runtime_campaign(
            self._spec, trials=trials, seed=seed, jobs=jobs, cache=cache,
            reduce=reduce, max_retries=max_retries, trial_timeout=trial_timeout,
            resume=resume, chaos=chaos, stop=stop,
        )
        return MonteCarloResult(spec=self._spec, seed=seed, campaign=campaign)

    def sweep(
        self,
        axes=None,
        trials: int | None = None,
        seed: int | None = None,
        jobs: int | None = 1,
        cache=None,
        name: str | None = None,
        reduce: str = "traces",
        max_retries: int = 2,
        trial_timeout: float | None = None,
        resume: bool = False,
        chaos=None,
        stop=None,
        **kw_axes,
    ) -> "SweepResult":  # noqa: F821 - imported lazily
        """A grid of Monte-Carlo campaigns over arbitrary spec axes.

        *axes* is either a mapping of dotted spec paths to value lists — the
        grid is their cartesian product applied to this session's spec (first
        axis major; keyword axes use ``__`` for the dot, as in
        :meth:`ScenarioSpec.grid <repro.scenario.spec.ScenarioSpec.grid>`) —
        or an entire :class:`~repro.scenario.suite.SuiteSpec`, which runs
        with its *own* base scenario, trials and seed (this is how suite
        files execute: ``Session(spec).sweep(SuiteSpec.from_file(path))``).

        *trials* and *seed* default to 10 and 0 for axis mappings, and to the
        suite's declared values for suites.  *cache* enables spec-hash result
        caching (a :mod:`repro.cache` object or a directory path): points
        whose ``(spec, seed, trials, reduce, code version)`` ran before are
        served bit-identically from disk, only changed points re-execute,
        *jobs* at a time.  *reduce* selects the worker payload: ``"stats"``
        summarizes every trace inside the worker, so wide sweeps that only
        read per-point statistics (panels, rows) transfer and cache a few
        floats per trial instead of full trace pickles.  The resilience
        keywords (*max_retries*, *trial_timeout*, *resume*, *chaos*, *stop*)
        pass straight through to
        :func:`~repro.experiments.sweep.run_suite`: supervised recovery from
        dead/stuck workers, trial-level checkpoint/resume, and seeded chaos
        injection.  Returns a
        :class:`~repro.experiments.sweep.SweepResult`
        whose :meth:`~repro.experiments.sweep.SweepResult.panel` pivots any
        ``(x_axis, metric, y_axis)`` choice into a figure-ready series.

        >>> session = Session.from_dict({
        ...     "workload": {"num_tasks": 12, "num_processors": 6},
        ...     "scheduler": {"epsilon": 1},
        ...     "runtime": {"num_datasets": 20},
        ... })
        >>> result = session.sweep({"faults.mttf_periods": [40.0, 80.0]},
        ...                        trials=1)
        >>> [point.value_of("faults.mttf_periods") for point in result.points]
        [40.0, 80.0]
        >>> result.panel(metric="availability").x
        (40.0, 80.0)
        """
        # Imported lazily, like monte_carlo: the facade must not pull the
        # experiments stack at import time.
        from repro.experiments.sweep import run_suite
        from repro.scenario.suite import SuiteSpec

        if isinstance(axes, SuiteSpec):
            if kw_axes:
                raise TypeError(
                    "pass axes either as a SuiteSpec or as keyword axes, not both"
                )
            if name is not None:
                # silently keeping the suite's own name would leave report
                # headers and panel names labeled with a name the caller
                # believes they overrode
                raise TypeError(
                    "name= only applies when building a suite from axes; "
                    "rename a SuiteSpec with dataclasses.replace(suite, name=...)"
                )
            suite = axes
        else:
            merged = dict(axes or {})
            for key, values in kw_axes.items():
                merged[key.replace("__", ".")] = values
            suite = SuiteSpec(
                base=self._spec,
                axes=merged,
                name="sweep" if name is None else name,
                trials=10 if trials is None else trials,
                seed=0 if seed is None else seed,
            )
            trials = seed = None  # the suite now carries the resolved values
        return run_suite(
            suite, seed=seed, trials=trials, jobs=jobs, cache=cache, reduce=reduce,
            max_retries=max_retries, trial_timeout=trial_timeout, resume=resume,
            chaos=chaos, stop=stop,
        )
