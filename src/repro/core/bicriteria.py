"""Bi-criteria wrappers — the "symmetric" problems of the paper's conclusion.

The conclusion of the paper suggests extending the approach to the symmetric
optimisation problems:

* *maximise the throughput* for a given latency bound and failure number;
* *maximise the number of supported failures* for a given latency and
  throughput.

Both are implemented here as search wrappers around R-LTF (or LTF): a binary
search over the period for the former, a linear scan over ``ε`` for the
latter.  They are exercised by the ablation benchmarks and the
``fault_tolerant_service`` example.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.core.ltf import ltf_schedule
from repro.core.rltf import rltf_schedule
from repro.exceptions import SchedulingError
from repro.graph.dag import TaskGraph
from repro.platform.platform import Platform
from repro.schedule.metrics import latency_upper_bound
from repro.schedule.schedule import Schedule
from repro.utils.checks import check_positive

__all__ = ["BicriteriaResult", "maximize_throughput", "maximize_resilience"]

_SCHEDULERS: dict[str, Callable[..., Schedule]] = {
    "r-ltf": rltf_schedule,
    "ltf": ltf_schedule,
}


@dataclass(frozen=True)
class BicriteriaResult:
    """Outcome of a bi-criteria search."""

    schedule: Schedule
    period: float
    epsilon: int
    latency: float

    @property
    def throughput(self) -> float:
        """Throughput ``1/Δ`` of the returned schedule."""
        return 1.0 / self.period


def _scheduler(name: str) -> Callable[..., Schedule]:
    try:
        return _SCHEDULERS[name]
    except KeyError:
        raise ValueError(f"unknown scheduler {name!r}; pick one of {sorted(_SCHEDULERS)}") from None


def _try(
    scheduler: Callable[..., Schedule],
    graph: TaskGraph,
    platform: Platform,
    period: float,
    epsilon: int,
    latency_bound: float | None,
) -> Schedule | None:
    """One feasibility probe: schedule, check the optional latency bound."""
    try:
        schedule = scheduler(graph, platform, period=period, epsilon=epsilon)
    except SchedulingError:
        return None
    if latency_bound is not None and latency_upper_bound(schedule) > latency_bound + 1e-9:
        return None
    return schedule


def maximize_throughput(
    graph: TaskGraph,
    platform: Platform,
    epsilon: int = 0,
    latency_bound: float | None = None,
    scheduler: str = "r-ltf",
    tolerance: float = 1e-3,
    max_iterations: int = 60,
) -> BicriteriaResult:
    """Largest throughput achievable for a given ``ε`` (and optional latency bound).

    A binary search over the period ``Δ`` repeatedly probes the scheduler; the
    lower bound is the largest single-task execution time on the fastest
    processor (no schedule can beat it), the upper bound is the total
    replicated work on the slowest processor (always feasible on one processor
    per replica level, throughput-wise).

    Raises
    ------
    SchedulingError
        If even the most generous period admits no feasible schedule (e.g. the
        latency bound is unreachable).
    """
    check_positive(tolerance, "tolerance")
    sched_fn = _scheduler(scheduler)
    low = max(t.work for t in graph.tasks) / platform.max_speed
    high = (epsilon + 1) * graph.total_work / platform.min_speed + graph.total_volume / platform.min_bandwidth
    best: Schedule | None = _try(sched_fn, graph, platform, high, epsilon, latency_bound)
    if best is None:
        raise SchedulingError(
            "no feasible schedule even with the most generous period; "
            "check the latency bound and the platform size"
        )
    best_period = high
    for _ in range(max_iterations):
        if high - low <= tolerance * max(1.0, low):
            break
        mid = 0.5 * (low + high)
        probe = _try(sched_fn, graph, platform, mid, epsilon, latency_bound)
        if probe is None:
            low = mid
        else:
            best, best_period, high = probe, mid, mid
    return BicriteriaResult(
        schedule=best,
        period=best_period,
        epsilon=epsilon,
        latency=latency_upper_bound(best),
    )


def maximize_resilience(
    graph: TaskGraph,
    platform: Platform,
    throughput: float | None = None,
    period: float | None = None,
    latency_bound: float | None = None,
    scheduler: str = "r-ltf",
) -> BicriteriaResult:
    """Largest ``ε`` schedulable under the given throughput (and latency bound).

    ``ε`` is scanned upward from 0 until the scheduler fails; the last
    successful schedule is returned.

    Raises
    ------
    SchedulingError
        If even ``ε = 0`` is infeasible.
    """
    if (throughput is None) == (period is None):
        raise ValueError("provide exactly one of 'throughput' and 'period'")
    resolved = 1.0 / throughput if throughput is not None else float(period)
    sched_fn = _scheduler(scheduler)
    best: Schedule | None = None
    best_eps = -1
    for eps in range(platform.num_processors):
        probe = _try(sched_fn, graph, platform, resolved, eps, latency_bound)
        if probe is None:
            break
        best, best_eps = probe, eps
    if best is None:
        raise SchedulingError(
            f"no feasible schedule at all for period {resolved:g}, even without replication"
        )
    return BicriteriaResult(
        schedule=best,
        period=resolved,
        epsilon=best_eps,
        latency=latency_upper_bound(best),
    )
