"""The paper's contribution: LTF and R-LTF tri-criteria schedulers.

* :func:`~repro.core.ltf.ltf_schedule` — the LTF (Latency, Throughput,
  Failures) iso-level list-scheduling heuristic of Section 4.1;
* :func:`~repro.core.rltf.rltf_schedule` — the Reverse LTF heuristic of
  Section 4.2 (bottom-up traversal, Rules 1 and 2);
* :func:`~repro.core.fault_free.fault_free_schedule` — the fault-free
  reference schedule used as the overhead baseline in the experiments;
* :mod:`repro.core.bicriteria` — the "symmetric" problems listed as future
  work in the conclusion (maximise throughput or the number of tolerated
  failures under constraints on the other criteria).

The shared greedy machinery (iso-level chunks, condition (1), the one-to-one
mapping procedure and kill-set tracking) lives in :mod:`repro.core.engine`.
"""

from repro.core.engine import MappingEngine, SchedulerOptions, resolve_period, condition_one
from repro.core.ltf import ltf_schedule, LTFPolicy
from repro.core.rltf import rltf_schedule, RLTFPolicy
from repro.core.rebuild import build_forward_schedule
from repro.core.fault_free import fault_free_schedule, fault_free_latency
from repro.core.bicriteria import (
    maximize_throughput,
    maximize_resilience,
    BicriteriaResult,
)

__all__ = [
    "MappingEngine",
    "SchedulerOptions",
    "resolve_period",
    "condition_one",
    "ltf_schedule",
    "LTFPolicy",
    "rltf_schedule",
    "RLTFPolicy",
    "build_forward_schedule",
    "fault_free_schedule",
    "fault_free_latency",
    "maximize_throughput",
    "maximize_resilience",
    "BicriteriaResult",
]
