"""Shared greedy-mapping machinery for LTF and R-LTF.

Both heuristics of the paper share the same skeleton (Algorithm 4.1):

1. maintain a list ``α`` of *ready* tasks sorted by priority ``tl + bl``;
2. repeatedly extract a *chunk* ``β`` of the ``B`` highest-priority ready
   tasks (the *iso-level* idea inherited from Iso-Level CAFT — scheduling a
   group of tasks of comparable priority gives a better load balance than
   classical one-task-at-a-time list scheduling);
3. place the ``ε+1`` replicas of every task of the chunk, replica level by
   replica level, using either the **one-to-one mapping** procedure
   (Algorithm 4.2) while enough independent source replicas are available, or
   a **regular mapping** that selects the throughput-feasible processor with
   the smallest finish time;
4. enforce the throughput constraint — condition (1) of the paper — at every
   placement, and fail with :class:`~repro.exceptions.ThroughputInfeasibleError`
   when no processor can host a replica.

The two heuristics differ only in the *orientation* of the traversal (LTF is
top-down, R-LTF is bottom-up on the reversed graph) and in the
processor-selection policy (R-LTF first tries to keep the pipeline-stage
number constant — Rule 1 — and uses the structural Rule 2 to trigger the
one-to-one procedure).  The :class:`MappingEngine` below implements the shared
skeleton and delegates the per-replica decision to a policy object.

Fault-tolerance bookkeeping
---------------------------
The paper requires that *valid results are provided even if ε processors
fail*.  With the one-to-one mapping, a replica only receives data from one
replica of each predecessor, so the guarantee relies on the independence of
the ``ε+1`` "chains" feeding the replicas of a task.  The paper enforces a
local form of this independence through *singleton* and *locked* processors;
this implementation tracks it exactly, via **kill sets**:

* a *fully-fed* replica (it receives data from **all** replicas of each
  predecessor) is invalidated only by the failure of its own processor — its
  kill set is ``{its processor}``;
* a *chain-fed* replica (one source per predecessor, built by the one-to-one
  procedure) is invalidated by the failure of any processor in
  ``{its processor} ∪ kill-sets of its sources``.

The engine maintains, for every task, the invariant that the kill sets of its
``ε+1`` replicas are **pairwise disjoint**; any ``c ≤ ε`` failures therefore
leave at least one valid replica of every task (see
:func:`repro.schedule.validation.check_resilience`, which re-verifies the
property a posteriori).  This is the transitive generalisation of the
singleton/locked-processor rule of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Protocol, Sequence

from repro.exceptions import ReplicationError, SchedulingError, ThroughputInfeasibleError
from repro.graph.analysis import task_priorities
from repro.graph.dag import TaskGraph
from repro.platform.platform import Platform
from repro.schedule.replica import Replica
from repro.schedule.schedule import PlacementPlan, Schedule, plan_placement
from repro.utils.checks import check_positive

__all__ = [
    "SchedulerOptions",
    "TaskContext",
    "MappingPolicy",
    "MappingEngine",
    "resolve_period",
    "condition_one",
]

#: numerical slack on the throughput constraint (guards against FP rounding).
_TOL = 1e-9


def resolve_period(throughput: float | None = None, period: float | None = None) -> float:
    """Turn a ``(throughput, period)`` pair of optional arguments into a period ``Δ``.

    Exactly one of the two must be provided; the throughput ``T`` is the
    inverse of the period.
    """
    if (throughput is None) == (period is None):
        raise ValueError("provide exactly one of 'throughput' and 'period'")
    if throughput is not None:
        check_positive(throughput, "throughput")
        return 1.0 / throughput
    check_positive(period, "period")
    return float(period)


@dataclass
class SchedulerOptions:
    """Tunable knobs shared by LTF and R-LTF.

    Attributes
    ----------
    epsilon:
        Fault-tolerance degree ``ε`` (number of replicas is ``ε+1``).
    chunk_size:
        Size ``B`` of the iso-level chunk ``β``.  The paper uses ``B = m``;
        setting it to 1 degenerates to classical one-task list scheduling
        (used by the ablation benchmarks).
    enable_one_to_one:
        When False the one-to-one mapping procedure is disabled and every
        replica is fully fed (ablation knob; the ``(ε+1)²`` communication
        regime).
    strict_throughput:
        When True (default) a replica that cannot be placed without violating
        condition (1) aborts the scheduling with
        :class:`~repro.exceptions.ThroughputInfeasibleError` — the behaviour
        described in the paper.  When False the least-loaded processor is used
        instead and the violation is recorded in ``schedule.stats`` (useful for
        the baseline heuristics and for exploratory runs).
    strict_resilience:
        Controls how far the fault-independence bookkeeping looks:

        * ``False`` (default, the paper's behaviour): a replica placed through
          the one-to-one procedure is considered independent of its siblings as
          long as it avoids the *locked* processors — the processors hosting a
          sibling replica or one of the directly consumed source replicas.
          This is exactly the singleton/locked mechanism of Algorithm 4.2.
        * ``True``: independence is tracked *transitively* (the full kill set
          of every chain), the kill sets of the ``ε+1`` replicas of a task are
          kept pairwise disjoint and bounded by ``m/(ε+1)``, which provably
          guarantees a valid result under any ``ε`` failures — at the price of
          more fully-fed replicas (more communications) and earlier scheduling
          failures on tight platforms.  The ablation benchmarks compare both.
    """

    epsilon: int = 0
    chunk_size: int | None = None
    enable_one_to_one: bool = True
    strict_throughput: bool = True
    strict_resilience: bool = False

    def __post_init__(self) -> None:
        if self.epsilon < 0:
            raise ValueError(f"epsilon must be >= 0, got {self.epsilon}")
        if self.chunk_size is not None and self.chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {self.chunk_size}")


@dataclass
class TaskContext:
    """Per-task bookkeeping while its ``ε+1`` replicas are being placed."""

    task: str
    #: union of the kill sets of the replicas already placed for this task.
    used_kill: set[str] = field(default_factory=set)
    #: number of replicas already placed through the one-to-one procedure (``Z_k``).
    one_to_one_done: int = 0
    #: ``θ_k`` — how many replicas should go through the one-to-one procedure.
    theta: int = 0
    #: source replicas already consumed by one-to-one chains of this task.
    consumed: set[Replica] = field(default_factory=set)


class MappingPolicy(Protocol):
    """Per-replica decision procedure plugged into the :class:`MappingEngine`."""

    def choose(self, engine: "MappingEngine", task: str, ctx: TaskContext) -> PlacementPlan | None:
        """Return the placement plan for the next replica of *task* (or ``None``
        if no feasible processor exists)."""
        ...  # pragma: no cover - Protocol


def condition_one(
    schedule: Schedule,
    plan: PlacementPlan,
    period: float,
) -> bool:
    """Condition (1) of the paper for a candidate placement.

    The placement is feasible when, after adding the replica and its
    communications, the compute load of the target processor, its incoming
    communication load, and the outgoing communication load of every source
    processor all remain below the period ``Δ = 1/T``.
    """
    state = schedule.processor_state(plan.processor)
    if state.compute_load + plan.execution_time > period + _TOL:
        return False
    if state.comm_in_load + plan.incoming_comm_time > period + _TOL:
        return False
    for src_proc, added in plan.outgoing_comm_time_by_processor().items():
        if schedule.processor_state(src_proc).comm_out_load + added > period + _TOL:
            return False
    return True


class MappingEngine:
    """Iso-level greedy mapper shared by LTF, R-LTF and the fault-free reference.

    Parameters
    ----------
    graph:
        The application graph *in the traversal orientation*: LTF passes the
        original graph, R-LTF passes the reversed graph.
    platform:
        Target platform.
    period:
        Iteration period ``Δ`` (inverse of the desired throughput).
    options:
        Shared scheduling knobs (ε, chunk size, one-to-one toggle...).
    algorithm:
        Name recorded in the resulting schedule.
    priorities:
        Optional priority override; defaults to ``tl + bl`` computed on
        *graph* and *platform*.
    """

    def __init__(
        self,
        graph: TaskGraph,
        platform: Platform,
        period: float,
        options: SchedulerOptions,
        algorithm: str,
        priorities: Mapping[str, float] | None = None,
    ):
        if options.epsilon >= platform.num_processors:
            raise ReplicationError(
                f"epsilon={options.epsilon} requires at least {options.epsilon + 1} processors; "
                f"the platform only has {platform.num_processors}"
            )
        self.graph = graph
        self.platform = platform
        self.period = float(period)
        self.options = options
        self.schedule = Schedule(graph, platform, period, options.epsilon, algorithm)
        self.priorities = dict(priorities) if priorities is not None else task_priorities(graph, platform)
        self.chunk_size = options.chunk_size or platform.num_processors
        #: kill set of every placed replica (see module docstring).
        self.kill: dict[Replica, frozenset[str]] = {}
        #: pipeline stage of every placed replica, in the traversal orientation.
        self.stage: dict[Replica, int] = {}
        self.schedule.stats.update(
            {
                "one_to_one_calls": 0,
                "regular_mappings": 0,
                "chunks": 0,
                "relaxed_placements": 0,
            }
        )

    # --------------------------------------------------------------- main loop
    def run(self, policy: MappingPolicy) -> Schedule:
        """Run the iso-level loop until every task has its ``ε+1`` replicas."""
        graph = self.graph
        in_degree = {t: graph.in_degree(t) for t in graph.task_names}
        ready: list[str] = [t for t in graph.task_names if in_degree[t] == 0]
        unscheduled = set(graph.task_names)

        while unscheduled:
            if not ready:
                raise SchedulingError(
                    "no ready task while some tasks are unscheduled; the graph may be cyclic"
                )
            beta = self._select_chunk(ready)
            self.schedule.stats["chunks"] += 1
            self._schedule_chunk(beta, policy)
            for task in beta:
                unscheduled.discard(task)
                for succ in graph.successors(task):
                    in_degree[succ] -= 1
                    if in_degree[succ] == 0:
                        ready.append(succ)
        return self.schedule

    def _select_chunk(self, ready: list[str]) -> list[str]:
        """Extract the ``B`` highest-priority ready tasks (the head function ``H``)."""
        ready.sort(key=lambda t: (-self.priorities[t], t))
        chunk = ready[: self.chunk_size]
        del ready[: self.chunk_size]
        return chunk

    def _schedule_chunk(self, beta: Sequence[str], policy: MappingPolicy) -> None:
        contexts = {task: self._new_context(task) for task in beta}
        for _level in range(self.options.epsilon + 1):
            for task in beta:
                self._place_one_replica(task, contexts[task], policy)

    def _new_context(self, task: str) -> TaskContext:
        ctx = TaskContext(task=task)
        ctx.theta = self._compute_theta(task) if self.options.enable_one_to_one else 0
        return ctx

    def _compute_theta(self, task: str) -> int:
        """``θ_k = min_i λ_i`` — number of replicas that should be chain-fed.

        ``λ_i`` counts, for predecessor ``t_i``, how many of its replicas are
        available as the head of an independent chain.  The paper counts the
        replicas hosted on *singleton* processors; here the independence of the
        chains is enforced directly by the kill-set bookkeeping of
        :meth:`chain_source_candidates` / :meth:`plan_chain`, so ``θ`` is simply
        the number of replicas of the scarcest predecessor — the one-to-one
        procedure is *attempted* for every replica and falls back to a regular
        (fully fed) mapping whenever no independent chain exists.
        """
        preds = self.graph.predecessors(task)
        if not preds:
            return 0
        return min(len(self.schedule.replicas(pred)) for pred in preds)

    # ----------------------------------------------------------- single replica
    def _place_one_replica(self, task: str, ctx: TaskContext, policy: MappingPolicy) -> Replica:
        plan = policy.choose(self, task, ctx)
        if plan is None:
            if self.options.strict_throughput:
                raise ThroughputInfeasibleError(task, self.period)
            plan = self._least_loaded_plan(task, ctx)
            if plan is None:
                raise ThroughputInfeasibleError(task, self.period)
            self.schedule.stats["relaxed_placements"] += 1
        replica = self.schedule.apply_placement(plan)
        self._register(replica, plan, ctx)
        return replica

    def _register(self, replica: Replica, plan: PlacementPlan, ctx: TaskContext) -> None:
        if plan.one_to_one:
            kill = {plan.processor}
            for comm in plan.comms:
                if self.options.strict_resilience:
                    kill |= self.kill[comm.source]
                else:
                    # paper semantics: only the directly involved processors
                    # become locked for the sibling replicas.
                    kill.add(self.schedule.processor_of(comm.source))
            ctx.one_to_one_done += 1
            ctx.consumed.update(c.source for c in plan.comms)
            self.schedule.stats["one_to_one_calls"] += 1
        else:
            kill = {plan.processor}
            self.schedule.stats["regular_mappings"] += 1
        self.kill[replica] = frozenset(kill)
        ctx.used_kill |= kill
        self.stage[replica] = self._plan_stage(plan)

    def _plan_stage(self, plan: PlacementPlan) -> int:
        stage = 1
        for comm in plan.comms:
            eta = 0 if comm.duration == 0 else 1
            stage = max(stage, self.stage[comm.source] + eta)
        return stage

    # --------------------------------------------------------------- candidates
    def _forbidden_processors(self, task: str, ctx: TaskContext) -> set[str]:
        """Processors that can never host the next replica of *task*: those in
        the kill set of a sibling replica (fault-independence) — which includes
        the processors already hosting a replica of the task."""
        return set(ctx.used_kill)

    def regular_sources(self, task: str) -> dict[str, tuple[Replica, ...]]:
        """Full feeding: every replica of every predecessor is a source."""
        return {pred: self.schedule.replicas(pred) for pred in self.graph.predecessors(task)}

    def plan_regular(self, task: str, processor: str, ctx: TaskContext) -> PlacementPlan | None:
        """Plan a fully-fed replica of *task* on *processor*; ``None`` if infeasible."""
        if processor in self._forbidden_processors(task, ctx):
            return None
        plan = plan_placement(self.schedule, task, processor, self.regular_sources(task))
        if not condition_one(self.schedule, plan, self.period):
            return None
        return plan

    def plan_regular_best(
        self,
        task: str,
        ctx: TaskContext,
        candidates: Iterable[str] | None = None,
    ) -> PlacementPlan | None:
        """Fully-fed placement with minimum finish time over *candidates*
        (all processors by default)."""
        best: PlacementPlan | None = None
        best_key: tuple | None = None
        pool = candidates if candidates is not None else self.platform.processor_names
        for proc in pool:
            plan = self.plan_regular(task, proc, ctx)
            if plan is None:
                continue
            key = self._plan_rank(plan)
            if best_key is None or key < best_key:
                best, best_key = plan, key
        return best

    def _plan_rank(self, plan: PlacementPlan) -> tuple:
        """Ranking key for candidate plans: earliest finish first, then the
        least-loaded processor (ties on finish time are frequent on lightly
        loaded platforms, and spreading the load keeps later placements
        feasible), then the processor name for determinism."""
        return (
            plan.finish,
            self.schedule.compute_load(plan.processor),
            plan.processor,
        )

    def chain_source_candidates(self, task: str, ctx: TaskContext) -> dict[str, list[Replica]]:
        """For each predecessor of *task*, the replicas still available for a
        new one-to-one chain (not consumed, kill set disjoint from the sibling
        chains), sorted by finish time (the head of the sorted list is the
        paper's ``H(B(t_i))``)."""
        available: dict[str, list[Replica]] = {}
        for pred in self.graph.predecessors(task):
            reps = [
                r
                for r in self.schedule.replicas(pred)
                if r not in ctx.consumed and not (self.kill[r] & ctx.used_kill)
            ]
            reps.sort(key=lambda r: (self.schedule.finish_time(r), r))
            available[pred] = reps
        return available

    def plan_chain(
        self,
        task: str,
        ctx: TaskContext,
        candidates: Iterable[str] | None = None,
        prefer_colocated: bool = True,
    ) -> PlacementPlan | None:
        """One-to-one mapping procedure (Algorithm 4.2).

        For every candidate target processor the procedure selects one source
        replica per predecessor — preferring a co-located source, otherwise the
        head of the availability list — such that the kill sets of the chosen
        sources are pairwise disjoint (and disjoint from the sibling chains),
        simulates the placement, checks condition (1), and finally returns the
        plan with the earliest finish time.
        """
        preds = self.graph.predecessors(task)
        if not preds:
            return None
        available = self.chain_source_candidates(task, ctx)
        if any(not lst for lst in available.values()):
            return None
        forbidden = self._forbidden_processors(task, ctx)
        best: PlacementPlan | None = None
        best_key: tuple | None = None
        pool = candidates if candidates is not None else self.platform.processor_names
        for proc in pool:
            if proc in forbidden:
                continue
            sources = self._pick_chain_sources(task, available, proc, prefer_colocated)
            if sources is None:
                continue
            if self.options.strict_resilience:
                support = {proc}
                for rep in sources.values():
                    support |= self.kill[rep]
                if len(support) > self.max_support_size:
                    continue
            plan = plan_placement(
                self.schedule,
                task,
                proc,
                {pred: [rep] for pred, rep in sources.items()},
                one_to_one=True,
            )
            if not condition_one(self.schedule, plan, self.period):
                continue
            key = self._plan_rank(plan)
            if best_key is None or key < best_key:
                best, best_key = plan, key
        return best

    def _pick_chain_sources(
        self,
        task: str,
        available: Mapping[str, Sequence[Replica]],
        processor: str,
        prefer_colocated: bool,
    ) -> dict[str, Replica] | None:
        """Pick one source per predecessor for a chain ending on *processor*.

        Every source in *available* is already disjoint from the sibling
        chains; sources of *different* predecessors are allowed to share
        support (overlap only weakens nothing — the chain is invalidated by a
        failure in the union of its sources' supports either way).  The only
        additional constraint is the support-size cap checked by the caller.

        Co-located sources are preferred (no communication, no stage change);
        otherwise the head of the availability list is taken — the paper's
        ``H(B(t_i))`` — except that sources hosted on a processor whose
        out-port budget is already exhausted are skipped when an alternative
        exists, because their outgoing communication would violate
        condition (1) on the source side.
        """
        chosen: dict[str, Replica] = {}
        for pred, reps in available.items():
            pick: Replica | None = None
            if prefer_colocated:
                for rep in reps:
                    if self.schedule.processor_of(rep) == processor:
                        pick = rep
                        break
            if pick is None:
                volume = self.graph.volume(pred, task)
                for rep in reps:
                    src_proc = self.schedule.processor_of(rep)
                    duration = self.platform.communication_time(volume, src_proc, processor)
                    if (
                        self.schedule.processor_state(src_proc).comm_out_load + duration
                        <= self.period + _TOL
                    ):
                        pick = rep
                        break
                if pick is None:
                    pick = reps[0]
            chosen[pred] = pick
        return chosen

    @property
    def max_support_size(self) -> int:
        """Largest allowed kill-set size of a chain-fed replica.

        The kill sets of the ``ε+1`` replicas of a task must be pairwise
        disjoint subsets of the ``m`` processors; capping each of them at
        ``m // (ε+1)`` guarantees that the later replicas always have
        processors left to run on.  A chain whose support would exceed the cap
        falls back to full feeding, which resets the support to a single
        processor (task-level induction keeps the ε-failure guarantee).
        """
        return max(1, self.platform.num_processors // (self.options.epsilon + 1))

    # ------------------------------------------------------------------ fallback
    def _least_loaded_plan(self, task: str, ctx: TaskContext) -> PlacementPlan | None:
        """Non-strict fallback: fully-fed placement on the processor with the
        smallest compute load, ignoring condition (1) (never ignores the
        fault-independence constraints)."""
        forbidden = self._forbidden_processors(task, ctx)
        pool = [p for p in self.platform.processor_names if p not in forbidden]
        pool = [p for p in pool if p not in self.schedule.processors_of_task(task)]
        if not pool:
            return None
        proc = min(pool, key=lambda p: (self.schedule.compute_load(p), p))
        return plan_placement(self.schedule, task, proc, self.regular_sources(task))
