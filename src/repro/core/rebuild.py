"""Forward schedule reconstruction from a fixed replica→processor assignment.

R-LTF traverses the application graph bottom-up (it runs the shared engine on
the *reversed* graph), which yields a processor assignment for every replica
but leaves the forward communication topology and the forward timing to be
derived.  :func:`build_forward_schedule` performs this derivation:

* tasks are replayed in forward topological order on their *forced*
  processors;
* for every replica, the builder first tries to **chain-feed** it (one source
  replica per predecessor), preferring co-located sources so that the pipeline
  stage does not increase, then sources with the smallest stage;
* when no kill-set-disjoint chain exists, the replica is **fully fed** (it
  receives data from every replica of each predecessor).

Kill-set bookkeeping mirrors :mod:`repro.core.engine` (see its docstring): all
processors hosting a sibling replica are excluded from a chain's support, so
the kill sets of the ``ε+1`` replicas of every task stay pairwise disjoint and
the ε-failure guarantee carries over to the rebuilt schedule.

The same helper doubles as a generic "mapping-only" front end: any heuristic
that only decides processor assignments (e.g. the related-work baselines) can
use it to obtain a full one-port schedule with stages, loads and timings.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.exceptions import ScheduleError
from repro.graph.dag import TaskGraph
from repro.platform.platform import Platform
from repro.schedule.replica import Replica
from repro.schedule.schedule import PlacementPlan, Schedule, plan_placement

__all__ = ["build_forward_schedule"]


def build_forward_schedule(
    graph: TaskGraph,
    platform: Platform,
    period: float,
    epsilon: int,
    assignment: Mapping[str, Sequence[str]],
    algorithm: str = "rebuilt",
    prefer_one_to_one: bool = True,
    strict_resilience: bool = False,
) -> Schedule:
    """Build a complete forward schedule from a per-task processor assignment.

    Parameters
    ----------
    assignment:
        Mapping ``task -> sequence of ε+1 distinct processors`` (one per
        replica).  Every task of *graph* must be present.
    prefer_one_to_one:
        When True (default) the builder chain-feeds replicas whenever a
        kill-set-disjoint chain exists; when False every replica is fully fed.

    Returns
    -------
    Schedule
        The rebuilt schedule.  ``schedule.stats`` records the number of
        chain-fed and fully-fed replicas and the number of processors whose
        steady-state load exceeds the period (the builder never rejects the
        forced assignment; feasibility is the caller's responsibility).
    """
    schedule = Schedule(graph, platform, period, epsilon, algorithm)
    factor = epsilon + 1
    for task in graph.task_names:
        procs = assignment.get(task)
        if procs is None:
            raise ScheduleError(f"assignment is missing task {task!r}")
        if len(procs) != factor:
            raise ScheduleError(
                f"task {task!r} is assigned {len(procs)} processors, expected {factor}"
            )
        if len(set(procs)) != len(procs):
            raise ScheduleError(f"task {task!r} is assigned duplicate processors: {procs}")

    kill: dict[Replica, frozenset[str]] = {}
    stage: dict[Replica, int] = {}
    schedule.stats.update({"chain_fed": 0, "fully_fed": 0, "overloaded_processors": 0})

    for task in graph.topological_order():
        preds = graph.predecessors(task)
        procs = list(assignment[task])
        sibling_procs = set(procs)
        used_kill: set[str] = set()
        consumed: set[Replica] = set()

        for proc in procs:
            plan: PlacementPlan | None = None
            if preds and prefer_one_to_one:
                sources = _pick_chain_sources(
                    schedule, kill, stage, task, proc, used_kill | sibling_procs - {proc}, consumed
                )
                if sources is not None:
                    support = {proc}
                    for rep in sources.values():
                        support |= kill[rep]
                    max_support = (
                        max(1, platform.num_processors // (epsilon + 1))
                        if strict_resilience
                        else platform.num_processors
                    )
                    if len(support) <= max_support:
                        plan = plan_placement(
                            schedule,
                            task,
                            proc,
                            {pred: [rep] for pred, rep in sources.items()},
                            one_to_one=True,
                        )
            if plan is None:
                full = {pred: schedule.replicas(pred) for pred in preds}
                plan = plan_placement(schedule, task, proc, full, one_to_one=False)

            replica = schedule.apply_placement(plan)
            if plan.one_to_one:
                ks = {proc}
                for comm in plan.comms:
                    if strict_resilience:
                        ks |= kill[comm.source]
                    else:
                        ks.add(schedule.processor_of(comm.source))
                consumed.update(c.source for c in plan.comms)
                schedule.stats["chain_fed"] += 1
            else:
                ks = {proc}
                schedule.stats["fully_fed"] += 1
            kill[replica] = frozenset(ks)
            used_kill |= ks
            st = 1
            for comm in plan.comms:
                eta = 0 if comm.duration == 0 else 1
                st = max(st, stage[comm.source] + eta)
            stage[replica] = st

    schedule.stats["overloaded_processors"] = sum(
        1
        for state in schedule.processor_states.values()
        if state.cycle_time > period * (1 + 1e-9)
    )
    return schedule


def _pick_chain_sources(
    schedule: Schedule,
    kill: Mapping[Replica, frozenset[str]],
    stage: Mapping[Replica, int],
    task: str,
    processor: str,
    forbidden: set[str],
    consumed: set[Replica],
) -> dict[str, Replica] | None:
    """One source per predecessor, disjoint from the sibling supports, favouring low stages.

    Sources are ranked by ``(stage + η, finish time)`` where ``η = 0`` when the
    source is co-located with *processor* — i.e. the builder favours sources
    that do not push the replica into a later pipeline stage.  Sources of
    different predecessors are allowed to share support; only the supports of
    sibling replicas (*forbidden*) must be avoided.
    """
    graph = schedule.graph
    chosen: dict[str, Replica] = {}
    for pred in sorted(graph.predecessors(task)):
        candidates = [
            r
            for r in schedule.replicas(pred)
            if r not in consumed and not (kill[r] & forbidden)
        ]
        if not candidates:
            return None

        volume = graph.volume(pred, task)

        def rank(rep: Replica) -> tuple:
            src_proc = schedule.processor_of(rep)
            eta = 0 if src_proc == processor else 1
            duration = schedule.platform.communication_time(volume, src_proc, processor)
            overloads = (
                schedule.processor_state(src_proc).comm_out_load + duration
                > schedule.period * (1 + 1e-9)
            )
            return (stage[rep] + eta, overloads, schedule.finish_time(rep), rep)

        chosen[pred] = min(candidates, key=rank)
    return chosen
