"""The Reverse LTF (R-LTF) heuristic — Section 4.2.

R-LTF refines LTF by attacking the dominant term of the pipelined latency
``L = (2S − 1)·Δ``: the number of pipeline stages ``S``.  It traverses the
application graph **bottom-up** (sink tasks first) and applies two rules, in
order, when placing the replicas of the current task ``t``:

* **Rule 1** — *stage preservation*: place ``t`` so that the pipeline-stage
  number of its already-scheduled successors does not increase, i.e.
  co-locate each replica with a successor replica whenever the throughput
  condition allows it;
* **Rule 2** — *structural one-to-one*: when ``t`` has a single successor
  ``t'`` and every predecessor of ``t'`` also has a single successor (a pure
  join), assign all replicas of ``t`` with the one-to-one mapping procedure,
  which keeps the replication communications at one per source replica.

When neither rule applies, the replica falls back to the LTF selection
(one-to-one while independent sources remain, otherwise the
throughput-feasible processor with minimum finish time).

Implementation
--------------
The bottom-up traversal is realised by running the shared
:class:`~repro.core.engine.MappingEngine` on the **reversed** graph, which
yields a processor assignment per replica; the forward schedule (forward
communication topology, one-port timing, stages, loads) is then rebuilt with
:func:`~repro.core.rebuild.build_forward_schedule` on the original graph.
Reversing the graph leaves both the stage count and the steady-state loads
essentially unchanged (a processor change along a path costs one stage in
either orientation, and reversing swaps the in/out communication loads), so
the rebuilt schedule retains the properties targeted by the two rules; the
reported metrics are always measured on the rebuilt forward schedule.
"""

from __future__ import annotations

from typing import Mapping

from repro.core.engine import MappingEngine, SchedulerOptions, TaskContext, resolve_period
from repro.core.rebuild import build_forward_schedule
from repro.graph.dag import TaskGraph
from repro.platform.platform import Platform
from repro.schedule.schedule import PlacementPlan, Schedule

__all__ = ["RLTFPolicy", "rltf_schedule"]


class RLTFPolicy:
    """Processor-selection policy of R-LTF on the reversed graph.

    The engine hands this policy the *reversed* graph, so "predecessors" below
    are the original successors of the task, and the incremental stages kept
    by the engine are reverse stages (counted from the sinks); both views give
    the same total stage count.
    """

    def __init__(self, enable_rule1: bool = True, enable_rule2: bool = True):
        self.enable_rule1 = enable_rule1
        self.enable_rule2 = enable_rule2

    # ------------------------------------------------------------------ rules
    def _successor_stage_floor(self, engine: MappingEngine, task: str) -> int:
        """Highest stage already assigned to a successor replica (0 for sinks)."""
        floor = 0
        for succ in engine.graph.predecessors(task):  # reversed graph: original successors
            for replica in engine.schedule.replicas(succ):
                floor = max(floor, engine.stage[replica])
        return floor

    def _rule1_plan(
        self, engine: MappingEngine, task: str, ctx: TaskContext
    ) -> PlacementPlan | None:
        """Best placement that keeps the successor stage number unchanged."""
        succs = engine.graph.predecessors(task)  # original successors
        if not succs:
            return None
        floor = self._successor_stage_floor(engine, task)
        candidates = {
            engine.schedule.processor_of(rep)
            for succ in succs
            for rep in engine.schedule.replicas(succ)
        }
        best: PlacementPlan | None = None
        for proc in sorted(candidates):
            for plan in (
                engine.plan_chain(task, ctx, candidates=[proc]),
                engine.plan_regular(task, proc, ctx),
            ):
                if plan is None:
                    continue
                if engine._plan_stage(plan) > floor:
                    continue
                if best is None or (plan.finish, not plan.one_to_one, plan.processor) < (
                    best.finish,
                    not best.one_to_one,
                    best.processor,
                ):
                    best = plan
        return best

    def _rule2_applies(self, engine: MappingEngine, task: str) -> bool:
        """Structural condition of Rule 2 (expressed on the reversed graph)."""
        graph = engine.graph
        succs = graph.predecessors(task)  # original successors
        if len(succs) != 1:
            return False
        join = succs[0]
        siblings = graph.successors(join)  # original predecessors of the join
        return all(len(graph.predecessors(s)) == 1 for s in siblings)

    # ------------------------------------------------------------------ policy
    def choose(self, engine: MappingEngine, task: str, ctx: TaskContext) -> PlacementPlan | None:
        succs = engine.graph.predecessors(task)
        if succs:
            if self.enable_rule1:
                plan = self._rule1_plan(engine, task, ctx)
                if plan is not None:
                    return plan
            if (
                self.enable_rule2
                and engine.options.enable_one_to_one
                and self._rule2_applies(engine, task)
            ):
                plan = engine.plan_chain(task, ctx)
                if plan is not None:
                    return plan
            if engine.options.enable_one_to_one and ctx.one_to_one_done < ctx.theta:
                plan = engine.plan_chain(task, ctx)
                if plan is not None:
                    return plan
        return engine.plan_regular_best(task, ctx)


def rltf_schedule(
    graph: TaskGraph,
    platform: Platform,
    throughput: float | None = None,
    period: float | None = None,
    epsilon: int = 0,
    chunk_size: int | None = None,
    enable_one_to_one: bool = True,
    enable_rule1: bool = True,
    enable_rule2: bool = True,
    strict_throughput: bool = True,
    strict_resilience: bool = False,
    priorities: Mapping[str, float] | None = None,
) -> Schedule:
    """Schedule *graph* on *platform* with the R-LTF heuristic.

    The signature mirrors :func:`~repro.core.ltf.ltf_schedule`; the two extra
    flags ``enable_rule1`` / ``enable_rule2`` exist for the ablation
    benchmarks (disabling both degenerates into a bottom-up LTF).

    Returns
    -------
    Schedule
        A complete forward schedule (algorithm name ``"r-ltf"``) meeting the
        throughput constraint, rebuilt from the bottom-up assignment.
    """
    resolved = resolve_period(throughput, period)
    options = SchedulerOptions(
        epsilon=epsilon,
        chunk_size=chunk_size,
        enable_one_to_one=enable_one_to_one,
        strict_throughput=strict_throughput,
        strict_resilience=strict_resilience,
    )
    reversed_graph = graph.reversed()
    engine = MappingEngine(
        reversed_graph,
        platform,
        resolved,
        options,
        algorithm="r-ltf/reverse-pass",
        priorities=priorities,
    )
    reverse_schedule = engine.run(RLTFPolicy(enable_rule1=enable_rule1, enable_rule2=enable_rule2))

    assignment = {
        task: list(reverse_schedule.processors_of_task(task)) for task in graph.task_names
    }
    schedule = build_forward_schedule(
        graph,
        platform,
        resolved,
        epsilon,
        assignment,
        algorithm="r-ltf",
        prefer_one_to_one=enable_one_to_one,
        strict_resilience=strict_resilience,
    )
    # keep the reverse-pass counters for inspection, prefixed to avoid clashes.
    for key, value in reverse_schedule.stats.items():
        schedule.stats[f"reverse_{key}"] = value
    return schedule
