"""The LTF (Latency, Throughput, Failures) heuristic — Algorithm 4.1.

LTF is a top-down, iso-level list-scheduling heuristic extended from
Iso-Level CAFT.  At every step it selects a chunk ``β`` of the highest-priority
ready tasks and places the ``ε+1`` replicas of each of them, level by level:

* while enough independent predecessor replicas are available
  (``Z_k < θ_k``), the **one-to-one mapping** procedure (Algorithm 4.2) is
  used: the replica receives data from exactly one replica of each
  predecessor, which keeps the number of communications close to ``e(ε+1)``
  instead of ``e(ε+1)²``;
* otherwise a **regular mapping** is used: the replica receives data from
  every replica of each predecessor, and among the processors satisfying the
  throughput condition (1), the one giving the earliest finish time is chosen.

LTF *fails* — raising :class:`~repro.exceptions.ThroughputInfeasibleError` —
when no processor can host a replica without exceeding the iteration period,
exactly as in the paper (Section 4.3 shows an instance where LTF needs 10
processors while R-LTF fits in 8).
"""

from __future__ import annotations

from typing import Mapping

from repro.core.engine import MappingEngine, SchedulerOptions, TaskContext, resolve_period
from repro.graph.dag import TaskGraph
from repro.platform.platform import Platform
from repro.schedule.schedule import PlacementPlan, Schedule

__all__ = ["LTFPolicy", "ltf_schedule"]


class LTFPolicy:
    """Processor-selection policy of LTF (minimum finish time)."""

    def choose(self, engine: MappingEngine, task: str, ctx: TaskContext) -> PlacementPlan | None:
        preds = engine.graph.predecessors(task)
        if (
            preds
            and engine.options.enable_one_to_one
            and ctx.one_to_one_done < ctx.theta
        ):
            plan = engine.plan_chain(task, ctx)
            if plan is not None:
                return plan
        return engine.plan_regular_best(task, ctx)


def ltf_schedule(
    graph: TaskGraph,
    platform: Platform,
    throughput: float | None = None,
    period: float | None = None,
    epsilon: int = 0,
    chunk_size: int | None = None,
    enable_one_to_one: bool = True,
    strict_throughput: bool = True,
    strict_resilience: bool = False,
    priorities: Mapping[str, float] | None = None,
) -> Schedule:
    """Schedule *graph* on *platform* with the LTF heuristic.

    Parameters
    ----------
    graph, platform:
        The application DAG and the target heterogeneous platform.
    throughput, period:
        The desired throughput ``T`` or, equivalently, the iteration period
        ``Δ = 1/T`` (provide exactly one of the two).
    epsilon:
        Number of processor failures to tolerate; each task gets ``ε+1``
        replicas placed on distinct processors.
    chunk_size:
        Size ``B`` of the iso-level chunk (defaults to the number of
        processors, as in the paper).
    enable_one_to_one:
        Disable to force full replication of communications (ablation knob).
    strict_throughput:
        When True (default), raise
        :class:`~repro.exceptions.ThroughputInfeasibleError` if some replica
        cannot be placed within the period; when False, place it on the least
        loaded processor and record the violation in ``schedule.stats``.
    strict_resilience:
        When True, track chain supports transitively so that any ``ε``
        failures provably leave a valid replica of every task; when False
        (default) use the paper's local singleton/locked mechanism (see
        :class:`~repro.core.engine.SchedulerOptions`).
    priorities:
        Optional priority override (defaults to ``tl + bl``).

    Returns
    -------
    Schedule
        A complete replicated schedule meeting the throughput constraint.
    """
    resolved = resolve_period(throughput, period)
    options = SchedulerOptions(
        epsilon=epsilon,
        chunk_size=chunk_size,
        enable_one_to_one=enable_one_to_one,
        strict_throughput=strict_throughput,
        strict_resilience=strict_resilience,
    )
    engine = MappingEngine(graph, platform, resolved, options, algorithm="ltf", priorities=priorities)
    return engine.run(LTFPolicy())
