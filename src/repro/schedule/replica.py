"""Task replicas.

With a fault-tolerance degree ``ε`` the active-replication scheme executes
``ε + 1`` copies (replicas) of every task on pairwise distinct processors.  The
paper writes ``t^{(N)}`` for the ``N``-th replica of task ``t`` and ``B(t)``
for the set of all its replicas.
"""

from __future__ import annotations

from typing import NamedTuple

__all__ = ["Replica", "replica_name"]


class Replica(NamedTuple):
    """The ``index``-th copy of task ``task`` (1-based, ``1 <= index <= ε+1``)."""

    task: str
    index: int

    def __repr__(self) -> str:
        return f"{self.task}({self.index})"


def replica_name(replica: Replica) -> str:
    """Human-readable name of a replica, e.g. ``"t3(2)"``."""
    return f"{replica.task}({replica.index})"
