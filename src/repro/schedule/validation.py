"""Schedule invariant checks.

The heuristics are greedy and stateful, so the test-suite (and cautious
callers) re-validate their output against the model of Section 2:

* **completeness** — every task has exactly ``ε+1`` replicas;
* **placement disjointness** — replicas of a task run on pairwise distinct
  processors (otherwise a single failure could wipe out a task);
* **precedence / data coverage** — every non-entry replica receives each of its
  predecessor tasks' data from at least one source replica, and never starts
  before all its recorded inputs have arrived;
* **throughput feasibility** — ``Σ_u ≤ Δ``, ``C^I_u ≤ Δ``, ``C^O_u ≤ Δ`` for
  every processor (condition (1) of the paper);
* **one-port consistency** — the busy intervals of each port never overlap
  (guaranteed by construction via :class:`~repro.utils.intervals.Timeline`, but
  re-checked here from the committed events);
* **ε-resilience** — under any ``c ≤ ε`` crashes, every task still has at
  least one valid replica (checked exhaustively for small platforms, by
  sampling otherwise).
"""

from __future__ import annotations

import itertools
from typing import Iterable, Sequence

from repro.exceptions import ValidationError
from repro.schedule.replica import Replica
from repro.schedule.schedule import Schedule
from repro.utils.rng import ensure_rng

__all__ = ["validate_schedule", "check_resilience", "valid_replicas_under_failures"]

_TOL = 1e-6


def validate_schedule(schedule: Schedule, require_complete: bool = True) -> None:
    """Raise :class:`~repro.exceptions.ValidationError` on any violated invariant."""
    _check_completeness(schedule, require_complete)
    _check_disjoint_placement(schedule)
    _check_precedence(schedule)
    _check_throughput(schedule)
    _check_one_port(schedule)


def _check_completeness(schedule: Schedule, require_complete: bool) -> None:
    factor = schedule.replication_factor
    for task in schedule.graph.task_names:
        placed = len(schedule.replicas(task))
        if require_complete and placed != factor:
            raise ValidationError(
                f"task {task!r} has {placed} replicas, expected {factor}"
            )
        if placed > factor:
            raise ValidationError(
                f"task {task!r} has {placed} replicas, more than epsilon+1={factor}"
            )


def _check_disjoint_placement(schedule: Schedule) -> None:
    for task in schedule.graph.task_names:
        procs = schedule.processors_of_task(task)
        if len(set(procs)) != len(procs):
            raise ValidationError(
                f"replicas of task {task!r} share a processor: {procs}"
            )


def _check_precedence(schedule: Schedule) -> None:
    graph = schedule.graph
    arrivals: dict[tuple[Replica, Replica], float] = {}
    for event in schedule.comm_events:
        arrivals[(event.source, event.destination)] = event.end
    for replica in schedule.all_replicas():
        preds = graph.predecessors(replica.task)
        sources = schedule.sources_of(replica)
        start = schedule.start_time(replica)
        for pred in preds:
            srcs = sources.get(pred, ())
            if not srcs:
                raise ValidationError(
                    f"replica {replica!r} has no data source for predecessor {pred!r}"
                )
            for src in srcs:
                key = (src, replica)
                if key not in arrivals:
                    raise ValidationError(
                        f"communication {src!r} -> {replica!r} was recorded as a source "
                        "but has no committed event"
                    )
                if start < arrivals[key] - _TOL:
                    raise ValidationError(
                        f"replica {replica!r} starts at {start:g} before its input from "
                        f"{src!r} arrives at {arrivals[key]:g}"
                    )
                if schedule.finish_time(src) > arrivals[key] + _TOL and not _is_local(schedule, src, replica):
                    # remote transfer cannot arrive before the producer finishes
                    raise ValidationError(
                        f"communication {src!r} -> {replica!r} arrives at {arrivals[key]:g} "
                        f"before its producer finishes at {schedule.finish_time(src):g}"
                    )


def _is_local(schedule: Schedule, src: Replica, dst: Replica) -> bool:
    return schedule.processor_of(src) == schedule.processor_of(dst)


def _check_throughput(schedule: Schedule) -> None:
    period = schedule.period
    for name, state in schedule.processor_states.items():
        if state.compute_load > period + _TOL:
            raise ValidationError(
                f"processor {name!r} compute load {state.compute_load:g} exceeds the period {period:g}"
            )
        if state.comm_in_load > period + _TOL:
            raise ValidationError(
                f"processor {name!r} incoming comm load {state.comm_in_load:g} exceeds the period {period:g}"
            )
        if state.comm_out_load > period + _TOL:
            raise ValidationError(
                f"processor {name!r} outgoing comm load {state.comm_out_load:g} exceeds the period {period:g}"
            )


def _check_one_port(schedule: Schedule) -> None:
    """Re-derive port busy intervals from the committed events and check overlaps."""
    outgoing: dict[str, list[tuple[float, float]]] = {}
    incoming: dict[str, list[tuple[float, float]]] = {}
    for event in schedule.comm_events:
        if event.is_local:
            continue
        src_proc = schedule.processor_of(event.source)
        dst_proc = schedule.processor_of(event.destination)
        outgoing.setdefault(src_proc, []).append((event.start, event.end))
        incoming.setdefault(dst_proc, []).append((event.start, event.end))
    for name, spans in itertools.chain(
        (("out-port of " + p, s) for p, s in outgoing.items()),
        (("in-port of " + p, s) for p, s in incoming.items()),
    ):
        spans.sort()
        for (s1, e1), (s2, _e2) in zip(spans, spans[1:]):
            if s2 < e1 - _TOL:
                raise ValidationError(
                    f"one-port violation on the {name}: interval starting at {s2:g} "
                    f"overlaps the previous one ending at {e1:g}"
                )


# ----------------------------------------------------------------- resilience
def valid_replicas_under_failures(
    schedule: Schedule, failed_processors: Iterable[str]
) -> dict[str, list[Replica]]:
    """Replicas that still produce a valid result when *failed_processors* crash.

    A replica is valid when its processor is alive and, for each predecessor
    task, at least one of the source replicas it receives data from is itself
    valid (entry replicas only need their processor alive).
    """
    failed = set(failed_processors)
    for p in failed:
        schedule.platform.processor(p)
    valid: dict[str, list[Replica]] = {t: [] for t in schedule.graph.task_names}
    valid_set: set[Replica] = set()
    for task in schedule.graph.topological_order():
        preds = schedule.graph.predecessors(task)
        for replica in schedule.replicas(task):
            if schedule.processor_of(replica) in failed:
                continue
            ok = True
            sources = schedule.sources_of(replica)
            for pred in preds:
                if not any(src in valid_set for src in sources.get(pred, ())):
                    ok = False
                    break
            if ok:
                valid[task].append(replica)
                valid_set.add(replica)
    return valid


def check_resilience(
    schedule: Schedule,
    max_failures: int | None = None,
    exhaustive_limit: int = 20000,
    samples: int = 500,
    seed: int | None = 0,
) -> None:
    """Check that any ``c <= ε`` crashes leave at least one valid replica per task.

    All subsets of ``c`` processors are enumerated when their number is below
    *exhaustive_limit*; otherwise *samples* random subsets are drawn.

    Raises
    ------
    ValidationError
        If some crash pattern leaves a task without any valid replica.
    """
    epsilon = schedule.epsilon if max_failures is None else max_failures
    if epsilon == 0:
        return
    processors: Sequence[str] = schedule.used_processors()
    rng = ensure_rng(seed)

    def verify(pattern: tuple[str, ...]) -> None:
        valid = valid_replicas_under_failures(schedule, pattern)
        for task, replicas in valid.items():
            if not replicas:
                raise ValidationError(
                    f"task {task!r} has no valid replica when processors {sorted(pattern)} fail"
                )

    for c in range(1, epsilon + 1):
        combos = itertools.combinations(processors, c)
        import math

        count = math.comb(len(processors), c)
        if count <= exhaustive_limit:
            for pattern in combos:
                verify(pattern)
        else:
            for _ in range(samples):
                idx = rng.choice(len(processors), size=c, replace=False)
                verify(tuple(processors[i] for i in idx))
