"""The :class:`Schedule` produced by the heuristics.

A schedule records, for a given application graph, platform, period ``Δ`` and
fault-tolerance degree ``ε``:

* the **mapping**: which processor executes each replica (the mapping matrix
  ``X`` of the paper);
* the **communication topology**: for every replica, the set of predecessor
  replicas it receives its inputs from (one source per predecessor task when
  the one-to-one mapping procedure was used, all ``ε+1`` sources otherwise);
* the **timing of one instance** of the stream under the one-port model:
  start/finish time of every replica, start/finish of every communication on
  the sender's out-port and the receiver's in-port;
* the **steady-state loads** ``Σ_u``, ``C^I_u``, ``C^O_u`` that the throughput
  condition constrains.

Candidate placements are evaluated *without mutating* the schedule through
:func:`plan_placement`, which returns a :class:`PlacementPlan`; the chosen plan
is then committed with :meth:`Schedule.apply_placement`.  This keeps the
heuristics simple (no undo) while preserving the one-port semantics during the
search.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping, Sequence

import numpy as np

from repro.exceptions import ScheduleError
from repro.graph.dag import TaskGraph
from repro.platform.platform import Platform
from repro.schedule.ports import ProcessorTimelines
from repro.schedule.replica import Replica
from repro.utils.checks import check_positive
from repro.utils.intervals import Timeline, earliest_common_slot

__all__ = ["CommEvent", "PlacementPlan", "PlannedComm", "Schedule", "plan_placement"]


@dataclass(frozen=True)
class CommEvent:
    """A committed communication between two replicas.

    ``duration == 0`` denotes a local transfer (source and destination replicas
    are co-located); such events still matter because they define the
    communication topology used by the stage computation and by the crash
    evaluation.
    """

    source: Replica
    destination: Replica
    volume: float
    start: float
    duration: float

    @property
    def end(self) -> float:
        """Arrival time of the data at the destination processor."""
        return self.start + self.duration

    @property
    def is_local(self) -> bool:
        """True when the transfer happens inside a single processor."""
        return self.duration == 0.0


@dataclass(frozen=True)
class PlannedComm:
    """One communication of a not-yet-committed :class:`PlacementPlan`."""

    source: Replica
    source_processor: str
    volume: float
    start: float
    duration: float

    @property
    def end(self) -> float:
        return self.start + self.duration


@dataclass
class PlacementPlan:
    """The outcome of simulating the placement of one replica on one processor."""

    replica: Replica
    processor: str
    start: float
    finish: float
    comms: tuple[PlannedComm, ...] = ()
    one_to_one: bool = False

    @property
    def execution_time(self) -> float:
        """Execution time of the replica on the chosen processor."""
        return self.finish - self.start

    @property
    def incoming_comm_time(self) -> float:
        """Total non-local incoming communication time added on the processor's in-port."""
        return sum(c.duration for c in self.comms if c.duration > 0)

    def outgoing_comm_time_by_processor(self) -> dict[str, float]:
        """Non-local outgoing communication time added per source processor."""
        out: dict[str, float] = {}
        for c in self.comms:
            if c.duration > 0:
                out[c.source_processor] = out.get(c.source_processor, 0.0) + c.duration
        return out


class Schedule:
    """A replicated pipelined schedule (see module docstring)."""

    def __init__(
        self,
        graph: TaskGraph,
        platform: Platform,
        period: float,
        epsilon: int = 0,
        algorithm: str = "unknown",
    ):
        graph.validate()
        check_positive(period, "period")
        if epsilon < 0:
            raise ScheduleError(f"epsilon must be >= 0, got {epsilon}")
        if epsilon >= platform.num_processors:
            raise ScheduleError(
                f"epsilon={epsilon} requires at least {epsilon + 1} processors, "
                f"platform only has {platform.num_processors}"
            )
        self.graph = graph
        self.platform = platform
        self.period = float(period)
        self.epsilon = int(epsilon)
        self.algorithm = algorithm

        self._assignment: dict[Replica, str] = {}
        self._replicas_of: dict[str, list[Replica]] = {t: [] for t in graph.task_names}
        self._start: dict[Replica, float] = {}
        self._finish: dict[Replica, float] = {}
        self._sources: dict[Replica, dict[str, list[Replica]]] = {}
        self._comm_events: list[CommEvent] = []
        self._proc_state: dict[str, ProcessorTimelines] = {
            name: ProcessorTimelines(name) for name in platform.processor_names
        }
        #: free-form counters filled by the schedulers (one-to-one calls, fallbacks...)
        self.stats: dict[str, float] = {}

    # ------------------------------------------------------------------ basics
    @property
    def replication_factor(self) -> int:
        """Number of copies of each task, ``ε + 1``."""
        return self.epsilon + 1

    @property
    def throughput(self) -> float:
        """Target throughput ``T = 1/Δ``."""
        return 1.0 / self.period

    def replicas(self, task: str) -> tuple[Replica, ...]:
        """``B(t)`` — the replicas of *task* already placed, in placement order."""
        if task not in self._replicas_of:
            raise ScheduleError(f"unknown task {task!r}")
        return tuple(self._replicas_of[task])

    def all_replicas(self) -> Iterator[Replica]:
        """Iterate over every placed replica."""
        return iter(self._assignment.keys())

    @property
    def num_placed_replicas(self) -> int:
        """Number of replicas placed so far."""
        return len(self._assignment)

    def is_complete(self) -> bool:
        """True when every task has exactly ``ε+1`` placed replicas."""
        return all(
            len(self._replicas_of[t]) == self.replication_factor for t in self.graph.task_names
        )

    def is_placed(self, replica: Replica) -> bool:
        """True when *replica* has been committed to a processor."""
        return replica in self._assignment

    def processor_of(self, replica: Replica) -> str:
        """Processor hosting *replica*."""
        try:
            return self._assignment[replica]
        except KeyError:
            raise ScheduleError(f"replica {replica!r} is not placed") from None

    def processors_of_task(self, task: str) -> tuple[str, ...]:
        """Processors hosting the replicas of *task*."""
        return tuple(self._assignment[r] for r in self.replicas(task))

    def replicas_on(self, processor: str) -> tuple[Replica, ...]:
        """Replicas hosted by *processor*."""
        self.platform.processor(processor)
        return tuple(r for r, p in self._assignment.items() if p == processor)

    def start_time(self, replica: Replica) -> float:
        """Start time of *replica* within one instance of the stream."""
        return self._start[replica]

    def finish_time(self, replica: Replica) -> float:
        """Finish time of *replica* within one instance of the stream."""
        return self._finish[replica]

    def sources_of(self, replica: Replica) -> Mapping[str, Sequence[Replica]]:
        """For each predecessor task, the replicas *replica* receives data from."""
        return {k: tuple(v) for k, v in self._sources.get(replica, {}).items()}

    def execution_time_of(self, replica: Replica) -> float:
        """Execution time of *replica* on its assigned processor.

        Read-only accessor used by the simulation kernel (:mod:`repro.sim`):
        the kernel never touches the schedule's mutable state, it only reads
        the mapping, the communication topology and the per-replica durations.
        """
        return self.platform.execution_time(
            self.graph.work(replica.task), self.processor_of(replica)
        )

    def compute_intervals(self, processor: str) -> tuple:
        """Busy intervals of the compute resource of *processor* (read-only)."""
        return self.processor_state(processor).compute.intervals

    def in_port_intervals(self, processor: str) -> tuple:
        """Busy intervals of the in-port of *processor* (read-only)."""
        return self.processor_state(processor).in_port.intervals

    def out_port_intervals(self, processor: str) -> tuple:
        """Busy intervals of the out-port of *processor* (read-only)."""
        return self.processor_state(processor).out_port.intervals

    @property
    def comm_events(self) -> tuple[CommEvent, ...]:
        """Every committed communication, local ones included."""
        return tuple(self._comm_events)

    def processor_state(self, processor: str) -> ProcessorTimelines:
        """One-port state of *processor* (timelines and loads)."""
        try:
            return self._proc_state[processor]
        except KeyError:
            raise ScheduleError(f"unknown processor {processor!r}") from None

    @property
    def processor_states(self) -> Mapping[str, ProcessorTimelines]:
        """One-port state of every processor."""
        return dict(self._proc_state)

    @property
    def makespan(self) -> float:
        """Completion time of the last replica of one instance (not the latency)."""
        if not self._finish:
            return 0.0
        return max(self._finish.values())

    # -------------------------------------------------------------- mutation
    def next_replica(self, task: str) -> Replica:
        """The next replica of *task* to be placed (1-based index)."""
        placed = len(self._replicas_of[task])
        if placed >= self.replication_factor:
            raise ScheduleError(
                f"task {task!r} already has its {self.replication_factor} replicas placed"
            )
        return Replica(task, placed + 1)

    def apply_placement(self, plan: PlacementPlan) -> Replica:
        """Commit a :class:`PlacementPlan`: reserve ports, record the mapping.

        Raises
        ------
        ScheduleError
            If the replica is already placed, if another replica of the same
            task already occupies the processor (replicas must be on pairwise
            distinct processors), or if the processor is unknown.
        """
        replica, proc = plan.replica, plan.processor
        self.platform.processor(proc)
        if replica in self._assignment:
            raise ScheduleError(f"replica {replica!r} is already placed")
        if replica.task not in self._replicas_of:
            raise ScheduleError(f"unknown task {replica.task!r}")
        if proc in self.processors_of_task(replica.task):
            raise ScheduleError(
                f"processor {proc!r} already hosts a replica of task {replica.task!r}"
            )

        state = self._proc_state[proc]
        # Commit communications first (out-port of the source, in-port of proc).
        sources: dict[str, list[Replica]] = {}
        for comm in plan.comms:
            src_proc = comm.source_processor
            if comm.duration > 0:
                self._proc_state[src_proc].reserve_outgoing(
                    comm.start, comm.duration, (comm.source, replica)
                )
                state.reserve_incoming(comm.start, comm.duration, (comm.source, replica))
            self._comm_events.append(
                CommEvent(comm.source, replica, comm.volume, comm.start, comm.duration)
            )
            sources.setdefault(comm.source.task, []).append(comm.source)

        exec_time = self.platform.execution_time(self.graph.work(replica.task), proc)
        state.reserve_compute(plan.start, exec_time, replica)

        self._assignment[replica] = proc
        self._replicas_of[replica.task].append(replica)
        self._start[replica] = plan.start
        self._finish[replica] = plan.start + exec_time
        self._sources[replica] = sources
        return replica

    # ------------------------------------------------------------ derived data
    def mapping_matrix(self) -> np.ndarray:
        """The ``v × m`` binary mapping matrix ``X`` of the paper."""
        tasks = self.graph.task_names
        procs = self.platform.processor_names
        x = np.zeros((len(tasks), len(procs)), dtype=np.int8)
        proc_index = {p: j for j, p in enumerate(procs)}
        task_index = {t: i for i, t in enumerate(tasks)}
        for replica, proc in self._assignment.items():
            x[task_index[replica.task], proc_index[proc]] = 1
        return x

    def compute_load(self, processor: str) -> float:
        """``Σ_u`` of *processor*."""
        return self.processor_state(processor).compute_load

    def comm_in_load(self, processor: str) -> float:
        """``C^I_u`` of *processor*."""
        return self.processor_state(processor).comm_in_load

    def comm_out_load(self, processor: str) -> float:
        """``C^O_u`` of *processor*."""
        return self.processor_state(processor).comm_out_load

    def cycle_time(self, processor: str) -> float:
        """``Δ_u`` of *processor*."""
        return self.processor_state(processor).cycle_time

    @property
    def max_cycle_time(self) -> float:
        """``max_u Δ_u`` — the inverse of the achieved throughput."""
        return max(s.cycle_time for s in self._proc_state.values())

    @property
    def achieved_throughput(self) -> float:
        """Throughput actually achieved by the mapping, ``1 / max_u Δ_u``."""
        mct = self.max_cycle_time
        return float("inf") if mct == 0 else 1.0 / mct

    def used_processors(self) -> tuple[str, ...]:
        """Processors hosting at least one replica."""
        return tuple(sorted({p for p in self._assignment.values()}))

    def gantt(self) -> list[tuple[str, str, float, float]]:
        """Rows ``(processor, replica, start, finish)`` sorted by processor then start."""
        rows = [
            (proc, repr(rep), self._start[rep], self._finish[rep])
            for rep, proc in self._assignment.items()
        ]
        rows.sort(key=lambda r: (r[0], r[2]))
        return rows

    def __repr__(self) -> str:
        return (
            f"Schedule(algorithm={self.algorithm!r}, graph={self.graph.name!r}, "
            f"replicas={self.num_placed_replicas}/{self.graph.num_tasks * self.replication_factor}, "
            f"period={self.period:g}, epsilon={self.epsilon})"
        )


# --------------------------------------------------------------------- planning
def plan_placement(
    schedule: Schedule,
    task: str,
    processor: str,
    sources: Mapping[str, Iterable[Replica]],
    one_to_one: bool = False,
) -> PlacementPlan:
    """Simulate placing the next replica of *task* on *processor*.

    Parameters
    ----------
    schedule:
        The partially built schedule (left untouched).
    task, processor:
        The task whose next replica is being considered and the candidate
        processor.
    sources:
        For each predecessor task of *task*, the replicas this new replica
        would receive its input from.  Every predecessor task of *task* must be
        covered (the heuristics guarantee this: predecessors are always
        scheduled before their successors in the traversal order used).
    one_to_one:
        Marker recorded in the plan for statistics (no semantic effect here).

    Returns
    -------
    PlacementPlan
        Start/finish time of the replica and the planned communications, all
        computed under the one-port model by *copying* the relevant timelines
        (the schedule is not modified).
    """
    graph, platform = schedule.graph, schedule.platform
    replica = schedule.next_replica(task)
    preds = set(graph.predecessors(task))
    missing = preds - set(sources.keys())
    if missing:
        raise ScheduleError(
            f"placement of {task!r} is missing sources for predecessors {sorted(missing)}"
        )

    state = schedule.processor_state(processor)
    in_port: Timeline = state.in_port.copy()
    out_ports: dict[str, Timeline] = {}
    planned: list[PlannedComm] = []
    data_ready = 0.0

    # Flatten and order candidate communications by the moment their data is
    # produced; this mimics the behaviour of a runtime that forwards results
    # as soon as they are available and keeps the plan deterministic.
    flat: list[tuple[float, Replica, str, float]] = []
    for pred_task in sorted(preds):
        srcs = list(sources[pred_task])
        if not srcs:
            raise ScheduleError(f"empty source list for predecessor {pred_task!r} of {task!r}")
        vol = graph.volume(pred_task, task)
        for src in srcs:
            if not schedule.is_placed(src):
                raise ScheduleError(f"source replica {src!r} is not placed yet")
            flat.append((schedule.finish_time(src), src, pred_task, vol))
    flat.sort(key=lambda item: (item[0], item[1]))

    for ready, src, _pred_task, vol in flat:
        src_proc = schedule.processor_of(src)
        if src_proc == processor:
            planned.append(PlannedComm(src, src_proc, vol, ready, 0.0))
            arrival = ready
        else:
            duration = platform.communication_time(vol, src_proc, processor)
            out = out_ports.get(src_proc)
            if out is None:
                out = schedule.processor_state(src_proc).out_port.copy()
                out_ports[src_proc] = out
            start = earliest_common_slot([out, in_port], ready, duration)
            out.reserve(start, duration, (src, replica))
            in_port.reserve(start, duration, (src, replica))
            planned.append(PlannedComm(src, src_proc, vol, start, duration))
            arrival = start + duration
        data_ready = max(data_ready, arrival)

    exec_time = platform.execution_time(graph.work(task), processor)
    start = state.compute.earliest_slot(data_ready, exec_time)
    return PlacementPlan(
        replica=replica,
        processor=processor,
        start=start,
        finish=start + exec_time,
        comms=tuple(planned),
        one_to_one=one_to_one,
    )
