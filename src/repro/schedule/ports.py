"""Per-processor one-port state.

Under the bi-directional one-port model a processor owns three independent
resources, each modelled by a :class:`~repro.utils.intervals.Timeline`:

* the **compute** resource (one task executes at a time);
* the **out-port** (at most one outgoing communication at a time);
* the **in-port** (at most one incoming communication at a time).

Computation and the two ports can be active simultaneously — this is the "full
computation/communication overlap" of the paper.  On top of the detailed
timelines we also maintain the *steady-state loads* used by the throughput
condition (1):

* ``Σ_u`` (:attr:`ProcessorTimelines.compute_load`) — time spent computing per
  data set;
* ``C^I_u`` (:attr:`ProcessorTimelines.comm_in_load`) — time spent receiving
  per data set;
* ``C^O_u`` (:attr:`ProcessorTimelines.comm_out_load`) — time spent sending
  per data set.

The cycle-time of a processor is ``Δ_u = max(Σ_u, C^I_u, C^O_u)``, and the
throughput achieved by a mapping is ``T = 1 / max_u Δ_u``.
"""

from __future__ import annotations

from repro.utils.checks import check_non_negative
from repro.utils.intervals import Timeline

__all__ = ["ProcessorTimelines"]


class ProcessorTimelines:
    """Timelines and steady-state loads of a single processor."""

    def __init__(self, processor: str):
        self.processor = processor
        self.compute = Timeline()
        self.in_port = Timeline()
        self.out_port = Timeline()
        self._compute_load = 0.0
        self._comm_in_load = 0.0
        self._comm_out_load = 0.0

    # ---------------------------------------------------------------- loads
    @property
    def compute_load(self) -> float:
        """``Σ_u`` — total execution time mapped on this processor per data set."""
        return self._compute_load

    @property
    def comm_in_load(self) -> float:
        """``C^I_u`` — total incoming communication time per data set."""
        return self._comm_in_load

    @property
    def comm_out_load(self) -> float:
        """``C^O_u`` — total outgoing communication time per data set."""
        return self._comm_out_load

    @property
    def cycle_time(self) -> float:
        """``Δ_u = max(Σ_u, C^I_u, C^O_u)`` — the processor's steady-state cycle time."""
        return max(self._compute_load, self._comm_in_load, self._comm_out_load)

    # ------------------------------------------------------------ reservations
    def reserve_compute(self, start: float, duration: float, label: object = None) -> None:
        """Reserve the compute resource and update ``Σ_u``."""
        check_non_negative(duration, "duration")
        self.compute.reserve(start, duration, label)
        self._compute_load += duration

    def reserve_incoming(self, start: float, duration: float, label: object = None) -> None:
        """Reserve the in-port and update ``C^I_u``."""
        check_non_negative(duration, "duration")
        self.in_port.reserve(start, duration, label)
        self._comm_in_load += duration

    def reserve_outgoing(self, start: float, duration: float, label: object = None) -> None:
        """Reserve the out-port and update ``C^O_u``."""
        check_non_negative(duration, "duration")
        self.out_port.reserve(start, duration, label)
        self._comm_out_load += duration

    # ---------------------------------------------------------------- queries
    def utilization(self, period: float) -> float:
        """Fraction of the period spent computing (``U_P`` in the paper)."""
        if period <= 0:
            raise ValueError(f"period must be > 0, got {period}")
        return self._compute_load / period

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"ProcessorTimelines({self.processor!r}, Σ={self._compute_load:.2f}, "
            f"CI={self._comm_in_load:.2f}, CO={self._comm_out_load:.2f})"
        )
