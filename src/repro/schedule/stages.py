"""Pipeline-stage computation.

The latency model of the paper (borrowed from Hary & Özgüner) partitions the
replicas into *pipeline stages*: entry replicas are in stage 1, and the stage
of any other replica is ``S = max(S_source + η)`` over the predecessor replicas
it actually communicates with, where ``η = 0`` when source and destination run
on the same processor and ``η = 1`` otherwise.  Stages therefore count the
processor changes along dependence paths.  With ``S`` stages and a period
``Δ = 1/T``, the pipelined latency is ``L = (2S − 1)·Δ``: each stage accounts
for one period of computation and one period of inter-stage communication,
except the last one.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.exceptions import ScheduleError
from repro.schedule.replica import Replica
from repro.schedule.schedule import Schedule

__all__ = ["compute_stages", "num_stages", "stage_of_task", "stages_by_processor"]


def compute_stages(
    schedule: Schedule,
    alive_only: Iterable[str] | None = None,
) -> dict[Replica, int]:
    """Pipeline stage ``S(t^{(N)})`` of every placed replica.

    Parameters
    ----------
    schedule:
        A (complete or partial) schedule.  Replicas are processed in the
        topological order of their tasks, so every communication source is
        guaranteed to have been assigned a stage first.
    alive_only:
        Optional collection of *alive* processors.  When given, replicas on
        dead processors are skipped and, for each predecessor task, the stage
        recursion keeps the **minimum** over the surviving sources
        (first-arrival semantics of active replication).  This is how the crash
        evaluation recomputes the *real* number of stages after failures.

    Returns
    -------
    dict
        Mapping from replica to its 1-based stage number.  With ``alive_only``,
        replicas that are dead or left without any surviving source for one of
        their predecessors are absent from the mapping (they never produce a
        valid result).
    """
    alive = None if alive_only is None else set(alive_only)
    stages: dict[Replica, int] = {}
    for task in schedule.graph.topological_order():
        for replica in schedule.replicas(task):
            proc = schedule.processor_of(replica)
            if alive is not None and proc not in alive:
                continue
            sources = schedule.sources_of(replica)
            preds = schedule.graph.predecessors(task)
            if not preds:
                stages[replica] = 1
                continue
            stage = 1
            valid = True
            for pred in preds:
                srcs = sources.get(pred, ())
                candidates = []
                for src in srcs:
                    if src not in stages:
                        continue  # dead or invalid source
                    eta = 0 if schedule.processor_of(src) == proc else 1
                    candidates.append(stages[src] + eta)
                if not candidates:
                    valid = False
                    break
                # Without failures every recorded source is waited for (max);
                # under failures the replica proceeds on the first valid input
                # per predecessor (min over the surviving sources).
                contribution = min(candidates) if alive is not None else max(candidates)
                stage = max(stage, contribution)
            if valid:
                stages[replica] = stage
    return stages


def num_stages(schedule: Schedule, alive_only: Iterable[str] | None = None) -> int:
    """Total number of pipeline stages ``S`` of the schedule.

    Without failures this is the maximum stage over all replicas.  With a set
    of alive processors it is the maximum over exit tasks of the stage of their
    *best surviving* replica (the stream result is available as soon as one
    valid replica of each exit task has produced it).

    Raises
    ------
    ScheduleError
        If, under the given failure pattern, some exit task has no valid
        replica left (more than ``ε`` failures, or an invalid schedule).
    """
    stages = compute_stages(schedule, alive_only)
    if not stages:
        raise ScheduleError("schedule has no placed replica")
    if alive_only is None:
        return max(stages.values())
    worst = 0
    for task in schedule.graph.exit_tasks():
        valid = [stages[r] for r in schedule.replicas(task) if r in stages]
        if not valid:
            raise ScheduleError(
                f"exit task {task!r} has no valid replica under the given failures"
            )
        worst = max(worst, min(valid))
    return worst


def stage_of_task(schedule: Schedule, task: str, stages: Mapping[Replica, int] | None = None) -> int:
    """Stage of *task* — the maximum stage over its replicas (fault-free view)."""
    if stages is None:
        stages = compute_stages(schedule)
    values = [stages[r] for r in schedule.replicas(task) if r in stages]
    if not values:
        raise ScheduleError(f"task {task!r} has no staged replica")
    return max(values)


def stages_by_processor(schedule: Schedule) -> dict[str, set[int]]:
    """For every used processor, the set of stages it participates in (reporting helper)."""
    stages = compute_stages(schedule)
    out: dict[str, set[int]] = {}
    for replica, stage in stages.items():
        out.setdefault(schedule.processor_of(replica), set()).add(stage)
    return out
