"""Schedule metrics: latency, throughput, utilizations, overheads.

The three criteria of the paper are measured here:

* **latency** — ``L = (2S − 1)·Δ`` where ``S`` is the number of pipeline
  stages (:func:`latency_upper_bound`), optionally normalized by a
  workload-dependent unit (:func:`normalized_latency`);
* **throughput** — the achieved steady-state throughput ``1 / max_u Δ_u``
  (:func:`throughput`), to be compared against the requested one;
* **reliability cost** — the fault-tolerance overhead
  ``(L_algo − L_FF) / L_FF`` against the fault-free reference schedule
  (:func:`fault_tolerance_overhead`), and the number of extra communications
  induced by replication (:func:`communication_count`).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.schedule.schedule import Schedule
from repro.schedule.stages import compute_stages, num_stages
from repro.utils.checks import check_positive

__all__ = [
    "latency_upper_bound",
    "normalized_latency",
    "throughput",
    "processor_utilization",
    "communication_count",
    "replication_comm_ratio",
    "fault_tolerance_overhead",
    "ScheduleMetrics",
    "collect_metrics",
]


def latency_upper_bound(schedule: Schedule) -> float:
    """Pipelined latency upper bound ``L = (2S − 1)·Δ`` of a complete schedule."""
    s = num_stages(schedule)
    return (2 * s - 1) * schedule.period


def normalized_latency(schedule: Schedule, unit: float) -> float:
    """Latency divided by a workload-dependent *unit* (e.g. the mean task time).

    The experimental section of the paper reports a "normalized latency" so
    that graphs of different sizes can be averaged; see DESIGN.md for the exact
    normalization chosen by this reproduction.
    """
    check_positive(unit, "unit")
    return latency_upper_bound(schedule) / unit


def throughput(schedule: Schedule) -> float:
    """Achieved steady-state throughput ``1 / max_u Δ_u``."""
    return schedule.achieved_throughput


def processor_utilization(schedule: Schedule) -> dict[str, float]:
    """Utilization ``U_{P_u} = T·Σ_u`` of every processor."""
    return {
        name: state.compute_load / schedule.period
        for name, state in schedule.processor_states.items()
    }


def communication_count(schedule: Schedule, include_local: bool = False) -> int:
    """Number of communications induced by the mapping.

    By default only *remote* communications are counted (local transfers cost
    nothing); this is the quantity the one-to-one mapping procedure aims to
    keep close to ``e(ε+1)`` instead of ``e(ε+1)²``.
    """
    events = schedule.comm_events
    if include_local:
        return len(events)
    return sum(1 for c in events if not c.is_local)


def replication_comm_ratio(schedule: Schedule) -> float:
    """Total number of replica-to-replica transfers divided by the number of
    graph edges — between ``ε+1`` (perfect one-to-one chains) and ``(ε+1)²``."""
    e = schedule.graph.num_edges
    if e == 0:
        return 0.0
    return len(schedule.comm_events) / e


def fault_tolerance_overhead(latency: float, fault_free_latency: float) -> float:
    """Relative overhead ``(L_algo − L_FF)/L_FF`` in percent."""
    check_positive(fault_free_latency, "fault_free_latency")
    return 100.0 * (latency - fault_free_latency) / fault_free_latency


@dataclass(frozen=True)
class ScheduleMetrics:
    """A flat summary of a schedule, convenient for campaign result tables."""

    algorithm: str
    num_tasks: int
    num_edges: int
    epsilon: int
    period: float
    stages: int
    latency: float
    achieved_throughput: float
    remote_communications: int
    total_communications: int
    used_processors: int
    max_compute_load: float
    max_comm_in_load: float
    max_comm_out_load: float

    def as_dict(self) -> dict[str, float]:
        """Dictionary view (keeps dataclass immutability for the caller)."""
        return {
            "algorithm": self.algorithm,
            "num_tasks": self.num_tasks,
            "num_edges": self.num_edges,
            "epsilon": self.epsilon,
            "period": self.period,
            "stages": self.stages,
            "latency": self.latency,
            "achieved_throughput": self.achieved_throughput,
            "remote_communications": self.remote_communications,
            "total_communications": self.total_communications,
            "used_processors": self.used_processors,
            "max_compute_load": self.max_compute_load,
            "max_comm_in_load": self.max_comm_in_load,
            "max_comm_out_load": self.max_comm_out_load,
        }


def collect_metrics(schedule: Schedule) -> ScheduleMetrics:
    """Compute a :class:`ScheduleMetrics` summary for a complete schedule."""
    stages = compute_stages(schedule)
    s = max(stages.values()) if stages else 0
    states = schedule.processor_states.values()
    return ScheduleMetrics(
        algorithm=schedule.algorithm,
        num_tasks=schedule.graph.num_tasks,
        num_edges=schedule.graph.num_edges,
        epsilon=schedule.epsilon,
        period=schedule.period,
        stages=s,
        latency=(2 * s - 1) * schedule.period if s else 0.0,
        achieved_throughput=schedule.achieved_throughput,
        remote_communications=communication_count(schedule),
        total_communications=communication_count(schedule, include_local=True),
        used_processors=len(schedule.used_processors()),
        max_compute_load=max(st.compute_load for st in states),
        max_comm_in_load=max(st.comm_in_load for st in states),
        max_comm_out_load=max(st.comm_out_load for st in states),
    )
