"""Replicated pipelined-schedule substrate.

This package holds everything a scheduling heuristic produces and everything
the evaluation consumes:

* :class:`~repro.schedule.replica.Replica` — one of the ``ε+1`` copies of a task;
* :class:`~repro.schedule.ports.ProcessorTimelines` — the one-port model state
  of a processor (compute, in-port and out-port busy intervals plus the
  steady-state loads ``Σ_u``, ``C^I_u``, ``C^O_u``);
* :class:`~repro.schedule.schedule.Schedule` — the mapping, the communication
  topology between replicas and the timing of one instance of the stream;
* :mod:`repro.schedule.stages` — pipeline-stage computation;
* :mod:`repro.schedule.metrics` — latency ``L = (2S-1)·Δ``, throughput,
  utilizations, communication counts and fault-tolerance overhead;
* :mod:`repro.schedule.validation` — invariant checks used by the test-suite
  and by cautious callers.
"""

from repro.schedule.replica import Replica, replica_name
from repro.schedule.ports import ProcessorTimelines
from repro.schedule.schedule import Schedule, CommEvent, PlacementPlan, plan_placement
from repro.schedule.stages import compute_stages, num_stages, stage_of_task
from repro.schedule.metrics import (
    latency_upper_bound,
    normalized_latency,
    throughput,
    processor_utilization,
    communication_count,
    fault_tolerance_overhead,
    ScheduleMetrics,
    collect_metrics,
)
from repro.schedule.validation import validate_schedule, check_resilience

__all__ = [
    "Replica",
    "replica_name",
    "ProcessorTimelines",
    "Schedule",
    "CommEvent",
    "PlacementPlan",
    "plan_placement",
    "compute_stages",
    "num_stages",
    "stage_of_task",
    "latency_upper_bound",
    "normalized_latency",
    "throughput",
    "processor_utilization",
    "communication_count",
    "fault_tolerance_overhead",
    "ScheduleMetrics",
    "collect_metrics",
    "validate_schedule",
    "check_resilience",
]
