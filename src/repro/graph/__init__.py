"""Application-graph substrate.

A streaming application is modelled as a weighted Directed Acyclic Graph
(Section 2 of the paper): nodes are tasks with a computation *work* amount,
edges carry a communication *volume*.  This package provides:

* :class:`~repro.graph.task.Task` and :class:`~repro.graph.dag.TaskGraph` — the
  DAG data model;
* :mod:`repro.graph.analysis` — top/bottom levels, priorities, width,
  granularity and critical-path helpers;
* :mod:`repro.graph.generator` — random layered DAGs (the paper's synthetic
  workloads), series-parallel graphs, chains, forks and joins;
* :mod:`repro.graph.examples` — the worked examples of the paper (Figures 1
  and 2) and realistic streaming workflows used by the example applications.
"""

from repro.graph.task import Task
from repro.graph.dag import TaskGraph
from repro.graph.analysis import (
    bottom_levels,
    top_levels,
    task_priorities,
    graph_width,
    granularity,
    critical_path,
    critical_path_length,
)
from repro.graph.generator import (
    LayeredDagConfig,
    random_layered_dag,
    random_series_parallel,
    chain_graph,
    fork_join_graph,
    random_paper_workload,
)
from repro.graph.examples import (
    figure1_graph,
    figure2_graph,
    video_encoding_pipeline,
    dsp_filter_bank,
    map_reduce_graph,
    sensor_fusion_graph,
)

__all__ = [
    "Task",
    "TaskGraph",
    "bottom_levels",
    "top_levels",
    "task_priorities",
    "graph_width",
    "granularity",
    "critical_path",
    "critical_path_length",
    "LayeredDagConfig",
    "random_layered_dag",
    "random_series_parallel",
    "chain_graph",
    "fork_join_graph",
    "random_paper_workload",
    "figure1_graph",
    "figure2_graph",
    "video_encoding_pipeline",
    "dsp_filter_bank",
    "map_reduce_graph",
    "sensor_fusion_graph",
]
