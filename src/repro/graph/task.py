"""The :class:`Task` node of an application graph.

A task carries an abstract amount of *work* ``E(t)``.  Its execution time on a
processor of speed ``s`` is ``E(t) / s`` (heterogeneous related-machines
model), which is how the paper accounts for processor heterogeneity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.utils.checks import check_positive

__all__ = ["Task"]


@dataclass(frozen=True)
class Task:
    """A node of the application DAG.

    Parameters
    ----------
    name:
        Unique identifier of the task within its graph.
    work:
        Computation amount ``E(t)`` (strictly positive).  The execution time on
        processor ``P_u`` of speed ``s_u`` is ``work / s_u``.
    attributes:
        Optional free-form metadata (e.g. the kernel name of a video filter);
        never interpreted by the schedulers.
    """

    name: str
    work: float
    attributes: Mapping[str, Any] = field(default_factory=dict, compare=False, hash=False)

    def __post_init__(self) -> None:
        if not isinstance(self.name, str) or not self.name:
            raise ValueError(f"task name must be a non-empty string, got {self.name!r}")
        check_positive(self.work, f"work of task {self.name!r}")
        object.__setattr__(self, "work", float(self.work))

    def execution_time(self, speed: float) -> float:
        """Execution time of the task on a processor of the given *speed*."""
        check_positive(speed, "speed")
        return self.work / speed

    def __repr__(self) -> str:
        return f"Task({self.name!r}, work={self.work:g})"
