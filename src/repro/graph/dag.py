"""The :class:`TaskGraph` application model.

A ``TaskGraph`` is a weighted DAG ``G = (V, E)``: nodes are :class:`Task`
objects, and each edge ``(t, t')`` carries a communication *volume* — the
amount of data produced by ``t`` and consumed by ``t'`` for one data set of the
stream.  Transferring a volume ``vol`` over a link of bandwidth ``d`` takes
``vol / d`` time units (and zero when producer and consumer run on the same
processor).

The class is intentionally independent from :mod:`networkx` in its core data
structures (plain dictionaries keep the hot scheduling loops fast and the
semantics explicit), but it can export a :class:`networkx.DiGraph` for
interoperability, and the cycle check reuses a simple iterative DFS.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, Iterator, Mapping

import networkx as nx

from repro.exceptions import CycleError, GraphError
from repro.graph.task import Task
from repro.utils.checks import check_positive

__all__ = ["TaskGraph"]


class TaskGraph:
    """A weighted directed acyclic graph of streaming tasks.

    The graph is built incrementally with :meth:`add_task` and :meth:`add_edge`
    and is validated lazily: acyclicity is enforced whenever a topological
    order is requested (and by :meth:`validate`).

    Notation from the paper
    -----------------------
    * ``v = |V|`` → :attr:`num_tasks`
    * ``e = |E|`` → :attr:`num_edges`
    * ``Γ⁻(t)`` → :meth:`predecessors`
    * ``Γ⁺(t)`` → :meth:`successors`
    * entry / exit nodes → :meth:`entry_tasks` / :meth:`exit_tasks`
    """

    def __init__(self, name: str = "workflow"):
        self.name = name
        self._tasks: dict[str, Task] = {}
        self._succ: dict[str, dict[str, float]] = {}
        self._pred: dict[str, dict[str, float]] = {}
        self._topo_cache: tuple[str, ...] | None = None

    # ------------------------------------------------------------ construction
    def add_task(self, task: Task | str, work: float | None = None) -> Task:
        """Add a task to the graph and return it.

        Accepts either an already-built :class:`Task` or a ``(name, work)``
        pair for convenience.  Re-adding an existing name raises
        :class:`~repro.exceptions.GraphError`.
        """
        if isinstance(task, str):
            if work is None:
                raise GraphError(f"work must be provided when adding task {task!r} by name")
            task = Task(task, work)
        elif work is not None:
            raise GraphError("work must not be provided when adding a Task instance")
        if task.name in self._tasks:
            raise GraphError(f"task {task.name!r} already exists in graph {self.name!r}")
        self._tasks[task.name] = task
        self._succ[task.name] = {}
        self._pred[task.name] = {}
        self._topo_cache = None
        return task

    def add_edge(self, src: str | Task, dst: str | Task, volume: float) -> None:
        """Add a precedence edge ``src → dst`` carrying *volume* units of data."""
        src_name = src.name if isinstance(src, Task) else src
        dst_name = dst.name if isinstance(dst, Task) else dst
        for n in (src_name, dst_name):
            if n not in self._tasks:
                raise GraphError(f"unknown task {n!r} in graph {self.name!r}")
        if src_name == dst_name:
            raise GraphError(f"self-loop on task {src_name!r} is not allowed")
        if dst_name in self._succ[src_name]:
            raise GraphError(f"edge {src_name!r} -> {dst_name!r} already exists")
        check_positive(volume, f"volume of edge {src_name!r}->{dst_name!r}")
        self._succ[src_name][dst_name] = float(volume)
        self._pred[dst_name][src_name] = float(volume)
        self._topo_cache = None

    # ---------------------------------------------------------------- accessors
    @property
    def num_tasks(self) -> int:
        """``v = |V|``."""
        return len(self._tasks)

    @property
    def num_edges(self) -> int:
        """``e = |E|``."""
        return sum(len(s) for s in self._succ.values())

    @property
    def tasks(self) -> tuple[Task, ...]:
        """All tasks, in insertion order."""
        return tuple(self._tasks.values())

    @property
    def task_names(self) -> tuple[str, ...]:
        """All task names, in insertion order."""
        return tuple(self._tasks.keys())

    def task(self, name: str) -> Task:
        """Return the task called *name*."""
        try:
            return self._tasks[name]
        except KeyError:
            raise GraphError(f"unknown task {name!r} in graph {self.name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._tasks

    def __len__(self) -> int:
        return len(self._tasks)

    def __iter__(self) -> Iterator[Task]:
        return iter(self._tasks.values())

    def work(self, name: str) -> float:
        """Computation amount ``E(t)`` of task *name*."""
        return self.task(name).work

    def edges(self) -> Iterator[tuple[str, str, float]]:
        """Iterate over ``(src, dst, volume)`` triples."""
        for src, dsts in self._succ.items():
            for dst, vol in dsts.items():
                yield src, dst, vol

    def has_edge(self, src: str, dst: str) -> bool:
        """True when the edge ``src → dst`` exists."""
        return dst in self._succ.get(src, {})

    def volume(self, src: str, dst: str) -> float:
        """Communication volume carried by edge ``src → dst``."""
        try:
            return self._succ[src][dst]
        except KeyError:
            raise GraphError(f"no edge {src!r} -> {dst!r} in graph {self.name!r}") from None

    def predecessors(self, name: str) -> tuple[str, ...]:
        """``Γ⁻(t)`` — immediate predecessors of *name*."""
        self.task(name)
        return tuple(self._pred[name].keys())

    def successors(self, name: str) -> tuple[str, ...]:
        """``Γ⁺(t)`` — immediate successors of *name*."""
        self.task(name)
        return tuple(self._succ[name].keys())

    def in_degree(self, name: str) -> int:
        """Number of immediate predecessors."""
        return len(self.predecessors(name))

    def out_degree(self, name: str) -> int:
        """Number of immediate successors."""
        return len(self.successors(name))

    def entry_tasks(self) -> tuple[str, ...]:
        """Tasks without predecessors (where the input stream enters)."""
        return tuple(n for n in self._tasks if not self._pred[n])

    def exit_tasks(self) -> tuple[str, ...]:
        """Tasks without successors (where the output stream leaves)."""
        return tuple(n for n in self._tasks if not self._succ[n])

    @property
    def total_work(self) -> float:
        """Sum of the work of all tasks."""
        return sum(t.work for t in self._tasks.values())

    @property
    def total_volume(self) -> float:
        """Sum of the volumes of all edges."""
        return sum(vol for _, _, vol in self.edges())

    # ------------------------------------------------------------------- orders
    def topological_order(self) -> tuple[str, ...]:
        """A topological order of the task names (Kahn's algorithm).

        Ties are broken by insertion order so the result is deterministic.

        Raises
        ------
        CycleError
            If the graph contains a cycle.
        """
        if self._topo_cache is not None:
            return self._topo_cache
        in_deg = {n: len(self._pred[n]) for n in self._tasks}
        queue = deque(n for n in self._tasks if in_deg[n] == 0)
        order: list[str] = []
        while queue:
            node = queue.popleft()
            order.append(node)
            for succ in self._succ[node]:
                in_deg[succ] -= 1
                if in_deg[succ] == 0:
                    queue.append(succ)
        if len(order) != len(self._tasks):
            raise CycleError(f"graph {self.name!r} contains a cycle")
        self._topo_cache = tuple(order)
        return self._topo_cache

    def reverse_topological_order(self) -> tuple[str, ...]:
        """The reverse of :meth:`topological_order` (sinks first), used by R-LTF."""
        return tuple(reversed(self.topological_order()))

    def validate(self) -> None:
        """Raise :class:`~repro.exceptions.CycleError` if the graph is cyclic,
        :class:`~repro.exceptions.GraphError` if it is empty."""
        if not self._tasks:
            raise GraphError(f"graph {self.name!r} has no task")
        self.topological_order()

    # ------------------------------------------------------------------ exports
    def to_networkx(self) -> nx.DiGraph:
        """Export as a :class:`networkx.DiGraph` (node attr ``work``, edge attr ``volume``)."""
        g = nx.DiGraph(name=self.name)
        for t in self._tasks.values():
            g.add_node(t.name, work=t.work)
        for src, dst, vol in self.edges():
            g.add_edge(src, dst, volume=vol)
        return g

    @classmethod
    def from_networkx(cls, g: nx.DiGraph, name: str | None = None) -> "TaskGraph":
        """Build a :class:`TaskGraph` from a DiGraph with ``work``/``volume`` attributes."""
        tg = cls(name or g.name or "workflow")
        for node, data in g.nodes(data=True):
            tg.add_task(Task(str(node), float(data["work"])))
        for src, dst, data in g.edges(data=True):
            tg.add_edge(str(src), str(dst), float(data["volume"]))
        return tg

    @classmethod
    def from_edges(
        cls,
        works: Mapping[str, float],
        edges: Iterable[tuple[str, str, float]],
        name: str = "workflow",
    ) -> "TaskGraph":
        """Convenience constructor from a ``{task: work}`` mapping and an edge list."""
        tg = cls(name)
        for task_name, work in works.items():
            tg.add_task(Task(task_name, work))
        for src, dst, vol in edges:
            tg.add_edge(src, dst, vol)
        return tg

    def reversed(self, name: str | None = None) -> "TaskGraph":
        """The graph with every edge reversed (volumes preserved).

        Used by R-LTF, whose traversal is bottom-up: running the top-down
        engine on the reversed graph is equivalent to a bottom-up traversal of
        the original one.
        """
        clone = TaskGraph(name or f"{self.name}-reversed")
        for t in self._tasks.values():
            clone.add_task(t)
        for src, dst, vol in self.edges():
            clone.add_edge(dst, src, vol)
        return clone

    def copy(self, name: str | None = None) -> "TaskGraph":
        """Deep-enough copy of the graph (tasks are immutable and shared)."""
        clone = TaskGraph(name or self.name)
        for t in self._tasks.values():
            clone.add_task(t)
        for src, dst, vol in self.edges():
            clone.add_edge(src, dst, vol)
        return clone

    def scaled(self, work_factor: float = 1.0, volume_factor: float = 1.0, name: str | None = None) -> "TaskGraph":
        """Return a copy with every work multiplied by *work_factor* and every
        volume by *volume_factor* (used by the generator to hit a target granularity)."""
        check_positive(work_factor, "work_factor")
        check_positive(volume_factor, "volume_factor")
        clone = TaskGraph(name or self.name)
        for t in self._tasks.values():
            clone.add_task(Task(t.name, t.work * work_factor, t.attributes))
        for src, dst, vol in self.edges():
            clone.add_edge(src, dst, vol * volume_factor)
        return clone

    def __repr__(self) -> str:
        return f"TaskGraph({self.name!r}, tasks={self.num_tasks}, edges={self.num_edges})"
