"""Synthetic workload generators.

The experimental section of the paper uses randomly generated graphs "whose
parameters are consistent with those used in the literature": 50–150 tasks,
granularity varied from 0.2 to 2.0, message volumes in [50, 150].  This module
provides:

* :func:`random_layered_dag` — the classic layer-by-layer random DAG generator
  used by most scheduling papers;
* :func:`random_series_parallel` — random series-parallel graphs, used to test
  the communication-count property of the one-to-one mapping (Section 4.2);
* :func:`chain_graph` / :func:`fork_join_graph` — simple structured topologies;
* :func:`random_paper_workload` — the full experimental workload: a random
  layered DAG plus a random heterogeneous platform, with task works rescaled so
  that the achieved granularity ``g(G, P)`` exactly matches the requested
  target (see DESIGN.md, substitution table).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.graph.analysis import granularity
from repro.graph.dag import TaskGraph
from repro.graph.task import Task
from repro.platform.builders import paper_platform
from repro.platform.platform import Platform
from repro.utils.checks import check_positive, check_probability
from repro.utils.rng import ensure_rng, uniform_float, uniform_int

__all__ = [
    "LayeredDagConfig",
    "random_layered_dag",
    "random_series_parallel",
    "chain_graph",
    "fork_join_graph",
    "random_paper_workload",
    "PaperWorkload",
]


# ----------------------------------------------------------------- layered DAG
@dataclass
class LayeredDagConfig:
    """Parameters of the layered random-DAG generator.

    Attributes
    ----------
    num_tasks:
        Total number of tasks (drawn in [50, 150] by the paper).
    work_range:
        Uniform range of task works before any granularity rescaling.
    volume_range:
        Uniform range of edge communication volumes ([50, 150] in the paper).
    mean_layer_width:
        Average number of tasks per layer; controls the depth/width trade-off.
    edge_probability:
        Probability of adding an edge between a task and each candidate task of
        the previous layer (on top of the one mandatory edge keeping the graph
        connected).
    skip_probability:
        Probability of adding "skip" edges jumping over one or more layers.
    name:
        Name given to the generated graph.
    """

    num_tasks: int = 100
    work_range: tuple[float, float] = (50.0, 150.0)
    volume_range: tuple[float, float] = (50.0, 150.0)
    mean_layer_width: float = 10.0
    edge_probability: float = 0.2
    skip_probability: float = 0.05
    name: str = "random-layered"

    def __post_init__(self) -> None:
        if self.num_tasks < 1:
            raise ValueError(f"num_tasks must be >= 1, got {self.num_tasks}")
        check_positive(self.work_range[0], "work_range low")
        check_positive(self.volume_range[0], "volume_range low")
        if self.work_range[1] < self.work_range[0]:
            raise ValueError("work_range must be (low, high) with low <= high")
        if self.volume_range[1] < self.volume_range[0]:
            raise ValueError("volume_range must be (low, high) with low <= high")
        check_positive(self.mean_layer_width, "mean_layer_width")
        check_probability(self.edge_probability, "edge_probability")
        check_probability(self.skip_probability, "skip_probability")


def random_layered_dag(
    config: LayeredDagConfig | None = None,
    seed: int | np.random.Generator | None = None,
    **overrides,
) -> TaskGraph:
    """Generate a random layered DAG.

    Tasks are split into consecutive layers; every non-entry task receives at
    least one predecessor from the previous layer (so the graph is weakly
    connected and every non-first-layer task has a predecessor), plus extra
    edges drawn with ``edge_probability`` and longer-range skip edges drawn
    with ``skip_probability``.
    """
    if config is None:
        config = LayeredDagConfig(**overrides)
    elif overrides:
        raise TypeError("pass either a LayeredDagConfig or keyword overrides, not both")
    rng = ensure_rng(seed)

    graph = TaskGraph(config.name)
    names = [f"t{i + 1}" for i in range(config.num_tasks)]
    for name in names:
        graph.add_task(Task(name, uniform_float(rng, *config.work_range)))

    # Partition tasks into layers.  Graphs of more than one task always get at
    # least two layers so that the result has at least one edge (otherwise the
    # notion of granularity would be undefined).
    layers: list[list[str]] = []
    remaining = list(names)
    while remaining:
        width = max(1, int(round(rng.normal(config.mean_layer_width, config.mean_layer_width / 3))))
        if not layers and config.num_tasks > 1:
            width = min(width, config.num_tasks - 1)
        width = min(width, len(remaining))
        layers.append(remaining[:width])
        remaining = remaining[width:]

    def add_volume_edge(src: str, dst: str) -> None:
        if not graph.has_edge(src, dst):
            graph.add_edge(src, dst, uniform_float(rng, *config.volume_range))

    for li in range(1, len(layers)):
        prev = layers[li - 1]
        for task in layers[li]:
            mandatory = prev[int(rng.integers(len(prev)))]
            add_volume_edge(mandatory, task)
            for cand in prev:
                if cand != mandatory and rng.random() < config.edge_probability:
                    add_volume_edge(cand, task)
            # long-range skip edges
            for lj in range(0, li - 1):
                if rng.random() < config.skip_probability:
                    src = layers[lj][int(rng.integers(len(layers[lj])))]
                    add_volume_edge(src, task)

    graph.validate()
    return graph


# ------------------------------------------------------------- series-parallel
def random_series_parallel(
    depth: int = 4,
    seed: int | np.random.Generator | None = None,
    work_range: tuple[float, float] = (50.0, 150.0),
    volume_range: tuple[float, float] = (50.0, 150.0),
    max_branches: int = 3,
    name: str = "random-sp",
) -> TaskGraph:
    """Generate a random two-terminal series-parallel DAG by recursive expansion.

    Starting from a single source→sink edge, each expansion step replaces an
    edge either by a series composition (insert an intermediate task) or by a
    parallel composition (duplicate the edge through 2..``max_branches``
    intermediate tasks).  The result always has a single entry and a single
    exit task, and satisfies the structural condition under which the
    one-to-one mapping reduces communications to ``e(ε+1)``.
    """
    if depth < 0:
        raise ValueError(f"depth must be >= 0, got {depth}")
    if max_branches < 2:
        raise ValueError(f"max_branches must be >= 2, got {max_branches}")
    rng = ensure_rng(seed)

    counter = [0]

    def new_task() -> str:
        counter[0] += 1
        return f"t{counter[0]}"

    source, sink = new_task(), new_task()
    edges: list[tuple[str, str]] = [(source, sink)]
    tasks: set[str] = {source, sink}

    for _ in range(depth):
        new_edges: list[tuple[str, str]] = []
        for src, dst in edges:
            choice = rng.random()
            if choice < 0.45:  # series composition
                mid = new_task()
                tasks.add(mid)
                new_edges.extend([(src, mid), (mid, dst)])
            elif choice < 0.8:  # parallel composition
                branches = int(rng.integers(2, max_branches + 1))
                for _ in range(branches):
                    mid = new_task()
                    tasks.add(mid)
                    new_edges.extend([(src, mid), (mid, dst)])
            else:  # keep as is
                new_edges.append((src, dst))
        edges = new_edges

    graph = TaskGraph(name)
    for t in sorted(tasks, key=lambda s: int(s[1:])):
        graph.add_task(Task(t, uniform_float(rng, *work_range)))
    seen = set()
    for src, dst in edges:
        if (src, dst) not in seen:
            seen.add((src, dst))
            graph.add_edge(src, dst, uniform_float(rng, *volume_range))
    graph.validate()
    return graph


# --------------------------------------------------------- simple structures
def chain_graph(length: int, work: float = 100.0, volume: float = 100.0, name: str = "chain") -> TaskGraph:
    """A linear pipeline of *length* tasks (the simplest streaming application)."""
    if length < 1:
        raise ValueError(f"length must be >= 1, got {length}")
    graph = TaskGraph(name)
    prev = None
    for i in range(length):
        t = graph.add_task(Task(f"t{i + 1}", work))
        if prev is not None:
            graph.add_edge(prev.name, t.name, volume)
        prev = t
    return graph


def fork_join_graph(
    branches: int,
    branch_length: int = 1,
    work: float = 100.0,
    volume: float = 100.0,
    name: str = "fork-join",
) -> TaskGraph:
    """A fork-join graph: one source fans out to *branches* parallel chains of
    *branch_length* tasks, which all join into a single sink."""
    if branches < 1:
        raise ValueError(f"branches must be >= 1, got {branches}")
    if branch_length < 1:
        raise ValueError(f"branch_length must be >= 1, got {branch_length}")
    graph = TaskGraph(name)
    src = graph.add_task(Task("source", work))
    sink = graph.add_task(Task("sink", work))
    for b in range(branches):
        prev = src
        for i in range(branch_length):
            t = graph.add_task(Task(f"b{b + 1}_{i + 1}", work))
            graph.add_edge(prev.name, t.name, volume)
            prev = t
        graph.add_edge(prev.name, sink.name, volume)
    return graph


# ----------------------------------------------------------- paper workloads
@dataclass
class PaperWorkload:
    """A (graph, platform) pair matching the experimental setup of Section 5."""

    graph: TaskGraph
    platform: Platform
    target_granularity: float
    seed: int | None = None
    metadata: dict = field(default_factory=dict)

    @property
    def achieved_granularity(self) -> float:
        """Granularity actually measured on the generated instance."""
        return granularity(self.graph, self.platform)

    @property
    def mean_task_time(self) -> float:
        """Mean task execution time at the platform's average speed — the
        normalization unit used by the experiments (see DESIGN.md)."""
        return float(
            np.mean([t.work for t in self.graph.tasks]) * self.platform.mean_inverse_speed
        )


def random_paper_workload(
    target_granularity: float,
    seed: int | np.random.Generator | None = None,
    num_tasks: int | None = None,
    num_processors: int = 20,
    task_range: tuple[int, int] = (50, 150),
    config: LayeredDagConfig | None = None,
) -> PaperWorkload:
    """Generate one random instance of the paper's experimental workload.

    The number of tasks is drawn uniformly in ``task_range`` (unless
    *num_tasks* is forced), the platform is the 20-processor heterogeneous
    platform of Section 5, and the task works are rescaled multiplicatively so
    that the achieved granularity ``g(G, P)`` equals *target_granularity*
    exactly.
    """
    check_positive(target_granularity, "target_granularity")
    rng = ensure_rng(seed)
    if num_tasks is None:
        num_tasks = uniform_int(rng, *task_range)
    platform = paper_platform(seed=rng, m=num_processors)
    if config is None:
        config = LayeredDagConfig(num_tasks=num_tasks, name=f"paper-g{target_granularity:g}")
    else:
        config.num_tasks = num_tasks
    graph = random_layered_dag(config, seed=rng)

    achieved = granularity(graph, platform)
    if not np.isfinite(achieved) or achieved <= 0:
        raise ValueError("generated graph has no communication edge; cannot set granularity")
    factor = target_granularity / achieved
    graph = graph.scaled(work_factor=factor)

    return PaperWorkload(
        graph=graph,
        platform=platform,
        target_granularity=float(target_granularity),
        seed=None if isinstance(seed, np.random.Generator) else seed,
        metadata={"num_tasks": num_tasks, "num_processors": num_processors},
    )
