"""Example workflows.

Two families of graphs are provided:

1. The worked examples of the paper — :func:`figure1_graph` (the 4-task
   diamond used in the introduction to contrast task / data / pipelined
   parallelism) and :func:`figure2_graph` (the 7-task workflow of Section 4.3
   used to compare LTF and R-LTF step by step).  The figure itself is not part
   of the archived text, so the edge structure of Figure 2 is reconstructed
   from the scheduling trace given in the prose (which tasks become ready at
   which step of each heuristic); see the module tests for the consistency
   checks.

2. Realistic streaming applications used by the example scripts and the
   integration tests: a video encoding pipeline, a DSP filter bank, a
   map-reduce-style aggregation and a sensor-fusion workflow.  These mirror
   the application classes the paper's introduction motivates (video/audio
   encoding, DSP applications).
"""

from __future__ import annotations

from repro.graph.dag import TaskGraph
from repro.graph.task import Task

__all__ = [
    "figure1_graph",
    "figure2_graph",
    "video_encoding_pipeline",
    "dsp_filter_bank",
    "map_reduce_graph",
    "sensor_fusion_graph",
]


def figure1_graph() -> TaskGraph:
    """The 4-task diamond of Figure 1(a).

    All task computation times equal 15 and every edge carries a communication
    volume of 2.  Executed on the platform of
    :func:`repro.platform.builders.figure1_platform`.
    """
    works = {"t1": 15.0, "t2": 15.0, "t3": 15.0, "t4": 15.0}
    edges = [
        ("t1", "t2", 2.0),
        ("t1", "t3", 2.0),
        ("t2", "t4", 2.0),
        ("t3", "t4", 2.0),
    ]
    return TaskGraph.from_edges(works, edges, name="figure1")


def figure2_graph() -> TaskGraph:
    """The 7-task workflow of Figure 2(a) (Section 4.3 example).

    Execution times: ``E(t1) = E(t7) = 15``, ``E(t3) = 20``,
    ``E(t2) = E(t6) = 6``, ``E(t4) = E(t5) = 5``; every edge costs 2 time units
    per data item.  The edge structure is reconstructed from the LTF / R-LTF
    scheduling traces of Section 4.3:

    * LTF (top-down) readiness order: ``{t1} → {t2, t3} → {t4, t5} → {t6} → {t7}``;
    * R-LTF (bottom-up) readiness order: ``{t7} → {t3, t6} → {t4, t5} → {t2} → {t1}``.
    """
    works = {
        "t1": 15.0,
        "t2": 6.0,
        "t3": 20.0,
        "t4": 5.0,
        "t5": 5.0,
        "t6": 6.0,
        "t7": 15.0,
    }
    edges = [
        ("t1", "t2", 2.0),
        ("t1", "t3", 2.0),
        ("t3", "t4", 2.0),
        ("t3", "t5", 2.0),
        ("t2", "t6", 2.0),
        ("t4", "t6", 2.0),
        ("t5", "t6", 2.0),
        ("t6", "t7", 2.0),
        ("t3", "t7", 2.0),
    ]
    return TaskGraph.from_edges(works, edges, name="figure2")


def video_encoding_pipeline(frames_per_block: int = 4) -> TaskGraph:
    """A realistic video-encoding workflow.

    Stream structure: capture → demux → per-block motion estimation (parallel
    fan-out over ``frames_per_block`` macro-block groups) → DCT/quantization →
    entropy coding → mux.  Works and volumes are loosely calibrated on a
    software H.264-class encoder (motion estimation dominates computation,
    raw frames dominate communication).
    """
    if frames_per_block < 1:
        raise ValueError(f"frames_per_block must be >= 1, got {frames_per_block}")
    graph = TaskGraph("video-encoding")
    graph.add_task(Task("capture", 40.0, {"kind": "io"}))
    graph.add_task(Task("demux", 25.0, {"kind": "parse"}))
    graph.add_edge("capture", "demux", 200.0)
    graph.add_task(Task("rate_control", 30.0, {"kind": "control"}))
    graph.add_edge("demux", "rate_control", 20.0)
    graph.add_task(Task("entropy_coding", 120.0, {"kind": "vlc"}))
    graph.add_task(Task("mux", 35.0, {"kind": "io"}))
    for b in range(frames_per_block):
        me = f"motion_estimation_{b + 1}"
        dct = f"dct_quant_{b + 1}"
        graph.add_task(Task(me, 300.0, {"kind": "search"}))
        graph.add_task(Task(dct, 150.0, {"kind": "transform"}))
        graph.add_edge("demux", me, 180.0)
        graph.add_edge("rate_control", me, 10.0)
        graph.add_edge(me, dct, 90.0)
        graph.add_edge(dct, "entropy_coding", 60.0)
    graph.add_edge("entropy_coding", "mux", 50.0)
    return graph


def dsp_filter_bank(channels: int = 6, taps: int = 3) -> TaskGraph:
    """A polyphase DSP filter bank: split → per-channel FIR cascade → recombine.

    Each channel is a small chain of ``taps`` FIR stages; the final synthesis
    task recombines all channels.  This is the archetypal "DSP application"
    workload the paper cites ([5]).
    """
    if channels < 1 or taps < 1:
        raise ValueError("channels and taps must both be >= 1")
    graph = TaskGraph("dsp-filter-bank")
    graph.add_task(Task("adc", 20.0, {"kind": "io"}))
    graph.add_task(Task("analysis_fft", 160.0, {"kind": "fft"}))
    graph.add_edge("adc", "analysis_fft", 128.0)
    graph.add_task(Task("synthesis_ifft", 160.0, {"kind": "fft"}))
    graph.add_task(Task("dac", 20.0, {"kind": "io"}))
    for c in range(channels):
        prev = "analysis_fft"
        prev_vol = 64.0
        for k in range(taps):
            fir = f"fir_c{c + 1}_s{k + 1}"
            graph.add_task(Task(fir, 80.0, {"kind": "fir", "channel": c + 1}))
            graph.add_edge(prev, fir, prev_vol)
            prev, prev_vol = fir, 64.0
        graph.add_edge(prev, "synthesis_ifft", 64.0)
    graph.add_edge("synthesis_ifft", "dac", 128.0)
    return graph


def map_reduce_graph(mappers: int = 8, reducers: int = 3) -> TaskGraph:
    """A streaming map-reduce aggregation: split → mappers → shuffle → reducers → merge."""
    if mappers < 1 or reducers < 1:
        raise ValueError("mappers and reducers must both be >= 1")
    graph = TaskGraph("map-reduce")
    graph.add_task(Task("split", 30.0))
    graph.add_task(Task("merge", 40.0))
    reducer_names = []
    for r in range(reducers):
        red = f"reduce_{r + 1}"
        graph.add_task(Task(red, 110.0))
        graph.add_edge(red, "merge", 30.0)
        reducer_names.append(red)
    for m in range(mappers):
        mapper = f"map_{m + 1}"
        graph.add_task(Task(mapper, 140.0))
        graph.add_edge("split", mapper, 100.0)
        for red in reducer_names:
            graph.add_edge(mapper, red, 25.0)
    return graph


def sensor_fusion_graph(sensors: int = 5) -> TaskGraph:
    """A sensor-fusion workflow (e.g. autonomous-driving perception):
    per-sensor preprocessing and feature extraction, fused by a tracker and a
    planner — a latency-critical streaming application with a reliability
    requirement, i.e. exactly the tri-criteria setting of the paper."""
    if sensors < 1:
        raise ValueError(f"sensors must be >= 1, got {sensors}")
    graph = TaskGraph("sensor-fusion")
    graph.add_task(Task("sync", 25.0))
    graph.add_task(Task("fusion", 180.0))
    graph.add_task(Task("tracker", 120.0))
    graph.add_task(Task("planner", 90.0))
    graph.add_edge("fusion", "tracker", 40.0)
    graph.add_edge("tracker", "planner", 30.0)
    for s in range(sensors):
        pre = f"preprocess_{s + 1}"
        feat = f"features_{s + 1}"
        graph.add_task(Task(pre, 60.0))
        graph.add_task(Task(feat, 130.0))
        graph.add_edge("sync", pre, 90.0)
        graph.add_edge(pre, feat, 70.0)
        graph.add_edge(feat, "fusion", 35.0)
    return graph
