"""DAG analysis: levels, priorities, width, granularity, critical path.

The paper ranks tasks by ``tl(t) + bl(t)`` where ``tl`` (top level) is the
length of the longest path from an entry node to ``t`` *excluding* ``E(t)``,
and ``bl`` (bottom level) is the length of the longest path from ``t`` to an
exit node *including* ``E(t)``.  Path lengths are defined as the *average* sum
of node and edge weights ([9]): on a heterogeneous platform, the weight of a
task is its average execution time over the processors, and the weight of an
edge is its average communication time over the distinct processor pairs.

All functions below accept an optional :class:`~repro.platform.platform.Platform`;
when it is omitted, raw works and volumes are used as weights (homogeneous
unit-speed, unit-bandwidth platform).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Mapping

import networkx as nx

from repro.exceptions import GraphError
from repro.graph.dag import TaskGraph

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.platform.platform import Platform

__all__ = [
    "average_execution_time",
    "average_communication_time",
    "bottom_levels",
    "top_levels",
    "task_priorities",
    "graph_width",
    "level_width",
    "granularity",
    "critical_path",
    "critical_path_length",
    "summarize",
]


# --------------------------------------------------------------------- weights
def average_execution_time(graph: TaskGraph, task: str, platform: "Platform | None" = None) -> float:
    """Average execution time of *task* over the processors of *platform*.

    Without a platform this is simply the task work (unit speed).
    """
    work = graph.work(task)
    if platform is None:
        return work
    return work * platform.mean_inverse_speed


def average_communication_time(
    graph: TaskGraph, src: str, dst: str, platform: "Platform | None" = None
) -> float:
    """Average communication time of edge ``src → dst`` over distinct processor pairs.

    Without a platform this is simply the edge volume (unit bandwidth).
    """
    vol = graph.volume(src, dst)
    if platform is None:
        return vol
    return vol * platform.mean_inverse_bandwidth


# ---------------------------------------------------------------------- levels
def bottom_levels(graph: TaskGraph, platform: "Platform | None" = None) -> dict[str, float]:
    """Bottom level ``bl(t)`` of every task.

    ``bl`` of an exit node is its (average) execution time; otherwise
    ``bl(t) = w(t) + max over successors t' of (c(t, t') + bl(t'))``.
    """
    bl: dict[str, float] = {}
    for name in graph.reverse_topological_order():
        w = average_execution_time(graph, name, platform)
        succs = graph.successors(name)
        if not succs:
            bl[name] = w
        else:
            bl[name] = w + max(
                average_communication_time(graph, name, s, platform) + bl[s] for s in succs
            )
    return bl


def top_levels(graph: TaskGraph, platform: "Platform | None" = None) -> dict[str, float]:
    """Top level ``tl(t)`` of every task (0 for entry nodes, excludes ``E(t)``)."""
    tl: dict[str, float] = {}
    for name in graph.topological_order():
        preds = graph.predecessors(name)
        if not preds:
            tl[name] = 0.0
        else:
            tl[name] = max(
                tl[p]
                + average_execution_time(graph, p, platform)
                + average_communication_time(graph, p, name, platform)
                for p in preds
            )
    return tl


def task_priorities(graph: TaskGraph, platform: "Platform | None" = None) -> dict[str, float]:
    """Task priorities ``tl(t) + bl(t)`` used by the head function ``H(ℓ)``.

    A higher value means a more critical task; the maximum value equals the
    (average) critical-path length, attained exactly by critical-path tasks.
    """
    tl = top_levels(graph, platform)
    bl = bottom_levels(graph, platform)
    return {name: tl[name] + bl[name] for name in graph.task_names}


# ----------------------------------------------------------------------- width
def graph_width(graph: TaskGraph, exact: bool = True) -> int:
    """Width ``ω`` of the DAG: the maximum number of pairwise-independent tasks.

    The exact value is computed via Dilworth's theorem (maximum antichain =
    size of a minimum chain cover), using a maximum bipartite matching on the
    transitive closure; set ``exact=False`` for the cheaper per-level
    upper-bound-free approximation :func:`level_width` on large graphs.
    """
    graph.validate()
    if not exact:
        return level_width(graph)
    g = graph.to_networkx()
    closure = nx.transitive_closure_dag(g)
    left = {f"L::{n}" for n in closure.nodes}
    bipartite = nx.Graph()
    bipartite.add_nodes_from(left, bipartite=0)
    bipartite.add_nodes_from((f"R::{n}" for n in closure.nodes), bipartite=1)
    for u, v in closure.edges:
        bipartite.add_edge(f"L::{u}", f"R::{v}")
    matching = nx.bipartite.maximum_matching(bipartite, top_nodes=left)
    # matching is a symmetric dict; each matched pair appears twice.
    matched_pairs = sum(1 for k in matching if k.startswith("L::"))
    return graph.num_tasks - matched_pairs


def level_width(graph: TaskGraph) -> int:
    """Maximum number of tasks sharing the same depth (a lower bound on ``ω``)."""
    depth: dict[str, int] = {}
    for name in graph.topological_order():
        preds = graph.predecessors(name)
        depth[name] = 0 if not preds else 1 + max(depth[p] for p in preds)
    counts: dict[int, int] = {}
    for d in depth.values():
        counts[d] = counts.get(d, 0) + 1
    return max(counts.values())


# ----------------------------------------------------------------- granularity
def granularity(graph: TaskGraph, platform: "Platform | None" = None) -> float:
    """Granularity ``g(G, P)``: ratio of the sum of the *slowest* computation
    times to the sum of the *slowest* communication times (Section 2).

    Larger values mean computation-dominated graphs.  Graphs without edges have
    infinite granularity, reported as ``float('inf')``.
    """
    if platform is None:
        slowest_comp = graph.total_work
        slowest_comm = graph.total_volume
    else:
        slowest_comp = sum(t.work / platform.min_speed for t in graph.tasks)
        slowest_comm = sum(vol / platform.min_bandwidth for _, _, vol in graph.edges())
    if slowest_comm == 0:
        return float("inf")
    return slowest_comp / slowest_comm


# -------------------------------------------------------------- critical paths
def critical_path(graph: TaskGraph, platform: "Platform | None" = None) -> list[str]:
    """A longest (average-weight) entry→exit path of the graph."""
    graph.validate()
    bl = bottom_levels(graph, platform)
    entries = graph.entry_tasks()
    if not entries:
        raise GraphError(f"graph {graph.name!r} has no entry task")
    current = max(entries, key=lambda n: (bl[n], n))
    path = [current]
    while graph.successors(current):
        current = max(
            graph.successors(current),
            key=lambda s: (
                average_communication_time(graph, path[-1], s, platform) + bl[s],
                s,
            ),
        )
        path.append(current)
    return path


def critical_path_length(graph: TaskGraph, platform: "Platform | None" = None) -> float:
    """Length of the critical path (equals ``max tl + bl`` over all tasks)."""
    prio = task_priorities(graph, platform)
    return max(prio.values())


# -------------------------------------------------------------------- summary
def summarize(graph: TaskGraph, platform: "Platform | None" = None) -> Mapping[str, float]:
    """A small dictionary of structural statistics, used by reports and examples."""
    graph.validate()
    return {
        "tasks": graph.num_tasks,
        "edges": graph.num_edges,
        "entries": len(graph.entry_tasks()),
        "exits": len(graph.exit_tasks()),
        "total_work": graph.total_work,
        "total_volume": graph.total_volume,
        "granularity": granularity(graph, platform),
        "critical_path_length": critical_path_length(graph, platform),
        "width": graph_width(graph, exact=graph.num_tasks <= 200),
    }
