"""Exception hierarchy for the :mod:`repro` library.

All library-specific errors derive from :class:`ReproError` so that callers can
catch every failure raised by the scheduling stack with a single ``except``
clause while still being able to distinguish the interesting cases (most
notably :class:`ThroughputInfeasibleError`, which is how the LTF algorithm of
the paper reports that it *fails to schedule* a workflow under the requested
throughput).
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "GraphError",
    "CycleError",
    "PlatformError",
    "ScheduleError",
    "SchedulingError",
    "ThroughputInfeasibleError",
    "ReplicationError",
    "ValidationError",
    "ExperimentError",
    "SpecificationError",
    "FaultTraceError",
]


class ReproError(Exception):
    """Base class of every exception raised by the :mod:`repro` library."""


class GraphError(ReproError):
    """Raised for malformed application graphs (unknown tasks, bad weights...)."""


class CycleError(GraphError):
    """Raised when a task graph that must be acyclic contains a cycle."""


class PlatformError(ReproError):
    """Raised for malformed platforms (non-positive speeds or bandwidths...)."""


class ScheduleError(ReproError):
    """Raised when a :class:`~repro.schedule.schedule.Schedule` is manipulated
    inconsistently (double mapping of a replica, unknown processor...)."""


class SchedulingError(ReproError):
    """Base class for errors raised *by the scheduling heuristics* themselves."""


class ThroughputInfeasibleError(SchedulingError):
    """Raised when no processor can host a task without violating the desired
    throughput.

    This mirrors the behaviour described in Section 4.1 of the paper: *"The
    algorithm fails if no processor can accommodate the task because of the
    throughput constraint."*  The exception carries the offending task name and
    the requested period so experiment drivers can record scheduling failures.
    """

    def __init__(self, task: str, period: float, message: str | None = None):
        self.task = task
        self.period = period
        if message is None:
            message = (
                f"no processor can accommodate task {task!r} without exceeding "
                f"the iteration period {period:g}"
            )
        super().__init__(message)


class ReplicationError(SchedulingError):
    """Raised when the requested fault-tolerance degree cannot be honoured,
    e.g. ``epsilon + 1`` exceeds the number of processors."""


class ValidationError(ReproError):
    """Raised by :mod:`repro.schedule.validation` when a schedule violates one
    of the model invariants (replica disjointness, throughput, precedence...)."""


class ExperimentError(ReproError):
    """Raised by the experiment harness for inconsistent configurations."""


class SpecificationError(ReproError, ValueError):
    """Raised by :mod:`repro.scenario` for malformed scenario specifications.

    Derives from :class:`ValueError` so that callers validating user input
    (the CLI, config loaders) can keep a single ``except ValueError`` clause;
    the message always says *which* key or value is wrong and, for name
    lookups, suggests close matches.
    """


class FaultTraceError(ReproError, ValueError):
    """Raised by :mod:`repro.failures.trace_io` for malformed availability
    logs (parse errors, unknown nodes, out-of-order down/up transitions).

    Derives from :class:`ValueError` for the same reason as
    :class:`SpecificationError`: the CLI and service validate trace files as
    user input.  The message always carries the file and line number.
    """
