"""Command-line front end.

Examples
--------
Regenerate the benchmark-scale version of Figure 3(a)::

    repro-streaming figure3a

Regenerate Figure 4(c) at the paper's scale (60 graphs per point), fanning the
granularity points across 4 worker processes (same numbers, less wall-clock)::

    repro-streaming figure4c --paper-scale --jobs 4

Print the worked examples and the extra studies::

    repro-streaming examples
    repro-streaming ablations --jobs 2
    repro-streaming baselines
    repro-streaming scaling

Run the online streaming runtime: 20 Monte-Carlo trials of a schedule
executing under stochastic processor failures with live rescheduling, 4
trials at a time (identical statistics for any ``--jobs``)::

    repro-streaming runtime --seed 0 --trials 20 --jobs 4
    repro-streaming runtime --policy remap --mttf 200 --mttr 50 --distribution weibull
    repro-streaming runtime --admission queue --rebuild-on-repair

Sweep a whole grid of failure regimes (mttf × mttr × Weibull shape) into a
figure-style report::

    repro-streaming runtime --sweep --jobs 4
    repro-streaming runtime --sweep --sweep-mttf 50,100,200 --sweep-mttr none,25 --sweep-shapes 0.7,1,1.5

Declarative scenarios: define a scenario once as JSON and drive any front end
(schedule / simulate / online run / Monte-Carlo campaign) through the
:class:`~repro.api.Session` facade::

    repro-streaming run examples/scenario.json                     # online run
    repro-streaming run examples/scenario.json --mode monte-carlo --trials 50 --jobs 4
    repro-streaming run examples/scenario.json --mode schedule
    repro-streaming run examples/scenario.json --smoke             # tiny run of all four modes

    repro-streaming config --emit > scenario.json                  # dump the default spec
    repro-streaming config --mttf 60 --mttr 30 --admission queue --emit
    repro-streaming config --scenario scenario.json                # validate a file

Scenario *suites*: one JSON file holding a base scenario plus named axes,
executed as a single sharded campaign with spec-hash result caching — an
unchanged suite re-runs entirely from cache, and replacing an axis value
re-executes only the changed grid points::

    repro-streaming suite run examples/suite.json --jobs 4
    repro-streaming suite run examples/suite.json --x-axis faults.mttf_periods
    repro-streaming suite run examples/suite.json --no-cache
    repro-streaming suite run examples/suite.json --smoke          # tiny CI pass
    repro-streaming suite emit > suite.json                        # starter suite

Observability: the latency-distribution report of a suite (a warm cache
serves it without executing a single point), and per-run instrumentation —
probe metrics as JSON and a Gantt chart of the stream (SVG, or a
self-contained HTML page for ``.html`` paths)::

    repro-streaming suite report examples/suite.json
    repro-streaming suite report examples/suite.json --trajectory BENCH_trajectory.json
    repro-streaming runtime --metrics metrics.json --gantt run.svg
    repro-streaming run examples/scenario.json --gantt run.html --sample 0.25

Wide sweeps and big campaigns can ship statistics instead of full traces —
the worker summarizes each trial before anything crosses the process
boundary (identical numbers, a tiny fraction of the transfer)::

    repro-streaming runtime --trials 200 --jobs 8 --reduce stats
    repro-streaming suite run suite.json --jobs 8 --reduce stats

Cache maintenance: inspect the result cache and prune it to a size bound
(least-recently-used entries go first; losing an entry only means the next
identical run recomputes it)::

    repro-streaming cache ls
    repro-streaming cache gc --max-size 500M

Scheduling-as-a-service: serve the whole engine over HTTP — POST a scenario
or suite JSON, poll the job, fetch the content-hashed result (an identical
re-submit is answered from cache without executing); ``suite report --json``
prints the same machine-readable document the results endpoint serves::

    repro-streaming serve --port 8000 --workers 2
    repro-streaming suite report examples/suite.json --json
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import Callable, Sequence

from repro.experiments import figures as fig
from repro.experiments.config import bench_config, paper_config
from repro.experiments.reporting import render_example_rows, render_series
from repro.experiments.tables import figure1_scenarios, figure2_example

__all__ = ["main", "build_parser"]

_FIGURES: dict[str, Callable[..., "fig.FigureSeries"]] = {
    "figure3a": fig.figure3a,
    "figure3b": fig.figure3b,
    "figure3c": fig.figure3c,
    "figure4a": fig.figure4a,
    "figure4b": fig.figure4b,
    "figure4c": fig.figure4c,
}


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser (exposed for the tests)."""
    from repro import __version__

    parser = argparse.ArgumentParser(
        prog="repro-streaming",
        description=(
            "Reproduction of 'Optimizing the Latency of Streaming Applications under "
            "Throughput and Reliability Constraints' (Benoit, Hakem, Robert, 2009)."
        ),
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    for name in _FIGURES:
        p = sub.add_parser(name, help=f"regenerate {name} of the paper")
        _add_scale_options(p)
    for name, help_text in (
        ("ablations", "ablation of Rule 1, one-to-one mapping and chunk size"),
        ("baselines", "fault-free comparison against related-work heuristics"),
        ("scaling", "scheduler runtime vs graph size"),
    ):
        p = sub.add_parser(name, help=help_text)
        _add_scale_options(p)
    sub.add_parser("examples", help="print the Figure 1 and Figure 2 worked examples")
    _add_runtime_parser(sub)
    _add_run_parser(sub)
    _add_config_parser(sub)
    _add_suite_parser(sub)
    _add_cache_parser(sub)
    _add_serve_parser(sub)
    return parser


def _add_scale_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--paper-scale",
        action="store_true",
        help="use the full experimental scale of the paper (60 graphs per point)",
    )
    parser.add_argument(
        "--graphs",
        type=int,
        default=None,
        help="override the number of random graphs per point",
    )
    parser.add_argument(
        "--no-plot", action="store_true", help="print only the table, no ASCII plot"
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help=(
            "worker processes for the per-graph work units (results are "
            "identical for any value; in the scaling study each worker times "
            "its own scheduler runs)"
        ),
    )


def _mttr_value(text: str) -> float | None:
    """``--mttr`` argument: a float, or ``none``/``inf`` for fail-stop."""
    if text.lower() in ("none", "inf"):
        return None
    return float(text)


def _add_spec_options(p: argparse.ArgumentParser, suppress: bool = False) -> None:
    """The scenario-building flags shared by ``runtime`` and ``config``.

    With ``suppress=True`` the flags have no defaults (``argparse.SUPPRESS``):
    only flags the user actually typed land in the namespace, so ``config``
    can apply them as *overrides* on top of a scenario file.
    """

    def default(value):
        return argparse.SUPPRESS if suppress else value

    p.add_argument("--datasets", type=int, default=default(200), help="data sets per trial")
    p.add_argument("--epsilon", type=int, default=default(2), help="fault-tolerance degree ε")
    p.add_argument(
        "--granularity", type=float, default=default(1.0), help="workload granularity"
    )
    p.add_argument("--tasks", type=int, default=default(30), help="tasks per random workload")
    p.add_argument("--processors", type=int, default=default(10), help="platform size")
    p.add_argument(
        "--mttf",
        type=float,
        default=default(500.0),
        help="mean time to failure per processor, in stream periods",
    )
    p.add_argument(
        "--mttr",
        type=_mttr_value,
        default=default(None),
        help=(
            "mean time to repair, in stream periods; 'none' = fail-stop "
            "(default: no repair)"
        ),
    )
    p.add_argument(
        "--distribution",
        choices=("exponential", "weibull"),
        default=default("exponential"),
        help="inter-failure time distribution",
    )
    p.add_argument(
        "--weibull-shape", type=float, default=default(1.5), help="Weibull shape parameter"
    )
    p.add_argument(
        "--repair-shape",
        type=float,
        default=default(None),
        help=(
            "Weibull shape for repair delays (mean stays --mttr); "
            "default: exponential repairs"
        ),
    )
    p.add_argument(
        "--fault-trace",
        default=default(None),
        metavar="CSV",
        help=(
            "replay a recorded availability log (time,node,down|up CSV) "
            "instead of sampling failures; excludes the other fault flags"
        ),
    )
    p.add_argument(
        "--group-size",
        type=int,
        default=default(None),
        help=(
            "correlated crash groups: processors fail (and repair) together "
            "in declaration-order chunks of this size"
        ),
    )
    p.add_argument(
        "--load-coupling",
        type=float,
        default=default(0.0),
        help=(
            "load-dependent hazards: failure intensity scales with "
            "1 + coupling × processor utilization in the initial schedule"
        ),
    )
    p.add_argument(
        "--spares",
        type=int,
        default=default(0),
        help=(
            "elastic platform: this many processors start outside the "
            "platform and join mid-stream (requires --join-periods)"
        ),
    )
    p.add_argument(
        "--join-periods",
        type=float,
        default=default(None),
        help="mean node-join delay, in stream periods (with --spares/--preempt-periods)",
    )
    p.add_argument(
        "--preempt-periods",
        type=float,
        default=default(None),
        help=(
            "spot-preemption mean time between preemptions, in stream "
            "periods (preempted nodes rejoin after --join-periods)"
        ),
    )
    from repro.runtime.admission import ADMISSION_POLICIES
    from repro.runtime.policies import RESCHEDULE_POLICIES

    p.add_argument(
        "--policy",
        choices=RESCHEDULE_POLICIES.names,
        default=default("rltf"),
        help="online rescheduling policy",
    )
    p.add_argument(
        "--admission",
        choices=ADMISSION_POLICIES.names,
        default=default("shed"),
        help="admission policy during downtime/throttling (shed drops, queue buffers)",
    )
    p.add_argument(
        "--queue-capacity",
        type=int,
        default=default(64),
        help="admission buffer size for --admission queue (0 = unbounded)",
    )
    p.add_argument(
        "--no-checkpoint",
        action="store_true",
        default=default(False),
        help=(
            "disable checkpoint/restart: legacy flush-and-restart execution "
            "(in-flight data sets do not survive a rebuild)"
        ),
    )
    p.add_argument(
        "--rebuild-on-repair",
        action="store_true",
        default=default(False),
        help=(
            "anticipatory rebuilds on repair events (only when a speculative "
            "reschedule shows the repaired processor improves the schedule)"
        ),
    )
    p.add_argument(
        "--rebuild-overhead",
        type=float,
        default=default(1.0),
        help="rebuild downtime, in stream periods",
    )
    p.add_argument(
        "--no-fast-forward",
        action="store_true",
        default=default(False),
        help=(
            "disable the analytic steady-state fast forward (quiet stretches "
            "are then simulated event by event; results are bit-identical "
            "either way)"
        ),
    )


#: argparse dest → (dotted spec path, value transform) for the spec flags.
_FLAG_PATHS: dict[str, tuple[str, Callable]] = {
    "datasets": ("runtime.num_datasets", lambda v: v),
    "epsilon": ("scheduler.epsilon", lambda v: v),
    "granularity": ("workload.granularity", lambda v: v),
    "tasks": ("workload.num_tasks", lambda v: v),
    "processors": ("workload.num_processors", lambda v: v),
    "mttf": ("faults.mttf_periods", lambda v: v),
    "mttr": ("faults.mttr_periods", lambda v: v),
    "distribution": ("faults.distribution", lambda v: v),
    "weibull_shape": ("faults.weibull_shape", lambda v: v),
    "repair_shape": ("faults.repair_shape", lambda v: v),
    "fault_trace": ("faults.trace_file", lambda v: v),
    "group_size": ("faults.group_size", lambda v: v),
    "load_coupling": ("faults.load_coupling", lambda v: v),
    "spares": ("faults.spares", lambda v: v),
    "join_periods": ("faults.join_periods", lambda v: v),
    "preempt_periods": ("faults.preempt_periods", lambda v: v),
    "policy": ("runtime.policy", lambda v: v),
    "admission": ("runtime.admission", lambda v: v),
    "queue_capacity": ("runtime.queue_capacity", lambda v: None if v == 0 else v),
    "no_checkpoint": ("runtime.checkpoint", lambda v: not v),
    "no_fast_forward": ("runtime.fast_forward", lambda v: not v),
    "rebuild_on_repair": ("runtime.rebuild_on_repair", lambda v: v),
    "rebuild_overhead": ("runtime.rebuild_overhead", lambda v: v),
}


def _flag_overrides(args: argparse.Namespace) -> dict:
    """Dotted-path overrides for the spec flags present in *args*."""
    return {
        path: transform(getattr(args, dest))
        for dest, (path, transform) in _FLAG_PATHS.items()
        if hasattr(args, dest)
    }


def _add_runtime_parser(sub) -> None:
    p = sub.add_parser(
        "runtime",
        help="Monte-Carlo campaign of the online runtime under stochastic failures",
    )
    p.add_argument("--seed", type=int, default=0, help="campaign seed (default 0)")
    p.add_argument("--trials", type=int, default=20, help="number of Monte-Carlo trials")
    p.add_argument("--jobs", type=int, default=1, help="worker processes for the trials")
    _add_spec_options(p)
    p.add_argument(
        "--sweep",
        action="store_true",
        help="sweep an mttf/mttr × Weibull-shape grid into a figure-style report",
    )
    p.add_argument(
        "--sweep-mttf",
        default="50,100,200,400",
        help="comma-separated mttf grid (periods) for --sweep",
    )
    p.add_argument(
        "--sweep-mttr",
        default="none,25",
        help="comma-separated mttr grid (periods; 'none' = fail-stop) for --sweep",
    )
    p.add_argument(
        "--sweep-shapes",
        default="0.7,1,1.5",
        help="comma-separated Weibull shapes for --sweep (1 = exponential)",
    )
    p.add_argument(
        "--sweep-group-sizes",
        default=None,
        help=(
            "comma-separated crash-group sizes appended as a --sweep axis "
            "('none' = independent failures)"
        ),
    )
    p.add_argument(
        "--sweep-load",
        default=None,
        help="comma-separated load-coupling factors appended as a --sweep axis",
    )
    p.add_argument(
        "--no-plot", action="store_true", help="print only the tables, no ASCII plots"
    )
    _add_reduce_option(p)
    _add_resilience_options(p)
    _add_cache_options(p)
    _add_obs_options(p)


def _add_obs_options(p: argparse.ArgumentParser, sample: bool = False) -> None:
    """The observability-export flags shared by ``runtime`` and ``run``."""
    p.add_argument(
        "--metrics",
        default=None,
        metavar="PATH",
        help=(
            "write the probe metrics of one instrumented online run "
            "(counters, gauges, latency histogram, downtime spans) as JSON"
        ),
    )
    p.add_argument(
        "--gantt",
        default=None,
        metavar="PATH",
        help=(
            "write a Gantt chart of one online run; .html gets a self-"
            "contained page, any other suffix a static SVG"
        ),
    )
    if sample:
        p.add_argument(
            "--sample",
            type=float,
            default=None,
            metavar="P",
            help=(
                "sampled trace retention for the --gantt export: keep every "
                "faulted data set and this fraction of the completed ones "
                "(seeded, deterministic)"
            ),
        )


def _export_obs(args: argparse.Namespace, trace, probe) -> None:
    """Write the ``--gantt`` / ``--metrics`` artifacts of an instrumented run."""
    import json

    if args.gantt:
        from repro.obs import sample_trace, write_gantt

        export = trace
        sample = getattr(args, "sample", None)
        if sample is not None:
            export = sample_trace(trace, sample, seed=args.seed)
        # overlay analytically-skipped stretches when the run fast-forwarded
        ff_spans = [s for s in getattr(probe, "spans", ()) if s[0] == "fast-forward"]
        path = write_gantt(export, args.gantt, spans=ff_spans)
        print(f"gantt: wrote {path} ({len(export.records)} of {len(trace.records)} records)")
    if args.metrics:
        path = Path(args.metrics)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(probe.as_dict(), indent=2, sort_keys=True) + "\n")
        print(f"metrics: wrote {path}")


def _add_run_parser(sub) -> None:
    p = sub.add_parser(
        "run",
        help="run a declarative scenario JSON file through the Session facade",
    )
    p.add_argument("scenario", help="path to a scenario JSON file")
    p.add_argument(
        "--mode",
        choices=("schedule", "simulate", "online", "monte-carlo"),
        default="online",
        help="which front end to drive (default: one online run)",
    )
    p.add_argument("--seed", type=int, default=0, help="run/campaign seed (default 0)")
    p.add_argument(
        "--trials", type=int, default=20, help="trials for --mode monte-carlo"
    )
    p.add_argument(
        "--jobs", type=int, default=1, help="worker processes for --mode monte-carlo"
    )
    p.add_argument(
        "--smoke",
        action="store_true",
        help=(
            "shrink the scenario (few data sets, 2 trials) and exercise all "
            "four modes once — the CI configuration smoke test"
        ),
    )
    _add_obs_options(p, sample=True)


def _add_reduce_option(p: argparse.ArgumentParser) -> None:
    """The worker-transport flag shared by ``runtime`` and ``suite run``."""
    p.add_argument(
        "--reduce",
        choices=("traces", "stats"),
        default="traces",
        help=(
            "worker payload: 'traces' ships every trial's full trace back to "
            "the parent, 'stats' summarizes inside the worker (identical "
            "statistics, a tiny fraction of the inter-process transfer)"
        ),
    )


def _add_resilience_options(p: argparse.ArgumentParser) -> None:
    """The supervised-execution flags shared by ``suite`` and ``runtime``."""
    p.add_argument(
        "--max-retries",
        type=int,
        default=2,
        help=(
            "retries per trial after a worker crash or timeout before the "
            "point is reported failed (default: 2)"
        ),
    )
    p.add_argument(
        "--trial-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help=(
            "wall-clock budget per trial; a stuck worker past it is killed "
            "and the trial retried (needs --jobs >= 2; default: no timeout)"
        ),
    )
    p.add_argument(
        "--resume",
        action="store_true",
        help=(
            "checkpoint every completed trial in the result cache and, on "
            "re-run, execute only the missing ones (needs a cache; the "
            "resumed result is bit-identical to an uninterrupted run)"
        ),
    )
    p.add_argument(
        "--chaos",
        default=None,
        metavar="SPEC",
        help=(
            "inject deterministic faults into the toolchain itself, e.g. "
            "'crash=0.2,stall=0.1,corrupt=0.1,seed=7' (rates per trial "
            "attempt; $REPRO_CHAOS sets a default) — results still match a "
            "clean run bit for bit once retries recover"
        ),
    )


def _add_cache_options(
    p: argparse.ArgumentParser, cache_by_default: bool = False
) -> None:
    """The result-cache flags shared by ``suite run`` and ``runtime``.

    ``suite run`` caches by default in the *user's* cache directory (never
    the cwd — see :func:`repro.cache.default_cache_dir`); ``runtime`` opts in
    via an explicit ``--cache-dir``, keeping its output byte-stable run over
    run.
    """
    if cache_by_default:
        from repro.cache import default_cache_dir

        default_dir, default_help = (
            str(default_cache_dir()),
            " (default: the user cache dir; $REPRO_CACHE_DIR overrides)",
        )
    else:
        default_dir, default_help = None, " (off by default)"
    p.add_argument(
        "--cache-dir",
        default=default_dir,
        help="directory of the spec-hash result cache" + default_help,
    )
    p.add_argument(
        "--no-cache",
        action="store_true",
        help="bypass the result cache entirely (neither read nor write it)",
    )


def _open_cli_cache(args: argparse.Namespace):
    from repro.cache import open_cache

    return open_cache(args.cache_dir, enabled=not args.no_cache)


def _add_suite_parser(sub) -> None:
    p = sub.add_parser(
        "suite",
        help=(
            "scenario suites: a base scenario + named axes executed as one "
            "sharded, cached sweep campaign"
        ),
    )
    ssub = p.add_subparsers(dest="suite_command", required=True)
    run_p = ssub.add_parser(
        "run", help="execute every grid point of a suite JSON file"
    )
    _add_suite_exec_options(run_p)
    report_p = ssub.add_parser(
        "report",
        help=(
            "latency-distribution report (p50/p95/p99/max per grid point) of "
            "a suite — a warm cache serves it without re-executing a point"
        ),
    )
    _add_suite_exec_options(report_p)
    report_p.add_argument(
        "--json",
        action="store_true",
        help=(
            "print the machine-readable suite result document instead of the "
            "report — the same JSON the service's results endpoint serves"
        ),
    )
    report_p.add_argument(
        "--trajectory",
        default=None,
        metavar="PATH",
        help=(
            "also render this BENCH_trajectory.json benchmark history "
            "(default: ./BENCH_trajectory.json when present)"
        ),
    )
    emit_p = ssub.add_parser(
        "emit", help="print a starter suite JSON (pipe into a suite file)"
    )
    emit_p.add_argument(
        "--scenario",
        default=None,
        help="use this scenario JSON file as the suite's base scenario",
    )


def _add_suite_exec_options(p: argparse.ArgumentParser) -> None:
    """The suite-execution flags shared by ``suite run`` and ``suite report``."""
    p.add_argument("suite", help="path to a suite JSON file")
    p.add_argument(
        "--jobs", type=int, default=1, help="worker processes for cache-miss points"
    )
    p.add_argument(
        "--seed", type=int, default=None, help="override the suite's campaign seed"
    )
    p.add_argument(
        "--trials", type=int, default=None, help="override the suite's trials/point"
    )
    p.add_argument(
        "--x-axis",
        default=None,
        help="suite axis plotted on x in the report panels (default: first axis)",
    )
    p.add_argument(
        "--y-axis",
        default=None,
        help="suite axis leading the curve labels (default: declaration order)",
    )
    p.add_argument(
        "--smoke",
        action="store_true",
        help=(
            "shrink the suite (2 values per axis, 1 trial, short streams) "
            "and run it — the CI configuration smoke test"
        ),
    )
    p.add_argument(
        "--no-plot", action="store_true", help="print only the tables, no ASCII plots"
    )
    _add_reduce_option(p)
    _add_resilience_options(p)
    _add_cache_options(p, cache_by_default=True)


def _run_suite_command(args: argparse.Namespace) -> int:
    from repro.exceptions import SchedulingError
    from repro.scenario.suite import SuiteSpec

    if args.suite_command == "emit":
        return _emit_suite(args)
    from repro.experiments.reporting import render_latency_report, render_suite
    from repro.experiments.sweep import run_suite

    try:
        suite = SuiteSpec.from_file(args.suite)
    except OSError as exc:
        print(f"repro-streaming suite: error: cannot read suite: {exc}", file=sys.stderr)
        return 2
    except ValueError as exc:
        print(f"repro-streaming suite: error: {exc}", file=sys.stderr)
        return 2
    if args.smoke:
        suite = suite.smoke()
    # a bad axis flag must fail here, not after the whole grid executed
    for flag, value in (("--x-axis", args.x_axis), ("--y-axis", args.y_axis)):
        if value is not None and value not in suite.axes:
            print(
                f"repro-streaming suite: error: {flag}: {value!r} is not an "
                f"axis of suite {suite.name!r} (axes: {list(suite.axes)})",
                file=sys.stderr,
            )
            return 2
    effective_x = args.x_axis or next(iter(suite.axes), None)
    if args.y_axis is not None and args.y_axis == effective_x:
        print(
            f"repro-streaming suite: error: --y-axis {args.y_axis!r} is the "
            f"x axis of the report; pick a different axis for the curves",
            file=sys.stderr,
        )
        return 2
    try:
        from repro.resilience import drain_signals

        with drain_signals() as stop:
            result = run_suite(
                suite,
                seed=args.seed,
                trials=args.trials,
                jobs=args.jobs,
                cache=_open_cli_cache(args),
                reduce=args.reduce,
                max_retries=args.max_retries,
                trial_timeout=args.trial_timeout,
                resume=args.resume,
                chaos=args.chaos,
                stop=stop,
            )
        if args.suite_command == "report" and args.json:
            return _print_suite_json(result, args)
        render = (
            render_latency_report
            if args.suite_command == "report"
            else render_suite
        )
        report = render(
            result, x_axis=args.x_axis, y_axis=args.y_axis, plot=not args.no_plot
        )
    except (ValueError, SchedulingError) as exc:
        print(f"repro-streaming suite: error: {exc}", file=sys.stderr)
        return 2
    print(report)
    if result.interrupted:
        print(
            "repro-streaming suite: interrupted — re-run with --resume to "
            "execute only the missing trials (completed trials are "
            "checkpointed when --resume and the cache are on)",
            file=sys.stderr,
        )
        return 130
    if args.suite_command == "report":
        return _report_trajectory(args)
    return 0


def _print_suite_json(result, args: argparse.Namespace) -> int:
    """``suite report --json``: the service's machine-readable result document.

    The exact payload ``GET /v1/results/{key}`` serves (same ``result_key``
    derivation), so CLI pipelines and HTTP dashboards consume one format.
    """
    import json

    from repro.service.models import suite_result_key, suite_result_payload

    key = suite_result_key(result.suite, result.seed, result.trials, args.reduce)
    print(json.dumps(suite_result_payload(result, reduce=args.reduce, key=key)))
    return 0


def _report_trajectory(args: argparse.Namespace) -> int:
    """The benchmark-history tail of ``suite report``.

    An explicitly named ``--trajectory`` file must exist and parse; the
    implicit default (``./BENCH_trajectory.json``) is silently skipped when
    absent, so the report works outside the repository checkout too.
    """
    import json

    from repro.experiments.reporting import render_trajectory

    explicit = args.trajectory is not None
    path = Path(args.trajectory) if explicit else Path("BENCH_trajectory.json")
    if not explicit and not path.exists():
        return 0
    try:
        points = json.loads(path.read_text())
    except (OSError, ValueError) as exc:
        print(
            f"repro-streaming suite: error: cannot read trajectory {path}: {exc}",
            file=sys.stderr,
        )
        return 2
    if not isinstance(points, list):
        print(
            f"repro-streaming suite: error: trajectory {path} is not a JSON list",
            file=sys.stderr,
        )
        return 2
    print()
    print(render_trajectory(points, plot=not args.no_plot))
    return 0


def _emit_suite(args: argparse.Namespace) -> int:
    from repro.scenario.spec import ScenarioSpec
    from repro.scenario.suite import SuiteSpec

    try:
        if args.scenario is not None:
            base = ScenarioSpec.from_file(args.scenario)
        else:
            base = ScenarioSpec()
    except OSError as exc:
        print(
            f"repro-streaming suite: error: cannot read scenario: {exc}",
            file=sys.stderr,
        )
        return 2
    except ValueError as exc:
        print(f"repro-streaming suite: error: {exc}", file=sys.stderr)
        return 2
    suite = SuiteSpec(
        base=base,
        axes={
            "faults.mttf_periods": [50.0, 100.0, 200.0, 400.0],
            "faults.mttr_periods": [None, 25.0],
        },
        name=f"{base.name}-suite",
    )
    print(suite.to_json())
    return 0


def _parse_size(text: str) -> int:
    """A byte count with an optional K/M/G suffix (``500M``, ``2G``, ``0``)."""
    import math

    text = text.strip()
    units = {"K": 1024, "M": 1024**2, "G": 1024**3}
    factor = units.get(text[-1:].upper())
    number = text[:-1] if factor else text
    try:
        value = float(number) * (factor or 1)
    except ValueError:
        value = float("nan")
    # one error path for unparsable, non-finite ('inf', 'nan') and negative
    # sizes: int() of an infinity would escape argparse as an OverflowError
    if not math.isfinite(value) or value < 0:
        raise argparse.ArgumentTypeError(
            f"invalid size {text!r} (expected a non-negative byte count, "
            f"optionally K/M/G-suffixed)"
        )
    return int(value)


def _format_size(n: int | float) -> str:
    """Human form of a byte count (``12.3 MiB``)."""
    value = float(n)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if value < 1024 or unit == "GiB":
            return f"{value:.1f} {unit}" if unit != "B" else f"{int(value)} B"
        value /= 1024
    return f"{value:.1f} GiB"  # pragma: no cover - unreachable


def _add_cache_parser(sub) -> None:
    p = sub.add_parser(
        "cache",
        help="inspect and prune the spec-hash result cache",
    )
    csub = p.add_subparsers(dest="cache_command", required=True)
    ls_p = csub.add_parser(
        "ls", help="entry count, bytes and last-use ages of the cache"
    )
    gc_p = csub.add_parser(
        "gc",
        help=(
            "evict least-recently-used entries until the cache fits a size "
            "bound (hits refresh an entry's place in line; losing an entry "
            "only means the next identical run recomputes it)"
        ),
    )
    gc_p.add_argument(
        "--max-size",
        type=_parse_size,
        required=True,
        help="size bound in bytes, or K/M/G-suffixed (e.g. 500M); 0 empties the cache",
    )
    for sp in (ls_p, gc_p):
        sp.add_argument(
            "--cache-dir",
            default=None,
            help="cache directory (default: the user cache dir; $REPRO_CACHE_DIR overrides)",
        )


def _add_serve_parser(sub) -> None:
    p = sub.add_parser(
        "serve",
        help=(
            "serve the engine over HTTP: POST scenarios/suites, poll jobs, "
            "fetch content-hashed results (see docs/service.md)"
        ),
    )
    p.add_argument(
        "--host", default="127.0.0.1", help="bind address (default: loopback only)"
    )
    p.add_argument(
        "--port", type=int, default=8000, help="TCP port (0 picks a free one)"
    )
    p.add_argument(
        "--workers",
        type=int,
        default=2,
        help="concurrent job executions (threads running scenario/suite jobs)",
    )
    p.add_argument(
        "--queue-capacity",
        type=int,
        default=8,
        help=(
            "admitted-but-not-yet-running jobs; beyond workers + this, "
            "submits are shed with 429 + Retry-After instead of queueing"
        ),
    )
    p.add_argument(
        "--exec-jobs",
        type=int,
        default=1,
        help=(
            "worker processes per suite job, forwarded to the campaign "
            "engine (bit-identical results at any value)"
        ),
    )
    p.add_argument(
        "--progress-every",
        type=int,
        default=200,
        help="datasets between two progress events on the job event stream",
    )
    _add_cache_options(p, cache_by_default=True)


def _run_serve_command(args: argparse.Namespace) -> int:
    from repro.service import JobStore, ServiceApp, WorkerPool, make_threaded_server
    from repro.service.limits import CircuitBreaker

    try:
        pool = WorkerPool(workers=args.workers, queue_capacity=args.queue_capacity)
    except ValueError as exc:
        print(f"repro-streaming serve: error: {exc}", file=sys.stderr)
        return 2
    store = JobStore(
        cache=_open_cli_cache(args),
        pool=pool,
        exec_jobs=args.exec_jobs,
        breaker=CircuitBreaker(),
        progress_every=args.progress_every,
    )
    try:
        server = make_threaded_server(ServiceApp(store), args.host, args.port)
    except OSError as exc:
        print(
            f"repro-streaming serve: error: cannot bind {args.host}:{args.port}: {exc}",
            file=sys.stderr,
        )
        pool.shutdown(wait=False)
        return 2
    host, port = server.server_address[:2]
    cache_note = (
        "cache off" if args.no_cache else f"cache {args.cache_dir}"
    )
    print(
        f"repro-streaming serve: http://{host}:{port} "
        f"({args.workers} workers, queue {args.queue_capacity}, {cache_note}) "
        f"— Ctrl-C stops",
        flush=True,
    )
    # SIGTERM (the supervisor/container stop signal) drains exactly like
    # Ctrl-C: in-flight suite jobs return at their next trial boundary with
    # every completed trial checkpointed, so a resubmit resumes.
    import signal

    def _terminate(signum, frame):
        raise KeyboardInterrupt

    previous = signal.signal(signal.SIGTERM, _terminate)
    graceful = False
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("repro-streaming serve: draining and shutting down", file=sys.stderr)
        graceful = True
    finally:
        signal.signal(signal.SIGTERM, previous)
        server.server_close()
        if graceful:
            store.drain()
        else:
            pool.shutdown(wait=False)
    return 0


def _run_cache_command(args: argparse.Namespace) -> int:
    from repro.cache import DiskCache, default_cache_dir
    from repro.utils.ascii import format_table

    root = Path(args.cache_dir) if args.cache_dir else default_cache_dir()
    cache = DiskCache(root)
    usage = cache.usage()
    if args.cache_command == "gc":
        evicted = cache.gc(args.max_size)
        freed = sum(e.size for e in evicted)
        after = cache.usage()
        print(
            f"evicted {len(evicted)} of {usage.entries} entries "
            f"({_format_size(freed)} freed); {after.entries} entries, "
            f"{_format_size(after.total_bytes)} remain in {root}"
        )
        return 0
    print(f"result cache: {root}")
    if not usage.entries:
        print("(empty)")
        q_entries, q_bytes = cache.quarantine_usage()
        if q_entries:
            print(
                f"quarantine: {q_entries} corrupted entr"
                f"{'y' if q_entries == 1 else 'ies'} ({_format_size(q_bytes)})"
            )
        return 0
    now = time.time()
    entries = sorted(cache.entries(), key=lambda e: (-e.used, e.key))
    rows: list[list[object]] = [
        [e.key[:16], _format_size(e.size), _format_age(now - e.used)]
        for e in entries
    ]
    q_entries, q_bytes = cache.quarantine_usage()
    if q_entries:
        rows.append(
            [f"quarantine ({q_entries} corrupted)", _format_size(q_bytes), ""]
        )
    rows.append(
        [f"total ({usage.entries} entries)", _format_size(usage.total_bytes), ""]
    )
    print(
        format_table(
            ["entry", "size", "last used"], rows, title="result cache entries"
        )
    )
    return 0


def _format_age(seconds: float) -> str:
    """Human form of an age in seconds (``3.2 h ago``)."""
    seconds = max(0.0, seconds)
    for limit, unit, scale in ((120, "s", 1), (7200, "min", 60), (172800, "h", 3600)):
        if seconds < limit:
            return f"{seconds / scale:.1f} {unit} ago"
    return f"{seconds / 86400:.1f} d ago"


def _add_config_parser(sub) -> None:
    p = sub.add_parser(
        "config",
        help="build, validate and emit declarative scenario specs",
    )
    p.add_argument(
        "--scenario",
        default=None,
        help=(
            "start from this scenario JSON file (validated); any spec flags "
            "given alongside are applied as overrides on top of it"
        ),
    )
    p.add_argument(
        "--name",
        default=argparse.SUPPRESS,
        help="name recorded in the emitted spec",
    )
    p.add_argument(
        "--emit",
        action="store_true",
        help="print the resolved spec as JSON (pipe into a scenario file)",
    )
    _add_spec_options(p, suppress=True)


def _config(args: argparse.Namespace):
    config = paper_config() if args.paper_scale else bench_config()
    if args.graphs is not None:
        config = config.with_overrides(num_graphs=args.graphs)
    return config


def _parse_grid(text: str, option: str) -> tuple:
    """Parse a comma-separated float grid; ``none`` maps to ``None``."""
    values = []
    for token in text.split(","):
        token = token.strip()
        if not token:
            continue
        if token.lower() in ("none", "inf"):
            values.append(None)
        else:
            try:
                values.append(float(token))
            except ValueError:
                raise ValueError(f"{option}: invalid grid value {token!r}") from None
    if not values:
        raise ValueError(f"{option}: empty grid")
    return tuple(values)


def _scenario_from_flags(args: argparse.Namespace, name: str = "cli"):
    """Parse the shared spec flags into a declarative ScenarioSpec."""
    from repro.runtime.montecarlo import RuntimeTrialSpec

    spec = RuntimeTrialSpec(
        granularity=args.granularity,
        num_tasks=args.tasks,
        num_processors=args.processors,
        epsilon=args.epsilon,
        num_datasets=args.datasets,
        mttf_periods=args.mttf,
        distribution=args.distribution,
        weibull_shape=args.weibull_shape,
        mttr_periods=args.mttr,
        policy=args.policy,
        admission=args.admission,
        queue_capacity=None if args.queue_capacity == 0 else args.queue_capacity,
        checkpoint=not args.no_checkpoint,
        rebuild_on_repair=args.rebuild_on_repair,
        rebuild_overhead=args.rebuild_overhead,
        fast_forward=not args.no_fast_forward,
    ).to_scenario(name=name)
    # The failure-world flags postdate the legacy trial-spec bridge: they are
    # applied as overrides so the default spec stays byte-identical.
    world = {
        "faults.repair_shape": args.repair_shape,
        "faults.trace_file": args.fault_trace,
        "faults.group_size": args.group_size,
        "faults.load_coupling": args.load_coupling or None,
        "faults.spares": args.spares or None,
        "faults.join_periods": args.join_periods,
        "faults.preempt_periods": args.preempt_periods,
    }
    overrides = {path: value for path, value in world.items() if value is not None}
    return spec.updated(overrides) if overrides else spec


def _run_runtime_command(args: argparse.Namespace) -> int:
    from repro.api import Session
    from repro.exceptions import SchedulingError
    from repro.experiments.reporting import render_sweep
    from repro.experiments.sweep import run_runtime_sweep
    from repro.resilience import ExecutionError
    from repro.resilience.supervisor import ExecutionInterrupted
    from repro.utils.ascii import format_table

    if args.sweep and (args.metrics or args.gantt):
        print(
            "repro-streaming runtime: error: --metrics/--gantt instrument a "
            "single online run and cannot be combined with --sweep",
            file=sys.stderr,
        )
        return 2
    try:
        spec = _scenario_from_flags(args, name="runtime-cli")
        if args.sweep:
            group_sizes = None
            if args.sweep_group_sizes is not None:
                group_sizes = tuple(
                    None if v is None else int(v)
                    for v in _parse_grid(args.sweep_group_sizes, "--sweep-group-sizes")
                )
            load_couplings = None
            if args.sweep_load is not None:
                load_couplings = _parse_grid(args.sweep_load, "--sweep-load")
            sweep = run_runtime_sweep(
                spec,
                mttf_grid=_parse_grid(args.sweep_mttf, "--sweep-mttf"),
                mttr_grid=_parse_grid(args.sweep_mttr, "--sweep-mttr"),
                shapes=_parse_grid(args.sweep_shapes, "--sweep-shapes"),
                trials=args.trials,
                seed=args.seed,
                jobs=args.jobs,
                cache=_open_cli_cache(args),
                reduce=args.reduce,
                group_sizes=group_sizes,
                load_couplings=load_couplings,
            )
            print(render_sweep(sweep, plot=not args.no_plot))
            return 0
        from repro.resilience import drain_signals

        session = Session(spec)
        with drain_signals() as stop:
            result = session.monte_carlo(
                trials=args.trials,
                seed=args.seed,
                jobs=args.jobs,
                cache=_open_cli_cache(args),
                reduce=args.reduce,
                max_retries=args.max_retries,
                trial_timeout=args.trial_timeout,
                resume=args.resume,
                chaos=args.chaos,
                stop=stop,
            )
        probe = online = None
        if args.metrics or args.gantt:
            # one instrumented run of the campaign's seed: the exported
            # metrics/Gantt describe trial 0, not the aggregate
            from repro.obs import MetricsProbe

            probe = MetricsProbe()
            online = session.run_online(args.seed, probe=probe)
    except ExecutionInterrupted:
        print(
            "repro-streaming runtime: interrupted — re-run with --resume and "
            "a --cache-dir to execute only the missing trials",
            file=sys.stderr,
        )
        return 130
    except ExecutionError as exc:
        print(f"repro-streaming runtime: error: {exc}", file=sys.stderr)
        return 1
    except (ValueError, SchedulingError) as exc:
        print(f"repro-streaming runtime: error: {exc}", file=sys.stderr)
        return 2
    title = (
        f"Online runtime campaign — {args.trials} trials, seed {args.seed}, "
        f"policy {args.policy}, admission {args.admission}, mttf {args.mttf:g}Δ"
        + ("" if args.mttr is None else f", mttr {args.mttr:g}Δ")
    )
    print(format_table(["statistic", "value"], result.as_rows(), title=title))
    if probe is not None:
        _export_obs(args, online.trace, probe)
    return 0


def _print_result(result, title: str) -> None:
    from repro.utils.ascii import format_table

    print(format_table(["metric", "value"], result.as_rows(), title=title))


def _run_run_command(args: argparse.Namespace) -> int:
    from repro.api import Session
    from repro.exceptions import SchedulingError

    try:
        session = Session.from_file(args.scenario)
    except OSError as exc:
        print(f"repro-streaming run: error: cannot read scenario: {exc}", file=sys.stderr)
        return 2
    except ValueError as exc:
        print(f"repro-streaming run: error: {exc}", file=sys.stderr)
        return 2

    if (args.metrics or args.gantt) and (args.smoke or args.mode != "online"):
        print(
            "repro-streaming run: error: --metrics/--gantt instrument a "
            "single online run (--mode online, without --smoke)",
            file=sys.stderr,
        )
        return 2
    if args.sample is not None and not args.gantt:
        print(
            "repro-streaming run: error: --sample only thins the --gantt "
            "export; pass --gantt too",
            file=sys.stderr,
        )
        return 2

    spec = session.spec
    print(spec.describe())
    try:
        if args.smoke:
            # Tiny pass through every front end: the configuration path is
            # exercised end to end without the full Monte-Carlo cost.
            small = spec.updated(
                {"runtime.num_datasets": min(spec.runtime.num_datasets, 25)}
            )
            session = Session(small)
            _print_result(session.schedule(args.seed), "schedule")
            _print_result(session.simulate(seed=args.seed), "simulate")
            _print_result(session.run_online(args.seed), "online run")
            _print_result(
                session.monte_carlo(trials=2, seed=args.seed, jobs=1),
                "monte-carlo (2 trials)",
            )
            return 0
        if args.mode == "schedule":
            result = session.schedule(args.seed)
        elif args.mode == "simulate":
            result = session.simulate(seed=args.seed)
        elif args.mode == "online":
            probe = None
            if args.metrics or args.gantt:
                from repro.obs import MetricsProbe

                probe = MetricsProbe()
            result = session.run_online(args.seed, probe=probe)
        else:
            result = session.monte_carlo(
                trials=args.trials, seed=args.seed, jobs=args.jobs
            )
    except (ValueError, SchedulingError) as exc:
        print(f"repro-streaming run: error: {exc}", file=sys.stderr)
        return 2
    _print_result(result, f"{spec.name} — {args.mode} (seed {args.seed})")
    if args.mode == "online" and probe is not None:
        _export_obs(args, result.trace, probe)
    return 0


def _run_config_command(args: argparse.Namespace) -> int:
    from repro.scenario.spec import ScenarioSpec

    try:
        if args.scenario is not None:
            base = ScenarioSpec.from_file(args.scenario)
        else:
            base = ScenarioSpec()
        changes = _flag_overrides(args)
        if hasattr(args, "name"):
            changes["name"] = args.name
        spec = base.updated(changes)
    except OSError as exc:
        print(f"repro-streaming config: error: cannot read scenario: {exc}", file=sys.stderr)
        return 2
    except ValueError as exc:
        print(f"repro-streaming config: error: {exc}", file=sys.stderr)
        return 2
    if args.emit:
        print(spec.to_json())
    else:
        print(f"scenario OK: {spec.describe()}")
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    command = args.command

    if command == "examples":
        print(render_example_rows(figure1_scenarios(), "Figure 1 — execution scenarios"))
        print()
        print(render_example_rows(figure2_example(), "Figure 2 — LTF vs R-LTF"))
        return 0
    if command == "runtime":
        return _run_runtime_command(args)
    if command == "run":
        return _run_run_command(args)
    if command == "config":
        return _run_config_command(args)
    if command == "suite":
        return _run_suite_command(args)
    if command == "cache":
        return _run_cache_command(args)
    if command == "serve":
        return _run_serve_command(args)

    config = _config(args)
    jobs = getattr(args, "jobs", 1)
    if command in _FIGURES:
        series = _FIGURES[command](config, jobs=jobs)
    elif command == "ablations":
        series = fig.ablation_rules(config, jobs=jobs)
    elif command == "baselines":
        series = fig.baseline_comparison(config, jobs=jobs)
    elif command == "scaling":
        series = fig.scaling_study(config=config, jobs=jobs)
    else:  # pragma: no cover - argparse enforces valid choices
        parser.error(f"unknown command {command!r}")
        return 2
    print(render_series(series, plot=not args.no_plot))
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
