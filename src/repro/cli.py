"""Command-line front end.

Examples
--------
Regenerate the benchmark-scale version of Figure 3(a)::

    repro-streaming figure3a

Regenerate Figure 4(c) at the paper's scale (60 graphs per point)::

    repro-streaming figure4c --paper-scale

Print the worked examples and the extra studies::

    repro-streaming examples
    repro-streaming ablations
    repro-streaming baselines
    repro-streaming scaling
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Sequence

from repro.experiments import figures as fig
from repro.experiments.config import bench_config, paper_config
from repro.experiments.reporting import render_example_rows, render_series
from repro.experiments.tables import figure1_scenarios, figure2_example

__all__ = ["main", "build_parser"]

_FIGURES: dict[str, Callable[..., "fig.FigureSeries"]] = {
    "figure3a": fig.figure3a,
    "figure3b": fig.figure3b,
    "figure3c": fig.figure3c,
    "figure4a": fig.figure4a,
    "figure4b": fig.figure4b,
    "figure4c": fig.figure4c,
}


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser (exposed for the tests)."""
    parser = argparse.ArgumentParser(
        prog="repro-streaming",
        description=(
            "Reproduction of 'Optimizing the Latency of Streaming Applications under "
            "Throughput and Reliability Constraints' (Benoit, Hakem, Robert, 2009)."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    for name in _FIGURES:
        p = sub.add_parser(name, help=f"regenerate {name} of the paper")
        _add_scale_options(p)
    for name, help_text in (
        ("ablations", "ablation of Rule 1, one-to-one mapping and chunk size"),
        ("baselines", "fault-free comparison against related-work heuristics"),
        ("scaling", "scheduler runtime vs graph size"),
    ):
        p = sub.add_parser(name, help=help_text)
        _add_scale_options(p)
    sub.add_parser("examples", help="print the Figure 1 and Figure 2 worked examples")
    return parser


def _add_scale_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--paper-scale",
        action="store_true",
        help="use the full experimental scale of the paper (60 graphs per point)",
    )
    parser.add_argument(
        "--graphs",
        type=int,
        default=None,
        help="override the number of random graphs per point",
    )
    parser.add_argument(
        "--no-plot", action="store_true", help="print only the table, no ASCII plot"
    )


def _config(args: argparse.Namespace):
    config = paper_config() if args.paper_scale else bench_config()
    if args.graphs is not None:
        config = config.with_overrides(num_graphs=args.graphs)
    return config


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    command = args.command

    if command == "examples":
        print(render_example_rows(figure1_scenarios(), "Figure 1 — execution scenarios"))
        print()
        print(render_example_rows(figure2_example(), "Figure 2 — LTF vs R-LTF"))
        return 0

    config = _config(args)
    if command in _FIGURES:
        series = _FIGURES[command](config)
    elif command == "ablations":
        series = fig.ablation_rules(config)
    elif command == "baselines":
        series = fig.baseline_comparison(config)
    elif command == "scaling":
        series = fig.scaling_study(config=config)
    else:  # pragma: no cover - argparse enforces valid choices
        parser.error(f"unknown command {command!r}")
        return 2
    print(render_series(series, plot=not args.no_plot))
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
