"""Command-line front end.

Examples
--------
Regenerate the benchmark-scale version of Figure 3(a)::

    repro-streaming figure3a

Regenerate Figure 4(c) at the paper's scale (60 graphs per point), fanning the
granularity points across 4 worker processes (same numbers, less wall-clock)::

    repro-streaming figure4c --paper-scale --jobs 4

Print the worked examples and the extra studies::

    repro-streaming examples
    repro-streaming ablations --jobs 2
    repro-streaming baselines
    repro-streaming scaling

Run the online streaming runtime: 20 Monte-Carlo trials of a schedule
executing under stochastic processor failures with live rescheduling, 4
trials at a time (identical statistics for any ``--jobs``)::

    repro-streaming runtime --seed 0 --trials 20 --jobs 4
    repro-streaming runtime --policy remap --mttf 200 --mttr 50 --distribution weibull
    repro-streaming runtime --admission queue --rebuild-on-repair

Sweep a whole grid of failure regimes (mttf × mttr × Weibull shape) into a
figure-style report::

    repro-streaming runtime --sweep --jobs 4
    repro-streaming runtime --sweep --sweep-mttf 50,100,200 --sweep-mttr none,25 --sweep-shapes 0.7,1,1.5
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Sequence

from repro.experiments import figures as fig
from repro.experiments.config import bench_config, paper_config
from repro.experiments.reporting import render_example_rows, render_series
from repro.experiments.tables import figure1_scenarios, figure2_example

__all__ = ["main", "build_parser"]

_FIGURES: dict[str, Callable[..., "fig.FigureSeries"]] = {
    "figure3a": fig.figure3a,
    "figure3b": fig.figure3b,
    "figure3c": fig.figure3c,
    "figure4a": fig.figure4a,
    "figure4b": fig.figure4b,
    "figure4c": fig.figure4c,
}


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser (exposed for the tests)."""
    parser = argparse.ArgumentParser(
        prog="repro-streaming",
        description=(
            "Reproduction of 'Optimizing the Latency of Streaming Applications under "
            "Throughput and Reliability Constraints' (Benoit, Hakem, Robert, 2009)."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    for name in _FIGURES:
        p = sub.add_parser(name, help=f"regenerate {name} of the paper")
        _add_scale_options(p)
    for name, help_text in (
        ("ablations", "ablation of Rule 1, one-to-one mapping and chunk size"),
        ("baselines", "fault-free comparison against related-work heuristics"),
        ("scaling", "scheduler runtime vs graph size"),
    ):
        p = sub.add_parser(name, help=help_text)
        _add_scale_options(p)
    sub.add_parser("examples", help="print the Figure 1 and Figure 2 worked examples")
    _add_runtime_parser(sub)
    return parser


def _add_scale_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--paper-scale",
        action="store_true",
        help="use the full experimental scale of the paper (60 graphs per point)",
    )
    parser.add_argument(
        "--graphs",
        type=int,
        default=None,
        help="override the number of random graphs per point",
    )
    parser.add_argument(
        "--no-plot", action="store_true", help="print only the table, no ASCII plot"
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help=(
            "worker processes for the per-graph work units (results are "
            "identical for any value; in the scaling study each worker times "
            "its own scheduler runs)"
        ),
    )


def _add_runtime_parser(sub) -> None:
    p = sub.add_parser(
        "runtime",
        help="Monte-Carlo campaign of the online runtime under stochastic failures",
    )
    p.add_argument("--seed", type=int, default=0, help="campaign seed (default 0)")
    p.add_argument("--trials", type=int, default=20, help="number of Monte-Carlo trials")
    p.add_argument("--jobs", type=int, default=1, help="worker processes for the trials")
    p.add_argument("--datasets", type=int, default=200, help="data sets per trial")
    p.add_argument("--epsilon", type=int, default=2, help="fault-tolerance degree ε")
    p.add_argument("--granularity", type=float, default=1.0, help="workload granularity")
    p.add_argument("--tasks", type=int, default=30, help="tasks per random workload")
    p.add_argument("--processors", type=int, default=10, help="platform size")
    p.add_argument(
        "--mttf",
        type=float,
        default=500.0,
        help="mean time to failure per processor, in stream periods",
    )
    p.add_argument(
        "--mttr",
        type=float,
        default=None,
        help="mean time to repair, in stream periods (default: no repair)",
    )
    p.add_argument(
        "--distribution",
        choices=("exponential", "weibull"),
        default="exponential",
        help="inter-failure time distribution",
    )
    p.add_argument(
        "--weibull-shape", type=float, default=1.5, help="Weibull shape parameter"
    )
    from repro.runtime.admission import ADMISSION_POLICIES
    from repro.runtime.policies import RESCHEDULE_POLICIES

    p.add_argument(
        "--policy",
        choices=RESCHEDULE_POLICIES.names,
        default="rltf",
        help="online rescheduling policy",
    )
    p.add_argument(
        "--admission",
        choices=ADMISSION_POLICIES.names,
        default="shed",
        help="admission policy during downtime/throttling (shed drops, queue buffers)",
    )
    p.add_argument(
        "--queue-capacity",
        type=int,
        default=64,
        help="admission buffer size for --admission queue (0 = unbounded)",
    )
    p.add_argument(
        "--no-checkpoint",
        action="store_true",
        help=(
            "disable checkpoint/restart: legacy flush-and-restart execution "
            "(in-flight data sets do not survive a rebuild)"
        ),
    )
    p.add_argument(
        "--rebuild-on-repair",
        action="store_true",
        help=(
            "anticipatory rebuilds on repair events (only when a speculative "
            "reschedule shows the repaired processor improves the schedule)"
        ),
    )
    p.add_argument(
        "--rebuild-overhead",
        type=float,
        default=1.0,
        help="rebuild downtime, in stream periods",
    )
    p.add_argument(
        "--sweep",
        action="store_true",
        help="sweep an mttf/mttr × Weibull-shape grid into a figure-style report",
    )
    p.add_argument(
        "--sweep-mttf",
        default="50,100,200,400",
        help="comma-separated mttf grid (periods) for --sweep",
    )
    p.add_argument(
        "--sweep-mttr",
        default="none,25",
        help="comma-separated mttr grid (periods; 'none' = fail-stop) for --sweep",
    )
    p.add_argument(
        "--sweep-shapes",
        default="0.7,1,1.5",
        help="comma-separated Weibull shapes for --sweep (1 = exponential)",
    )
    p.add_argument(
        "--no-plot", action="store_true", help="print only the tables, no ASCII plots"
    )


def _config(args: argparse.Namespace):
    config = paper_config() if args.paper_scale else bench_config()
    if args.graphs is not None:
        config = config.with_overrides(num_graphs=args.graphs)
    return config


def _parse_grid(text: str, option: str) -> tuple:
    """Parse a comma-separated float grid; ``none`` maps to ``None``."""
    values = []
    for token in text.split(","):
        token = token.strip()
        if not token:
            continue
        if token.lower() in ("none", "inf"):
            values.append(None)
        else:
            try:
                values.append(float(token))
            except ValueError:
                raise ValueError(f"{option}: invalid grid value {token!r}") from None
    if not values:
        raise ValueError(f"{option}: empty grid")
    return tuple(values)


def _run_runtime_command(args: argparse.Namespace) -> int:
    from repro.exceptions import SchedulingError
    from repro.experiments.parallel import run_runtime_campaign
    from repro.experiments.reporting import render_sweep
    from repro.experiments.sweep import run_runtime_sweep
    from repro.runtime.montecarlo import RuntimeTrialSpec
    from repro.utils.ascii import format_table

    try:
        spec = RuntimeTrialSpec(
            granularity=args.granularity,
            num_tasks=args.tasks,
            num_processors=args.processors,
            epsilon=args.epsilon,
            num_datasets=args.datasets,
            mttf_periods=args.mttf,
            distribution=args.distribution,
            weibull_shape=args.weibull_shape,
            mttr_periods=args.mttr,
            policy=args.policy,
            admission=args.admission,
            queue_capacity=None if args.queue_capacity == 0 else args.queue_capacity,
            checkpoint=not args.no_checkpoint,
            rebuild_on_repair=args.rebuild_on_repair,
            rebuild_overhead=args.rebuild_overhead,
        )
        if args.sweep:
            sweep = run_runtime_sweep(
                spec,
                mttf_grid=_parse_grid(args.sweep_mttf, "--sweep-mttf"),
                mttr_grid=_parse_grid(args.sweep_mttr, "--sweep-mttr"),
                shapes=_parse_grid(args.sweep_shapes, "--sweep-shapes"),
                trials=args.trials,
                seed=args.seed,
                jobs=args.jobs,
            )
            print(render_sweep(sweep, plot=not args.no_plot))
            return 0
        result = run_runtime_campaign(
            spec, trials=args.trials, seed=args.seed, jobs=args.jobs
        )
    except (ValueError, SchedulingError) as exc:
        print(f"repro-streaming runtime: error: {exc}", file=sys.stderr)
        return 2
    stats = result.stats
    title = (
        f"Online runtime campaign — {args.trials} trials, seed {args.seed}, "
        f"policy {args.policy}, admission {args.admission}, mttf {args.mttf:g}Δ"
        + ("" if args.mttr is None else f", mttr {args.mttr:g}Δ")
    )
    print(format_table(["statistic", "value"], stats.as_rows(), title=title))
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    command = args.command

    if command == "examples":
        print(render_example_rows(figure1_scenarios(), "Figure 1 — execution scenarios"))
        print()
        print(render_example_rows(figure2_example(), "Figure 2 — LTF vs R-LTF"))
        return 0
    if command == "runtime":
        return _run_runtime_command(args)

    config = _config(args)
    jobs = getattr(args, "jobs", 1)
    if command in _FIGURES:
        series = _FIGURES[command](config, jobs=jobs)
    elif command == "ablations":
        series = fig.ablation_rules(config, jobs=jobs)
    elif command == "baselines":
        series = fig.baseline_comparison(config, jobs=jobs)
    elif command == "scaling":
        series = fig.scaling_study(config=config, jobs=jobs)
    else:  # pragma: no cover - argparse enforces valid choices
        parser.error(f"unknown command {command!r}")
        return 2
    print(render_series(series, plot=not args.no_plot))
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
