"""repro — fault-tolerant pipelined scheduling of streaming applications.

Reproduction of **"Optimizing the Latency of Streaming Applications under
Throughput and Reliability Constraints"** (Anne Benoit, Mourad Hakem, Yves
Robert, 2009): the LTF and R-LTF tri-criteria scheduling heuristics, the
heterogeneous one-port platform model they run on, the active-replication
failure model, the related-work baselines, and the full experiment harness
regenerating the paper's figures — plus an online streaming runtime
(:mod:`repro.runtime`) that executes schedules under stochastic processor
failures with live rescheduling, evaluated at Monte-Carlo scale by the
parallel campaign engine (:mod:`repro.experiments.parallel`).

Quickstart
----------
>>> from repro import random_paper_workload, rltf_schedule, latency_upper_bound
>>> workload = random_paper_workload(target_granularity=1.0, seed=42)
>>> schedule = rltf_schedule(
...     workload.graph, workload.platform,
...     period=40 * workload.mean_task_time, epsilon=1,
... )
>>> latency_upper_bound(schedule) > 0
True
"""

from repro.exceptions import (
    ReproError,
    GraphError,
    CycleError,
    PlatformError,
    ScheduleError,
    SchedulingError,
    ThroughputInfeasibleError,
    ReplicationError,
    ValidationError,
)
from repro.graph import (
    Task,
    TaskGraph,
    random_layered_dag,
    random_series_parallel,
    random_paper_workload,
    chain_graph,
    fork_join_graph,
    figure1_graph,
    figure2_graph,
    video_encoding_pipeline,
    dsp_filter_bank,
    map_reduce_graph,
    sensor_fusion_graph,
)
from repro.platform import (
    Processor,
    Platform,
    homogeneous_platform,
    heterogeneous_platform,
    paper_platform,
    figure1_platform,
    figure2_platform,
)
from repro.schedule import (
    Replica,
    Schedule,
    compute_stages,
    num_stages,
    latency_upper_bound,
    normalized_latency,
    throughput,
    communication_count,
    fault_tolerance_overhead,
    collect_metrics,
    validate_schedule,
    check_resilience,
)
from repro.core import (
    ltf_schedule,
    rltf_schedule,
    fault_free_schedule,
    fault_free_latency,
    maximize_throughput,
    maximize_resilience,
)
from repro.failures import (
    CrashScenario,
    sample_crash_scenarios,
    crash_latency,
    evaluate_crashes,
    expected_crash_latency,
    simulate_stream,
    FaultEvent,
    FaultTrace,
    sample_fault_trace,
)
from repro.runtime import (
    OnlineRuntime,
    run_online,
    RuntimeTrace,
    RuntimeTrialSpec,
    run_trial,
    summarize_traces,
)
from repro.baselines import (
    heft_schedule,
    etf_schedule,
    preclustering_schedule,
    expert_schedule,
    tda_schedule,
    wmsh_schedule,
    minimal_period_schedule,
)
from repro.scenario import (
    ScenarioSpec,
    SuiteSpec,
    WorkloadSpec,
    SchedulerSpec,
    FaultSpec,
    RuntimeSpec,
)
from repro.api import (
    Session,
    Result,
    ScheduleResult,
    SimulateResult,
    OnlineResult,
    MonteCarloResult,
)


def _load_version() -> str:
    """Package version — single source of truth is ``pyproject.toml``.

    A source-tree checkout (``PYTHONPATH=src``) answers from the
    ``pyproject.toml`` sitting next to ``src/`` — checked *first*, so a stale
    installed distribution elsewhere in the environment cannot shadow the
    code actually being imported.  An installed package (no adjacent
    pyproject) answers through its own ``importlib.metadata``.
    """
    import re
    from pathlib import Path

    pyproject = Path(__file__).resolve().parents[2] / "pyproject.toml"
    try:
        match = re.search(
            r'^version\s*=\s*"([^"]+)"', pyproject.read_text(), re.MULTILINE
        )
        if match:
            return match.group(1)
    except OSError:
        pass
    try:
        from importlib.metadata import version

        return version("repro-streaming")
    except Exception:  # PackageNotFoundError, or exotic broken metadata
        return "0.0.0+unknown"


__version__ = _load_version()

__all__ = [
    "__version__",
    # exceptions
    "ReproError",
    "GraphError",
    "CycleError",
    "PlatformError",
    "ScheduleError",
    "SchedulingError",
    "ThroughputInfeasibleError",
    "ReplicationError",
    "ValidationError",
    # graph
    "Task",
    "TaskGraph",
    "random_layered_dag",
    "random_series_parallel",
    "random_paper_workload",
    "chain_graph",
    "fork_join_graph",
    "figure1_graph",
    "figure2_graph",
    "video_encoding_pipeline",
    "dsp_filter_bank",
    "map_reduce_graph",
    "sensor_fusion_graph",
    # platform
    "Processor",
    "Platform",
    "homogeneous_platform",
    "heterogeneous_platform",
    "paper_platform",
    "figure1_platform",
    "figure2_platform",
    # schedule
    "Replica",
    "Schedule",
    "compute_stages",
    "num_stages",
    "latency_upper_bound",
    "normalized_latency",
    "throughput",
    "communication_count",
    "fault_tolerance_overhead",
    "collect_metrics",
    "validate_schedule",
    "check_resilience",
    # core schedulers
    "ltf_schedule",
    "rltf_schedule",
    "fault_free_schedule",
    "fault_free_latency",
    "maximize_throughput",
    "maximize_resilience",
    # failures
    "CrashScenario",
    "sample_crash_scenarios",
    "crash_latency",
    "evaluate_crashes",
    "expected_crash_latency",
    "simulate_stream",
    "FaultEvent",
    "FaultTrace",
    "sample_fault_trace",
    # online runtime
    "OnlineRuntime",
    "run_online",
    "RuntimeTrace",
    "RuntimeTrialSpec",
    "run_trial",
    "summarize_traces",
    # baselines
    "heft_schedule",
    "etf_schedule",
    "preclustering_schedule",
    "expert_schedule",
    "tda_schedule",
    "wmsh_schedule",
    "minimal_period_schedule",
    # declarative scenarios + session facade
    "ScenarioSpec",
    "SuiteSpec",
    "WorkloadSpec",
    "SchedulerSpec",
    "FaultSpec",
    "RuntimeSpec",
    "Session",
    "Result",
    "ScheduleResult",
    "SimulateResult",
    "OnlineResult",
    "MonteCarloResult",
]
