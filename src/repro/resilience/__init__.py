"""Fault tolerance for the experiment toolchain itself.

The rest of the library simulates faults in the *modeled* platform; this
package makes the *runner* survive its own infrastructure failing:

* :mod:`repro.resilience.supervisor` — a supervised process pool
  (:func:`supervised_map`) that detects worker death, respawns the pool,
  retries lost units with bounded exponential backoff, and enforces a
  per-unit wall-clock timeout by killing stuck workers;
* :mod:`repro.resilience.chaos` — a deterministic chaos-injection harness
  (:class:`ChaosSpec`) that makes workers crash, stall or return corrupted
  payloads on seeded schedules, so every recovery path above is provable by
  an ordinary test instead of a flaky integration story.

Trial-level checkpoint/resume lives where the trials do
(:func:`repro.experiments.sweep.run_suite` /
:func:`repro.experiments.parallel.run_runtime_campaign`, keyed by
:func:`repro.cache.keys.trial_key`); this package supplies the execution
substrate they run on.
"""

from __future__ import annotations

from repro.resilience.chaos import (
    CHAOS_ENV,
    ChaosCrash,
    ChaosSpec,
    CorruptPayload,
    resolve_chaos,
)
from repro.resilience.supervisor import (
    ExecutionError,
    RetryPolicy,
    SupervisedOutcome,
    UnitFailure,
    drain_signals,
    supervised_map,
)

__all__ = [
    "CHAOS_ENV",
    "ChaosCrash",
    "ChaosSpec",
    "CorruptPayload",
    "ExecutionError",
    "RetryPolicy",
    "SupervisedOutcome",
    "UnitFailure",
    "drain_signals",
    "resolve_chaos",
    "supervised_map",
]
