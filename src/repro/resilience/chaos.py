"""Deterministic chaos injection for the experiment runner.

The paper's methodology is to subject a *platform* to seeded stochastic
faults and check that the schedule survives; this module applies the same
philosophy to the toolchain.  A :class:`ChaosSpec` describes seeded failure
rates for the three ways a worker can betray the supervisor:

* ``crash``   — the worker process dies mid-unit (``os._exit``), which the
  pool surfaces as :class:`concurrent.futures.process.BrokenProcessPool`;
* ``stall``   — the worker sleeps ``stall_seconds`` before answering, which
  trips the supervisor's per-unit wall-clock timeout when one is set;
* ``corrupt`` — the worker returns a :class:`CorruptPayload` marker instead
  of the real result, which the supervisor rejects and retries.

Every decision is a pure function of ``(seed, token, attempt, kind)`` hashed
through SHA-256 — no RNG state, no process-local mutability — so a chaos run
is exactly reproducible, unit by unit, across pool respawns and resumed
suites.  Because an injected fault is keyed on the *attempt* number, a unit
that crashes on attempt 0 re-rolls on attempt 1; once an attempt comes up
clean the worker computes the genuine value, which is why a chaos-subjected
campaign that recovers is bit-identical to a clean run.

Activation is explicit (a ``chaos=`` argument threaded down from
``run_suite``/``run_runtime_campaign``/the ``--chaos`` CLI flag) or ambient
via the ``REPRO_CHAOS`` environment variable (a spec string, inherited by
worker processes), which is how CI injects faults under an unmodified
command line.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import os
import time
from dataclasses import dataclass

from repro.exceptions import SpecificationError

__all__ = [
    "CHAOS_ENV",
    "ChaosCrash",
    "ChaosSpec",
    "CorruptPayload",
    "resolve_chaos",
]

CHAOS_ENV = "REPRO_CHAOS"

#: Exit status of a chaos-crashed worker process; distinctive on purpose so
#: a post-mortem can tell an injected crash from a genuine segfault.
CRASH_EXIT_CODE = 13

_KINDS = ("crash", "stall", "corrupt")


class ChaosCrash(RuntimeError):
    """Raised in-process when chaos decides to crash outside a worker.

    In a pool worker the crash is a hard ``os._exit`` (the whole point is to
    break the pool); in serial execution that would take the test runner down
    with it, so the same decision surfaces as this exception instead and the
    supervisor counts it as a worker crash.
    """


@dataclass(frozen=True)
class CorruptPayload:
    """Marker returned by a chaos-corrupted unit in place of its result.

    Picklable on purpose: it must cross the process boundary like a real
    payload would, so the *supervisor* (not the transport) is what catches it.
    """

    token: int
    attempt: int


@dataclass(frozen=True)
class ChaosSpec:
    """Seeded failure schedule for the runner's own workers.

    Rates are independent per-attempt probabilities checked in a fixed order
    (crash, stall, corrupt); the first that fires wins the attempt.
    """

    crash: float = 0.0
    stall: float = 0.0
    corrupt: float = 0.0
    stall_seconds: float = 5.0
    seed: int = 0

    def __post_init__(self) -> None:
        for name in ("crash", "stall", "corrupt"):
            rate = getattr(self, name)
            if not isinstance(rate, (int, float)) or not 0.0 <= float(rate) <= 1.0:
                raise SpecificationError(
                    f"chaos rate {name!r} must be in [0, 1], got {rate!r}"
                )
            object.__setattr__(self, name, float(rate))
        if not isinstance(self.stall_seconds, (int, float)) or self.stall_seconds <= 0:
            raise SpecificationError(
                f"chaos stall_seconds must be > 0, got {self.stall_seconds!r}"
            )
        object.__setattr__(self, "stall_seconds", float(self.stall_seconds))
        if not isinstance(self.seed, int) or isinstance(self.seed, bool):
            raise SpecificationError(f"chaos seed must be an int, got {self.seed!r}")

    # -- parsing / round-trip -------------------------------------------------

    @classmethod
    def parse(cls, text: str) -> "ChaosSpec":
        """Parse the CLI/env form, e.g. ``"crash=0.2,corrupt=0.1,seed=7"``.

        Keys are the field names; values are floats (``seed`` an int).  An
        unknown key raises :class:`~repro.exceptions.SpecificationError` with
        the accepted vocabulary, same contract as the scenario loaders.
        """
        values: dict[str, float | int] = {}
        for part in text.split(","):
            part = part.strip()
            if not part:
                continue
            key, sep, raw = part.partition("=")
            key = key.strip()
            if not sep:
                raise SpecificationError(
                    f"chaos spec entry {part!r} is not key=value"
                )
            known = ("crash", "stall", "corrupt", "stall_seconds", "seed")
            if key not in known:
                raise SpecificationError(
                    f"unknown chaos key {key!r}; expected one of {', '.join(known)}"
                )
            try:
                values[key] = int(raw) if key == "seed" else float(raw)
            except ValueError:
                raise SpecificationError(
                    f"chaos key {key!r} has non-numeric value {raw.strip()!r}"
                ) from None
        return cls(**values)

    def spec_string(self) -> str:
        """Inverse of :meth:`parse` (used to hand the spec to workers via env)."""
        return (
            f"crash={self.crash:g},stall={self.stall:g},corrupt={self.corrupt:g},"
            f"stall_seconds={self.stall_seconds:g},seed={self.seed}"
        )

    @property
    def active(self) -> bool:
        return self.crash > 0 or self.stall > 0 or self.corrupt > 0

    # -- the seeded schedule --------------------------------------------------

    def _uniform(self, token: int, attempt: int, kind: str) -> float:
        digest = hashlib.sha256(
            f"{self.seed}:{token}:{attempt}:{kind}".encode()
        ).digest()
        return int.from_bytes(digest[:8], "big") / float(1 << 64)

    def decide(self, token: int, attempt: int) -> str | None:
        """The injected fault for ``(token, attempt)``, or ``None`` for clean.

        Pure and stateless: calling it in the parent (to predict) and in the
        worker (to act) yields the same answer, which is what makes chaos
        tests assert exact outcomes instead of distributions.
        """
        for kind in _KINDS:
            if self._uniform(token, attempt, kind) < getattr(self, kind):
                return kind
        return None

    def inject(self, token: int, attempt: int) -> CorruptPayload | None:
        """Act on the schedule, called in the worker before the real unit.

        Returns a :class:`CorruptPayload` when the decision is ``corrupt``
        (the caller returns it in place of the result), ``None`` when the
        attempt proceeds; crashes and stalls act directly.
        """
        kind = self.decide(token, attempt)
        if kind == "crash":
            if multiprocessing.parent_process() is not None:
                os._exit(CRASH_EXIT_CODE)
            raise ChaosCrash(
                f"chaos crash injected for unit token={token} attempt={attempt}"
            )
        if kind == "stall":
            time.sleep(self.stall_seconds)
            return None
        if kind == "corrupt":
            return CorruptPayload(token=token, attempt=attempt)
        return None


def resolve_chaos(chaos: "ChaosSpec | str | None") -> ChaosSpec | None:
    """Resolve the effective chaos spec: explicit argument, else ``REPRO_CHAOS``.

    Returns ``None`` when chaos is off (the common case), so callers can keep
    a single ``if chaos is not None`` fast path.
    """
    if isinstance(chaos, str):
        chaos = ChaosSpec.parse(chaos)
    if chaos is None:
        ambient = os.environ.get(CHAOS_ENV)
        if ambient:
            chaos = ChaosSpec.parse(ambient)
    if chaos is not None and not chaos.active:
        return None
    return chaos
