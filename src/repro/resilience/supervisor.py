"""Supervised process pool: retry, timeout-kill, respawn, drain.

:func:`supervised_map` is the resilient sibling of
:func:`repro.experiments.parallel.parallel_map`.  Both map a picklable
function over a list bit-identically to a serial loop; the supervised
variant additionally survives the infrastructure failing:

* a **dead worker** (``BrokenProcessPool``) respawns the pool and retries
  only the units that were in flight, each with a bounded attempt budget
  and exponential backoff (:class:`RetryPolicy`);
* a **stuck worker** is killed once a unit exceeds the per-unit wall-clock
  ``timeout``; the timed-out unit is charged an attempt, innocent units
  that died with the pool are resubmitted without one;
* a **corrupted payload** (:class:`~repro.resilience.chaos.CorruptPayload`,
  or anything the ``reject`` hook refuses) is discarded and the unit
  retried — the transport delivering *something* is not trusted to have
  delivered the *result*;
* retry exhaustion is not an exception here: the unit is recorded as a
  :class:`UnitFailure` and the map completes, so callers (``run_suite``)
  can degrade gracefully to a partial result instead of losing the
  campaign;
* an external **stop flag** (SIGTERM/SIGINT via :func:`drain_signals`)
  drains the map: completed units keep their values — and have already been
  checkpointed through ``on_result`` — outstanding ones are abandoned, and
  the outcome is marked ``interrupted``.

Determinism: retries re-run ``fn(item)`` which is pure in every caller
(trial seeds are pre-derived), so a recovered run is bit-identical to an
undisturbed one regardless of which workers died when.
"""

from __future__ import annotations

import signal
import threading
import time
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Sequence

from repro.exceptions import ReproError, SpecificationError
from repro.resilience.chaos import ChaosCrash, ChaosSpec, CorruptPayload

__all__ = [
    "ExecutionError",
    "ExecutionInterrupted",
    "RetryPolicy",
    "SupervisedOutcome",
    "UnitFailure",
    "drain_signals",
    "supervised_map",
]

#: Counter names reported by :func:`supervised_map` (and echoed into obs
#: registries / ``SweepResult.resilience`` by callers).  Zero-valued counters
#: are included so dashboards see a stable vocabulary.
COUNTER_NAMES = (
    "retries",
    "worker_crashes",
    "timeouts",
    "pool_respawns",
    "corrupt_payloads",
)


class ExecutionError(ReproError):
    """A campaign could not complete after exhausting every retry.

    Raised by :func:`~repro.experiments.parallel.run_runtime_campaign`, which
    has no partial-result shape to degrade into (suites do — they annotate
    the failed point instead).  Carries the surviving :class:`UnitFailure`
    records so the message names which trials died and why.
    """

    def __init__(self, failures: Sequence["UnitFailure"], what: str = "campaign"):
        self.failures = tuple(failures)
        detail = "; ".join(f.describe() for f in self.failures[:3])
        more = len(self.failures) - 3
        if more > 0:
            detail += f"; and {more} more"
        super().__init__(
            f"{what} lost {len(self.failures)} unit(s) after retry exhaustion: {detail}"
        )


class ExecutionInterrupted(ReproError):
    """A drained run stopped before completing (SIGTERM/SIGINT).

    Raised by runners that cannot return a partial result.  When the run had
    ``resume=True`` the completed trials were already checkpointed, so the
    message points at re-running with resume to pick up where it stopped.
    """

    def __init__(self, what: str, resumable: bool):
        self.resumable = resumable
        hint = (
            "completed trials were checkpointed — re-run with resume to "
            "execute only the missing ones"
            if resumable
            else "re-run with resume=True and a cache to make interruption "
            "recoverable"
        )
        super().__init__(f"{what} was interrupted before completing; {hint}")


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential backoff for lost (point, trial) units.

    ``max_retries`` is the number of *re*-executions after the first attempt
    (so a unit runs at most ``max_retries + 1`` times).  The delay before
    retrying attempt ``k`` (0-based failed attempt) is
    ``min(backoff_max, backoff_base * backoff_factor ** k)`` — deliberately
    jitter-free so runs stay reproducible.
    """

    max_retries: int = 2
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    backoff_max: float = 2.0

    def __post_init__(self) -> None:
        if not isinstance(self.max_retries, int) or self.max_retries < 0:
            raise SpecificationError(
                f"max_retries must be a non-negative int, got {self.max_retries!r}"
            )
        for name in ("backoff_base", "backoff_factor", "backoff_max"):
            value = getattr(self, name)
            if not isinstance(value, (int, float)) or value < 0:
                raise SpecificationError(
                    f"{name} must be a non-negative number, got {value!r}"
                )

    def delay(self, failed_attempt: int) -> float:
        return min(
            self.backoff_max,
            self.backoff_base * self.backoff_factor ** failed_attempt,
        )


@dataclass(frozen=True)
class UnitFailure:
    """One unit that exhausted its retries (or was interrupted mid-drain)."""

    index: int
    token: int
    kind: str  # "crash" | "timeout" | "error" | "corrupt" | "interrupted"
    attempts: int
    error: str

    def describe(self) -> str:
        return (
            f"unit #{self.index} (token {self.token}) {self.kind} "
            f"after {self.attempts} attempt(s): {self.error}"
        )


@dataclass
class SupervisedOutcome:
    """What :func:`supervised_map` delivers: values, casualties, counters."""

    values: list
    failures: tuple[UnitFailure, ...] = ()
    counters: dict[str, int] = field(default_factory=dict)
    interrupted: bool = False

    @property
    def complete(self) -> bool:
        return not self.failures and not self.interrupted


@contextmanager
def drain_signals(
    signals: Sequence[int] = (signal.SIGINT, signal.SIGTERM),
) -> Iterator[threading.Event]:
    """Install SIGTERM/SIGINT handlers that request a drain instead of dying.

    Yields a :class:`threading.Event`; a caught signal sets it, and the
    supervised map notices between completions, stops handing out work, and
    returns with ``interrupted=True`` — completed trials having already been
    flushed through ``on_result``.  Handlers are restored on exit.  Outside
    the main thread (the service worker pool) signals cannot be hooked, so
    the event is yielded unwired and the caller's own lifecycle applies.
    """
    flag = threading.Event()
    if threading.current_thread() is not threading.main_thread():
        yield flag
        return
    previous = {}
    for signum in signals:
        previous[signum] = signal.signal(
            signum, lambda _signum, _frame: flag.set()
        )
    try:
        yield flag
    finally:
        for signum, handler in previous.items():
            signal.signal(signum, handler)


def _invoke(fn, chaos: ChaosSpec | None, token: int, attempt: int, item):
    """The unit of work shipped to a worker: chaos first, then the real call.

    Module-level so it pickles; chaos decisions are keyed on (token, attempt)
    which both sides of the process boundary can reproduce.
    """
    if chaos is not None:
        marker = chaos.inject(token, attempt)
        if marker is not None:
            return marker
    return fn(item)


def supervised_map(
    fn: Callable[[Any], Any],
    items: Sequence[Any],
    jobs: int = 1,
    *,
    tokens: Sequence[int] | None = None,
    policy: RetryPolicy | None = None,
    timeout: float | None = None,
    chaos: ChaosSpec | None = None,
    on_result: Callable[[int, Any], None] | None = None,
    stop: threading.Event | None = None,
) -> SupervisedOutcome:
    """Map ``fn`` over ``items`` under supervision; never raises for lost units.

    ``tokens`` are stable per-item identities (trial seeds) used to key chaos
    decisions and name failures; they default to the item index.  ``timeout``
    is per-unit wall clock, enforced by killing the pool (it requires
    ``jobs >= 2`` — a stuck unit cannot be preempted in-process, so serial
    execution ignores it).  ``on_result(index, value)`` fires in the parent
    as each unit completes, in completion order — this is the checkpoint
    hook.  ``stop`` drains: no new work is started once set.
    """
    policy = policy or RetryPolicy()
    if timeout is not None and timeout <= 0:
        raise SpecificationError(f"trial timeout must be > 0, got {timeout!r}")
    items = list(items)
    if tokens is None:
        tokens = list(range(len(items)))
    else:
        tokens = [int(t) for t in tokens]
        if len(tokens) != len(items):
            raise SpecificationError(
                f"got {len(tokens)} tokens for {len(items)} items"
            )
    state = _MapState(
        values=[None] * len(items),
        policy=policy,
        tokens=tokens,
        on_result=on_result,
        counters={name: 0 for name in COUNTER_NAMES},
    )
    if not items:
        return state.outcome()
    if jobs <= 1 or len(items) == 1:
        _serial_map(fn, items, chaos, stop, state)
    else:
        _pool_map(fn, items, min(jobs, len(items)), chaos, timeout, stop, state)
    return state.outcome()


@dataclass
class _MapState:
    """Mutable bookkeeping shared by the serial and pool execution paths."""

    values: list
    policy: RetryPolicy
    tokens: Sequence[int]
    on_result: Callable[[int, Any], None] | None
    counters: dict[str, int]
    failures: list[UnitFailure] = field(default_factory=list)
    interrupted: bool = False

    def deliver(self, index: int, value) -> None:
        self.values[index] = value
        if self.on_result is not None:
            self.on_result(index, value)

    def retry_or_fail(self, index: int, attempt: int, kind: str, error: str) -> bool:
        """Charge ``attempt`` as failed; True if the unit has retries left."""
        if attempt < self.policy.max_retries:
            self.counters["retries"] += 1
            return True
        self.failures.append(
            UnitFailure(
                index=index,
                token=self.tokens[index],
                kind=kind,
                attempts=attempt + 1,
                error=error,
            )
        )
        return False

    def outcome(self) -> SupervisedOutcome:
        return SupervisedOutcome(
            values=self.values,
            failures=tuple(self.failures),
            counters=dict(self.counters),
            interrupted=self.interrupted,
        )


def _serial_map(fn, items, chaos, stop, state: _MapState) -> None:
    """In-process execution: same retry accounting, no pool to break.

    Chaos crashes surface as :class:`ChaosCrash` (a real ``os._exit`` would
    take the caller down) and are charged exactly like a dead worker.
    """
    for index, item in enumerate(items):
        if stop is not None and stop.is_set():
            state.interrupted = True
            return
        attempt = 0
        while True:
            try:
                value = _invoke(fn, chaos, state.tokens[index], attempt, item)
            except ChaosCrash as exc:
                state.counters["worker_crashes"] += 1
                kind, error = "crash", str(exc)
            except Exception as exc:
                kind, error = "error", f"{type(exc).__name__}: {exc}"
            else:
                if isinstance(value, CorruptPayload):
                    state.counters["corrupt_payloads"] += 1
                    kind, error = "corrupt", "unit returned a corrupted payload"
                else:
                    state.deliver(index, value)
                    break
            if not state.retry_or_fail(index, attempt, kind, error):
                break
            time.sleep(state.policy.delay(attempt))
            attempt += 1


def _kill_pool(executor) -> None:
    """Hard-stop a pool whose workers cannot be trusted to finish."""
    processes = getattr(executor, "_processes", None) or {}
    for process in list(processes.values()):
        try:
            process.kill()
        except Exception:
            pass
    try:
        executor.shutdown(wait=False, cancel_futures=True)
    except Exception:
        pass


def _pool_map(fn, items, workers, chaos, timeout, stop, state: _MapState) -> None:
    from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
    from concurrent.futures.process import BrokenProcessPool

    # (index, attempt) work queue plus a not-before ledger for backoff; with a
    # timeout the submission window equals the worker count so submit time is
    # start time (the wall clock must measure the unit, not the queue).
    ready: deque[tuple[int, int]] = deque((i, 0) for i in range(len(items)))
    delayed: list[tuple[float, int, int]] = []  # (ready_at, index, attempt)
    window = workers if timeout is not None else workers * 4
    executor = ProcessPoolExecutor(max_workers=workers)
    in_flight: dict = {}  # future -> (index, attempt, submitted_at)

    def requeue(index: int, attempt: int, kind: str, error: str) -> None:
        if state.retry_or_fail(index, attempt, kind, error):
            delay = state.policy.delay(attempt)
            if delay > 0:
                delayed.append((time.monotonic() + delay, index, attempt + 1))
            else:
                ready.append((index, attempt + 1))

    def respawn() -> None:
        nonlocal executor
        state.counters["pool_respawns"] += 1
        _kill_pool(executor)
        executor = ProcessPoolExecutor(max_workers=workers)

    def handle_broken() -> None:
        # The surviving futures belong to a broken pool: casualties, but not
        # necessarily suspects.  With a chaos spec the parent can replay each
        # unit's deterministic (token, attempt) decision and charge only the
        # units whose schedule says "crash" — innocents resubmit at the same
        # attempt and the recovered run stays bit-identical.  Without a spec
        # (or when chaos predicts no culprit, i.e. the crash was real) every
        # in-flight unit is charged: we cannot tell who killed the worker,
        # and a deterministically-crashing unit would otherwise loop forever.
        casualties = list(in_flight.values())
        in_flight.clear()
        suspects = None
        if chaos is not None:
            suspects = {
                (index, attempt)
                for index, attempt, _submitted in casualties
                if chaos.decide(state.tokens[index], attempt) == "crash"
            } or None
        for index, attempt, _submitted in casualties:
            if suspects is not None and (index, attempt) not in suspects:
                ready.append((index, attempt))
            else:
                requeue(index, attempt, "crash",
                        "worker process died (BrokenProcessPool)")
        respawn()

    try:
        while ready or delayed or in_flight:
            if stop is not None and stop.is_set():
                state.interrupted = True
                return
            now = time.monotonic()
            if delayed:
                still = []
                for ready_at, index, attempt in delayed:
                    if ready_at <= now:
                        ready.append((index, attempt))
                    else:
                        still.append((ready_at, index, attempt))
                delayed[:] = still
            broken = False
            while ready and len(in_flight) < window:
                index, attempt = ready.popleft()
                try:
                    future = executor.submit(
                        _invoke, fn, chaos, state.tokens[index], attempt,
                        items[index],
                    )
                except BrokenProcessPool:
                    ready.appendleft((index, attempt))
                    state.counters["worker_crashes"] += 1
                    broken = True
                    break
                in_flight[future] = (index, attempt, time.monotonic())
            if broken:
                handle_broken()
                continue
            if not in_flight:
                if delayed:  # everything outstanding is backing off
                    time.sleep(max(0.0, min(e[0] for e in delayed) - now))
                continue
            done, _ = wait(in_flight, timeout=0.1, return_when=FIRST_COMPLETED)
            for future in done:
                index, attempt, _submitted = in_flight.pop(future)
                try:
                    value = future.result()
                except BrokenProcessPool:
                    # put it back: handle_broken() triages every casualty of
                    # the broken pool at once (chaos-predicted culprits are
                    # charged, innocents resubmit at the same attempt).
                    broken = True
                    state.counters["worker_crashes"] += 1
                    in_flight[future] = (index, attempt, _submitted)
                except Exception as exc:
                    requeue(index, attempt, "error",
                            f"{type(exc).__name__}: {exc}")
                else:
                    if isinstance(value, CorruptPayload):
                        state.counters["corrupt_payloads"] += 1
                        requeue(index, attempt, "corrupt",
                                "worker returned a corrupted payload")
                    else:
                        state.deliver(index, value)
            if broken:
                handle_broken()
                continue
            if timeout is not None and in_flight:
                now = time.monotonic()
                expired = [
                    (future, meta)
                    for future, meta in in_flight.items()
                    if now - meta[2] > timeout
                ]
                if expired:
                    for future, (index, attempt, _submitted) in expired:
                        del in_flight[future]
                        state.counters["timeouts"] += 1
                        requeue(index, attempt, "timeout",
                                f"unit exceeded the {timeout:g}s wall-clock timeout")
                    # Innocent bystanders die with the pool: resubmit them at
                    # the same attempt (their chaos schedule replays, which is
                    # safe — a replayed stall will time out and be charged).
                    for _future, (index, attempt, _submitted) in list(in_flight.items()):
                        ready.append((index, attempt))
                    in_flight.clear()
                    respawn()
    finally:
        if in_flight:
            _kill_pool(executor)
        else:
            executor.shutdown(wait=False)
