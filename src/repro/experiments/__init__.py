"""Experiment harness reproducing the evaluation section of the paper.

* :mod:`repro.experiments.config` — the experimental parameters of Section 5
  (and the reduced presets used by the benchmark suite);
* :mod:`repro.experiments.campaign` — runs one (granularity, ε) point over
  many random graphs and aggregates the metrics;
* :mod:`repro.experiments.figures` — one function per figure panel
  (3a, 3b, 3c, 4a, 4b, 4c) plus the ablation / baseline / scaling studies;
* :mod:`repro.experiments.tables` — the worked examples of Figures 1 and 2;
* :mod:`repro.experiments.reporting` — ASCII rendering of the results;
* :mod:`repro.experiments.parallel` — the parallel Monte-Carlo campaign
  engine (``jobs``-way process fan-out of runtime trials and per-graph
  campaign work units, deterministic regardless of the worker count);
* :mod:`repro.experiments.sweep` — suite execution (:func:`run_suite`,
  :class:`SweepResult` with arbitrary-axis panel pivots, spec-hash result
  caching) and the failure-regime sweep of the online runtime
  (mttf/mttr grid × Weibull shapes → figure-style report) built on it.
"""

from repro.experiments.config import ExperimentConfig, bench_config, paper_config, workload_period
from repro.experiments.campaign import CampaignResult, PointResult, run_campaign, run_point
from repro.experiments.figures import (
    FigureSeries,
    figure3a,
    figure3b,
    figure3c,
    figure4a,
    figure4b,
    figure4c,
    ablation_rules,
    baseline_comparison,
    scaling_study,
)
from repro.experiments.tables import figure1_scenarios, figure2_example
from repro.experiments.reporting import (
    render_series,
    render_point_table,
    render_suite,
    render_sweep,
)
from repro.experiments.parallel import (
    parallel_map,
    RuntimeCampaignResult,
    run_runtime_campaign,
)
from repro.experiments.sweep import (
    SweepPoint,
    RuntimeSweepResult,
    run_runtime_sweep,
    SuitePointResult,
    SweepResult,
    run_suite,
)

__all__ = [
    "ExperimentConfig",
    "bench_config",
    "paper_config",
    "workload_period",
    "CampaignResult",
    "PointResult",
    "run_campaign",
    "run_point",
    "FigureSeries",
    "figure3a",
    "figure3b",
    "figure3c",
    "figure4a",
    "figure4b",
    "figure4c",
    "ablation_rules",
    "baseline_comparison",
    "scaling_study",
    "figure1_scenarios",
    "figure2_example",
    "render_series",
    "render_point_table",
    "render_sweep",
    "render_suite",
    "parallel_map",
    "RuntimeCampaignResult",
    "run_runtime_campaign",
    "SweepPoint",
    "RuntimeSweepResult",
    "run_runtime_sweep",
    "SuitePointResult",
    "SweepResult",
    "run_suite",
]
