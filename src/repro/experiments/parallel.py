"""Parallel Monte-Carlo campaign engine.

Fans independent units of work — online-runtime trials and the per-granularity
points of the figure campaigns — across CPU cores with
:class:`concurrent.futures.ProcessPoolExecutor`.

Determinism is non-negotiable: every unit receives its own child seed derived
*before* dispatch from the campaign seed (via
:func:`repro.utils.rng.derive_seed`), and the results are collected in
submission order, so ``jobs=1`` and ``jobs=N`` produce bit-for-bit identical
results.  Work functions must be module-level (picklable) pure functions of
their arguments — both :func:`repro.runtime.montecarlo.run_trial` and
:func:`repro.experiments.campaign.run_point` qualify.

Transport is the second lever.  ``executor.map`` round-trips one pickle per
work unit by default; :func:`parallel_map` always passes an explicit
``chunksize`` (≈ four chunks per worker unless overridden), which batches the
small units of wide campaigns into a few pickles per worker.  And campaigns
that only need statistics can run with ``reduce="stats"``: the worker
summarizes each trace to a :class:`~repro.runtime.trace.TraceSummary` *before*
shipping it back, so a cacheless sweep transfers a few floats per trial
instead of megabytes of trace pickles — with
:meth:`RuntimeCampaignResult.stats` equal to the ``reduce="traces"`` value by
construction (see :func:`repro.runtime.trace.combine_summaries`).
"""

from __future__ import annotations

import warnings
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from functools import partial
from typing import Callable, Iterable, Sequence, TypeVar, Union

from repro.runtime.montecarlo import RuntimeTrialSpec, run_trial, run_trial_summary
from repro.runtime.trace import (
    RuntimeStats,
    RuntimeTrace,
    TraceSummary,
    combine_summaries,
    summarize_traces,
)
from repro.scenario.spec import ScenarioSpec
from repro.utils.rng import derive_seed, ensure_rng

__all__ = [
    "parallel_map",
    "REDUCTIONS",
    "check_reduce",
    "campaign_trial_seeds",
    "RuntimeCampaignResult",
    "run_runtime_campaign",
]

T = TypeVar("T")
R = TypeVar("R")

#: worker-side reductions of a campaign: ship full traces, or summarize each
#: trace to a TraceSummary inside the worker (identical statistics, a tiny
#: fraction of the inter-process transfer).
REDUCTIONS = ("traces", "stats")


def parallel_map(
    fn: Callable[[T], R],
    items: Iterable[T],
    jobs: int | None = 1,
    chunksize: int | None = None,
) -> list[R]:
    """``[fn(x) for x in items]``, optionally across *jobs* worker processes.

    Results always come back in input order.  ``jobs`` of ``None``, 0 or 1 —
    or a single-item input — runs serially in-process (no pool overhead, same
    results).  *chunksize* batches units into one pickle round-trip per chunk;
    the default aims at four chunks per worker, which amortizes the transport
    of small units while keeping the pool load-balanced (``executor.map``'s
    own default of 1 round-trips every unit individually).  Neither knob
    changes results — only how the identical work units travel.
    """
    items = list(items)
    if jobs is None or jobs <= 1 or len(items) <= 1:
        return [fn(item) for item in items]
    workers = min(jobs, len(items))
    if chunksize is None:
        chunksize = max(1, len(items) // (workers * 4))
    with ProcessPoolExecutor(max_workers=workers) as executor:
        return list(executor.map(fn, items, chunksize=chunksize))


def campaign_trial_seeds(seed: int, trials: int) -> tuple[int, ...]:
    """The per-trial child seeds of one campaign, derived up front from *seed*.

    One formula for every runner (the campaign itself, the suite executor's
    flattened trials×points fan-out): trial ``k`` of a campaign seeded *s* is
    a pure function of ``(s, k)``, which is what makes any regrouping of the
    work across processes bit-identical.
    """
    rng = ensure_rng(seed)
    return tuple(derive_seed(rng) for _ in range(trials))


def check_reduce(reduce: str) -> str:
    """Validate a ``reduce=`` argument (shared by runners, Session and CLI)."""
    if reduce not in REDUCTIONS:
        raise ValueError(f"reduce must be one of {REDUCTIONS}, got {reduce!r}")
    return reduce


@dataclass(frozen=True)
class RuntimeCampaignResult:
    """Outcome of a Monte-Carlo campaign of online-runtime trials.

    Exactly one of *traces* / *summaries* is set, according to *reduce*:
    ``"traces"`` keeps every trial's full :class:`~repro.runtime.trace.
    RuntimeTrace`, ``"stats"`` keeps only the per-trial
    :class:`~repro.runtime.trace.TraceSummary` produced inside the worker
    processes.  :attr:`stats` is identical either way.
    """

    spec: Union[ScenarioSpec, RuntimeTrialSpec]
    seed: int
    trial_seeds: tuple[int, ...]
    traces: tuple[RuntimeTrace, ...] | None
    summaries: tuple[TraceSummary, ...] | None = None

    def __post_init__(self) -> None:
        if (self.traces is None) == (self.summaries is None):
            raise ValueError(
                "exactly one of traces/summaries must be set "
                "(reduce='traces' keeps traces, reduce='stats' keeps summaries)"
            )

    @property
    def reduce(self) -> str:
        """The worker-side reduction this campaign ran with."""
        return "traces" if self.traces is not None else "stats"

    @property
    def trials(self) -> int:
        payload = self.traces if self.traces is not None else self.summaries
        return len(payload)

    @property
    def stats(self) -> RuntimeStats:
        """Aggregate statistics over the trials (identical for both modes)."""
        if self.summaries is not None:
            return combine_summaries(self.summaries)
        return summarize_traces(self.traces)


def run_runtime_campaign(
    spec: Union[ScenarioSpec, RuntimeTrialSpec],
    trials: int = 20,
    seed: int = 0,
    jobs: int | None = 1,
    cache=None,
    reduce: str = "traces",
    *,
    max_retries: int = 2,
    trial_timeout: float | None = None,
    resume: bool = False,
    chaos=None,
    stop=None,
) -> RuntimeCampaignResult:
    """Run *trials* independent online-runtime trials, *jobs* at a time.

    *spec* is a declarative :class:`~repro.scenario.spec.ScenarioSpec` (or,
    deprecated, a legacy flat :class:`~repro.runtime.montecarlo.
    RuntimeTrialSpec` — both run the same scenario path and produce identical
    traces).  The child seeds are drawn up-front from *seed*, so the campaign
    result is identical for any value of *jobs* and any machine; two
    campaigns with the same ``(spec, trials, seed)`` produce equal traces.

    That purity is what *cache* exploits: a cache object from
    :mod:`repro.cache` (or a directory path) serves the whole campaign from
    its content address when the identical ``(spec, seed, trials, reduce)``
    ran before on this code version — bit-identical to re-executing — and
    stores fresh results for next time.

    *reduce* selects the worker payload: ``"traces"`` (default) ships every
    trial's full trace back to the parent, ``"stats"`` summarizes each trace
    to a :class:`~repro.runtime.trace.TraceSummary` inside the worker — same
    :attr:`~RuntimeCampaignResult.stats`, a small fraction of the transfer
    (and of the cache entry).  The reduction is part of the cache key, so the
    two modes never serve each other's entries.

    Execution runs under the supervised pool of
    :mod:`repro.resilience.supervisor`: a dead worker respawns the pool and
    only the lost trials are retried (*max_retries* times each, exponential
    backoff), *trial_timeout* kills a stuck worker's unit after that many
    wall-clock seconds, and *chaos* (a
    :class:`~repro.resilience.chaos.ChaosSpec` or spec string, also
    activatable via ``$REPRO_CHAOS``) injects seeded failures for testing the
    above.  Because trial seeds are pre-derived, a recovered campaign is
    bit-identical to an undisturbed one.  A campaign has no partial shape to
    degrade into, so retry exhaustion raises
    :class:`~repro.resilience.supervisor.ExecutionError` (suites instead
    annotate the failed point — see
    :func:`repro.experiments.sweep.run_suite`).

    *resume* opts into trial-level checkpointing: each completed trial is
    written to the cache under its own :func:`~repro.cache.keys.trial_key` as
    it lands, and a later run of the same campaign (even with a *larger*
    ``trials`` value) executes only the missing trials.  Off by default —
    checkpoint probes and writes change the cache traffic of a run, and a
    full-campaign entry already serves the common case.
    """
    if trials < 1:
        raise ValueError(f"trials must be >= 1, got {trials}")
    check_reduce(reduce)
    if isinstance(spec, RuntimeTrialSpec):
        warnings.warn(
            "passing a RuntimeTrialSpec to run_runtime_campaign is deprecated; "
            "build a ScenarioSpec (see RuntimeTrialSpec.to_scenario) — the "
            "signature will require one in a future release",
            DeprecationWarning,
            stacklevel=2,
        )
        spec = spec.to_scenario()
    from repro.cache import MISS, campaign_key, open_cache
    from repro.resilience import ExecutionError, resolve_chaos, supervised_map
    from repro.resilience.supervisor import ExecutionInterrupted, RetryPolicy

    cache = open_cache(cache)
    chaos = resolve_chaos(chaos)
    key = campaign_key(spec, seed, trials, reduce=reduce) if cache.enabled else None
    if key is not None:
        hit = cache.get(key, expect=RuntimeCampaignResult)
        if hit is not MISS:
            return hit
    trial_seeds = campaign_trial_seeds(seed, trials)
    checkpoints = _probe_trial_checkpoints(
        cache, spec, seed, range(trials), reduce, resume
    )
    pending = [t for t in range(trials) if t not in checkpoints]
    fn = partial(run_trial_summary if reduce == "stats" else run_trial, spec)

    def checkpoint(slot: int, value) -> None:
        from repro.cache import trial_key

        cache.put(trial_key(spec, seed, pending[slot], reduce=reduce), value)

    outcome = supervised_map(
        fn,
        [trial_seeds[t] for t in pending],
        jobs=jobs,
        tokens=[trial_seeds[t] for t in pending],
        policy=RetryPolicy(max_retries=max_retries),
        timeout=trial_timeout,
        chaos=chaos,
        on_result=checkpoint if (resume and cache.enabled) else None,
        stop=stop,
    )
    if outcome.failures:
        raise ExecutionError(outcome.failures, what=f"campaign (seed {seed})")
    if outcome.interrupted:
        raise ExecutionInterrupted(
            f"campaign (seed {seed})", resumable=resume and cache.enabled
        )
    values = dict(checkpoints)
    values.update(zip(pending, outcome.values))
    payload = tuple(values[t] for t in range(trials))
    result = RuntimeCampaignResult(
        spec=spec,
        seed=seed,
        trial_seeds=trial_seeds,
        traces=payload if reduce == "traces" else None,
        summaries=payload if reduce == "stats" else None,
    )
    if key is not None:
        cache.put(key, result)
    return result


def _probe_trial_checkpoints(
    cache, spec, seed: int, trial_indices, reduce: str, resume: bool
) -> dict[int, object]:
    """The already-checkpointed trials of a campaign: ``{trial index: value}``.

    Empty unless *resume* is on and the cache is real — per-trial probes are
    extra cache traffic, and runs that did not opt in must keep their exact
    historical hit/miss accounting.
    """
    if not resume or not cache.enabled:
        return {}
    from repro.cache import MISS, trial_key
    from repro.runtime.trace import RuntimeTrace, TraceSummary

    expect = TraceSummary if reduce == "stats" else RuntimeTrace
    found: dict[int, object] = {}
    for t in trial_indices:
        value = cache.get(trial_key(spec, seed, t, reduce=reduce), expect=expect)
        if value is not MISS:
            found[t] = value
    return found
