"""Parallel Monte-Carlo campaign engine.

Fans independent units of work — online-runtime trials and the per-granularity
points of the figure campaigns — across CPU cores with
:class:`concurrent.futures.ProcessPoolExecutor`.

Determinism is non-negotiable: every unit receives its own child seed derived
*before* dispatch from the campaign seed (via
:func:`repro.utils.rng.derive_seed`), and the results are collected in
submission order, so ``jobs=1`` and ``jobs=N`` produce bit-for-bit identical
results.  Work functions must be module-level (picklable) pure functions of
their arguments — both :func:`repro.runtime.montecarlo.run_trial` and
:func:`repro.experiments.campaign.run_point` qualify.
"""

from __future__ import annotations

import warnings
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from functools import partial
from typing import Callable, Iterable, Sequence, TypeVar, Union

from repro.runtime.montecarlo import RuntimeTrialSpec, run_trial
from repro.runtime.trace import RuntimeStats, RuntimeTrace, summarize_traces
from repro.scenario.spec import ScenarioSpec
from repro.utils.rng import derive_seed, ensure_rng

__all__ = ["parallel_map", "RuntimeCampaignResult", "run_runtime_campaign"]

T = TypeVar("T")
R = TypeVar("R")


def parallel_map(
    fn: Callable[[T], R], items: Iterable[T], jobs: int | None = 1
) -> list[R]:
    """``[fn(x) for x in items]``, optionally across *jobs* worker processes.

    Results always come back in input order.  ``jobs`` of ``None``, 0 or 1 —
    or a single-item input — runs serially in-process (no pool overhead, same
    results).
    """
    items = list(items)
    if jobs is None or jobs <= 1 or len(items) <= 1:
        return [fn(item) for item in items]
    with ProcessPoolExecutor(max_workers=min(jobs, len(items))) as executor:
        return list(executor.map(fn, items))


@dataclass(frozen=True)
class RuntimeCampaignResult:
    """Outcome of a Monte-Carlo campaign of online-runtime trials."""

    spec: Union[ScenarioSpec, RuntimeTrialSpec]
    seed: int
    trial_seeds: tuple[int, ...]
    traces: tuple[RuntimeTrace, ...]

    @property
    def trials(self) -> int:
        return len(self.traces)

    @property
    def stats(self) -> RuntimeStats:
        """Aggregate statistics over the trials."""
        return summarize_traces(self.traces)


def run_runtime_campaign(
    spec: Union[ScenarioSpec, RuntimeTrialSpec],
    trials: int = 20,
    seed: int = 0,
    jobs: int | None = 1,
    cache=None,
) -> RuntimeCampaignResult:
    """Run *trials* independent online-runtime trials, *jobs* at a time.

    *spec* is a declarative :class:`~repro.scenario.spec.ScenarioSpec` (or,
    deprecated, a legacy flat :class:`~repro.runtime.montecarlo.
    RuntimeTrialSpec` — both run the same scenario path and produce identical
    traces).  The child seeds are drawn up-front from *seed*, so the campaign
    result is identical for any value of *jobs* and any machine; two
    campaigns with the same ``(spec, trials, seed)`` produce equal traces.

    That purity is what *cache* exploits: a cache object from
    :mod:`repro.cache` (or a directory path) serves the whole campaign from
    its content address when the identical ``(spec, seed, trials)`` ran
    before on this code version — bit-identical to re-executing — and stores
    fresh results for next time.
    """
    if trials < 1:
        raise ValueError(f"trials must be >= 1, got {trials}")
    if isinstance(spec, RuntimeTrialSpec):
        warnings.warn(
            "passing a RuntimeTrialSpec to run_runtime_campaign is deprecated; "
            "build a ScenarioSpec (see RuntimeTrialSpec.to_scenario) — the "
            "signature will require one in a future release",
            DeprecationWarning,
            stacklevel=2,
        )
        spec = spec.to_scenario()
    from repro.cache import MISS, campaign_key, open_cache

    cache = open_cache(cache)
    key = campaign_key(spec, seed, trials) if cache.enabled else None
    if key is not None:
        hit = cache.get(key, expect=RuntimeCampaignResult)
        if hit is not MISS:
            return hit
    rng = ensure_rng(seed)
    trial_seeds = tuple(derive_seed(rng) for _ in range(trials))
    traces = parallel_map(partial(run_trial, spec), trial_seeds, jobs=jobs)
    result = RuntimeCampaignResult(
        spec=spec, seed=seed, trial_seeds=trial_seeds, traces=tuple(traces)
    )
    if key is not None:
        cache.put(key, result)
    return result
