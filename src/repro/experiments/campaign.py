"""Campaign runner: one (granularity, ε) point over many random graphs.

For every random graph the runner builds the LTF schedule, the R-LTF schedule
and the fault-free reference, then records for each heuristic:

* the normalized latency **upper bound** ``(2S−1)·Δ / w̄``;
* the normalized latency with **0 crashes** (first-arrival semantics);
* the normalized latency with **c crashes** (mean over sampled crash patterns);
* the corresponding **fault-tolerance overheads** against the fault-free
  latency.

Instances where a heuristic fails to meet the throughput constraint are
recorded as failures and excluded from the averages (their rate is reported).

Sharding: the unit of parallel work is one **graph instance**, not one
granularity point.  Every instance derives its own child seed up front from
:func:`point_seed` (see :func:`instance_seeds`), so
:func:`run_campaign` can flatten all ``(granularity, instance)`` pairs into a
single work list and fan them across processes — trials are sharded *within*
a point as well as across points, and the result is bit-for-bit identical for
any ``jobs`` value.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import partial
from typing import Callable, Mapping

import numpy as np

from repro.core.fault_free import fault_free_schedule
from repro.core.ltf import ltf_schedule
from repro.core.rltf import rltf_schedule
from repro.exceptions import SchedulingError, SpecificationError
from repro.experiments.config import ExperimentConfig, workload_period
from repro.failures.evaluation import expected_crash_latency
from repro.graph.generator import random_paper_workload
from repro.scenario.spec import ScenarioSpec, SchedulerSpec, WorkloadSpec
from repro.schedule.metrics import latency_upper_bound
from repro.schedule.schedule import Schedule
from repro.utils.rng import derive_seed, ensure_rng

__all__ = [
    "PointResult",
    "CampaignResult",
    "point_seed",
    "instance_seeds",
    "scenario_for_point",
    "run_graph_instance",
    "run_point",
    "run_campaign",
    "ALGORITHMS",
]


def point_seed(config: ExperimentConfig, granularity: float, offset: int = 0) -> int:
    """Deterministic seed of one (granularity, study) sweep point.

    Every study that fans granularity points across processes (the campaign,
    the ablations, the baselines) derives its per-point RNG from this single
    formula — the point's result then depends only on ``(config, granularity,
    offset)``, never on execution order, which is what makes ``jobs > 1``
    bit-for-bit identical to a serial run.
    """
    return config.seed + offset + int(round(granularity * 1000))


def instance_seeds(
    config: ExperimentConfig, granularity: float, epsilon: int
) -> list[int]:
    """Per-graph child seeds of one (granularity, ε) campaign point.

    Drawn up front from the point seed, so instance ``i`` is a pure function
    of ``(config, granularity, epsilon, i)`` — the prerequisite for sharding
    instances across processes without changing the numbers.
    """
    rng = ensure_rng(point_seed(config, granularity, offset=31 * epsilon))
    return [derive_seed(rng) for _ in range(config.num_graphs)]


def scenario_for_point(
    config: ExperimentConfig, granularity: float, epsilon: int
) -> ScenarioSpec:
    """The declarative :class:`~repro.scenario.spec.ScenarioSpec` of one point.

    The spec captures the point's scenario *family* — the workload
    distribution (granularity, task range, platform size) and the scheduling
    constraints (ε, period slack, strict resilience), with R-LTF as the
    representative heuristic of the paper's campaign (the point's metrics
    also cover LTF).  Replaying it (``spec.to_json()`` →
    ``repro-streaming run``) draws a *fresh* instance from the same family;
    the campaign's own instances are reproduced by
    :func:`run_graph_instance` with :func:`instance_seeds`, not by the spec.
    """
    options = {}
    if config.strict_resilience:
        options["strict_resilience"] = True
    return ScenarioSpec(
        name=f"campaign-g{granularity:g}-eps{epsilon}",
        workload=WorkloadSpec(
            generator="paper",
            granularity=granularity,
            num_tasks=None,
            num_processors=config.num_processors,
            task_range=config.task_range,
        ),
        scheduler=SchedulerSpec(
            name="rltf",
            epsilon=epsilon,
            period_slack=config.period_slack,
            options=options,
        ),
    )

#: the two heuristics of the paper, keyed by their display name.
ALGORITHMS: dict[str, Callable[..., Schedule]] = {
    "LTF": ltf_schedule,
    "R-LTF": rltf_schedule,
}


@dataclass
class PointResult:
    """Aggregated metrics of one (granularity, ε) point."""

    granularity: float
    epsilon: int
    crashes: tuple[int, ...]
    #: metric name -> mean value over the successful instances.
    metrics: dict[str, float] = field(default_factory=dict)
    #: algorithm -> number of instances it failed to schedule.
    failures: dict[str, int] = field(default_factory=dict)
    instances: int = 0
    #: the declarative spec of the point (see :func:`scenario_for_point`).
    spec: ScenarioSpec | None = None

    def metric(self, name: str) -> float:
        """Mean value of a metric (NaN when no instance succeeded)."""
        return self.metrics.get(name, float("nan"))


@dataclass
class CampaignResult:
    """Results of a sweep over granularities for a fixed ε."""

    epsilon: int
    points: list[PointResult] = field(default_factory=list)

    @property
    def granularities(self) -> list[float]:
        return [p.granularity for p in self.points]

    def series(self, metric: str) -> list[float]:
        """The values of *metric* across granularities."""
        return [p.metric(metric) for p in self.points]

    def available_metrics(self) -> list[str]:
        names: set[str] = set()
        for p in self.points:
            names.update(p.metrics)
        return sorted(names)


def run_graph_instance(
    item: tuple[float, int],
    epsilon: int,
    config: ExperimentConfig,
    algorithms: Mapping[str, Callable[..., Schedule]] | None = None,
) -> tuple[dict[str, list[float]], dict[str, int]]:
    """Evaluate one random graph of one campaign point.

    *item* is ``(granularity, instance_seed)``.  Returns the per-metric value
    lists contributed by this instance plus its failure counters — the unit of
    work fanned across processes by :func:`run_point` and
    :func:`run_campaign`.
    """
    granularity, seed = item
    algorithms = dict(algorithms or ALGORITHMS)
    crashes = config.crash_counts(epsilon)
    rng = ensure_rng(seed)
    accum: dict[str, list[float]] = {}
    failures = {name: 0 for name in algorithms}
    failures["fault-free"] = 0

    workload = random_paper_workload(
        granularity,
        seed=rng,
        num_processors=config.num_processors,
        task_range=config.task_range,
    )
    unit = workload.mean_task_time
    period = workload_period(workload, epsilon, config)
    ff_period = workload_period(workload, 0, config)
    try:
        ff = fault_free_schedule(workload.graph, workload.platform, period=ff_period)
        ff_latency = latency_upper_bound(ff)
    except SchedulingError:
        failures["fault-free"] += 1
        return accum, failures
    accum.setdefault("fault-free latency", []).append(ff_latency / unit)

    for name, scheduler in algorithms.items():
        try:
            schedule = scheduler(
                workload.graph,
                workload.platform,
                period=period,
                epsilon=epsilon,
                strict_resilience=config.strict_resilience,
            )
        except SchedulingError:
            failures[name] += 1
            continue
        upper = latency_upper_bound(schedule) / unit
        accum.setdefault(f"{name} upper bound", []).append(upper)
        accum.setdefault(f"{name} overhead upper bound (%)", []).append(
            100.0 * (latency_upper_bound(schedule) - ff_latency) / ff_latency
        )
        for c in crashes:
            latency_c = expected_crash_latency(
                schedule,
                c,
                samples=config.crash_samples,
                seed=rng,
                unit=unit,
                on_invalid="upper_bound",
            )
            accum.setdefault(f"{name} with {c} crash", []).append(latency_c)
            accum.setdefault(f"{name} overhead with {c} crash (%)", []).append(
                100.0 * (latency_c * unit - ff_latency) / ff_latency
            )
    return accum, failures


def _reduce_point(
    granularity: float,
    epsilon: int,
    config: ExperimentConfig,
    instance_results: list[tuple[dict[str, list[float]], dict[str, int]]],
    algorithms: Mapping[str, Callable[..., Schedule]] | None = None,
) -> PointResult:
    """Aggregate per-instance contributions into one :class:`PointResult`.

    Values are concatenated in instance order before averaging, so the
    reduction is independent of how the instances were scheduled across
    workers.  Points evaluated with custom *algorithms* carry ``spec=None``
    (an algorithm mapping is not expressible as a pure-data spec).
    """
    accum: dict[str, list[float]] = {}
    failures: dict[str, int] = {}
    for metrics, fails in instance_results:
        for name, values in metrics.items():
            accum.setdefault(name, []).extend(values)
        for name, count in fails.items():
            failures[name] = failures.get(name, 0) + count
    metrics = {name: float(np.mean(values)) for name, values in accum.items() if values}
    return PointResult(
        granularity=granularity,
        epsilon=epsilon,
        crashes=config.crash_counts(epsilon),
        metrics=metrics,
        failures=failures,
        instances=config.num_graphs,
        spec=_point_spec_or_none(config, granularity, epsilon, algorithms),
    )


def _point_spec_or_none(
    config: ExperimentConfig,
    granularity: float,
    epsilon: int,
    algorithms: Mapping[str, Callable[..., Schedule]] | None,
) -> ScenarioSpec | None:
    """The point's family spec, or ``None`` when it isn't expressible.

    Custom algorithm mappings have no pure-data form, and degenerate
    configurations (e.g. ε ≥ platform size, which the campaign itself records
    as per-instance scheduling failures) must not turn the *reduction* into a
    validation error after all the instance work has already run.
    """
    if algorithms is not None:
        return None
    try:
        return scenario_for_point(config, granularity, epsilon)
    except SpecificationError:
        return None


def run_point(
    granularity: float,
    epsilon: int,
    config: ExperimentConfig,
    algorithms: Mapping[str, Callable[..., Schedule]] | None = None,
    jobs: int | None = 1,
    chunksize: int | None = None,
) -> PointResult:
    """Run one (granularity, ε) point of the campaign.

    With ``jobs > 1`` the graph instances of the point are sharded across
    worker processes; every instance carries its own pre-derived seed, so the
    result is bit-for-bit identical for any ``jobs`` value.  *chunksize* is
    accepted for backward compatibility (it tuned transport, never results);
    execution runs under the supervised pool, so a worker crash retries only
    the lost instances instead of aborting the point.
    """
    items = [(granularity, s) for s in instance_seeds(config, granularity, epsilon)]
    results = _supervised_instances(items, epsilon, config, algorithms, jobs)
    return _reduce_point(granularity, epsilon, config, results, algorithms)


def _supervised_instances(units, epsilon, config, algorithms, jobs):
    """Fan graph instances across the supervised pool; raise on exhaustion.

    The figure campaigns have no partial-result shape (a point averages over
    *all* its instances), so units still missing after the retry budget raise
    :class:`~repro.resilience.supervisor.ExecutionError` — but a transient
    worker death no longer costs the whole campaign, and each unit's seed
    travels as its supervision token so failures stay attributable.
    """
    from repro.resilience import ExecutionError, resolve_chaos, supervised_map

    outcome = supervised_map(
        partial(
            run_graph_instance, epsilon=epsilon, config=config, algorithms=algorithms
        ),
        units,
        jobs=jobs,
        tokens=[unit_seed for _granularity, unit_seed in units],
        chaos=resolve_chaos(None),
    )
    if outcome.failures:
        raise ExecutionError(outcome.failures, what=f"campaign (epsilon {epsilon})")
    return outcome.values


def run_campaign(
    epsilon: int,
    config: ExperimentConfig,
    algorithms: Mapping[str, Callable[..., Schedule]] | None = None,
    jobs: int | None = 1,
    chunksize: int | None = None,
) -> CampaignResult:
    """Sweep every granularity of *config* for the given ε.

    The whole campaign is flattened into one list of ``(granularity, graph
    instance)`` work units before fan-out, so ``jobs`` workers stay busy even
    when there are fewer granularity points than workers (per-graph sharding
    *within* a point).  Every unit carries its own pre-derived seed, so the
    campaign is bit-for-bit identical for any ``jobs`` value (custom
    *algorithms* must be picklable, i.e. module-level functions); *chunksize*
    is accepted for backward compatibility (it tuned transport, never
    results).  Execution runs under the supervised pool of
    :mod:`repro.resilience`, so a transient worker death retries only the
    lost instances instead of aborting the campaign.
    """
    units: list[tuple[float, int]] = []
    for granularity in config.granularities:
        units.extend((granularity, s) for s in instance_seeds(config, granularity, epsilon))
    results = _supervised_instances(units, epsilon, config, algorithms, jobs)
    points = []
    n = config.num_graphs
    for k, granularity in enumerate(config.granularities):
        points.append(
            _reduce_point(
                granularity, epsilon, config, results[k * n : (k + 1) * n], algorithms
            )
        )
    return CampaignResult(epsilon=epsilon, points=points)
