"""Campaign runner: one (granularity, ε) point over many random graphs.

For every random graph the runner builds the LTF schedule, the R-LTF schedule
and the fault-free reference, then records for each heuristic:

* the normalized latency **upper bound** ``(2S−1)·Δ / w̄``;
* the normalized latency with **0 crashes** (first-arrival semantics);
* the normalized latency with **c crashes** (mean over sampled crash patterns);
* the corresponding **fault-tolerance overheads** against the fault-free
  latency.

Instances where a heuristic fails to meet the throughput constraint are
recorded as failures and excluded from the averages (their rate is reported).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import partial
from typing import Callable, Mapping

import numpy as np

from repro.core.fault_free import fault_free_schedule
from repro.core.ltf import ltf_schedule
from repro.core.rltf import rltf_schedule
from repro.exceptions import SchedulingError
from repro.experiments.config import ExperimentConfig, workload_period
from repro.failures.evaluation import expected_crash_latency
from repro.graph.generator import random_paper_workload
from repro.schedule.metrics import latency_upper_bound
from repro.schedule.schedule import Schedule
from repro.utils.rng import ensure_rng

__all__ = [
    "PointResult",
    "CampaignResult",
    "point_seed",
    "run_point",
    "run_campaign",
    "ALGORITHMS",
]


def point_seed(config: ExperimentConfig, granularity: float, offset: int = 0) -> int:
    """Deterministic seed of one (granularity, study) sweep point.

    Every study that fans granularity points across processes (the campaign,
    the ablations, the baselines) derives its per-point RNG from this single
    formula — the point's result then depends only on ``(config, granularity,
    offset)``, never on execution order, which is what makes ``jobs > 1``
    bit-for-bit identical to a serial run.
    """
    return config.seed + offset + int(round(granularity * 1000))

#: the two heuristics of the paper, keyed by their display name.
ALGORITHMS: dict[str, Callable[..., Schedule]] = {
    "LTF": ltf_schedule,
    "R-LTF": rltf_schedule,
}


@dataclass
class PointResult:
    """Aggregated metrics of one (granularity, ε) point."""

    granularity: float
    epsilon: int
    crashes: tuple[int, ...]
    #: metric name -> mean value over the successful instances.
    metrics: dict[str, float] = field(default_factory=dict)
    #: algorithm -> number of instances it failed to schedule.
    failures: dict[str, int] = field(default_factory=dict)
    instances: int = 0

    def metric(self, name: str) -> float:
        """Mean value of a metric (NaN when no instance succeeded)."""
        return self.metrics.get(name, float("nan"))


@dataclass
class CampaignResult:
    """Results of a sweep over granularities for a fixed ε."""

    epsilon: int
    points: list[PointResult] = field(default_factory=list)

    @property
    def granularities(self) -> list[float]:
        return [p.granularity for p in self.points]

    def series(self, metric: str) -> list[float]:
        """The values of *metric* across granularities."""
        return [p.metric(metric) for p in self.points]

    def available_metrics(self) -> list[str]:
        names: set[str] = set()
        for p in self.points:
            names.update(p.metrics)
        return sorted(names)


def run_point(
    granularity: float,
    epsilon: int,
    config: ExperimentConfig,
    algorithms: Mapping[str, Callable[..., Schedule]] | None = None,
) -> PointResult:
    """Run one (granularity, ε) point of the campaign."""
    algorithms = dict(algorithms or ALGORITHMS)
    crashes = config.crash_counts(epsilon)
    rng = ensure_rng(point_seed(config, granularity, offset=31 * epsilon))
    accum: dict[str, list[float]] = {}
    failures = {name: 0 for name in algorithms}
    failures["fault-free"] = 0

    for instance in range(config.num_graphs):
        workload = random_paper_workload(
            granularity,
            seed=rng,
            num_processors=config.num_processors,
            task_range=config.task_range,
        )
        unit = workload.mean_task_time
        period = workload_period(workload, epsilon, config)
        ff_period = workload_period(workload, 0, config)
        try:
            ff = fault_free_schedule(workload.graph, workload.platform, period=ff_period)
            ff_latency = latency_upper_bound(ff)
        except SchedulingError:
            failures["fault-free"] += 1
            continue
        accum.setdefault("fault-free latency", []).append(ff_latency / unit)

        for name, scheduler in algorithms.items():
            try:
                schedule = scheduler(
                    workload.graph,
                    workload.platform,
                    period=period,
                    epsilon=epsilon,
                    strict_resilience=config.strict_resilience,
                )
            except SchedulingError:
                failures[name] += 1
                continue
            upper = latency_upper_bound(schedule) / unit
            accum.setdefault(f"{name} upper bound", []).append(upper)
            accum.setdefault(f"{name} overhead upper bound (%)", []).append(
                100.0 * (latency_upper_bound(schedule) - ff_latency) / ff_latency
            )
            for c in crashes:
                latency_c = expected_crash_latency(
                    schedule,
                    c,
                    samples=config.crash_samples,
                    seed=rng,
                    unit=unit,
                    on_invalid="upper_bound",
                )
                accum.setdefault(f"{name} with {c} crash", []).append(latency_c)
                accum.setdefault(f"{name} overhead with {c} crash (%)", []).append(
                    100.0 * (latency_c * unit - ff_latency) / ff_latency
                )

    metrics = {name: float(np.mean(values)) for name, values in accum.items() if values}
    return PointResult(
        granularity=granularity,
        epsilon=epsilon,
        crashes=crashes,
        metrics=metrics,
        failures=failures,
        instances=config.num_graphs,
    )


def run_campaign(
    epsilon: int,
    config: ExperimentConfig,
    algorithms: Mapping[str, Callable[..., Schedule]] | None = None,
    jobs: int | None = 1,
) -> CampaignResult:
    """Sweep every granularity of *config* for the given ε.

    With ``jobs > 1`` the granularity points run across worker processes via
    :func:`repro.experiments.parallel.parallel_map`.  Every point derives its
    RNG from ``(config.seed, granularity, epsilon)`` alone, so the parallel
    sweep is bit-for-bit identical to the serial one (custom *algorithms* must
    then be picklable, i.e. module-level functions).
    """
    from repro.experiments.parallel import parallel_map

    points = parallel_map(
        partial(run_point, epsilon=epsilon, config=config, algorithms=algorithms),
        config.granularities,
        jobs=jobs,
    )
    return CampaignResult(epsilon=epsilon, points=list(points))
