"""Experimental configuration (Section 5 of the paper).

The paper's setup: random graphs of 50–150 tasks, granularity varied from 0.2
to 2.0 in steps of 0.2, 20 processors, unit message delays in [0.5, 1],
message volumes in [50, 150], desired throughput ``1/(10(ε+1))``, ``ε ∈ {1, 3}``,
60 random graphs per point.

Two calibration details are unit-dependent in the paper and are made explicit
here (see DESIGN.md §3):

* the **period** of a workload is ``slack · max(compute bound, communication
  bound)`` where the bounds are the average per-processor replicated compute
  and communication loads — for computation-dominated graphs this reduces to
  the paper's ``10(ε+1)`` average task durations per processor, and for
  communication-dominated graphs it keeps the constraint binding but feasible
  under the one-port model;
* the **normalization unit** of the latency is the mean task execution time of
  the workload.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace

from repro.graph.generator import PaperWorkload
from repro.utils.checks import check_positive

__all__ = ["ExperimentConfig", "paper_config", "bench_config", "workload_period"]

#: environment variable overriding the number of graphs per point in benchmarks.
BENCH_GRAPHS_ENV = "REPRO_BENCH_GRAPHS"


@dataclass(frozen=True)
class ExperimentConfig:
    """Parameters of one experimental campaign."""

    granularities: tuple[float, ...] = tuple(round(0.2 * i, 1) for i in range(1, 11))
    num_graphs: int = 60
    num_processors: int = 20
    task_range: tuple[int, int] = (50, 150)
    crash_samples: int = 10
    period_slack: float = 2.0
    comm_period_factor: float = 2.0
    seed: int = 2009
    strict_resilience: bool = False

    def __post_init__(self) -> None:
        if not self.granularities:
            raise ValueError("granularities must not be empty")
        for g in self.granularities:
            check_positive(g, "granularity")
        if self.num_graphs < 1:
            raise ValueError(f"num_graphs must be >= 1, got {self.num_graphs}")
        if self.num_processors < 2:
            raise ValueError(f"num_processors must be >= 2, got {self.num_processors}")
        if self.task_range[0] < 1 or self.task_range[1] < self.task_range[0]:
            raise ValueError(f"invalid task_range {self.task_range}")
        if self.crash_samples < 1:
            raise ValueError(f"crash_samples must be >= 1, got {self.crash_samples}")
        check_positive(self.period_slack, "period_slack")
        check_positive(self.comm_period_factor, "comm_period_factor")

    def with_overrides(self, **kwargs) -> "ExperimentConfig":
        """A copy of the configuration with some fields replaced."""
        return replace(self, **kwargs)

    def crash_counts(self, epsilon: int) -> tuple[int, ...]:
        """The crash counts evaluated for a given ε, as in the paper:
        ``c ∈ {0, 1}`` for ``ε = 1`` and ``c ∈ {0, 2}`` for ``ε = 3``."""
        if epsilon <= 0:
            return (0,)
        return (0, 1) if epsilon == 1 else (0, epsilon - 1)


def paper_config(**overrides) -> ExperimentConfig:
    """The full-scale configuration of the paper (60 graphs per point)."""
    return ExperimentConfig(**overrides)


def bench_config(**overrides) -> ExperimentConfig:
    """Reduced configuration used by ``pytest benchmarks/``.

    The number of graphs per point defaults to 2 (override with the
    ``REPRO_BENCH_GRAPHS`` environment variable) and the graphs are kept at the
    small end of the paper's range so that the whole benchmark suite runs in
    minutes; the curve shapes are stable at this scale.
    """
    defaults = dict(
        granularities=(0.2, 0.6, 1.0, 1.4, 2.0),
        num_graphs=int(os.environ.get(BENCH_GRAPHS_ENV, "2")),
        task_range=(50, 70),
        crash_samples=3,
    )
    defaults.update(overrides)
    return ExperimentConfig(**defaults)


def workload_period(workload: PaperWorkload, epsilon: int, config: ExperimentConfig) -> float:
    """Iteration period ``Δ`` assigned to a workload for a given ``ε``.

    ``Δ = slack · (ε+1) · max(compute bound, comm_factor · communication bound)``
    with the bounds expressed per processor; see the module docstring.
    """
    graph, platform = workload.graph, workload.platform
    m = platform.num_processors
    compute_bound = graph.total_work * platform.mean_inverse_speed / m
    comm_bound = (
        config.comm_period_factor
        * sum(vol for _, _, vol in graph.edges())
        * platform.mean_inverse_bandwidth
        / m
    )
    return config.period_slack * (epsilon + 1) * max(compute_bound, comm_bound)
