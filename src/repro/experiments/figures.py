"""Per-figure series generators (Figures 3 and 4 of the paper) and the extra
studies (ablations, baseline comparison, scaling) indexed in DESIGN.md.

Each ``figureXY`` function returns a :class:`FigureSeries`: the granularity
axis plus one named series per curve of the corresponding panel.  Campaign
results are cached per (ε, config) within the process so that the three panels
of a figure share a single sweep.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from functools import partial
from typing import Callable, Mapping

import numpy as np

from repro.baselines import BASELINES
from repro.core.fault_free import fault_free_schedule
from repro.core.ltf import ltf_schedule
from repro.core.rltf import rltf_schedule
from repro.exceptions import SchedulingError
from repro.experiments.campaign import CampaignResult, point_seed, run_campaign
from repro.experiments.config import ExperimentConfig, bench_config, workload_period
from repro.experiments.parallel import parallel_map
from repro.graph.generator import random_paper_workload
from repro.schedule.metrics import communication_count, latency_upper_bound
from repro.utils.rng import derive_seed, ensure_rng

__all__ = [
    "FigureSeries",
    "figure3a",
    "figure3b",
    "figure3c",
    "figure4a",
    "figure4b",
    "figure4c",
    "ablation_rules",
    "baseline_comparison",
    "scaling_study",
    "clear_campaign_cache",
]


@dataclass
class FigureSeries:
    """The data behind one figure panel."""

    name: str
    x_label: str
    x: tuple[float, ...]
    series: dict[str, tuple[float, ...]] = field(default_factory=dict)
    description: str = ""

    def as_rows(self) -> list[list[float]]:
        """Table rows ``[x, series1, series2, ...]`` (used by the reports)."""
        rows = []
        for i, xv in enumerate(self.x):
            rows.append([xv, *[vals[i] for vals in self.series.values()]])
        return rows


_CAMPAIGN_CACHE: dict[tuple, CampaignResult] = {}


def clear_campaign_cache() -> None:
    """Drop the per-process campaign cache (used by tests)."""
    _CAMPAIGN_CACHE.clear()


def _campaign(epsilon: int, config: ExperimentConfig, jobs: int | None = 1) -> CampaignResult:
    # `jobs` affects only the wall-clock, never the numbers (see run_campaign),
    # so it is deliberately absent from the cache key.
    key = (epsilon, config)
    if key not in _CAMPAIGN_CACHE:
        _CAMPAIGN_CACHE[key] = run_campaign(epsilon, config, jobs=jobs)
    return _CAMPAIGN_CACHE[key]


def _panel(
    name: str,
    epsilon: int,
    metrics: Mapping[str, str],
    config: ExperimentConfig | None,
    description: str,
    jobs: int | None = 1,
) -> FigureSeries:
    config = config or bench_config()
    campaign = _campaign(epsilon, config, jobs=jobs)
    series = {
        label: tuple(campaign.series(metric)) for label, metric in metrics.items()
    }
    return FigureSeries(
        name=name,
        x_label="granularity",
        x=tuple(campaign.granularities),
        series=series,
        description=description,
    )


# ------------------------------------------------------------------- Figure 3
def figure3a(config: ExperimentConfig | None = None, jobs: int | None = 1) -> FigureSeries:
    """Figure 3(a): normalized latency bounds vs granularity, ε = 1."""
    return _panel(
        "figure3a",
        epsilon=1,
        metrics={
            "R-LTF With 0 Crash": "R-LTF with 0 crash",
            "R-LTF UpperBound": "R-LTF upper bound",
            "LTF With 0 Crash": "LTF with 0 crash",
            "LTF UpperBound": "LTF upper bound",
        },
        config=config,
        jobs=jobs,
        description="Average normalized latency (bounds), epsilon=1",
    )


def figure3b(config: ExperimentConfig | None = None, jobs: int | None = 1) -> FigureSeries:
    """Figure 3(b): normalized latency with crashes vs granularity, ε = 1."""
    return _panel(
        "figure3b",
        epsilon=1,
        metrics={
            "R-LTF With 0 Crash": "R-LTF with 0 crash",
            "R-LTF With 1 Crash": "R-LTF with 1 crash",
            "LTF With 0 Crash": "LTF with 0 crash",
            "LTF With 1 Crash": "LTF with 1 crash",
        },
        config=config,
        jobs=jobs,
        description="Average normalized latency with crashes, epsilon=1",
    )


def figure3c(config: ExperimentConfig | None = None, jobs: int | None = 1) -> FigureSeries:
    """Figure 3(c): fault-tolerance overhead (%) vs granularity, ε = 1."""
    return _panel(
        "figure3c",
        epsilon=1,
        metrics={
            "R-LTF With 0 Crash": "R-LTF overhead with 0 crash (%)",
            "R-LTF With 1 Crash": "R-LTF overhead with 1 crash (%)",
            "LTF With 0 Crash": "LTF overhead with 0 crash (%)",
            "LTF With 1 Crash": "LTF overhead with 1 crash (%)",
        },
        config=config,
        jobs=jobs,
        description="Average fault-tolerance overhead, epsilon=1",
    )


# ------------------------------------------------------------------- Figure 4
def figure4a(config: ExperimentConfig | None = None, jobs: int | None = 1) -> FigureSeries:
    """Figure 4(a): normalized latency bounds vs granularity, ε = 3."""
    return _panel(
        "figure4a",
        epsilon=3,
        metrics={
            "R-LTF With 0 Crash": "R-LTF with 0 crash",
            "R-LTF UpperBound": "R-LTF upper bound",
            "LTF With 0 Crash": "LTF with 0 crash",
            "LTF UpperBound": "LTF upper bound",
        },
        config=config,
        jobs=jobs,
        description="Average normalized latency (bounds), epsilon=3",
    )


def figure4b(config: ExperimentConfig | None = None, jobs: int | None = 1) -> FigureSeries:
    """Figure 4(b): normalized latency with c = 2 crashes vs granularity, ε = 3."""
    return _panel(
        "figure4b",
        epsilon=3,
        metrics={
            "R-LTF With 0 Crash": "R-LTF with 0 crash",
            "R-LTF With 2 Crash": "R-LTF with 2 crash",
            "LTF With 0 Crash": "LTF with 0 crash",
            "LTF With 2 Crash": "LTF with 2 crash",
        },
        config=config,
        jobs=jobs,
        description="Average normalized latency with crashes, epsilon=3",
    )


def figure4c(config: ExperimentConfig | None = None, jobs: int | None = 1) -> FigureSeries:
    """Figure 4(c): fault-tolerance overhead (%) vs granularity, ε = 3."""
    return _panel(
        "figure4c",
        epsilon=3,
        metrics={
            "R-LTF With 0 Crash": "R-LTF overhead with 0 crash (%)",
            "R-LTF With 2 Crash": "R-LTF overhead with 2 crash (%)",
            "LTF With 0 Crash": "LTF overhead with 0 crash (%)",
            "LTF With 2 Crash": "LTF overhead with 2 crash (%)",
        },
        config=config,
        jobs=jobs,
        description="Average fault-tolerance overhead, epsilon=3",
    )


# ------------------------------------------------------------------ ablations
def _ablation_point(
    granularity: float, config: ExperimentConfig, epsilon: int
) -> tuple[dict[str, float], dict[str, float]]:
    """Mean latency (and remote comms) of the ablation variants at one granularity."""
    variants: dict[str, Callable[..., object]] = {
        "R-LTF": lambda g, p, period: rltf_schedule(g, p, period=period, epsilon=epsilon),
        "R-LTF no rule1": lambda g, p, period: rltf_schedule(
            g, p, period=period, epsilon=epsilon, enable_rule1=False
        ),
        "LTF": lambda g, p, period: ltf_schedule(g, p, period=period, epsilon=epsilon),
        "LTF no one-to-one": lambda g, p, period: ltf_schedule(
            g, p, period=period, epsilon=epsilon, enable_one_to_one=False
        ),
        "LTF chunk=1": lambda g, p, period: ltf_schedule(
            g, p, period=period, epsilon=epsilon, chunk_size=1
        ),
    }
    rng = ensure_rng(point_seed(config, granularity, offset=17 * epsilon))
    buckets: dict[str, list[float]] = {name: [] for name in variants}
    comm_buckets: dict[str, list[float]] = {"LTF": [], "LTF no one-to-one": []}
    for _ in range(config.num_graphs):
        workload = random_paper_workload(
            granularity,
            seed=rng,
            num_processors=config.num_processors,
            task_range=config.task_range,
        )
        period = workload_period(workload, epsilon, config)
        unit = workload.mean_task_time
        for name, fn in variants.items():
            try:
                schedule = fn(workload.graph, workload.platform, period)
            except SchedulingError:
                continue
            buckets[name].append(latency_upper_bound(schedule) / unit)
            if name in comm_buckets:
                comm_buckets[name].append(float(communication_count(schedule)))
    latency = {
        name: float(np.mean(vals)) if vals else float("nan")
        for name, vals in buckets.items()
    }
    comms = {
        name: float(np.mean(vals)) if vals else float("nan")
        for name, vals in comm_buckets.items()
    }
    return latency, comms


def ablation_rules(
    config: ExperimentConfig | None = None, epsilon: int = 1, jobs: int | None = 1
) -> FigureSeries:
    """Ablations A1–A3: Rule 1, the one-to-one procedure, and the chunk size.

    For every granularity the study reports the mean normalized latency of
    R-LTF, R-LTF without Rule 1, LTF, LTF without the one-to-one mapping, and
    LTF with a chunk of one task (classical list scheduling); plus the mean
    number of remote communications of LTF with and without one-to-one.  Each
    granularity derives its own RNG, so ``jobs > 1`` fans the points across
    processes without changing the numbers.
    """
    config = config or bench_config()
    points = parallel_map(
        partial(_ablation_point, config=config, epsilon=epsilon),
        config.granularities,
        jobs=jobs,
    )
    latency_names = list(points[0][0]) if points else []
    comm_names = list(points[0][1]) if points else []
    series = {
        f"latency {name}": tuple(latency[name] for latency, _ in points)
        for name in latency_names
    }
    series.update(
        {
            f"remote comms {name}": tuple(comms[name] for _, comms in points)
            for name in comm_names
        }
    )
    return FigureSeries(
        name="ablation_rules",
        x_label="granularity",
        x=tuple(config.granularities),
        series=series,
        description=f"Ablation of Rule 1, one-to-one mapping and chunk size (epsilon={epsilon})",
    )


def _baseline_point(granularity: float, config: ExperimentConfig) -> dict[str, float]:
    """Mean fault-free latency of R-LTF and every baseline at one granularity."""
    names = ["fault-free R-LTF", *sorted(BASELINES)]
    rng = ensure_rng(point_seed(config, granularity, offset=7))
    buckets: dict[str, list[float]] = {name: [] for name in names}
    for _ in range(config.num_graphs):
        workload = random_paper_workload(
            granularity,
            seed=rng,
            num_processors=config.num_processors,
            task_range=config.task_range,
        )
        period = workload_period(workload, 0, config)
        unit = workload.mean_task_time
        try:
            ff = fault_free_schedule(workload.graph, workload.platform, period=period)
            buckets["fault-free R-LTF"].append(latency_upper_bound(ff) / unit)
        except SchedulingError:
            pass
        for name in sorted(BASELINES):
            schedule = BASELINES[name](workload.graph, workload.platform, period=period)
            buckets[name].append(latency_upper_bound(schedule) / unit)
    return {
        name: float(np.mean(vals)) if vals else float("nan")
        for name, vals in buckets.items()
    }


def baseline_comparison(
    config: ExperimentConfig | None = None, jobs: int | None = 1
) -> FigureSeries:
    """Baseline sweep B1: fault-free latency of R-LTF vs the related-work heuristics."""
    config = config or bench_config()
    points = parallel_map(
        partial(_baseline_point, config=config), config.granularities, jobs=jobs
    )
    names = list(points[0]) if points else []
    return FigureSeries(
        name="baseline_comparison",
        x_label="granularity",
        x=tuple(config.granularities),
        series={name: tuple(point[name] for point in points) for name in names},
        description="Normalized fault-free latency of R-LTF vs related-work heuristics",
    )


def _scaling_point(
    item: tuple[int, int], epsilon: int, config: ExperimentConfig
) -> tuple[float, float]:
    """Measure (LTF seconds, R-LTF seconds) for one graph size.

    *item* is ``(size, seed)`` — the workload is derived from the per-size
    seed alone, so the sizes can be fanned across processes while every worker
    schedules exactly the same graphs as a serial run.
    """
    size, seed = item
    workload = random_paper_workload(
        1.0,
        seed=seed,
        num_tasks=size,
        num_processors=config.num_processors,
    )
    period = workload_period(workload, epsilon, config)
    measured = []
    for fn in (ltf_schedule, rltf_schedule):
        start = time.perf_counter()
        try:
            fn(workload.graph, workload.platform, period=period, epsilon=epsilon)
        except SchedulingError:
            pass
        measured.append(time.perf_counter() - start)
    return measured[0], measured[1]


def scaling_study(
    sizes: tuple[int, ...] = (25, 50, 100, 200),
    epsilon: int = 1,
    config: ExperimentConfig | None = None,
    jobs: int | None = 1,
) -> FigureSeries:
    """Scaling study S1: scheduler wall-clock time vs number of tasks.

    Complements Theorem 1 (the ``O(e·m·(ε+1)²·log(ε+1) + v·log ω)`` complexity
    bound) with measured runtimes of both heuristics.  With ``jobs > 1`` the
    sizes are fanned across processes — each worker times its own scheduler
    runs, so the workloads are identical to a serial run (only the measured
    wall-clock varies, as it always does).
    """
    config = config or bench_config()
    rng = ensure_rng(config.seed + 13)
    items = [(size, derive_seed(rng)) for size in sizes]
    points = parallel_map(
        partial(_scaling_point, epsilon=epsilon, config=config), items, jobs=jobs
    )
    return FigureSeries(
        name="scaling_study",
        x_label="tasks",
        x=tuple(float(s) for s in sizes),
        series={
            "LTF": tuple(p[0] for p in points),
            "R-LTF": tuple(p[1] for p in points),
        },
        description=f"Scheduler wall-clock seconds vs graph size (epsilon={epsilon})",
    )
