"""The worked examples of the paper (Figures 1 and 2) as result tables."""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.listsched import heft_schedule
from repro.core.ltf import ltf_schedule
from repro.core.rltf import rltf_schedule
from repro.exceptions import SchedulingError
from repro.graph.examples import figure1_graph, figure2_graph
from repro.platform.builders import figure1_platform, figure2_platform
from repro.schedule.metrics import communication_count, latency_upper_bound
from repro.schedule.stages import num_stages

__all__ = ["figure1_scenarios", "figure2_example", "ExampleRow"]


@dataclass(frozen=True)
class ExampleRow:
    """One row of an example table."""

    scenario: str
    latency: float | None
    throughput: float | None
    stages: int | None
    processors: int | None
    note: str = ""


def figure1_scenarios() -> list[ExampleRow]:
    """The three execution scenarios of Figure 1 on the 4-task diamond.

    * *task parallelism*: the whole DAG is list-scheduled (HEFT) and repeated
      for every data set — the throughput is the inverse of the makespan;
    * *data parallelism*: the whole graph runs on one processor and the four
      processors serve consecutive data sets round-robin (reported for
      completeness; it requires independent data sets);
    * *pipelined execution*: the R-LTF mapping, which is the model used
      throughout the paper (``L = (2S−1)·Δ``).
    """
    graph = figure1_graph()
    platform = figure1_platform()
    rows: list[ExampleRow] = []

    # Task parallelism: classical list scheduling of one data set at a time.
    heft = heft_schedule(graph, platform)
    makespan = heft.makespan
    rows.append(
        ExampleRow(
            scenario="task parallelism",
            latency=makespan,
            throughput=1.0 / makespan,
            stages=None,
            processors=len(heft.used_processors()),
            note="list scheduling, repeated per data set",
        )
    )

    # Data parallelism: whole graph on the fastest processor, round-robin copies.
    fastest = platform.max_speed
    serial = graph.total_work / fastest
    rows.append(
        ExampleRow(
            scenario="data parallelism",
            latency=serial,
            throughput=platform.num_processors / (graph.total_work / min(p.speed for p in platform)),
            stages=None,
            processors=platform.num_processors,
            note="requires independent data sets",
        )
    )

    # Pipelined execution (the paper's model).
    pipelined = rltf_schedule(graph, platform, period=30.0, epsilon=1)
    rows.append(
        ExampleRow(
            scenario="pipelined execution",
            latency=latency_upper_bound(pipelined),
            throughput=1.0 / pipelined.period,
            stages=num_stages(pipelined),
            processors=len(pipelined.used_processors()),
            note="epsilon=1, period=30",
        )
    )
    return rows


def figure2_example(throughput: float = 0.05, epsilon: int = 1) -> list[ExampleRow]:
    """LTF vs R-LTF on the Figure 2 workflow with 8 and 10 processors."""
    graph = figure2_graph()
    rows: list[ExampleRow] = []
    for m in (8, 10):
        platform = figure2_platform(m)
        for name, fn in (("LTF", ltf_schedule), ("R-LTF", rltf_schedule)):
            try:
                schedule = fn(graph, platform, throughput=throughput, epsilon=epsilon)
                rows.append(
                    ExampleRow(
                        scenario=f"{name} m={m}",
                        latency=latency_upper_bound(schedule),
                        throughput=throughput,
                        stages=num_stages(schedule),
                        processors=len(schedule.used_processors()),
                        note=f"{communication_count(schedule)} remote communications",
                    )
                )
            except SchedulingError:
                rows.append(
                    ExampleRow(
                        scenario=f"{name} m={m}",
                        latency=None,
                        throughput=throughput,
                        stages=None,
                        processors=None,
                        note="fails to meet the throughput constraint",
                    )
                )
    return rows
