"""ASCII rendering of experiment results."""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

from repro.experiments.campaign import PointResult
from repro.experiments.figures import FigureSeries
from repro.experiments.tables import ExampleRow
from repro.utils.ascii import ascii_plot, format_table

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (sweep imports figures)
    from repro.experiments.sweep import RuntimeSweepResult

__all__ = ["render_series", "render_point_table", "render_example_rows", "render_sweep"]


def render_series(figure: FigureSeries, plot: bool = True) -> str:
    """Render a :class:`FigureSeries` as a table (optionally with an ASCII plot)."""
    headers = [figure.x_label, *figure.series.keys()]
    table = format_table(headers, figure.as_rows(), title=f"{figure.name}: {figure.description}")
    if not plot:
        return table
    return table + "\n\n" + ascii_plot(figure.series)


def render_point_table(points: Sequence[PointResult]) -> str:
    """Render raw campaign points (one row per granularity, one column per metric)."""
    if not points:
        return "(no data)"
    metrics = sorted({name for p in points for name in p.metrics})
    headers = ["granularity", *metrics]
    rows = [[p.granularity, *[p.metric(m) for m in metrics]] for p in points]
    return format_table(headers, rows)


def render_sweep(result: "RuntimeSweepResult", plot: bool = True) -> str:
    """Render every panel of a runtime failure-regime sweep (one per metric)."""
    header = (
        f"Online runtime sweep — {result.trials} trials/point, seed {result.seed}, "
        f"policy {result.spec.runtime.policy}, admission {result.spec.runtime.admission}, "
        f"mttf grid {[f'{m:g}' for m in result.mttf_grid]}"
    )
    panels = [render_series(figure, plot=plot) for figure in result.figures()]
    return "\n\n".join([header, *panels])


def render_example_rows(rows: Sequence[ExampleRow], title: str) -> str:
    """Render the Figure 1 / Figure 2 example tables."""
    headers = ["scenario", "latency", "throughput", "stages", "processors", "note"]
    table_rows = []
    for row in rows:
        table_rows.append(
            [
                row.scenario,
                "-" if row.latency is None else f"{row.latency:.1f}",
                "-" if row.throughput is None else f"{row.throughput:.4f}",
                "-" if row.stages is None else str(row.stages),
                "-" if row.processors is None else str(row.processors),
                row.note,
            ]
        )
    return format_table(headers, table_rows, title=title)
