"""ASCII rendering of experiment results."""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

from repro.experiments.campaign import PointResult
from repro.experiments.figures import FigureSeries
from repro.experiments.tables import ExampleRow
from repro.utils.ascii import ascii_plot, format_table

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (sweep imports figures)
    from repro.experiments.sweep import RuntimeSweepResult, SweepResult

__all__ = [
    "render_series",
    "render_point_table",
    "render_example_rows",
    "render_sweep",
    "render_suite",
    "render_latency_report",
    "render_trajectory",
]


def render_series(figure: FigureSeries, plot: bool = True) -> str:
    """Render a :class:`FigureSeries` as a table (optionally with an ASCII plot)."""
    headers = [figure.x_label, *figure.series.keys()]
    table = format_table(headers, figure.as_rows(), title=f"{figure.name}: {figure.description}")
    if not plot:
        return table
    return table + "\n\n" + ascii_plot(figure.series)


def render_point_table(points: Sequence[PointResult]) -> str:
    """Render raw campaign points (one row per granularity, one column per metric)."""
    if not points:
        return "(no data)"
    metrics = sorted({name for p in points for name in p.metrics})
    headers = ["granularity", *metrics]
    rows = [[p.granularity, *[p.metric(m) for m in metrics]] for p in points]
    return format_table(headers, rows)


def _cache_line(result: "SweepResult") -> str:
    """The cache-accounting line of a suite/sweep report."""
    if not result.cache_enabled:
        return (
            f"cache: disabled — executed {result.executed_count} of "
            f"{len(result.points)} points"
        )
    stats = result.cache_stats
    return (
        f"cache: {stats.describe()} — executed {result.executed_count} of "
        f"{len(result.points)} points"
    )


def _resilience_lines(result: "SweepResult") -> list[str]:
    """Recovery/degradation annotations of a suite run (empty when clean).

    An undisturbed, non-resumed run contributes nothing, keeping the
    historical report byte-stable; any retry, checkpoint reuse, failed point
    or drain shows up explicitly — a partial result must never read like a
    complete one.
    """
    lines: list[str] = []
    nonzero = {
        name: count for name, count in result.resilience.items() if count
    }
    if nonzero:
        lines.append(
            "resilience: "
            + ", ".join(f"{count} {name}" for name, count in nonzero.items())
        )
    if result.resumed_trials:
        lines.append(
            f"resumed: {result.resumed_trials} trial(s) served from "
            f"checkpoints, {result.executed_trials} executed"
        )
    for index, note in result.failures:
        lines.append(f"FAILED point #{index}: {note}")
    if result.interrupted:
        lines.append(
            "interrupted: run was drained before completing — re-run with "
            "--resume to execute only the missing trials"
        )
    return lines


def render_sweep(result: "RuntimeSweepResult", plot: bool = True) -> str:
    """Render every panel of a runtime failure-regime sweep (one per metric)."""
    header = (
        f"Online runtime sweep — {result.trials} trials/point, seed {result.seed}, "
        f"policy {result.spec.runtime.policy}, admission {result.spec.runtime.admission}, "
        f"mttf grid {[f'{m:g}' for m in result.mttf_grid]}"
    )
    lines = [header]
    # only when a real cache backed the run: a cacheless `runtime --sweep`
    # keeps its historical, byte-stable report.
    if result.sweep is not None and result.sweep.cache_enabled:
        lines.append(_cache_line(result.sweep))
    panels = [render_series(figure, plot=plot) for figure in result.figures()]
    return "\n\n".join(["\n".join(lines), *panels])


def render_suite(
    result: "SweepResult",
    x_axis: str | None = None,
    y_axis: str | None = None,
    plot: bool = True,
) -> str:
    """Render a suite run: header, per-point table, one panel per metric.

    *x_axis* / *y_axis* choose the pivot exactly as in
    :meth:`~repro.experiments.sweep.SweepResult.panel`.  The ASCII plots
    chart each curve against its x *index* (``repro.utils.ascii.ascii_plot``
    never reads the x values), so non-numeric x axes render fine — the
    tables carry the actual x values.
    """
    from repro.experiments.sweep import SWEEP_METRICS

    suite = result.suite
    # the header shows the trials/seed this run actually executed with,
    # which --trials/--seed may have overridden from the suite's defaults
    lines = [
        f"Suite {suite.describe(trials=result.trials, seed=result.seed)}",
        _cache_line(result),
        *_resilience_lines(result),
    ]
    table = format_table(result.row_headers(), result.as_rows(), title="grid points")
    if not suite.axes:
        return "\n\n".join(["\n".join(lines), table])
    panels = [
        render_series(result.panel(x_axis, metric, y_axis=y_axis), plot=plot)
        for metric in SWEEP_METRICS
    ]
    return "\n\n".join(["\n".join(lines), table, *panels])


def render_latency_report(
    result: "SweepResult",
    x_axis: str | None = None,
    y_axis: str | None = None,
    plot: bool = True,
) -> str:
    """Render the ``suite report`` latency-distribution view of a suite run.

    Same pivoting rules as :func:`render_suite`, but the metric columns and
    panels are the :data:`~repro.experiments.sweep.REPORT_METRICS` latency
    distribution (p50/p95/p99/max/mean) instead of the availability-centric
    :data:`~repro.experiments.sweep.SWEEP_METRICS`.  On a warm cache the
    whole report is served without executing a single point — the cache line
    says so explicitly.
    """
    from repro.experiments.sweep import REPORT_METRICS

    suite = result.suite
    lines = [
        f"Latency report — suite "
        f"{suite.describe(trials=result.trials, seed=result.seed)}",
        _cache_line(result),
        *_resilience_lines(result),
        "percentiles are fixed-bucket upper edges (≤ ~8.5% high); max is exact",
    ]
    headers = [*suite.axes, *REPORT_METRICS, "source"]
    rows = []
    for point in result.points:
        stats = point.stats
        metrics = (
            [float("nan")] * len(REPORT_METRICS)
            if point.failed
            else [getattr(stats, attr) for attr in REPORT_METRICS.values()]
        )
        source = "failed" if point.failed else ("cache" if point.cached else "run")
        rows.append(
            [
                *[point.value_of(path) for path in suite.axes],
                *metrics,
                source,
            ]
        )
    table = format_table(headers, rows, title="latency by grid point")
    if not suite.axes:
        return "\n\n".join(["\n".join(lines), table])
    panels = [
        render_series(result.panel(x_axis, metric, y_axis=y_axis), plot=plot)
        for metric in REPORT_METRICS
    ]
    return "\n\n".join(["\n".join(lines), table, *panels])


def render_trajectory(points: Sequence[dict], plot: bool = True) -> str:
    """Render the cross-commit benchmark trajectory (``BENCH_trajectory.json``).

    One row per recorded point — commit, run kind, the headline
    ``long_stream_datasets_per_sec`` throughput — plus an ASCII plot of the
    headline history (smoke and full runs are separate curves: they execute
    different stream lengths and must not be read as one series).
    """
    headline = "long_stream_datasets_per_sec"
    if not points:
        return "benchmark trajectory: no recorded points"
    rows = []
    series: dict[str, list[float]] = {}
    for point in points:
        value = point.get(headline)
        kind = "smoke" if point.get("smoke") else "full"
        rows.append(
            [
                str(point.get("commit", "?"))[:12],
                kind,
                float("nan") if value is None else float(value),
            ]
        )
        series.setdefault(f"{kind} datasets/s", []).append(
            float("nan") if value is None else float(value)
        )
    table = format_table(
        ["commit", "kind", "datasets/s"],
        rows,
        title=f"benchmark trajectory — {len(points)} points",
    )
    if not plot:
        return table
    return table + "\n\n" + ascii_plot(series)


def render_example_rows(rows: Sequence[ExampleRow], title: str) -> str:
    """Render the Figure 1 / Figure 2 example tables."""
    headers = ["scenario", "latency", "throughput", "stages", "processors", "note"]
    table_rows = []
    for row in rows:
        table_rows.append(
            [
                row.scenario,
                "-" if row.latency is None else f"{row.latency:.1f}",
                "-" if row.throughput is None else f"{row.throughput:.4f}",
                "-" if row.stages is None else str(row.stages),
                "-" if row.processors is None else str(row.processors),
                row.note,
            ]
        )
    return format_table(headers, table_rows, title=title)
