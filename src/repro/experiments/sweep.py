"""Scenario-diversity sweep of the online runtime.

Sweeps a grid of failure regimes — mean time to failure × mean time to repair
× Weibull shape — through seeded Monte-Carlo campaigns of the online runtime
and aggregates the results into figure-style panels
(:class:`~repro.experiments.figures.FigureSeries`) rendered by
:mod:`repro.experiments.reporting`.  This is the ``repro-streaming runtime
--sweep`` command.

Since the declarative-scenario redesign the grid is literally a
:meth:`ScenarioSpec.grid <repro.scenario.spec.ScenarioSpec.grid>` product:
every point *is* a self-contained, picklable
:class:`~repro.scenario.spec.ScenarioSpec`, which is what lets the points
shard cleanly across processes.  Each grid point runs its own
:func:`~repro.experiments.parallel.run_runtime_campaign` with a child seed
derived *up front* in grid order, so the sweep is deterministic and
bit-for-bit identical for any ``--jobs`` value (the points are fanned across
processes, each campaign running serially inside its worker).

The Weibull shape axis stresses the failure-arrival law itself: ``shape < 1``
gives infant-mortality bursts, ``shape = 1`` is the exponential (memoryless)
case of the paper, ``shape > 1`` models wear-out.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from functools import partial
from typing import Union

from repro.experiments.figures import FigureSeries
from repro.runtime.montecarlo import RuntimeTrialSpec
from repro.runtime.trace import RuntimeStats
from repro.scenario.spec import ScenarioSpec
from repro.utils.rng import derive_seed, ensure_rng

__all__ = ["SweepPoint", "RuntimeSweepResult", "run_runtime_sweep", "SWEEP_METRICS"]

#: metric name -> RuntimeStats attribute plotted by the sweep report.
SWEEP_METRICS: dict[str, str] = {
    "availability": "mean_availability",
    "loss rate": "mean_loss_rate",
    "rebuilds per trial": "mean_rebuilds",
    "mean latency": "mean_latency",
}

#: the dotted spec axes swept by :func:`run_runtime_sweep`, in grid order.
SWEEP_AXES = (
    "faults.mttf_periods",
    "faults.mttr_periods",
    "faults.weibull_shape",
)


@dataclass(frozen=True)
class SweepPoint:
    """One failure regime of the sweep and its campaign statistics."""

    mttf_periods: float
    mttr_periods: float | None
    shape: float
    seed: int
    stats: RuntimeStats

    @property
    def series_label(self) -> str:
        """Label of the curve this point belongs to (one per mttr × shape)."""
        mttr = "∞" if self.mttr_periods is None else f"{self.mttr_periods:g}Δ"
        return f"mttr={mttr}, shape={self.shape:g}"


@dataclass(frozen=True)
class RuntimeSweepResult:
    """All grid points of one sweep, in grid order."""

    spec: ScenarioSpec
    seed: int
    trials: int
    mttf_grid: tuple[float, ...]
    points: tuple[SweepPoint, ...]

    def figure(self, metric: str) -> FigureSeries:
        """One panel: *metric* vs mttf, one curve per (mttr, shape) combo."""
        attr = SWEEP_METRICS[metric]
        series: dict[str, list[float]] = {}
        for point in self.points:
            series.setdefault(point.series_label, []).append(
                getattr(point.stats, attr)
            )
        # mean latency is reported in periods of the *trial* schedule, which
        # varies per workload; the panel still orders regimes correctly.
        return FigureSeries(
            name=f"runtime_sweep:{metric}",
            x_label="mttf (periods)",
            x=self.mttf_grid,
            series={label: tuple(vals) for label, vals in series.items()},
            description=(
                f"Online runtime {metric} vs mttf "
                f"({self.trials} trials/point, policy {self.spec.runtime.policy}, "
                f"admission {self.spec.runtime.admission})"
            ),
        )

    def figures(self) -> list[FigureSeries]:
        """Every panel of the sweep report, in :data:`SWEEP_METRICS` order."""
        return [self.figure(metric) for metric in SWEEP_METRICS]


def _run_sweep_point(
    item: tuple[ScenarioSpec, int],
    trials: int,
) -> SweepPoint:
    """Run the Monte-Carlo campaign of one grid point (one process each)."""
    from repro.experiments.parallel import run_runtime_campaign

    point_spec, seed = item
    result = run_runtime_campaign(point_spec, trials=trials, seed=seed, jobs=1)
    return SweepPoint(
        mttf_periods=point_spec.faults.mttf_periods,
        mttr_periods=point_spec.faults.mttr_periods,
        shape=point_spec.faults.weibull_shape,
        seed=seed,
        stats=result.stats,
    )


def run_runtime_sweep(
    spec: Union[ScenarioSpec, RuntimeTrialSpec],
    mttf_grid: tuple[float, ...] = (50.0, 100.0, 200.0, 400.0),
    mttr_grid: tuple[float | None, ...] = (None, 25.0),
    shapes: tuple[float, ...] = (0.7, 1.0, 1.5),
    trials: int = 10,
    seed: int = 0,
    jobs: int | None = 1,
) -> RuntimeSweepResult:
    """Sweep the failure-regime grid; deterministic for any *jobs* value.

    The grid is the :meth:`ScenarioSpec.grid <repro.scenario.spec.
    ScenarioSpec.grid>` product over :data:`SWEEP_AXES` — ordered mttf-major →
    mttr → shape; every point's campaign seed is derived from *seed* in that
    order before any work is dispatched.
    """
    if not mttf_grid or not shapes:
        raise ValueError("mttf_grid and shapes must be non-empty")
    if any(m is None for m in mttf_grid) or any(s is None for s in shapes):
        raise ValueError("mttf_grid and shapes must be numeric (only mttr may be none)")
    if trials < 1:
        raise ValueError(f"trials must be >= 1, got {trials}")
    if isinstance(spec, RuntimeTrialSpec):
        warnings.warn(
            "passing a RuntimeTrialSpec to run_runtime_sweep is deprecated; "
            "build a ScenarioSpec (see RuntimeTrialSpec.to_scenario) — the "
            "signature will require one in a future release",
            DeprecationWarning,
            stacklevel=2,
        )
        spec = spec.to_scenario()
    from repro.experiments.parallel import parallel_map

    base = spec.updated({"faults.distribution": "weibull"})
    point_specs = base.grid(
        dict(zip(SWEEP_AXES, (tuple(mttf_grid), tuple(mttr_grid), tuple(shapes))))
    )
    rng = ensure_rng(seed)
    items = [(point, derive_seed(rng)) for point in point_specs]
    points = parallel_map(partial(_run_sweep_point, trials=trials), items, jobs=jobs)
    return RuntimeSweepResult(
        spec=spec,
        seed=seed,
        trials=trials,
        mttf_grid=tuple(float(m) for m in mttf_grid),
        points=tuple(points),
    )
