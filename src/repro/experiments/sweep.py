"""Sweep campaigns of the online runtime: generic suites and the failure grid.

Two layers live here.  The generic layer executes a
:class:`~repro.scenario.suite.SuiteSpec` — any axes over any base scenario —
as one sharded, cached campaign (:func:`run_suite`) and returns a
:class:`SweepResult` whose :meth:`~SweepResult.panel` pivots the grid into
figure-ready :class:`~repro.experiments.figures.FigureSeries` panels for
arbitrary ``(x_axis, metric, y_axis)`` choices.  The historical failure-regime
sweep — mttf × mttr × Weibull shape, the ``repro-streaming runtime --sweep``
command — is now a *special case*: :func:`run_runtime_sweep` builds the
equivalent suite and adapts the generic result, bit-for-bit identical to the
pre-suite implementation.

Execution model (what makes sweeps deterministic *and* cacheable):

* the grid is a :meth:`ScenarioSpec.grid <repro.scenario.spec.ScenarioSpec.
  grid>` product — every point is a self-contained, picklable
  :class:`~repro.scenario.spec.ScenarioSpec`;
* every point's campaign seed is derived *up front* from the sweep seed in
  grid order, so results are identical for any ``--jobs`` value and any
  hit/miss pattern;
* each point's campaign is addressed by a content hash of
  ``(spec.to_dict(), seed, trials, code version)`` (see :mod:`repro.cache`):
  cache hits are bit-identical to re-execution by construction, only cache
  misses are fanned across worker processes, and re-running a suite after
  replacing an axis value in place re-executes only the changed points
  (*reshaping* an axis shifts the in-grid-order seeds of later points, so
  those re-execute too — see docs/scenarios.md for the exact reuse rules).

The Weibull shape axis stresses the failure-arrival law itself: ``shape < 1``
gives infant-mortality bursts, ``shape = 1`` is the exponential (memoryless)
case of the paper, ``shape > 1`` models wear-out.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from functools import partial
from typing import Union

from repro.cache import MISS, CacheStats, campaign_key, open_cache
from repro.exceptions import SpecificationError
from repro.experiments.figures import FigureSeries
from repro.runtime.montecarlo import RuntimeTrialSpec
from repro.runtime.trace import RuntimeStats
from repro.scenario.spec import ScenarioSpec
from repro.scenario.suite import SuiteSpec
from repro.utils.rng import derive_seed, ensure_rng

__all__ = [
    "SweepPoint",
    "RuntimeSweepResult",
    "run_runtime_sweep",
    "SWEEP_METRICS",
    "EXTRA_SWEEP_AXES",
    "REPORT_METRICS",
    "SuitePointResult",
    "SweepResult",
    "run_suite",
]

#: metric name -> RuntimeStats attribute plotted by the sweep report.
SWEEP_METRICS: dict[str, str] = {
    "availability": "mean_availability",
    "loss rate": "mean_loss_rate",
    "rebuilds per trial": "mean_rebuilds",
    "mean latency": "mean_latency",
}

#: metric name -> RuntimeStats attribute of the latency-distribution report
#: (``repro-streaming suite report``).  Kept separate from
#: :data:`SWEEP_METRICS` so the existing ``suite run`` report stays
#: byte-stable; the percentile attributes come from the merged fixed-bucket
#: histograms (see :mod:`repro.obs.metrics`), so they are identical for
#: ``reduce="traces"`` and ``reduce="stats"`` campaigns.
REPORT_METRICS: dict[str, str] = {
    "p50 latency": "p50_latency",
    "p95 latency": "p95_latency",
    "p99 latency": "p99_latency",
    "max latency": "max_latency",
    "mean latency": "mean_latency",
}

#: the dotted spec axes swept by :func:`run_runtime_sweep`, in grid order.
SWEEP_AXES = (
    "faults.mttf_periods",
    "faults.mttr_periods",
    "faults.weibull_shape",
)

#: optional failure-world axes appended (in this order) when the sweep is
#: given ``group_sizes`` / ``load_couplings`` grids.
EXTRA_SWEEP_AXES = (
    "faults.group_size",
    "faults.load_coupling",
)


# ---------------------------------------------------------------- generic suites
def _resolve_metric(metric: str) -> str:
    """Map a report metric name (or a raw stats attribute) to the attribute."""
    if metric in SWEEP_METRICS:
        return SWEEP_METRICS[metric]
    if metric in REPORT_METRICS:
        return REPORT_METRICS[metric]
    # no-default dataclass fields are not class attributes, so hasattr() on
    # the class would miss them — consult the field map instead.
    if metric in RuntimeStats.__dataclass_fields__:
        return metric
    raise SpecificationError(
        f"unknown sweep metric {metric!r}; choose one of "
        f"{[*SWEEP_METRICS, *REPORT_METRICS]} or a RuntimeStats attribute"
    )


def _axis_leaf(path: str) -> str:
    """The field part of a dotted axis path (``faults.mttf_periods`` → leaf)."""
    return path.rsplit(".", 1)[-1]


def _format_axis_value(value) -> str:
    """Human form of one axis value in series labels (``None`` = fail-stop)."""
    if value is None:
        return "∞"
    if isinstance(value, bool):
        return "on" if value else "off"
    if isinstance(value, float):
        return f"{value:g}"
    return str(value)


def _spec_value(spec: ScenarioSpec, path: str):
    """Read one dotted path (``section.field`` or ``name``) off a spec."""
    if path == "name":
        return spec.name
    section, _, leaf = path.partition(".")
    return getattr(getattr(spec, section), leaf)


@dataclass(frozen=True)
class SuitePointResult:
    """One grid point of a suite run: its spec, seed, campaign and provenance."""

    spec: ScenarioSpec
    seed: int
    #: the point's campaign — or ``None`` when the point could not complete
    #: (retry exhaustion under a dying pool, or an interrupted drain); then
    #: :attr:`failure` says why and the metrics render as NaN.
    campaign: "RuntimeCampaignResult | None"  # noqa: F821 - imported lazily
    #: whether this point was served from the result cache (bit-identical to
    #: re-execution by construction) instead of being re-run.
    cached: bool
    #: failure annotation of a point that has no campaign (graceful
    #: degradation: the suite completes and reports, it does not raise).
    failure: str | None = None

    @property
    def failed(self) -> bool:
        return self.campaign is None

    @property
    def stats(self) -> RuntimeStats | None:
        """Aggregate statistics of the point's campaign (``None`` if failed)."""
        return None if self.campaign is None else self.campaign.stats

    def value_of(self, path: str):
        """The point's value on one suite axis (dotted spec path)."""
        return _spec_value(self.spec, path)


@dataclass(frozen=True)
class SweepResult:
    """All grid points of one suite run, in grid order, plus cache accounting.

    The pivoting helpers turn the flat point list into figure-ready panels:
    :meth:`panel` picks an x axis, a metric and (optionally) the axis that
    names the curves; every remaining axis is folded into the curve labels, so
    any grid dimensionality renders without loss.
    """

    suite: SuiteSpec
    seed: int
    trials: int
    points: tuple[SuitePointResult, ...]
    cache_stats: CacheStats = field(default_factory=CacheStats)
    #: whether a real cache backed this run (False: every point executed and
    #: the stats above are all zeros).
    cache_enabled: bool = False
    #: the run was drained by SIGTERM/SIGINT before finishing; with
    #: ``resume=True`` the completed trials are checkpointed and a re-run
    #: executes only the missing ones.
    interrupted: bool = False
    #: trials served from per-trial checkpoints instead of executing
    #: (``resume=True`` runs only; a full-campaign cache hit counts as a
    #: cached *point*, not here).
    resumed_trials: int = 0
    #: trials actually executed by this run (cache hits excluded).
    executed_trials: int = 0
    #: supervisor counters of this run (retries, worker_crashes, timeouts,
    #: pool_respawns, corrupt_payloads) — all zero on an undisturbed run.
    resilience: dict = field(default_factory=dict)

    @property
    def failed_count(self) -> int:
        """Points that exhausted retries (or were cut off by a drain)."""
        return sum(1 for point in self.points if point.failed)

    @property
    def failures(self) -> list[tuple[int, str]]:
        """``(grid index, annotation)`` of every failed point, grid order."""
        return [
            (i, point.failure or "failed")
            for i, point in enumerate(self.points)
            if point.failed
        ]

    @property
    def axes(self) -> dict:
        """A copy of the suite's axes (dotted path → value tuple, grid order).

        A copy, not the live dict: mutating it must not desync the suite
        from the grid order that derived the per-point seeds.
        """
        return dict(self.suite.axes)

    @property
    def executed_count(self) -> int:
        """How many points actually ran (the rest were cache hits)."""
        return sum(1 for point in self.points if not point.cached)

    @property
    def cached_count(self) -> int:
        return len(self.points) - self.executed_count

    # ------------------------------------------------------------------ pivots
    def panel(
        self,
        x_axis: str | None = None,
        metric: str = "availability",
        y_axis: str | None = None,
    ) -> FigureSeries:
        """One figure panel: *metric* vs *x_axis*, one curve per label combo.

        *x_axis* must be a suite axis (default: the first one); its declared
        values order the x vector.  *y_axis*, when given, must be another
        axis and leads the curve labels; every other non-x axis is appended
        to the labels, so points map one-to-one onto ``(x, curve)`` cells.
        *metric* is a report metric name (:data:`SWEEP_METRICS`) or a raw
        :class:`~repro.runtime.trace.RuntimeStats` attribute.
        """
        axes = self.suite.axes
        if not axes:
            raise SpecificationError(
                f"suite {self.suite.name!r} has no axes to pivot on"
            )
        if x_axis is None:
            x_axis = next(iter(axes))
        x_values = self.suite.axis_values(x_axis)
        attr = _resolve_metric(metric)
        label_axes = [path for path in axes if path != x_axis]
        if y_axis is not None:
            if y_axis not in axes or y_axis == x_axis:
                raise SpecificationError(
                    f"y_axis {y_axis!r} must be a suite axis other than the "
                    f"x axis {x_axis!r} (axes: {list(axes)})"
                )
            label_axes.remove(y_axis)
            label_axes.insert(0, y_axis)

        def label_of(point: SuitePointResult) -> str:
            if not label_axes:
                return metric
            return ", ".join(
                f"{_axis_leaf(path)}={_format_axis_value(point.value_of(path))}"
                for path in label_axes
            )

        # cells are located by position (x_values.index uses ==, not hashing),
        # so axes over unhashable values like task_range pairs pivot fine
        series: dict[str, list] = {}
        for point in self.points:
            cells = series.setdefault(label_of(point), [None] * len(x_values))
            cells[x_values.index(point.value_of(x_axis))] = (
                float("nan") if point.failed else getattr(point.stats, attr)
            )
        return FigureSeries(
            name=f"{self.suite.name}:{metric}",
            x_label=x_axis,
            x=tuple(x_values),
            series={label: tuple(cells) for label, cells in series.items()},
            description=(
                f"{metric} vs {x_axis} ({self.trials} trials/point, "
                f"{len(self.points)} points, seed {self.seed})"
            ),
        )

    def panels(
        self, x_axis: str | None = None, y_axis: str | None = None
    ) -> list[FigureSeries]:
        """Every report panel (one per :data:`SWEEP_METRICS` metric)."""
        return [
            self.panel(x_axis, metric, y_axis=y_axis) for metric in SWEEP_METRICS
        ]

    def row_headers(self) -> list[str]:
        """Column names of :meth:`as_rows`: axes, report metrics, provenance."""
        return [*self.suite.axes, *SWEEP_METRICS, "source"]

    def as_rows(self) -> list[list[object]]:
        """One row per grid point: axis values, report metrics, provenance.

        The metric columns are exactly :data:`SWEEP_METRICS` (one source of
        truth with the panels), in the same order as :meth:`row_headers`.
        """
        rows = []
        for point in self.points:
            stats = point.stats
            metrics = (
                [float("nan")] * len(SWEEP_METRICS)
                if point.failed
                else [getattr(stats, attr) for attr in SWEEP_METRICS.values()]
            )
            source = "failed" if point.failed else ("cache" if point.cached else "run")
            rows.append(
                [
                    *[point.value_of(path) for path in self.suite.axes],
                    *metrics,
                    source,
                ]
            )
        return rows


def _run_trial_unit(item: tuple[ScenarioSpec, int], reduce: str):
    """Execute one (grid point, trial) unit — the picklable unit of suite work.

    The suite executor flattens every cache-missed grid point into its
    individual trials, so one process pool load-balances trials × points at
    once (a grid with fewer points than workers still saturates the pool).
    With ``reduce="stats"`` the trace never leaves the worker — only its
    :class:`~repro.runtime.trace.TraceSummary` does.
    """
    from repro.runtime.montecarlo import run_trial, run_trial_summary

    point_spec, trial_seed = item
    if reduce == "stats":
        return run_trial_summary(point_spec, trial_seed)
    return run_trial(point_spec, trial_seed)


def run_suite(
    suite: SuiteSpec,
    seed: int | None = None,
    trials: int | None = None,
    jobs: int | None = 1,
    cache=None,
    reduce: str = "traces",
    *,
    max_retries: int = 2,
    trial_timeout: float | None = None,
    resume: bool = False,
    chaos=None,
    stop=None,
) -> SweepResult:
    """Execute every grid point of *suite* as one sharded, cached campaign.

    *seed* and *trials* default to the suite's own values.  Per-point seeds
    derive from *seed* in grid order before any work is dispatched, and the
    per-trial seeds of a point derive from its point seed exactly as
    :func:`~repro.experiments.parallel.run_runtime_campaign` would draw them,
    so the result is bit-for-bit identical for any *jobs* value **and any
    cache state**: a cached campaign is the pickled result of the identical
    ``(spec, seed, trials, reduce, code version)`` execution.  *cache* is a
    cache object from :mod:`repro.cache`, a directory path, or ``None`` (no
    caching); only cache misses are executed — flattened into trials × points
    work units over one shared pool, *jobs* at a time — and fresh results are
    written back from the parent process.

    *reduce* selects the worker payload.  ``"traces"`` (default) keeps every
    trial's full :class:`~repro.runtime.trace.RuntimeTrace`: the cache then
    stores complete campaigns and :attr:`SuitePointResult.campaign` exposes
    them.  ``"stats"`` summarizes each trace *inside the worker*: only a few
    floats per trial cross the process boundary (and land in the cache),
    which is the right mode for wide, cacheless sweeps that only read
    :attr:`SuitePointResult.stats` — the statistics are equal to the
    ``"traces"`` mode's by construction.

    Execution is *supervised* (see :mod:`repro.resilience`): a dead worker
    respawns the pool and only the lost (point, trial) units are retried
    (*max_retries* times each, bounded exponential backoff), *trial_timeout*
    kills a unit stuck past that many wall-clock seconds, and *chaos* (a
    :class:`~repro.resilience.chaos.ChaosSpec` or spec string, also
    ``$REPRO_CHAOS``) injects seeded failures for testing those paths.  A
    point whose trials exhaust their retries does **not** abort the suite:
    the run completes and that point carries a :attr:`SuitePointResult.
    failure` annotation (its metrics render as NaN) — graceful degradation
    over losing the whole campaign.

    *resume* opts into trial-level checkpointing: each completed trial is
    written to the cache under its :func:`~repro.cache.keys.trial_key` as it
    lands, so a suite interrupted at any point (SIGTERM/SIGINT sets *stop*;
    a crash loses nothing already flushed) re-executes only the missing
    trials on the next ``resume=True`` run — and the resumed result is
    bit-identical to an uninterrupted one, because every trial's seed is a
    pure function of ``(point seed, trial index)``.  Off by default: the
    probes and writes change a run's cache traffic, and the full-campaign
    entry already serves the common case.
    """
    from repro.experiments.parallel import (
        RuntimeCampaignResult,
        _probe_trial_checkpoints,
        campaign_trial_seeds,
        check_reduce,
    )
    from repro.resilience import resolve_chaos, supervised_map
    from repro.resilience.supervisor import RetryPolicy

    check_reduce(reduce)
    cache = open_cache(cache)
    chaos = resolve_chaos(chaos)
    stats_before = cache.stats.snapshot()
    run_seed = suite.seed if seed is None else seed
    run_trials = suite.trials if trials is None else trials
    if run_trials < 1:
        raise ValueError(f"trials must be >= 1, got {run_trials}")
    specs = suite.points()
    rng = ensure_rng(run_seed)
    seeds = [derive_seed(rng) for _ in specs]
    # with caching off there is nothing to address: skip the hashing and the
    # probe loop entirely so a cacheless run carries all-zero stats.
    keys = (
        [
            campaign_key(spec, point_seed, run_trials, reduce=reduce)
            for spec, point_seed in zip(specs, seeds)
        ]
        if cache.enabled
        else [None] * len(specs)
    )
    campaigns: list = [MISS] * len(specs)
    miss_indices: list[int] = []
    for i, key in enumerate(keys):
        value = (
            cache.get(key, expect=RuntimeCampaignResult) if key is not None else MISS
        )
        if value is MISS:
            miss_indices.append(i)
        else:
            campaigns[i] = value
    # nested fan-out: every missed point unrolls into its trials, and all the
    # (point, trial) units share one pool — workers stay busy even when the
    # grid has fewer points than workers, and each unit's return payload is
    # one trace (or one summary), never a whole campaign pickle.
    trial_seed_of = {i: campaign_trial_seeds(seeds[i], run_trials) for i in miss_indices}
    # resume: trials already checkpointed by an interrupted run (or by a
    # smaller-trials run — trial keys ignore the campaign's total count) are
    # served from the cache; only the missing ones become work units.
    checkpoint_of = {
        i: _probe_trial_checkpoints(
            cache, specs[i], seeds[i], range(run_trials), reduce, resume
        )
        for i in miss_indices
    }
    unit_meta: list[tuple[int, int]] = []  # (grid index, trial index) per unit
    units = []
    for i in miss_indices:
        for t in range(run_trials):
            if t not in checkpoint_of[i]:
                unit_meta.append((i, t))
                units.append((specs[i], trial_seed_of[i][t]))

    def checkpoint(slot: int, value) -> None:
        from repro.cache import trial_key

        i, t = unit_meta[slot]
        cache.put(trial_key(specs[i], seeds[i], t, reduce=reduce), value)

    outcome = supervised_map(
        partial(_run_trial_unit, reduce=reduce),
        units,
        jobs=jobs,
        tokens=[trial_seed_of[i][t] for i, t in unit_meta],
        policy=RetryPolicy(max_retries=max_retries),
        timeout=trial_timeout,
        chaos=chaos,
        on_result=checkpoint if (resume and cache.enabled) else None,
        stop=stop,
    )
    failure_of_slot = {f.index: f for f in outcome.failures}
    values_of: dict[int, dict[int, object]] = {
        i: dict(checkpoint_of[i]) for i in miss_indices
    }
    lost_of: dict[int, list[str]] = {i: [] for i in miss_indices}
    executed_trials = 0
    for slot, (i, t) in enumerate(unit_meta):
        failure = failure_of_slot.get(slot)
        if failure is not None:
            lost_of[i].append(f"trial {t} {failure.kind}: {failure.error}")
        elif outcome.values[slot] is not None:
            values_of[i][t] = outcome.values[slot]
            executed_trials += 1
    failure_note: dict[int, str] = {}
    for i in miss_indices:
        values = values_of[i]
        if len(values) == run_trials:
            chunk = tuple(values[t] for t in range(run_trials))
            campaign = RuntimeCampaignResult(
                spec=specs[i],
                seed=seeds[i],
                trial_seeds=trial_seed_of[i],
                traces=chunk if reduce == "traces" else None,
                summaries=chunk if reduce == "stats" else None,
            )
            if keys[i] is not None:
                cache.put(keys[i], campaign)
            campaigns[i] = campaign
        elif lost_of[i]:
            failure_note[i] = (
                f"{run_trials - len(values)} of {run_trials} trials lost "
                f"after retry exhaustion ({'; '.join(lost_of[i][:2])})"
            )
        else:  # drained before this point's trials all ran
            failure_note[i] = (
                f"interrupted with {len(values)} of {run_trials} trials done"
            )
    missed = set(miss_indices)
    points = tuple(
        SuitePointResult(
            spec=spec,
            seed=point_seed,
            campaign=None if i in failure_note else campaign,
            cached=i not in missed,
            failure=failure_note.get(i),
        )
        for i, (spec, point_seed, campaign) in enumerate(
            zip(specs, seeds, campaigns)
        )
    )
    after = cache.stats
    return SweepResult(
        suite=suite,
        seed=run_seed,
        trials=run_trials,
        points=points,
        # this run's accounting, even on a cache shared across runs
        cache_stats=CacheStats(
            hits=after.hits - stats_before.hits,
            misses=after.misses - stats_before.misses,
            errors=after.errors - stats_before.errors,
            writes=after.writes - stats_before.writes,
            quarantined=after.quarantined - stats_before.quarantined,
        ),
        cache_enabled=cache.enabled,
        interrupted=outcome.interrupted,
        resumed_trials=sum(len(found) for found in checkpoint_of.values()),
        executed_trials=executed_trials,
        resilience=dict(outcome.counters),
    )


# ------------------------------------------------------- failure-regime sweep
@dataclass(frozen=True)
class SweepPoint:
    """One failure regime of the sweep and its campaign statistics."""

    mttf_periods: float
    mttr_periods: float | None
    shape: float
    seed: int
    stats: RuntimeStats
    group_size: int | None = None
    load_coupling: float = 0.0

    @property
    def series_label(self) -> str:
        """Label of the curve this point belongs to (one per mttr × shape,
        extended with the failure-world axes when they are swept)."""
        mttr = "∞" if self.mttr_periods is None else f"{self.mttr_periods:g}Δ"
        label = f"mttr={mttr}, shape={self.shape:g}"
        if self.group_size is not None:
            label += f", groups={self.group_size}"
        if self.load_coupling:
            label += f", load={self.load_coupling:g}"
        return label


@dataclass(frozen=True)
class RuntimeSweepResult:
    """All grid points of one failure-regime sweep, in grid order.

    ``sweep`` carries the generic :class:`SweepResult` this run was executed
    through (pivoting helpers, cache accounting); the flat fields keep the
    historical report shape.
    """

    spec: ScenarioSpec
    seed: int
    trials: int
    mttf_grid: tuple[float, ...]
    points: tuple[SweepPoint, ...]
    sweep: "SweepResult | None" = None

    def figure(self, metric: str) -> FigureSeries:
        """One panel: *metric* vs mttf, one curve per (mttr, shape) combo."""
        attr = SWEEP_METRICS[metric]
        series: dict[str, list[float]] = {}
        for point in self.points:
            series.setdefault(point.series_label, []).append(
                getattr(point.stats, attr)
            )
        # mean latency is reported in periods of the *trial* schedule, which
        # varies per workload; the panel still orders regimes correctly.
        return FigureSeries(
            name=f"runtime_sweep:{metric}",
            x_label="mttf (periods)",
            x=self.mttf_grid,
            series={label: tuple(vals) for label, vals in series.items()},
            description=(
                f"Online runtime {metric} vs mttf "
                f"({self.trials} trials/point, policy {self.spec.runtime.policy}, "
                f"admission {self.spec.runtime.admission})"
            ),
        )

    def figures(self) -> list[FigureSeries]:
        """Every panel of the sweep report, in :data:`SWEEP_METRICS` order."""
        return [self.figure(metric) for metric in SWEEP_METRICS]


def run_runtime_sweep(
    spec: Union[ScenarioSpec, RuntimeTrialSpec],
    mttf_grid: tuple[float, ...] = (50.0, 100.0, 200.0, 400.0),
    mttr_grid: tuple[float | None, ...] = (None, 25.0),
    shapes: tuple[float, ...] = (0.7, 1.0, 1.5),
    trials: int = 10,
    seed: int = 0,
    jobs: int | None = 1,
    cache=None,
    reduce: str = "traces",
    group_sizes: tuple[int | None, ...] | None = None,
    load_couplings: tuple[float, ...] | None = None,
) -> RuntimeSweepResult:
    """Sweep the failure-regime grid; deterministic for any *jobs* value.

    *group_sizes* / *load_couplings* optionally append the failure-world axes
    (:data:`EXTRA_SWEEP_AXES` — correlated crash-group size, load-dependent
    hazard coupling) after the historical mttf × mttr × shape grid; left at
    ``None`` the grid, its per-point seeds and the report are bit-identical
    to the three-axis sweep.

    Since the suite layer this is a thin adapter: the grid is the
    :class:`~repro.scenario.suite.SuiteSpec` over :data:`SWEEP_AXES` — ordered
    mttf-major → mttr → shape — executed by :func:`run_suite` (every point's
    campaign seed derived from *seed* in grid order before any work is
    dispatched, results bit-identical to the historical direct
    implementation).  *cache* enables spec-hash result caching and *reduce*
    the stats-only worker transport, exactly as in :func:`run_suite` — the
    sweep report only reads per-point statistics, so ``reduce="stats"`` is
    safe for any use of this function and cuts the inter-process transfer to
    a few floats per trial.
    """
    if not mttf_grid or not shapes:
        raise ValueError("mttf_grid and shapes must be non-empty")
    if any(m is None for m in mttf_grid) or any(s is None for s in shapes):
        raise ValueError("mttf_grid and shapes must be numeric (only mttr may be none)")
    if trials < 1:
        raise ValueError(f"trials must be >= 1, got {trials}")
    if isinstance(spec, RuntimeTrialSpec):
        warnings.warn(
            "passing a RuntimeTrialSpec to run_runtime_sweep is deprecated; "
            "build a ScenarioSpec (see RuntimeTrialSpec.to_scenario) — the "
            "signature will require one in a future release",
            DeprecationWarning,
            stacklevel=2,
        )
        spec = spec.to_scenario()
    axes: dict = dict(
        zip(SWEEP_AXES, (tuple(mttf_grid), tuple(mttr_grid), tuple(shapes)))
    )
    if group_sizes is not None:
        axes["faults.group_size"] = tuple(group_sizes)
    if load_couplings is not None:
        axes["faults.load_coupling"] = tuple(float(c) for c in load_couplings)
    suite = SuiteSpec(
        base=spec.updated({"faults.distribution": "weibull"}),
        axes=axes,
        name=f"{spec.name}-failure-regimes",
        trials=trials,
        seed=seed,
    )
    result = run_suite(suite, jobs=jobs, cache=cache, reduce=reduce)
    points = tuple(
        SweepPoint(
            mttf_periods=point.spec.faults.mttf_periods,
            mttr_periods=point.spec.faults.mttr_periods,
            shape=point.spec.faults.weibull_shape,
            seed=point.seed,
            stats=point.stats,
            group_size=point.spec.faults.group_size,
            load_coupling=point.spec.faults.load_coupling,
        )
        for point in result.points
    )
    return RuntimeSweepResult(
        spec=spec,
        seed=seed,
        trials=trials,
        mttf_grid=tuple(float(m) for m in mttf_grid),
        points=points,
        sweep=result,
    )
