"""Declarative scenarios: typed, serializable descriptions of one experiment.

The paper explores a tri-criteria space — latency × period × ε — and every
layer of this reproduction runs *scenarios* in it: a workload, a scheduling
heuristic, a failure regime and runtime options.  This package makes the
scenario a first-class object instead of an argument list:

* :mod:`repro.scenario.spec` — the frozen :class:`ScenarioSpec` dataclass
  tree (:class:`WorkloadSpec`, :class:`SchedulerSpec`, :class:`FaultSpec`,
  :class:`RuntimeSpec`) with JSON round-trip and validation;
* :mod:`repro.scenario.serialize` — dict/JSON (de)serialization with
  actionable schema errors;
* :mod:`repro.scenario.grid` — axis-dict → spec-list expansion for sweeps;
* :mod:`repro.scenario.suite` — :class:`SuiteSpec`, one JSON file describing a
  whole sweep campaign (base spec + axes + trials + seed);
* :mod:`repro.scenario.registries` — name → factory registries for workload
  generators, platform builders and schedulers (pure-data specs reference
  components by name);
* :mod:`repro.scenario.run` — the canonical spec → workload → schedule →
  fault trace → online trace pipeline shared by every front end.

The user-facing entry point is the :class:`repro.api.Session` facade; sweeps
and campaigns consume specs directly.
"""

from repro.scenario.grid import apply_changes, expand_grid, normalize_axis
from repro.scenario.registries import (
    PLATFORM_BUILDERS,
    SCHEDULERS,
    WORKLOAD_GENERATORS,
    SchedulerEntry,
)
from repro.scenario.run import (
    build_fault_trace,
    build_schedule,
    build_workload,
    resolve_period,
    resolve_seeds,
    run_scenario_online,
)
from repro.scenario.serialize import spec_from_dict, spec_to_dict
from repro.scenario.spec import (
    FaultSpec,
    RuntimeSpec,
    ScenarioSpec,
    SchedulerSpec,
    WorkloadSpec,
)
from repro.scenario.suite import SuiteSpec

__all__ = [
    "ScenarioSpec",
    "SuiteSpec",
    "WorkloadSpec",
    "SchedulerSpec",
    "FaultSpec",
    "RuntimeSpec",
    "spec_to_dict",
    "spec_from_dict",
    "apply_changes",
    "expand_grid",
    "normalize_axis",
    "WORKLOAD_GENERATORS",
    "PLATFORM_BUILDERS",
    "SCHEDULERS",
    "SchedulerEntry",
    "resolve_seeds",
    "build_workload",
    "build_schedule",
    "build_fault_trace",
    "resolve_period",
    "run_scenario_online",
]
