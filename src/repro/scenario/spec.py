"""The declarative scenario specification tree.

A :class:`ScenarioSpec` describes *everything* needed to run one point of the
tri-criteria space (latency × period × ε) explored by the paper — workload,
scheduler, failure regime and runtime options — as a frozen, composable tree
of pure-data dataclasses:

* :class:`WorkloadSpec` — which workload generator (by name, resolved through
  :data:`~repro.scenario.registries.WORKLOAD_GENERATORS`), its size and seed;
* :class:`SchedulerSpec` — which scheduling heuristic (by name), the target
  ε and period (explicit, or derived from the throughput-slack rule);
* :class:`FaultSpec` — the stochastic failure regime (mttf/mttr, distribution,
  Weibull shape, trace seed);
* :class:`RuntimeSpec` — the online-runtime options (rescheduling and
  admission policies by name, checkpoint mode, rebuild behaviour).

Because a spec is pure data it serializes losslessly to JSON
(:meth:`ScenarioSpec.to_dict` / :meth:`ScenarioSpec.from_dict`, see
:mod:`repro.scenario.serialize`), expands into sweep grids
(:meth:`ScenarioSpec.grid`, see :mod:`repro.scenario.grid`), pickles cleanly
across campaign worker processes, and drives every front end — scheduling,
offline simulation, the online runtime and Monte-Carlo campaigns — through
the :class:`~repro.api.Session` facade.

Every field is validated at construction; a bad value raises
:class:`~repro.exceptions.SpecificationError` (a :class:`ValueError`) whose
message names the field, and every name lookup suggests close matches.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, fields, replace
from typing import Mapping, Sequence

from repro.exceptions import SpecificationError
from repro.failures.scenarios import FAULT_DISTRIBUTIONS
from repro.runtime.admission import ADMISSION_POLICIES
from repro.runtime.policies import RESCHEDULE_POLICIES
from repro.scenario.registries import PLATFORM_BUILDERS, SCHEDULERS, WORKLOAD_GENERATORS

__all__ = [
    "WorkloadSpec",
    "SchedulerSpec",
    "FaultSpec",
    "RuntimeSpec",
    "ScenarioSpec",
]


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise SpecificationError(message)


def _check_name(registry, name: str, field_name: str) -> None:
    if name not in registry:
        raise SpecificationError(f"{field_name}: {registry.describe_unknown(name)}")


def _set(obj, name: str, value) -> None:
    object.__setattr__(obj, name, value)


def _check_options(options, owner: str) -> dict:
    _require(
        isinstance(options, Mapping),
        f"{owner}.options must be a mapping of keyword arguments, "
        f"got {type(options).__name__}",
    )
    _require(
        all(isinstance(k, str) for k in options),
        f"{owner}.options keys must be strings",
    )
    return dict(options)


@dataclass(frozen=True)
class WorkloadSpec:
    """Which workload to build: a named generator plus its parameters.

    ``generator`` names an entry of
    :data:`~repro.scenario.registries.WORKLOAD_GENERATORS` (``"paper"`` is the
    random Section-5 workload; ``"chain"``, ``"video"``, … are the example
    graphs).  ``platform`` optionally names an entry of
    :data:`~repro.scenario.registries.PLATFORM_BUILDERS` (defaults to the
    paper platform); the ``"paper"`` generator always builds its own paper
    platform, so another ``platform`` name is rejected rather than silently
    ignored.  ``num_tasks`` sizes the generators that take a size (``paper``,
    ``chain``, ``fork-join``, ``layered``); fixed-shape example graphs
    (``video``, ``dsp``, …) are sized through ``options`` instead.  ``seed``
    pins the workload RNG; when ``None`` the run seed derives it (one
    independent workload per Monte-Carlo trial).  ``options`` are extra
    generator keyword arguments — JSON scalars only, so the spec stays
    serializable.
    """

    generator: str = "paper"
    granularity: float = 1.0
    num_tasks: int | None = 30
    num_processors: int = 10
    task_range: tuple[int, int] | None = None
    platform: str | None = None
    seed: int | None = None
    options: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        _check_name(WORKLOAD_GENERATORS, self.generator, "workload.generator")
        _require(
            isinstance(self.granularity, (int, float)) and self.granularity > 0,
            f"workload.granularity must be > 0, got {self.granularity!r}",
        )
        _set(self, "granularity", float(self.granularity))
        if self.num_tasks is not None:
            _require(
                isinstance(self.num_tasks, int) and self.num_tasks >= 2,
                f"workload.num_tasks must be an int >= 2 or null, got {self.num_tasks!r}",
            )
        _require(
            isinstance(self.num_processors, int) and self.num_processors >= 1,
            f"workload.num_processors must be an int >= 1, got {self.num_processors!r}",
        )
        if self.task_range is not None:
            _require(
                isinstance(self.task_range, Sequence)
                and len(self.task_range) == 2
                and all(isinstance(v, int) for v in self.task_range),
                f"workload.task_range must be [low, high] ints or null, "
                f"got {self.task_range!r}",
            )
            low, high = self.task_range
            _require(
                1 <= low <= high,
                f"workload.task_range needs 1 <= low <= high, got {self.task_range!r}",
            )
            _set(self, "task_range", (low, high))
        if self.platform is not None:
            _check_name(PLATFORM_BUILDERS, self.platform, "workload.platform")
            _require(
                self.generator != "paper" or self.platform == "paper",
                f"workload.platform: the 'paper' generator always builds the "
                f"paper platform and cannot honour {self.platform!r}; omit "
                f"platform or pick a graph generator (chain, layered, ...)",
            )
        if self.seed is not None:
            _require(
                isinstance(self.seed, int) and self.seed >= 0,
                f"workload.seed must be a non-negative int or null, got {self.seed!r}",
            )
        _set(self, "options", _check_options(self.options, "workload"))


@dataclass(frozen=True)
class SchedulerSpec:
    """Which scheduling heuristic builds the ε-fault-tolerant schedule.

    ``name`` is an entry of :data:`~repro.scenario.registries.SCHEDULERS`.
    ``period`` is the explicit iteration period Δ; when ``None`` it is derived
    from the workload with the throughput-slack rule of the experiments
    (``period_slack``, see :func:`repro.experiments.config.workload_period`).
    With ``fallback=True`` (the historical Monte-Carlo behaviour) a scenario
    that cannot be scheduled degrades gracefully: ε is lowered step by step
    and LTF is tried after the requested heuristic before giving up.
    ``options`` are extra scheduler keyword arguments (``strict_resilience``,
    ``chunk_size``, …).
    """

    name: str = "rltf"
    epsilon: int = 2
    period: float | None = None
    period_slack: float = 2.0
    fallback: bool = True
    options: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        _check_name(SCHEDULERS, self.name, "scheduler.name")
        _require(
            isinstance(self.epsilon, int) and self.epsilon >= 0,
            f"scheduler.epsilon must be an int >= 0, got {self.epsilon!r}",
        )
        entry = SCHEDULERS.lookup(self.name)
        if not entry.supports_epsilon:
            _require(
                self.epsilon == 0,
                f"scheduler.epsilon: the {self.name!r} scheduler does not replicate "
                f"tasks, epsilon must be 0 (got {self.epsilon})",
            )
        if self.period is not None:
            _require(
                isinstance(self.period, (int, float)) and self.period > 0,
                f"scheduler.period must be > 0 or null, got {self.period!r}",
            )
            _set(self, "period", float(self.period))
        _require(
            isinstance(self.period_slack, (int, float)) and self.period_slack > 0,
            f"scheduler.period_slack must be > 0, got {self.period_slack!r}",
        )
        _set(self, "period_slack", float(self.period_slack))
        _require(
            isinstance(self.fallback, bool),
            f"scheduler.fallback must be a bool, got {self.fallback!r}",
        )
        _set(self, "options", _check_options(self.options, "scheduler"))


@dataclass(frozen=True)
class FaultSpec:
    """The stochastic failure regime the online runtime executes under.

    Times are expressed in multiples of the schedule period Δ so a spec is
    meaningful across workloads: ``mttf_periods=60`` means a processor fails
    on average after 60 stream iterations.  ``mttr_periods=None`` means
    fail-stop (no repair, as in the paper).  ``repair_shape`` makes repair
    delays Weibull(``repair_shape``, mean ``mttr_periods``·Δ) instead of the
    default exponential — ``None`` keeps the historical exponential draw
    bit-for-bit (a Weibull with shape 1 has the same law but consumes the RNG
    stream differently).  ``seed`` pins the fault-trace RNG; when ``None``
    the run seed derives it.

    The remaining fields open the richer failure worlds of
    :mod:`repro.failures.processes`:

    * ``group_size`` — correlated crash groups: processors are chunked into
      groups of this size (declaration order) and each group fails as one
      unit.  ``None`` (default) means independent failures, or the platform's
      own ``failure_domains`` topology when it declares one.
    * ``load_coupling`` — load-dependent hazards: failure intensity is
      multiplied by ``1 + load_coupling × utilization`` of the (group's mean)
      utilization in the initial schedule.  ``0`` (default) disables it.
    * ``trace_file`` — trace-driven replay: path to a ``time,node,down|up``
      CSV (see :mod:`repro.failures.trace_io`) replayed instead of sampling;
      mutually exclusive with every other stochastic knob above.
    * ``spares`` / ``join_periods`` / ``preempt_periods`` — elastic
      platforms: the last ``spares`` processors start outside the platform
      and join after exponential(``join_periods``·Δ) delays;
      ``preempt_periods`` adds spot-preemption (crash then rejoin) renewals
      on the active processors.
    """

    mttf_periods: float = 500.0
    mttr_periods: float | None = None
    distribution: str = "exponential"
    weibull_shape: float = 1.5
    repair_shape: float | None = None
    seed: int | None = None
    group_size: int | None = None
    load_coupling: float = 0.0
    trace_file: str | None = None
    spares: int = 0
    join_periods: float | None = None
    preempt_periods: float | None = None

    def __post_init__(self) -> None:
        _require(
            isinstance(self.mttf_periods, (int, float)) and self.mttf_periods > 0,
            f"faults.mttf_periods must be > 0, got {self.mttf_periods!r}",
        )
        _set(self, "mttf_periods", float(self.mttf_periods))
        if self.mttr_periods is not None:
            _require(
                isinstance(self.mttr_periods, (int, float)) and self.mttr_periods > 0,
                f"faults.mttr_periods must be > 0 or null, got {self.mttr_periods!r}",
            )
            _set(self, "mttr_periods", float(self.mttr_periods))
        _require(
            self.distribution in FAULT_DISTRIBUTIONS,
            f"faults.distribution must be one of {list(FAULT_DISTRIBUTIONS)}, "
            f"got {self.distribution!r}",
        )
        _require(
            isinstance(self.weibull_shape, (int, float)) and self.weibull_shape > 0,
            f"faults.weibull_shape must be > 0, got {self.weibull_shape!r}",
        )
        _set(self, "weibull_shape", float(self.weibull_shape))
        if self.repair_shape is not None:
            _require(
                isinstance(self.repair_shape, (int, float)) and self.repair_shape > 0,
                f"faults.repair_shape must be > 0 or null, got {self.repair_shape!r}",
            )
            _set(self, "repair_shape", float(self.repair_shape))
        if self.seed is not None:
            _require(
                isinstance(self.seed, int) and self.seed >= 0,
                f"faults.seed must be a non-negative int or null, got {self.seed!r}",
            )
        if self.group_size is not None:
            _require(
                isinstance(self.group_size, int) and self.group_size >= 1,
                f"faults.group_size must be an int >= 1 or null, got {self.group_size!r}",
            )
        _require(
            isinstance(self.load_coupling, (int, float)) and self.load_coupling >= 0,
            f"faults.load_coupling must be >= 0, got {self.load_coupling!r}",
        )
        _set(self, "load_coupling", float(self.load_coupling))
        _require(
            isinstance(self.spares, int) and not isinstance(self.spares, bool)
            and self.spares >= 0,
            f"faults.spares must be an int >= 0, got {self.spares!r}",
        )
        if self.join_periods is not None:
            _require(
                isinstance(self.join_periods, (int, float)) and self.join_periods > 0,
                f"faults.join_periods must be > 0 or null, got {self.join_periods!r}",
            )
            _set(self, "join_periods", float(self.join_periods))
        if self.preempt_periods is not None:
            _require(
                isinstance(self.preempt_periods, (int, float)) and self.preempt_periods > 0,
                f"faults.preempt_periods must be > 0 or null, got {self.preempt_periods!r}",
            )
            _set(self, "preempt_periods", float(self.preempt_periods))
        _require(
            not ((self.spares or self.preempt_periods is not None)
                 and self.join_periods is None),
            "faults.join_periods is required when faults.spares > 0 or "
            "faults.preempt_periods is set",
        )
        if self.trace_file is not None:
            _require(
                isinstance(self.trace_file, str) and bool(self.trace_file),
                f"faults.trace_file must be a non-empty string or null, "
                f"got {self.trace_file!r}",
            )
            stochastic = [
                name
                for name, value in (
                    ("repair_shape", self.repair_shape),
                    ("group_size", self.group_size),
                    ("load_coupling", self.load_coupling or None),
                    ("spares", self.spares or None),
                    ("join_periods", self.join_periods),
                    ("preempt_periods", self.preempt_periods),
                )
                if value is not None
            ]
            _require(
                not stochastic,
                f"faults.trace_file replays a recorded trace and cannot be "
                f"combined with faults.{stochastic[0] if stochastic else ''}",
            )

    @property
    def is_elastic(self) -> bool:
        """True when the regime adds capacity at runtime (spares/preemption)."""
        return bool(self.spares) or self.preempt_periods is not None


@dataclass(frozen=True)
class RuntimeSpec:
    """Options of the online runtime (stream length, policies, checkpointing).

    ``policy`` and ``admission`` name entries of the runtime policy registries
    (:data:`~repro.runtime.policies.RESCHEDULE_POLICIES`,
    :data:`~repro.runtime.admission.ADMISSION_POLICIES`).
    """

    num_datasets: int = 200
    policy: str = "rltf"
    admission: str = "shed"
    queue_capacity: int | None = 64
    checkpoint: bool = True
    rebuild_on_repair: bool = False
    rebuild_overhead: float = 1.0
    fast_forward: bool = True

    def __post_init__(self) -> None:
        _require(
            isinstance(self.num_datasets, int) and self.num_datasets >= 1,
            f"runtime.num_datasets must be an int >= 1, got {self.num_datasets!r}",
        )
        _check_name(RESCHEDULE_POLICIES, self.policy, "runtime.policy")
        _check_name(ADMISSION_POLICIES, self.admission, "runtime.admission")
        if self.queue_capacity is not None:
            _require(
                isinstance(self.queue_capacity, int) and self.queue_capacity >= 1,
                f"runtime.queue_capacity must be an int >= 1 or null, "
                f"got {self.queue_capacity!r}",
            )
        _require(
            isinstance(self.checkpoint, bool),
            f"runtime.checkpoint must be a bool, got {self.checkpoint!r}",
        )
        _require(
            isinstance(self.rebuild_on_repair, bool),
            f"runtime.rebuild_on_repair must be a bool, got {self.rebuild_on_repair!r}",
        )
        _require(
            isinstance(self.rebuild_overhead, (int, float)) and self.rebuild_overhead >= 0,
            f"runtime.rebuild_overhead must be >= 0, got {self.rebuild_overhead!r}",
        )
        _set(self, "rebuild_overhead", float(self.rebuild_overhead))
        _require(
            isinstance(self.fast_forward, bool),
            f"runtime.fast_forward must be a bool, got {self.fast_forward!r}",
        )


#: the four sections of a scenario, in canonical serialization order.
SECTION_TYPES: dict[str, type] = {
    "workload": WorkloadSpec,
    "scheduler": SchedulerSpec,
    "faults": FaultSpec,
    "runtime": RuntimeSpec,
}


@dataclass(frozen=True)
class ScenarioSpec:
    """One fully-specified scenario: workload × scheduler × faults × runtime."""

    workload: WorkloadSpec = field(default_factory=WorkloadSpec)
    scheduler: SchedulerSpec = field(default_factory=SchedulerSpec)
    faults: FaultSpec = field(default_factory=FaultSpec)
    runtime: RuntimeSpec = field(default_factory=RuntimeSpec)
    name: str = "scenario"

    def __post_init__(self) -> None:
        for section, cls in SECTION_TYPES.items():
            value = getattr(self, section)
            if isinstance(value, Mapping):  # accept plain dict sections
                from repro.scenario.serialize import section_from_dict

                _set(self, section, section_from_dict(section, value))
            elif not isinstance(value, cls):
                raise SpecificationError(
                    f"{section} must be a {cls.__name__} or a mapping, "
                    f"got {type(value).__name__}"
                )
        _require(
            isinstance(self.name, str) and bool(self.name),
            f"name must be a non-empty string, got {self.name!r}",
        )
        _require(
            self.scheduler.epsilon < self.workload.num_processors,
            f"scheduler.epsilon={self.scheduler.epsilon} needs "
            f"epsilon < workload.num_processors={self.workload.num_processors}",
        )
        _require(
            self.faults.spares < self.workload.num_processors,
            f"faults.spares={self.faults.spares} must leave at least one "
            f"active processor (workload.num_processors="
            f"{self.workload.num_processors})",
        )
        _require(
            self.scheduler.epsilon < self.workload.num_processors - self.faults.spares,
            f"scheduler.epsilon={self.scheduler.epsilon} needs epsilon < "
            f"active processors (num_processors={self.workload.num_processors} "
            f"minus faults.spares={self.faults.spares})",
        )

    # ------------------------------------------------------------- composition
    def updated(self, changes: Mapping[str, object]) -> "ScenarioSpec":
        """A copy with dotted-path overrides applied.

        Dotted paths replace individual leaf fields; ``"name"`` addresses the
        top level.  Unknown paths raise
        :class:`~repro.exceptions.SpecificationError` with close-match
        suggestions, and the copy revalidates as a whole.

        >>> spec = ScenarioSpec().updated({
        ...     "faults.mttf_periods": 60,
        ...     "runtime.policy": "remap",
        ... })
        >>> spec.faults.mttf_periods
        60.0
        >>> spec.runtime.policy
        'remap'
        """
        from repro.scenario.grid import apply_changes

        return apply_changes(self, changes)

    def grid(self, axes: Mapping[str, Sequence] | None = None, **kw_axes) -> list["ScenarioSpec"]:
        """Expand axis dicts into the cartesian list of scenario specs.

        Axes are dotted paths mapped to value sequences; the product iterates
        the *last* axis fastest (first axis major), matching the grid order of
        :func:`repro.experiments.sweep.run_runtime_sweep`.  Keyword axes use
        ``__`` for the dot: ``grid(faults__mttf_periods=[50, 100])``.

        >>> specs = ScenarioSpec().grid({
        ...     "faults.mttf_periods": [50.0, 100.0],
        ...     "faults.mttr_periods": [None, 25.0],
        ... })
        >>> len(specs)
        4
        """
        from repro.scenario.grid import expand_grid

        merged: dict[str, Sequence] = dict(axes or {})
        for key, values in kw_axes.items():
            merged[key.replace("__", ".")] = values
        return expand_grid(self, merged)

    def with_name(self, name: str) -> "ScenarioSpec":
        """A copy of the spec renamed to *name*."""
        return replace(self, name=name)

    # ---------------------------------------------------------- serialization
    def to_dict(self) -> dict:
        """Plain nested dict (JSON types only), round-tripping via from_dict.

        The round trip is exact — it is what makes specs content-addressable
        for the result cache (:mod:`repro.cache`).

        >>> ScenarioSpec.from_dict(ScenarioSpec().to_dict()) == ScenarioSpec()
        True
        """
        from repro.scenario.serialize import spec_to_dict

        return spec_to_dict(self)

    @classmethod
    def from_dict(cls, data: Mapping) -> "ScenarioSpec":
        """Build a spec from a nested dict, validating keys and values."""
        from repro.scenario.serialize import spec_from_dict

        return spec_from_dict(data)

    def to_json(self, indent: int | None = 2) -> str:
        """JSON document of the spec (the on-disk scenario-file format)."""
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "ScenarioSpec":
        """Parse a JSON document produced by :meth:`to_json` (or by hand)."""
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise SpecificationError(f"scenario is not valid JSON: {exc}") from None
        return cls.from_dict(data)

    @classmethod
    def from_file(cls, path) -> "ScenarioSpec":
        """Load a scenario from a JSON file."""
        from pathlib import Path

        return cls.from_json(Path(path).read_text())

    def save(self, path) -> None:
        """Write the spec to *path* as JSON."""
        from pathlib import Path

        Path(path).write_text(self.to_json() + "\n")

    # ---------------------------------------------------------------- display
    def describe(self) -> str:
        """One-line human summary (used by the CLI and reports)."""
        mttr = (
            "∞"
            if self.faults.mttr_periods is None
            else f"{self.faults.mttr_periods:g}Δ"
        )
        return (
            f"{self.name}: {self.workload.generator} workload "
            f"(g={self.workload.granularity:g}, m={self.workload.num_processors}), "
            f"{self.scheduler.name} ε={self.scheduler.epsilon}, "
            f"{self.faults.distribution} faults mttf={self.faults.mttf_periods:g}Δ "
            f"mttr={mttr}, policy={self.runtime.policy}, "
            f"admission={self.runtime.admission}"
        )


def _spec_paths() -> list[str]:
    """Every valid dotted override path (used for error suggestions)."""
    paths = ["name"]
    for section, cls in SECTION_TYPES.items():
        paths.extend(f"{section}.{f.name}" for f in fields(cls))
    return paths
