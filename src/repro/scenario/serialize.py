"""Dict/JSON (de)serialization of scenario specs, with schema validation.

The on-disk format is a nested JSON object with one key per spec section::

    {
      "name": "my-scenario",
      "workload":  {"generator": "paper", "granularity": 1.0, ...},
      "scheduler": {"name": "rltf", "epsilon": 2, ...},
      "faults":    {"mttf_periods": 60.0, "mttr_periods": 30.0, ...},
      "runtime":   {"admission": "queue", "queue_capacity": null, ...}
    }

Every section and every field is optional — omitted keys take the dataclass
defaults — so a scenario file only says what it changes.  Unknown keys are
rejected (not silently ignored) with close-match suggestions, and bad values
surface the validating dataclass's message prefixed with the section, so a
typo in a 200-line sweep config points at the exact line to fix.  The
round-trip is exact: ``spec_from_dict(spec_to_dict(spec)) == spec``.
"""

from __future__ import annotations

from dataclasses import fields
from typing import Mapping

from repro.exceptions import SpecificationError
from repro.scenario.spec import SECTION_TYPES, ScenarioSpec
from repro.utils.registry import close_matches_hint

__all__ = ["spec_to_dict", "spec_from_dict", "section_from_dict"]

#: schema version stamped into serialized specs (tolerated, never required).
SCHEMA_VERSION = 1

#: spec fields serialized as JSON arrays but stored as tuples.
_TUPLE_FIELDS = frozenset({"task_range"})

_TOP_LEVEL_KEYS = ("name", "schema", *SECTION_TYPES)


def _suggest(key: str, allowed) -> str:
    return (
        f"unknown key {key!r}, expected one of {sorted(allowed)}"
        f"{close_matches_hint(key, allowed)}"
    )


def _plain(value):
    """Convert a spec field value to JSON-compatible types."""
    if isinstance(value, tuple):
        return list(value)
    if isinstance(value, dict):
        return dict(value)
    return value


def spec_to_dict(spec: ScenarioSpec) -> dict:
    """Nested plain dict of *spec* — JSON types only, defaults included."""
    out: dict = {"schema": SCHEMA_VERSION, "name": spec.name}
    for section, cls in SECTION_TYPES.items():
        value = getattr(spec, section)
        out[section] = {f.name: _plain(getattr(value, f.name)) for f in fields(cls)}
    return out


def section_from_dict(section: str, data: Mapping):
    """Build one spec section (e.g. ``"faults"``) from a mapping.

    Validates the keys against the section's fields (with close-match
    suggestions), converts JSON arrays back to tuples where needed, and
    prefixes any value error with the section name.
    """
    cls = SECTION_TYPES[section]
    if not isinstance(data, Mapping):
        raise SpecificationError(
            f"{section} section must be a JSON object, got {type(data).__name__}"
        )
    allowed = {f.name for f in fields(cls)}
    kwargs = {}
    for key, value in data.items():
        if key not in allowed:
            raise SpecificationError(f"in {section} section: {_suggest(key, allowed)}")
        if key in _TUPLE_FIELDS and isinstance(value, list):
            value = tuple(value)
        kwargs[key] = value
    try:
        return cls(**kwargs)
    except SpecificationError:
        raise
    except (TypeError, ValueError) as exc:
        raise SpecificationError(f"invalid {section} section: {exc}") from None


def spec_from_dict(data: Mapping) -> ScenarioSpec:
    """Build a :class:`ScenarioSpec` from a nested mapping, validating keys."""
    if not isinstance(data, Mapping):
        raise SpecificationError(
            f"a scenario must be a JSON object, got {type(data).__name__}"
        )
    kwargs: dict = {}
    for key, value in data.items():
        if key not in _TOP_LEVEL_KEYS:
            raise SpecificationError(_suggest(key, _TOP_LEVEL_KEYS))
        if key == "schema":
            if value not in (SCHEMA_VERSION,):
                raise SpecificationError(
                    f"unsupported scenario schema version {value!r} "
                    f"(this library reads version {SCHEMA_VERSION})"
                )
            continue
        if key == "name":
            kwargs["name"] = value
            continue
        kwargs[key] = section_from_dict(key, value)
    return ScenarioSpec(**kwargs)
