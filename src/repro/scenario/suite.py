"""Scenario suites: one file describing a whole sweep campaign.

A :class:`SuiteSpec` is a base :class:`~repro.scenario.spec.ScenarioSpec` plus
named *axes* — dotted spec paths mapped to value lists — plus the campaign
parameters (trials per point, campaign seed).  It is the declarative form of
"sweep these axes of this scenario": the grid points are the cartesian product
of the axes applied to the base (first axis major, exactly
:meth:`ScenarioSpec.grid <repro.scenario.spec.ScenarioSpec.grid>`), each point
runs as one seeded Monte-Carlo campaign, and the whole suite executes as a
single sharded campaign through :func:`repro.experiments.sweep.run_suite`, the
:meth:`Session.sweep <repro.api.Session.sweep>` facade, or ``repro-streaming
suite run suite.json``.

Like scenarios, suites are pure data with an exact JSON round-trip, so a suite
file *is* the experiment definition::

    {
      "schema": 1,
      "name": "failure-regimes",
      "trials": 10,
      "seed": 0,
      "base": {"workload": {"num_tasks": 15, "num_processors": 6},
               "scheduler": {"epsilon": 1}},
      "axes": {"faults.mttf_periods": [50, 100, 200],
               "faults.mttr_periods": [null, 25]}
    }

Axis order matters — it fixes the grid order and therefore the per-point seed
derivation — and JSON objects preserve it.

>>> suite = SuiteSpec(axes={"faults.mttf_periods": [50.0, 100.0]}, trials=5)
>>> len(suite.points())
2
>>> SuiteSpec.from_json(suite.to_json()) == suite
True
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Mapping, Sequence

from repro.exceptions import SpecificationError
from repro.scenario.grid import expand_grid, normalize_axis
from repro.scenario.serialize import SCHEMA_VERSION, spec_from_dict, spec_to_dict
from repro.scenario.spec import ScenarioSpec, _spec_paths

__all__ = ["SuiteSpec"]

_TOP_LEVEL_KEYS = ("schema", "name", "trials", "seed", "base", "axes")


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise SpecificationError(message)


def _set(obj, name: str, value) -> None:
    object.__setattr__(obj, name, value)


@dataclass(frozen=True, eq=False)
class SuiteSpec:
    """One sweep campaign: a base scenario, named axes, trials and a seed.

    ``axes`` maps dotted spec paths (``"faults.mttf_periods"``) to non-empty
    value lists; the declared order is the grid order (first axis slowest).
    Treat the dict as read-only — like the ``options`` dicts of the scenario
    sections, it is plain data on a frozen spec.  ``trials`` is the
    Monte-Carlo campaign size of every grid point and ``seed`` the campaign
    seed the per-point seeds derive from — both are defaults the runner can
    override at execution time.

    Equality is **axis-order sensitive** (hand-written, not the dataclass
    dict comparison): axis order fixes the grid order and therefore the
    per-point seed derivation, so two suites differing only in axis order
    produce different results and must not compare equal.
    """

    base: ScenarioSpec = field(default_factory=ScenarioSpec)
    axes: dict = field(default_factory=dict)
    name: str = "suite"
    trials: int = 10
    seed: int = 0

    def __post_init__(self) -> None:
        if isinstance(self.base, Mapping):
            _set(self, "base", spec_from_dict(self.base))
        elif not isinstance(self.base, ScenarioSpec):
            raise SpecificationError(
                f"suite base must be a ScenarioSpec or a mapping, "
                f"got {type(self.base).__name__}"
            )
        _require(
            isinstance(self.axes, Mapping),
            f"suite axes must be a mapping of dotted paths to value lists, "
            f"got {type(self.axes).__name__}",
        )
        valid_paths = set(_spec_paths())
        axes: dict[str, tuple] = {}
        for path, values in self.axes.items():
            if path not in valid_paths:
                from repro.utils.registry import close_matches_hint

                raise SpecificationError(
                    f"unknown suite axis {path!r} (axes are 'section.field' "
                    f"like 'faults.mttf_periods')"
                    f"{close_matches_hint(path, valid_paths)}"
                )
            axes[path] = normalize_axis(path, values)
        _set(self, "axes", axes)
        _require(
            isinstance(self.name, str) and bool(self.name),
            f"suite name must be a non-empty string, got {self.name!r}",
        )
        # bool is an int subclass: "trials": true must not mean 1 trial
        _require(
            isinstance(self.trials, int)
            and not isinstance(self.trials, bool)
            and self.trials >= 1,
            f"suite trials must be an int >= 1, got {self.trials!r}",
        )
        _require(
            isinstance(self.seed, int)
            and not isinstance(self.seed, bool)
            and self.seed >= 0,
            f"suite seed must be a non-negative int, got {self.seed!r}",
        )

    def __eq__(self, other) -> bool:
        if not isinstance(other, SuiteSpec):
            return NotImplemented
        return (
            self.base == other.base
            and tuple(self.axes.items()) == tuple(other.axes.items())
            and self.name == other.name
            and self.trials == other.trials
            and self.seed == other.seed
        )

    __hash__ = None  # axes are a dict; suites are not hashable

    # --------------------------------------------------------------- expansion
    @property
    def num_points(self) -> int:
        """Grid size: the product of the axis lengths (1 with no axes)."""
        count = 1
        for values in self.axes.values():
            count *= len(values)
        return count

    def axis_values(self, path: str) -> tuple:
        """The declared values of one axis (raises for non-axes)."""
        if path not in self.axes:
            raise SpecificationError(
                f"{path!r} is not an axis of suite {self.name!r} "
                f"(axes: {list(self.axes)})"
            )
        return self.axes[path]

    def points(self) -> list[ScenarioSpec]:
        """Every grid point as a validated spec, in grid order.

        >>> suite = SuiteSpec(axes={"faults.mttf_periods": [50.0, 100.0],
        ...                         "faults.mttr_periods": [None, 25.0]})
        >>> [p.faults.mttf_periods for p in suite.points()]
        [50.0, 50.0, 100.0, 100.0]
        """
        return expand_grid(self.base, self.axes)

    def smoke(
        self,
        max_axis_values: int = 2,
        max_datasets: int = 20,
        trials: int = 1,
    ) -> "SuiteSpec":
        """A shrunken copy for CI smoke runs: same shape, a fraction of the cost.

        Every axis is truncated to its first *max_axis_values* values, the
        stream is capped at *max_datasets* data sets — including a
        ``runtime.num_datasets`` *axis*, whose values are capped (and
        deduplicated) too — and every point runs *trials* trials: the
        configuration path is exercised end to end without the full
        Monte-Carlo cost.
        """
        base = self.base.updated(
            {"runtime.num_datasets": min(self.base.runtime.num_datasets, max_datasets)}
        )
        axes: dict[str, tuple] = {}
        for path, values in self.axes.items():
            if path == "runtime.num_datasets":
                # cap each value, then dedupe (capping may collapse values,
                # and duplicate axis values are rejected) keeping first-seen
                # order
                capped = dict.fromkeys(min(v, max_datasets) for v in values)
                values = tuple(capped)
            axes[path] = values[:max_axis_values]
        return replace(self, base=base, axes=axes, trials=trials)

    # ------------------------------------------------------------ serialization
    def to_dict(self) -> dict:
        """Plain nested dict (JSON types only), round-tripping via from_dict."""
        return {
            "schema": SCHEMA_VERSION,
            "name": self.name,
            "trials": self.trials,
            "seed": self.seed,
            "base": spec_to_dict(self.base),
            "axes": {path: list(values) for path, values in self.axes.items()},
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "SuiteSpec":
        """Build a suite from a nested mapping, validating keys and values."""
        if not isinstance(data, Mapping):
            raise SpecificationError(
                f"a suite must be a JSON object, got {type(data).__name__}"
            )
        from repro.utils.registry import close_matches_hint

        kwargs: dict = {}
        for key, value in data.items():
            if key not in _TOP_LEVEL_KEYS:
                hint = close_matches_hint(key, _TOP_LEVEL_KEYS)
                extra = (
                    " (is this a scenario file? run it with "
                    "'repro-streaming run', or wrap it under a 'base' key)"
                    if key in ("workload", "scheduler", "faults", "runtime")
                    else ""
                )
                raise SpecificationError(
                    f"unknown suite key {key!r}, expected one of "
                    f"{sorted(_TOP_LEVEL_KEYS)}{hint}{extra}"
                )
            if key == "schema":
                if value not in (SCHEMA_VERSION,):
                    raise SpecificationError(
                        f"unsupported suite schema version {value!r} "
                        f"(this library reads version {SCHEMA_VERSION})"
                    )
                continue
            kwargs[key] = value
        return cls(**kwargs)

    def to_json(self, indent: int | None = 2) -> str:
        """JSON document of the suite (the on-disk suite-file format)."""
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "SuiteSpec":
        """Parse a JSON document produced by :meth:`to_json` (or by hand)."""
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise SpecificationError(f"suite is not valid JSON: {exc}") from None
        return cls.from_dict(data)

    @classmethod
    def from_file(cls, path: str | Path) -> "SuiteSpec":
        """Load a suite from a JSON file (``suite.json``)."""
        return cls.from_json(Path(path).read_text())

    def save(self, path: str | Path) -> None:
        """Write the suite to *path* as JSON."""
        Path(path).write_text(self.to_json() + "\n")

    # ----------------------------------------------------------------- display
    def describe(self, trials: int | None = None, seed: int | None = None) -> str:
        """One-line human summary (used by the CLI and reports).

        *trials* / *seed* override the displayed values — the runner passes
        the values a run actually executed with, which ``--trials``/``--seed``
        may have changed from the suite's declared defaults.
        """
        axes = " × ".join(
            f"{path}[{len(values)}]" for path, values in self.axes.items()
        ) or "no axes"
        return (
            f"{self.name}: {self.num_points} points ({axes}), "
            f"{self.trials if trials is None else trials} trials/point, "
            f"seed {self.seed if seed is None else seed} — "
            f"base {self.base.describe()}"
        )
