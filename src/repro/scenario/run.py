"""The canonical spec → execution pipeline.

One module owns the path from a pure-data :class:`~repro.scenario.spec.
ScenarioSpec` to live objects — workload, schedule, fault trace, online trace
— so that every front end (the :class:`~repro.api.Session` facade, the
Monte-Carlo trial worker, the sweep grid points, the CLI) runs scenarios
through *exactly* the same code.  :func:`run_scenario_online` is the pure,
picklable unit of Monte-Carlo work: the returned trace depends only on
``(spec, seed)``, never on the process that ran it.

Seed derivation (unchanged from the historical trial path, so traces are
bit-for-bit identical to the pre-redesign direct calls): the run seed derives
two child seeds in order — workload, fault trace — which
``workload.seed`` / ``faults.seed`` individually override when pinned in the
spec.
"""

from __future__ import annotations

from repro.exceptions import SchedulingError, SpecificationError
from repro.failures.scenarios import FaultTrace, sample_fault_trace
from repro.graph.generator import PaperWorkload
from repro.runtime.admission import QueueAdmissionPolicy
from repro.runtime.engine import OnlineRuntime
from repro.runtime.trace import RuntimeTrace
from repro.scenario.registries import SCHEDULERS, WORKLOAD_GENERATORS
from repro.scenario.spec import FaultSpec, ScenarioSpec, SchedulerSpec, WorkloadSpec
from repro.utils.registry import close_matches_hint
from repro.schedule.schedule import Schedule
from repro.utils.rng import derive_seed, ensure_rng

__all__ = [
    "resolve_seeds",
    "build_workload",
    "active_workload",
    "resolve_period",
    "build_schedule",
    "build_fault_trace",
    "execute_online",
    "run_scenario_online",
    "validate_spec_options",
]


def validate_spec_options(spec: ScenarioSpec) -> None:
    """Pre-flight the parts of *spec* only execution would otherwise check.

    Today that is the ``scheduler.options`` ↔ builder-signature match plus the
    ``faults.trace_file`` existence check; the service calls this at submit
    time so a bad key or a missing trace is an immediate HTTP 422, not a
    failed job minutes later.
    """
    entry = SCHEDULERS.lookup(spec.scheduler.name)
    _check_scheduler_options(spec.scheduler.name, entry.build, dict(spec.scheduler.options))
    if spec.faults.trace_file is not None:
        from pathlib import Path

        if not Path(spec.faults.trace_file).is_file():
            raise SpecificationError(
                f"faults.trace_file: no such file {spec.faults.trace_file!r}"
            )


def resolve_seeds(spec: ScenarioSpec, seed: int) -> tuple[int, int]:
    """The ``(workload_seed, fault_seed)`` pair of one run of *spec*.

    Both are derived from the run *seed* in a fixed order; a seed pinned in
    the spec (``workload.seed`` / ``faults.seed``) overrides its derived
    value without disturbing the other one.
    """
    rng = ensure_rng(seed)
    workload_seed = derive_seed(rng)
    fault_seed = derive_seed(rng)
    if spec.workload.seed is not None:
        workload_seed = spec.workload.seed
    if spec.faults.seed is not None:
        fault_seed = spec.faults.seed
    return workload_seed, fault_seed


def build_workload(spec: WorkloadSpec, seed) -> PaperWorkload:
    """Materialize the workload of *spec* (generator resolved by name)."""
    generator = WORKLOAD_GENERATORS.lookup(spec.generator)
    try:
        return generator(spec, seed)
    except TypeError as exc:
        if not spec.options:
            raise  # a real defect in the generator, not a bad options dict
        raise SpecificationError(
            f"workload.options not accepted by generator {spec.generator!r}: {exc}"
        ) from exc


def _accepted_options(builder, options: dict) -> dict:
    """The subset of *options* that *builder*'s signature accepts."""
    import inspect

    try:
        accepted = inspect.signature(builder).parameters
    except (TypeError, ValueError):  # pragma: no cover - builtins etc.
        return options
    return {k: v for k, v in options.items() if k in accepted}


#: builder parameters the pipeline itself supplies — never scheduler.options.
_RESERVED_BUILDER_PARAMS = ("graph", "platform", "period", "epsilon")


def _check_scheduler_options(name: str, builder, options: dict) -> None:
    """Reject ``scheduler.options`` keys the named heuristic does not accept.

    Without this, an unknown key would surface as a raw ``TypeError`` from
    the builder call deep in the scheduling ladder; validated here, it becomes
    a :class:`SpecificationError` with the same close-match suggestion style
    every other spec field produces (CLI exit 2 / service HTTP 422).
    """
    if not options:
        return
    import inspect

    try:
        params = inspect.signature(builder).parameters
    except (TypeError, ValueError):  # pragma: no cover - builtins etc.
        return
    if any(p.kind is inspect.Parameter.VAR_KEYWORD for p in params.values()):
        return  # builder takes **kwargs: every key is its problem now
    allowed = tuple(
        pname
        for pname, p in params.items()
        if p.kind in (p.POSITIONAL_OR_KEYWORD, p.KEYWORD_ONLY)
        and pname not in _RESERVED_BUILDER_PARAMS
    )
    for key in options:
        if key not in allowed:
            raise SpecificationError(
                f"scheduler.options key {key!r} not accepted by scheduler "
                f"{name!r}, expected one of {sorted(allowed)}"
                f"{close_matches_hint(key, allowed)}"
            )


def resolve_period(workload: PaperWorkload, scheduler: SchedulerSpec) -> float:
    """The iteration period Δ of the scenario: explicit, or slack-derived."""
    if scheduler.period is not None:
        return scheduler.period
    # Imported lazily: the experiments package pulls in the campaign/figure
    # stack, which must not load just because a spec was constructed.
    from repro.experiments.config import ExperimentConfig, workload_period

    config = ExperimentConfig(period_slack=scheduler.period_slack)
    return workload_period(workload, scheduler.epsilon, config)


def build_schedule(
    workload: PaperWorkload, scheduler: SchedulerSpec, period: float | None = None
) -> Schedule:
    """Build the schedule of the scenario, degrading per the fallback rule.

    With ``fallback=True`` the historical trial ladder applies: ε is tried at
    the requested value, one below, then 0, and LTF is tried after the named
    heuristic at each step — a scenario the heuristic cannot schedule
    degrades instead of dying (the online rebuild machinery still exercises
    the failures).  With ``fallback=False`` a single attempt is made.
    """
    if period is None:
        period = resolve_period(workload, scheduler)
    entry = SCHEDULERS.lookup(scheduler.name)
    options = dict(scheduler.options)
    _check_scheduler_options(scheduler.name, entry.build, options)
    if not entry.supports_epsilon:
        return entry.build(workload.graph, workload.platform, period=period, **options)
    if scheduler.fallback:
        epsilons = dict.fromkeys((scheduler.epsilon, max(0, scheduler.epsilon - 1), 0))
        builders = [entry.build]
        if scheduler.name != "ltf":
            builders.append(SCHEDULERS.lookup("ltf").build)
    else:
        epsilons = {scheduler.epsilon: None}
        builders = [entry.build]
    last_error: SchedulingError | None = None
    for epsilon in epsilons:
        for builder in builders:
            try:
                return builder(
                    workload.graph,
                    workload.platform,
                    period=period,
                    epsilon=epsilon,
                    # heuristic-specific options (e.g. rltf's enable_rule1)
                    # must not kill the *fallback* heuristic with a TypeError
                    **(options if builder is entry.build
                       else _accepted_options(builder, options)),
                )
            except SchedulingError as exc:
                last_error = exc
                continue
    raise SchedulingError(
        f"no schedule found for scenario (scheduler {scheduler.name!r}, "
        f"epsilon {scheduler.epsilon}, period {period:g}): {last_error}"
    )


def active_workload(workload: PaperWorkload, faults: FaultSpec) -> PaperWorkload:
    """The workload restricted to the initially-active platform.

    On an elastic regime the last ``faults.spares`` processors (declaration
    order) start outside the platform, so the *initial* schedule is built on
    the remaining subset — the period is still resolved on the full platform,
    which the joins can later restore.  With ``spares=0`` the workload is
    returned unchanged (same object), keeping the non-elastic path
    bit-identical.
    """
    if not faults.spares:
        return workload
    from dataclasses import replace

    names = workload.platform.processor_names
    active = names[: len(names) - faults.spares]
    return replace(workload, platform=workload.platform.subset(active))


def _crash_groups(platform, faults: FaultSpec):
    """The correlated crash groups of the scenario, or ``None`` (independent).

    ``faults.group_size`` chunks processors in declaration order; without it
    the platform's own ``failure_domains`` topology applies when declared.
    """
    if faults.group_size is not None:
        if faults.group_size <= 1:
            return None
        names = platform.processor_names
        return [
            names[i : i + faults.group_size]
            for i in range(0, len(names), faults.group_size)
        ]
    domains = platform.failure_domains
    return list(domains.values()) if domains else None


def build_fault_trace(
    workload: PaperWorkload,
    faults: FaultSpec,
    schedule_period: float,
    num_datasets: int,
    seed,
    schedule: Schedule | None = None,
) -> FaultTrace:
    """The timed fault trace of the scenario over the stream horizon.

    Sampled from the spec's stochastic regime, or — with ``faults.trace_file``
    — replayed from a recorded availability log (times in the CSV are
    absolute simulation units, validated against the workload platform and
    clipped to the horizon).  *schedule* supplies the utilization view for
    load-dependent hazards: intensities follow the *initial* schedule's
    per-processor utilization.
    """
    platform = workload.platform
    horizon = num_datasets * schedule_period
    if faults.trace_file is not None:
        from repro.failures.trace_io import load_fault_trace

        return load_fault_trace(faults.trace_file, platform=platform, horizon=horizon)
    utilization = None
    if faults.load_coupling and schedule is not None:
        from repro.schedule.metrics import processor_utilization

        utilization = processor_utilization(schedule)
    return sample_fault_trace(
        platform,
        horizon=horizon,
        mttf=faults.mttf_periods * schedule_period,
        distribution=faults.distribution,
        shape=faults.weibull_shape,
        mttr=None
        if faults.mttr_periods is None
        else faults.mttr_periods * schedule_period,
        seed=seed,
        repair_shape=faults.repair_shape,
        groups=_crash_groups(platform, faults),
        load_coupling=faults.load_coupling,
        utilization=utilization,
        spares=faults.spares,
        join_mean=None
        if faults.join_periods is None
        else faults.join_periods * schedule_period,
        preempt_mean=None
        if faults.preempt_periods is None
        else faults.preempt_periods * schedule_period,
    )


def execute_online(
    spec: ScenarioSpec,
    workload: PaperWorkload,
    schedule: Schedule,
    fault_seed,
    probe=None,
) -> RuntimeTrace:
    """Run the online leg of *spec* on an already-built pipeline.

    Split out of :func:`run_scenario_online` so callers holding a cached
    ``(workload, schedule)`` pair (the Session facade builds one per seed)
    don't pay the workload generation and scheduling ladder again.  *probe*
    is an optional :class:`repro.obs.probe.Probe` observing the run.

    *workload* carries the **full** platform even on elastic regimes (the
    schedule is what lives on the active subset): the fault trace samples
    joins for the spares, and the runtime receives the full platform as its
    rebuild candidate pool.
    """
    fault_trace = build_fault_trace(
        workload,
        spec.faults,
        schedule.period,
        spec.runtime.num_datasets,
        fault_seed,
        schedule=schedule,
    )
    admission = spec.runtime.admission
    if admission == "queue":
        admission = QueueAdmissionPolicy(capacity=spec.runtime.queue_capacity)
    runtime = OnlineRuntime(
        schedule,
        fault_trace,
        policy=spec.runtime.policy,
        rebuild_overhead=spec.runtime.rebuild_overhead,
        rebuild_on_repair=spec.runtime.rebuild_on_repair,
        admission=admission,
        checkpoint=spec.runtime.checkpoint,
        fast_forward=spec.runtime.fast_forward,
        probe=probe,
        platform=workload.platform if spec.faults.is_elastic else None,
    )
    return runtime.run(spec.runtime.num_datasets)


def run_scenario_online(spec: ScenarioSpec, seed: int = 0, probe=None) -> RuntimeTrace:
    """Run one seeded online trial of *spec*: workload → schedule → faults → run.

    Deterministic: the trace only depends on ``(spec, seed)``.  This is the
    unit of work fanned across processes by the Monte-Carlo campaign engine,
    and the single execution path under ``Session.run_online``,
    :func:`repro.runtime.montecarlo.run_trial` and the failure-regime sweeps.
    """
    workload_seed, fault_seed = resolve_seeds(spec, seed)
    workload = build_workload(spec.workload, workload_seed)
    period = resolve_period(workload, spec.scheduler)
    try:
        schedule = build_schedule(active_workload(workload, spec.faults), spec.scheduler, period)
    except SchedulingError as exc:
        raise SchedulingError(
            f"no schedule found for scenario {spec.name!r} seed {seed}: {exc}"
        ) from None
    return execute_online(spec, workload, schedule, fault_seed, probe=probe)
