"""Grid expansion: axis dicts → lists of scenario specs.

The sweep layers explore cartesian products of scenario axes (mttf × mttr ×
Weibull shape, granularity × ε, policy × admission, …).  Here an *axis* is a
dotted path into the spec tree (``"faults.mttf_periods"``) mapped to a
sequence of values, and :func:`expand_grid` turns a base spec plus an axis
dict into the product list of fully-validated specs — the first axis is the
major (slowest-varying) one, matching the historical grid order of
:func:`repro.experiments.sweep.run_runtime_sweep`.

Because every point is a self-contained :class:`~repro.scenario.spec.
ScenarioSpec`, the expansion shards trivially across processes: a worker
receives one picklable spec, not a bag of loose keyword arguments.
"""

from __future__ import annotations

import itertools
from dataclasses import fields, replace
from typing import Iterable, Mapping, Sequence

from repro.exceptions import SpecificationError
from repro.scenario.spec import SECTION_TYPES, ScenarioSpec, _spec_paths

__all__ = ["apply_changes", "expand_grid", "normalize_axis"]


def _reject_path(path: str) -> None:
    from repro.utils.registry import close_matches_hint

    raise SpecificationError(
        f"unknown scenario path {path!r} (paths are 'section.field' like "
        f"'faults.mttf_periods'){close_matches_hint(path, _spec_paths())}"
    )


def apply_changes(spec: ScenarioSpec, changes: Mapping[str, object]) -> ScenarioSpec:
    """Apply dotted-path overrides to *spec*, revalidating the result.

    All changes of one section land in a single ``replace`` call, so a set of
    overrides that is only consistent *together* (e.g. switching to an ε-less
    scheduler while zeroing ε) validates as a whole, never through an
    invalid intermediate state.
    """
    per_section: dict[str, dict[str, object]] = {}
    top: dict[str, object] = {}
    for path, value in changes.items():
        if path == "name":
            top["name"] = value
            continue
        section, _, leaf = path.partition(".")
        if section in SECTION_TYPES and leaf in {
            f.name for f in fields(SECTION_TYPES[section])
        }:
            per_section.setdefault(section, {})[leaf] = value
        else:
            _reject_path(path)
    for section, leaves in per_section.items():
        top[section] = replace(getattr(spec, section), **leaves)
    return replace(spec, **top) if top else spec


def normalize_axis(path: str, values) -> tuple:
    """Validate one grid axis and materialize its values as a tuple.

    Any iterable of values is accepted (lists, tuples, numpy arrays, even
    generators — they are materialized exactly once); strings, bytes and
    non-iterables are rejected because a lone scalar where a value *list* was
    meant is the classic silent-sweep bug.  An **empty axis is an error, not
    an empty sweep**: the cartesian product of anything with zero values is
    zero points, so a config typo would otherwise "succeed" by sweeping
    nothing.  The error names the offending axis.
    """
    if (
        isinstance(values, (str, bytes, Mapping, set, frozenset))
        or not isinstance(values, Iterable)
    ):
        # str/bytes: a scalar where a value list was meant; sets/mappings:
        # unordered, and grid order determines the per-point seeds.
        raise SpecificationError(
            f"grid axis {path!r} must be an ordered sequence of values, "
            f"got {type(values).__name__}"
        )
    materialized = tuple(values)
    if not materialized:
        raise SpecificationError(
            f"grid axis {path!r} has no values — an empty axis would expand "
            f"to an empty sweep; give it at least one value or drop the axis"
        )
    # numpy scalars (an np.linspace axis, say) unwrap to plain Python values,
    # so axes stay JSON-serializable and cache keys canonical; list values
    # (a JSON task_range axis) become tuples so points stay hashable for the
    # panel pivots.
    plain = tuple(_plain_axis_value(value) for value in materialized)
    # ==-duplicates (including collisions like True == 1) would run the same
    # grid point twice and collapse onto one panel cell — reject up front.
    for i, value in enumerate(plain):
        if any(value == earlier for earlier in plain[:i]):
            raise SpecificationError(
                f"grid axis {path!r} has duplicate value {value!r} — every "
                f"axis value must be unique (use trials for repetition)"
            )
    return plain


def _plain_axis_value(value):
    import numpy as np

    if isinstance(value, np.generic):  # 0-d numpy scalar
        return value.item()
    if isinstance(value, np.ndarray):
        # a pair array like np.array([5, 10]) is a task_range-style value:
        # unwrap to a tuple of Python scalars, like a plain list would
        if value.ndim == 0:
            return value.item()
        return tuple(_plain_axis_value(v) for v in value.tolist())
    if isinstance(value, list):
        return tuple(_plain_axis_value(v) for v in value)
    return value


def expand_grid(
    base: ScenarioSpec, axes: Mapping[str, Sequence]
) -> list[ScenarioSpec]:
    """The cartesian product of *axes* applied to *base*, first axis major.

    Every axis must be a non-empty sequence of values (see
    :func:`normalize_axis`); the result enumerates the product with the last
    axis varying fastest (``itertools.product`` order), so
    ``{"a": [1, 2], "b": [x, y]}`` yields ``1x, 1y, 2x, 2y``.
    """
    paths = list(axes)
    normalized = {path: normalize_axis(path, axes[path]) for path in paths}
    specs = []
    for combo in itertools.product(*(normalized[p] for p in paths)):
        specs.append(apply_changes(base, dict(zip(paths, combo))))
    return specs
