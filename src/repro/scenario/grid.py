"""Grid expansion: axis dicts → lists of scenario specs.

The sweep layers explore cartesian products of scenario axes (mttf × mttr ×
Weibull shape, granularity × ε, policy × admission, …).  Here an *axis* is a
dotted path into the spec tree (``"faults.mttf_periods"``) mapped to a
sequence of values, and :func:`expand_grid` turns a base spec plus an axis
dict into the product list of fully-validated specs — the first axis is the
major (slowest-varying) one, matching the historical grid order of
:func:`repro.experiments.sweep.run_runtime_sweep`.

Because every point is a self-contained :class:`~repro.scenario.spec.
ScenarioSpec`, the expansion shards trivially across processes: a worker
receives one picklable spec, not a bag of loose keyword arguments.
"""

from __future__ import annotations

import itertools
from dataclasses import fields, replace
from typing import Mapping, Sequence

from repro.exceptions import SpecificationError
from repro.scenario.spec import SECTION_TYPES, ScenarioSpec, _spec_paths

__all__ = ["apply_changes", "expand_grid"]


def _reject_path(path: str) -> None:
    from repro.utils.registry import close_matches_hint

    raise SpecificationError(
        f"unknown scenario path {path!r} (paths are 'section.field' like "
        f"'faults.mttf_periods'){close_matches_hint(path, _spec_paths())}"
    )


def apply_changes(spec: ScenarioSpec, changes: Mapping[str, object]) -> ScenarioSpec:
    """Apply dotted-path overrides to *spec*, revalidating the result.

    All changes of one section land in a single ``replace`` call, so a set of
    overrides that is only consistent *together* (e.g. switching to an ε-less
    scheduler while zeroing ε) validates as a whole, never through an
    invalid intermediate state.
    """
    per_section: dict[str, dict[str, object]] = {}
    top: dict[str, object] = {}
    for path, value in changes.items():
        if path == "name":
            top["name"] = value
            continue
        section, _, leaf = path.partition(".")
        if section in SECTION_TYPES and leaf in {
            f.name for f in fields(SECTION_TYPES[section])
        }:
            per_section.setdefault(section, {})[leaf] = value
        else:
            _reject_path(path)
    for section, leaves in per_section.items():
        top[section] = replace(getattr(spec, section), **leaves)
    return replace(spec, **top) if top else spec


def expand_grid(
    base: ScenarioSpec, axes: Mapping[str, Sequence]
) -> list[ScenarioSpec]:
    """The cartesian product of *axes* applied to *base*, first axis major.

    Every axis must be a non-empty sequence of values; the result enumerates
    the product with the last axis varying fastest (``itertools.product``
    order), so ``{"a": [1, 2], "b": [x, y]}`` yields ``1x, 1y, 2x, 2y``.
    """
    paths = list(axes)
    for path in paths:
        values = axes[path]
        if isinstance(values, (str, bytes)) or not isinstance(values, Sequence):
            raise SpecificationError(
                f"grid axis {path!r} must be a sequence of values, "
                f"got {type(values).__name__}"
            )
        if len(values) == 0:
            raise SpecificationError(f"grid axis {path!r} is empty")
    specs = []
    for combo in itertools.product(*(axes[p] for p in paths)):
        specs.append(apply_changes(base, dict(zip(paths, combo))))
    return specs
