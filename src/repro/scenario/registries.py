"""Named registries turning scenario specs into live objects.

A :class:`~repro.scenario.spec.ScenarioSpec` is pure data — every component it
references (workload generator, platform builder, scheduler) is a *name*
resolved here through the :class:`~repro.utils.registry.PolicyRegistry`
machinery, exactly like the rescheduling and admission policies of the online
runtime.  Registering a new entry in one of these registries makes it
reachable from JSON scenario files, the :class:`~repro.api.Session` facade,
the CLI and the sweep/campaign layers without further wiring.

Three registries live here:

* :data:`WORKLOAD_GENERATORS` — ``name -> fn(spec, seed) -> PaperWorkload``.
  ``"paper"`` is the random experimental workload of Section 5 (bit-identical
  to the historical Monte-Carlo trial path); the other entries build the named
  example graphs (chain, fork-join, video pipeline, …) and pair them with a
  platform built from :data:`PLATFORM_BUILDERS`.
* :data:`PLATFORM_BUILDERS` — ``name -> fn(num_processors, rng) -> Platform``.
* :data:`SCHEDULERS` — ``name -> SchedulerEntry`` wrapping the scheduling
  heuristics (LTF, R-LTF, fault-free reference, related-work baselines) with
  the metadata the runner needs (does the heuristic accept ``epsilon``?).

Unknown names raise with the registered names and close-match suggestions.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

import numpy as np

from repro.baselines import (
    etf_schedule,
    expert_schedule,
    heft_schedule,
    preclustering_schedule,
    tda_schedule,
    wmsh_schedule,
)
from repro.core.fault_free import fault_free_schedule
from repro.core.ltf import ltf_schedule
from repro.core.rltf import rltf_schedule
from repro.graph.analysis import granularity
from repro.graph.dag import TaskGraph
from repro.graph.examples import (
    dsp_filter_bank,
    map_reduce_graph,
    sensor_fusion_graph,
    video_encoding_pipeline,
)
from repro.graph.generator import (
    PaperWorkload,
    chain_graph,
    fork_join_graph,
    random_layered_dag,
    random_paper_workload,
    random_series_parallel,
)
from repro.platform.builders import (
    heterogeneous_platform,
    homogeneous_platform,
    paper_platform,
)
from repro.platform.platform import Platform
from repro.schedule.schedule import Schedule
from repro.utils.registry import PolicyRegistry
from repro.utils.rng import ensure_rng

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.scenario.spec import WorkloadSpec

__all__ = [
    "WORKLOAD_GENERATORS",
    "PLATFORM_BUILDERS",
    "SCHEDULERS",
    "SchedulerEntry",
]


# ------------------------------------------------------------------ platforms
PLATFORM_BUILDERS = PolicyRegistry("platform builder")

PLATFORM_BUILDERS.register(
    lambda m, rng: paper_platform(seed=rng, m=m), name="paper"
)
PLATFORM_BUILDERS.register(
    lambda m, rng: homogeneous_platform(m), name="homogeneous"
)
PLATFORM_BUILDERS.register(
    lambda m, rng: heterogeneous_platform(m, seed=rng), name="heterogeneous"
)


def _build_platform(spec: "WorkloadSpec", rng: np.random.Generator) -> Platform:
    builder = PLATFORM_BUILDERS.lookup(spec.platform or "paper")
    return builder(spec.num_processors, rng)


# ---------------------------------------------------------------- workloads
WORKLOAD_GENERATORS = PolicyRegistry("workload generator")


def _paper_workload(spec: "WorkloadSpec", seed) -> PaperWorkload:
    """The Section-5 random workload — the exact historical trial call."""
    kwargs = dict(spec.options)
    if spec.task_range is not None:
        kwargs["task_range"] = spec.task_range
    return random_paper_workload(
        spec.granularity,
        seed=seed,
        num_tasks=spec.num_tasks,
        num_processors=spec.num_processors,
        **kwargs,
    )


WORKLOAD_GENERATORS.register(_paper_workload, name="paper")


def _wrap_graph(graph: TaskGraph, spec: "WorkloadSpec", rng, seed) -> PaperWorkload:
    platform = _build_platform(spec, rng)
    achieved = granularity(graph, platform)
    target = float(achieved) if math.isfinite(achieved) and achieved > 0 else 1.0
    return PaperWorkload(
        graph=graph,
        platform=platform,
        target_granularity=target,
        seed=None if isinstance(seed, np.random.Generator) else seed,
        metadata={"generator": spec.generator, "num_processors": spec.num_processors},
    )


def _register_graph(
    name: str,
    build: Callable[..., TaskGraph],
    size_param: str | None = None,
    takes_seed: bool = False,
) -> None:
    def generate(spec: "WorkloadSpec", seed) -> PaperWorkload:
        rng = ensure_rng(seed)
        kwargs = dict(spec.options)
        if size_param is not None and size_param not in kwargs and spec.num_tasks:
            kwargs[size_param] = spec.num_tasks
        graph = build(seed=rng, **kwargs) if takes_seed else build(**kwargs)
        return _wrap_graph(graph, spec, rng, seed)

    generate.__name__ = f"workload_{name.replace('-', '_')}"
    WORKLOAD_GENERATORS.register(generate, name=name)


_register_graph("chain", chain_graph, size_param="length")
_register_graph("fork-join", fork_join_graph, size_param="branches")
_register_graph("video", video_encoding_pipeline)
_register_graph("dsp", dsp_filter_bank)
_register_graph("map-reduce", map_reduce_graph)
_register_graph("sensor-fusion", sensor_fusion_graph)
_register_graph("series-parallel", random_series_parallel, takes_seed=True)
_register_graph("layered", random_layered_dag, size_param="num_tasks", takes_seed=True)


# ---------------------------------------------------------------- schedulers
@dataclass(frozen=True)
class SchedulerEntry:
    """One named scheduling heuristic plus the metadata the runner needs."""

    name: str
    build: Callable[..., Schedule]
    #: whether ``build`` accepts the ``epsilon`` replication degree; heuristics
    #: without it (the fault-free reference, the related-work baselines) only
    #: accept scenarios with ``scheduler.epsilon == 0``.
    supports_epsilon: bool = True


SCHEDULERS = PolicyRegistry("scheduler")
for _entry in (
    SchedulerEntry("rltf", rltf_schedule),
    SchedulerEntry("ltf", ltf_schedule),
    SchedulerEntry("fault-free", fault_free_schedule, supports_epsilon=False),
    SchedulerEntry("heft", heft_schedule, supports_epsilon=False),
    SchedulerEntry("etf", etf_schedule, supports_epsilon=False),
    SchedulerEntry("preclustering", preclustering_schedule, supports_epsilon=False),
    SchedulerEntry("expert", expert_schedule, supports_epsilon=False),
    SchedulerEntry("tda", tda_schedule, supports_epsilon=False),
    SchedulerEntry("wmsh", wmsh_schedule, supports_epsilon=False),
):
    SCHEDULERS.register(_entry, name=_entry.name)
del _entry
