"""The one-port pipeline kernel: replicated compute + transfer event loop.

The kernel executes the steady-state pipeline of a complete
:class:`~repro.schedule.schedule.Schedule` one event at a time:

* every valid replica executes one *compute operation* per admitted data set,
  on its assigned processor, in FIFO order of the data sets;
* every recorded communication gives one *transfer operation* per data set,
  occupying the sender's out-port and the receiver's in-port simultaneously
  (the bi-directional one-port model);
* a replica starts processing data set ``j`` once, for each predecessor task,
  the first input for ``j`` has arrived (active replication: the earliest
  valid copy wins);
* a data set *completes* when every exit task has produced it at least once.

Two admission styles share this loop:

* :meth:`PipelineKernel.admit_batch` pushes the release events of a whole
  stream up front, replica-major — the exact event order of the original
  offline simulator, preserved so that
  :class:`~repro.failures.simulator.StreamingSimulator` results stay
  byte-identical across the kernel extraction;
* :meth:`PipelineKernel.admit` admits one data set at a time (dataset-major),
  which is what the online runtime does between fault events.

On top of plain execution the kernel supports the two online semantics the
runtime needs:

* :meth:`crash` marks a processor dead **mid-run**: queued/in-flight compute
  and transfer operations of that processor are cancelled (fail-stop: its
  memory and in-flight messages are lost), while operations that finished at
  or before the crash instant stand.  Port reservations already granted are
  not rolled back — a conservative, deterministic simplification;
* :meth:`completed_tasks` / :meth:`admit_restored` implement
  **checkpoint/restart**: completed per-task outputs (assumed copied to
  stable storage as they are produced) are replayed into a fresh kernel built
  on a rebuilt schedule, so in-flight data sets survive a rebuild instead of
  re-executing from scratch.  Restored outputs are delivered to their
  consumers at the restore instant with no transfer cost (they come from the
  checkpoint store, not from a peer's out-port).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.exceptions import ScheduleError
from repro.schedule.replica import Replica
from repro.schedule.schedule import Schedule
from repro.schedule.validation import valid_replicas_under_failures
from repro.sim.events import EventQueue

__all__ = ["PipelineKernel"]

#: event kinds understood by the loop.
_RELEASE = "release"
_COMPUTED = "computed"
_ARRIVED = "arrived"


@dataclass
class _ReplicaRun:
    """Book-keeping of one alive replica during the simulation."""

    replica: Replica
    processor: str
    duration: float
    needed: dict[str, int]  # predecessor task -> number of inputs required (always 1)
    received: dict[int, set[str]] = field(default_factory=dict)  # dataset -> preds satisfied
    finished: dict[int, float] = field(default_factory=dict)  # dataset -> scheduled finish
    done: dict[int, float] = field(default_factory=dict)  # dataset -> actual completion


class PipelineKernel:
    """Discrete-event executor of one schedule under one (mutable) crash set."""

    def __init__(
        self,
        schedule: Schedule,
        failed: Iterable[str] = (),
        require_exit_coverage: bool = True,
        valid_replicas: dict[str, list[Replica]] | None = None,
    ):
        """*valid_replicas* lets a driver that already ran
        :func:`~repro.schedule.validation.valid_replicas_under_failures` for
        *failed* (e.g. the offline simulator's constructor) hand the result
        over instead of recomputing it here."""
        if not schedule.is_complete():
            raise ScheduleError("cannot simulate an incomplete schedule")
        failed = frozenset(failed)
        graph = schedule.graph
        valid = (
            valid_replicas
            if valid_replicas is not None
            else valid_replicas_under_failures(schedule, failed)
        )
        if require_exit_coverage:
            for task in graph.exit_tasks():
                if not valid[task]:
                    raise ScheduleError(
                        f"exit task {task!r} has no valid replica under scenario "
                        f"CrashScenario({sorted(failed)})"
                    )
        self.schedule = schedule
        self.graph = graph
        valid_set = {r for reps in valid.values() for r in reps}

        self._states: dict[Replica, _ReplicaRun] = {}
        for replica in schedule.all_replicas():
            if replica not in valid_set:
                continue
            self._states[replica] = _ReplicaRun(
                replica=replica,
                processor=schedule.processor_of(replica),
                duration=schedule.execution_time_of(replica),
                needed={pred: 1 for pred in graph.predecessors(replica.task)},
            )
        self._entry_states = [s for s in self._states.values() if not s.needed]

        # communications between valid replicas only
        self._comm_links: dict[Replica, list[tuple[Replica, float]]] = {}
        for event in schedule.comm_events:
            if event.source in self._states and event.destination in self._states:
                self._comm_links.setdefault(event.source, []).append(
                    (event.destination, event.duration)
                )

        names = schedule.platform.processor_names
        self._compute_free: dict[str, float] = {p: 0.0 for p in names}
        self._out_free: dict[str, float] = dict(self._compute_free)
        self._in_free: dict[str, float] = dict(self._compute_free)

        self._dead: set[str] = set()  # processors crashed *after* construction
        self._queue = EventQueue()
        self._now = 0.0
        self._exit_tasks = graph.exit_tasks()
        self._exit_done: dict[int, dict[str, float]] = {}
        self._completion: dict[int, float] = {}
        self._admitted: dict[int, float] = {}  # dataset -> release instant
        self._fresh: list[tuple[int, float]] = []  # completions since last drain

    # ------------------------------------------------------------------ queries
    @property
    def now(self) -> float:
        """Simulation clock (time of the last processed event)."""
        return self._now

    @property
    def completions(self) -> dict[int, float]:
        """Completion instant of every completed data set."""
        return dict(self._completion)

    def completion_of(self, dataset: int) -> float | None:
        """Completion instant of *dataset* (``None`` while in flight)."""
        return self._completion.get(dataset)

    def pending_datasets(self) -> tuple[int, ...]:
        """Admitted data sets that have not completed yet, in admission order."""
        return tuple(j for j in self._admitted if j not in self._completion)

    def completed_tasks(self, dataset: int) -> frozenset[str]:
        """Tasks whose output for *dataset* has actually been produced.

        This is the checkpoint of the data set: every task here has at least
        one replica that finished computing (or whose output was restored from
        a previous checkpoint), so its output is in stable storage and can be
        replayed into a rebuilt schedule with :meth:`admit_restored`.
        """
        return frozenset(
            s.replica.task for s in self._states.values() if dataset in s.done
        )

    # ---------------------------------------------------------------- admission
    def admit(self, dataset: int, release: float) -> None:
        """Admit one data set: entry replicas receive it at *release*."""
        self._register(dataset, release)
        for state in self._entry_states:
            self._queue.push(release, _RELEASE, (state.replica, dataset))

    def admit_batch(self, releases: Sequence[float], first_index: int = 0) -> None:
        """Admit a whole stream up front (offline-simulator event order).

        Release events are pushed replica-major — for each entry replica, all
        data sets in order — which is the historical push order of
        :class:`~repro.failures.simulator.StreamingSimulator`; same-instant
        ties therefore resolve exactly as they always did.
        """
        for k, release in enumerate(releases):
            self._register(first_index + k, release)
        for state in self._entry_states:
            for k, release in enumerate(releases):
                self._queue.push(release, _RELEASE, (state.replica, first_index + k))

    def admit_restored(
        self, dataset: int, restore: float, done_tasks: Iterable[str] = ()
    ) -> None:
        """Admit a data set whose *done_tasks* outputs come from a checkpoint.

        Restored outputs are delivered to every consumer at *restore* with no
        transfer cost; replicas of restored tasks never recompute.  Replicas
        whose inputs are fully satisfied by the checkpoint (including entry
        replicas of non-restored tasks) are kicked at *restore*.
        """
        done = frozenset(done_tasks)
        self._register(dataset, restore)
        for task in done:
            if task in self._exit_tasks:
                self._exit_done[dataset][task] = restore
        if self._exit_done[dataset] and len(self._exit_done[dataset]) == len(
            self._exit_tasks
        ):
            self._complete(dataset, restore)
            return
        for state in self._states.values():
            if state.replica.task in done:
                state.finished[dataset] = restore
                state.done[dataset] = restore
                continue
            if state.needed:
                got = state.received.setdefault(dataset, set())
                got.update(done.intersection(state.needed))
                if len(got) < len(state.needed):
                    continue
            self._queue.push(restore, _RELEASE, (state.replica, dataset))

    def _register(self, dataset: int, release: float) -> None:
        if dataset in self._admitted:
            raise ScheduleError(f"data set {dataset} was already admitted")
        self._admitted[dataset] = release
        self._exit_done[dataset] = {}

    # ----------------------------------------------------------------- failures
    def crash(self, processor: str) -> None:
        """Mark *processor* dead from now on (fail-stop, see module docstring).

        Pending events touching the processor are cancelled lazily when they
        surface; call :meth:`run_until` with the crash instant *before* this so
        that operations finishing at or before the crash still count.
        """
        self._dead.add(processor)

    # ---------------------------------------------------------------- execution
    def run_until(self, time: float) -> list[tuple[int, float]]:
        """Process every event up to and including *time*; return completions.

        The returned list holds ``(dataset, completion_instant)`` pairs for
        every data set that completed since the previous drain, in completion
        order.
        """
        self._run_loop(time)
        return self._drain()

    def run_to_completion(self) -> list[tuple[int, float]]:
        """Process every pending event; return the completions since last drain."""
        self._run_loop(None)
        return self._drain()

    def _run_loop(self, limit: float | None) -> None:
        """The hot loop: pop and dispatch events (bounded by *limit* if given).

        Reads the raw heap directly — one Python-level call per event instead
        of three keeps the kernel as fast as the pre-extraction closure-based
        simulator loop.
        """
        heap = self._queue.heap
        pop = heapq.heappop
        step = self._step
        now = self._now
        while heap:
            if limit is not None and heap[0][0] > limit:
                break
            now, _, kind, payload = pop(heap)
            step(now, kind, payload)
        self._now = now

    def _drain(self) -> list[tuple[int, float]]:
        fresh, self._fresh = self._fresh, []
        return fresh

    def _complete(self, dataset: int, time: float) -> None:
        self._completion[dataset] = time
        self._fresh.append((dataset, time))

    def _try_start(self, state: _ReplicaRun, dataset: int, now: float) -> None:
        """Start the compute of (replica, dataset) if all inputs are in."""
        if dataset in state.finished:
            return
        if state.processor in self._dead:
            return
        got = state.received.get(dataset, set())
        if len(got) < len(state.needed):
            return
        start = max(now, self._compute_free[state.processor])
        finish = start + state.duration
        self._compute_free[state.processor] = finish
        state.finished[dataset] = finish
        self._queue.push(finish, _COMPUTED, (state.replica, dataset))

    def _step(self, now: float, kind: str, payload: object) -> None:
        dead = self._dead
        if kind == _RELEASE:
            replica, dataset = payload
            self._try_start(self._states[replica], dataset, now)
        elif kind == _COMPUTED:
            replica, dataset = payload
            state = self._states[replica]
            if state.processor in dead:
                return  # the processor died while this compute was in flight
            state.done[dataset] = now
            task = replica.task
            exit_done = self._exit_done[dataset]
            if task in self._exit_tasks and task not in exit_done:
                exit_done[task] = now
                if len(exit_done) == len(self._exit_tasks):
                    self._complete(dataset, now)
            # forward the result along every recorded communication
            for destination, duration in self._comm_links.get(replica, ()):
                if self._states[destination].processor in dead:
                    continue  # no point sending to a dead receiver
                if duration == 0.0:
                    self._queue.push(now, _ARRIVED, (replica, destination, dataset))
                else:
                    src_proc = state.processor
                    dst_proc = self._states[destination].processor
                    start = max(now, self._out_free[src_proc], self._in_free[dst_proc])
                    self._out_free[src_proc] = start + duration
                    self._in_free[dst_proc] = start + duration
                    self._queue.push(
                        start + duration, _ARRIVED, (replica, destination, dataset)
                    )
        elif kind == _ARRIVED:
            source, destination, dataset = payload
            if (
                self._states[source].processor in dead
                or self._states[destination].processor in dead
            ):
                return  # the transfer was in flight when an endpoint died
            dst_state = self._states[destination]
            dst_state.received.setdefault(dataset, set()).add(source.task)
            self._try_start(dst_state, dataset, now)
