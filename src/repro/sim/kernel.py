"""The one-port pipeline kernel: replicated compute + transfer event loop.

The kernel executes the steady-state pipeline of a complete
:class:`~repro.schedule.schedule.Schedule` one event at a time:

* every valid replica executes one *compute operation* per admitted data set,
  on its assigned processor, in FIFO order of the data sets;
* every recorded communication gives one *transfer operation* per data set,
  occupying the sender's out-port and the receiver's in-port simultaneously
  (the bi-directional one-port model);
* a replica starts processing data set ``j`` once, for each predecessor task,
  the first input for ``j`` has arrived (active replication: the earliest
  valid copy wins);
* a data set *completes* when every exit task has produced it at least once.

Three admission styles share this loop:

* :meth:`PipelineKernel.admit_batch` pushes the release events of a whole
  stream up front, replica-major — the exact event order of the original
  offline simulator, preserved so that
  :class:`~repro.failures.simulator.StreamingSimulator` results stay
  byte-identical across the kernel extraction;
* :meth:`PipelineKernel.admit_batch_vectorized` is the same admission for the
  uniform ``j·Δ`` release pattern, built from a numpy arange plus one
  ``heapify`` instead of one Python-level ``heappush`` per event — the fast
  path for 10⁵+-dataset streams, event-for-event identical to
  :meth:`~PipelineKernel.admit_batch` on the equivalent release list;
* :meth:`PipelineKernel.admit` admits one data set at a time (dataset-major),
  which is what the online runtime does between fault events.

On top of plain execution the kernel supports the two online semantics the
runtime needs:

* :meth:`crash` marks a processor dead **mid-run**: queued/in-flight compute
  and transfer operations of that processor are cancelled (fail-stop: its
  memory and in-flight messages are lost), while operations that finished at
  or before the crash instant stand.  Port reservations already granted are
  not rolled back — a conservative, deterministic simplification;
* :meth:`completed_tasks` / :meth:`admit_restored` implement
  **checkpoint/restart**: completed per-task outputs (assumed copied to
  stable storage as they are produced) are replayed into a fresh kernel built
  on a rebuilt schedule, so in-flight data sets survive a rebuild instead of
  re-executing from scratch.  Restored outputs are delivered to their
  consumers at the restore instant with no transfer cost (they come from the
  checkpoint store, not from a peer's out-port).

Memory model — the ``retain_history`` flag
------------------------------------------

By default (``retain_history=True``) the kernel keeps the full per-dataset
book-keeping of every data set it ever saw: ``completions`` /
:meth:`completion_of` answer for the whole run, which is what the offline
simulator's :class:`~repro.failures.simulator.SimulationResult` is built
from.  That state grows linearly with the stream, and on 10⁵+-dataset streams
the dictionary churn — not the event arithmetic — dominates the run time.

``retain_history=False`` turns on **watermark-based eviction**: the kernel
counts the outstanding events of every data set, and the moment a *completed*
data set's count drops to zero (its watermark — no pending event references
it, so nothing can ever touch its state again) every trace of it is retired:
the per-replica ``received``/``finished``/``done`` entries, the exit-task
ledger, the admission record and the completion entry.  Live state is then
bounded by the number of in-flight data sets (the pipeline depth), not the
stream length.  Completions are reported **only** through the
:meth:`run_until` / :meth:`run_to_completion` drains — ``completion_of``
returns ``None`` once a data set has been evicted — and re-admitting a
retired index raises (indices at or below the highest evicted index are
rejected, the constant-memory stand-in for the per-dataset duplicate check).  Eviction is pure book-keeping: every event is processed
identically in both modes, so the drained completions are bit-for-bit equal
(property-tested in ``tests/property``).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

from repro.exceptions import ScheduleError
from repro.schedule.replica import Replica
from repro.schedule.schedule import Schedule
from repro.schedule.validation import valid_replicas_under_failures
from repro.sim.events import EventQueue

__all__ = ["PipelineKernel", "EVENT_KIND_NAMES"]

#: event kinds understood by the loop — interned small ints, not strings: the
#: hot loop dispatches on them once per event, and an int compare is one
#: pointer-width comparison with no type dispatch.  ``_RELEASE_ALL`` is the
#: merged form used by one-at-a-time admission: the E entry-replica release
#: events of one data set always occupy adjacent tie-break slots at the same
#: instant, so folding them into a single event that kicks every entry
#: replica in declaration order is pop-for-pop identical — and saves E−1
#: heap operations per data set.
_RELEASE = 0
_COMPUTED = 1
_ARRIVED = 2
_RELEASE_ALL = 3

#: public names of the event kinds, indexed by the interned kind ints above —
#: the vocabulary of :meth:`repro.obs.probe.Probe.on_kernel_events` counters.
EVENT_KIND_NAMES = ("release", "compute-complete", "transfer-arrive", "release-all")


@dataclass(slots=True)
class _ReplicaRun:
    """Book-keeping of one alive replica during the simulation.

    ``__slots__`` (via ``dataclass(slots=True)``): one of these exists per
    valid replica and its attributes are read on every event — fixed slot
    offsets beat a per-instance ``__dict__`` on both memory and access time.

    Input tracking is a **bitmask** per data set, not a set of task names:
    every predecessor task owns one bit (``pred_bit``), a replica may start
    once ``received[dataset] == full_mask``, and a duplicate arrival (active
    replication: several source replicas forward the same task's output) is
    an OR that changes nothing — no per-pair set allocations, no hashing of
    task names in the hot loop.
    """

    replica: Replica
    processor: str
    duration: float
    #: predecessor task -> its bit in the input mask (fixed at construction;
    #: empty for entry replicas, which need no inputs).
    pred_bit: dict[str, int] = field(default_factory=dict)
    #: value of ``received[dataset]`` once every input is in.
    full_mask: int = 0
    received: dict[int, int] = field(default_factory=dict)  # dataset -> input bitmask
    finished: dict[int, float] = field(default_factory=dict)  # dataset -> scheduled finish
    done: dict[int, float] = field(default_factory=dict)  # dataset -> actual completion
    #: outgoing communications: ``(destination state, transfer duration,
    #: destination's bit for this replica's task)`` — resolved once at
    #: construction so the hot loop never looks anything up by name.
    links: list = field(default_factory=list)


class PipelineKernel:
    """Discrete-event executor of one schedule under one (mutable) crash set."""

    def __init__(
        self,
        schedule: Schedule,
        failed: Iterable[str] = (),
        require_exit_coverage: bool = True,
        valid_replicas: dict[str, list[Replica]] | None = None,
        retain_history: bool = True,
        probe=None,
        fast_forward: bool = False,
    ):
        """*valid_replicas* lets a driver that already ran
        :func:`~repro.schedule.validation.valid_replicas_under_failures` for
        *failed* (e.g. the offline simulator's constructor) hand the result
        over instead of recomputing it here.  *retain_history* selects the
        memory model (see the module docstring): ``False`` evicts a data
        set's state at its watermark, bounding live memory by the pipeline
        depth instead of the stream length.  *probe* is an optional
        :class:`repro.obs.probe.Probe`: per-kind event counts are accumulated
        in a local list and flushed once per drain, so a ``None`` probe costs
        a single pointer comparison per event.  *fast_forward* marks the
        kernel as snapshot/restore-capable for the steady-state fast path
        (:mod:`repro.sim.steady`): the driver may then capture its state at
        admission-window boundaries and, under the exactness certificate,
        jump it over provably periodic stretches; it requires the evicting
        memory model (``retain_history=False``)."""
        if not schedule.is_complete():
            raise ScheduleError("cannot simulate an incomplete schedule")
        failed = frozenset(failed)
        graph = schedule.graph
        valid = (
            valid_replicas
            if valid_replicas is not None
            else valid_replicas_under_failures(schedule, failed)
        )
        if require_exit_coverage:
            for task in graph.exit_tasks():
                if not valid[task]:
                    raise ScheduleError(
                        f"exit task {task!r} has no valid replica under scenario "
                        f"CrashScenario({sorted(failed)})"
                    )
        self.schedule = schedule
        self.graph = graph
        valid_set = {r for reps in valid.values() for r in reps}

        self._states: dict[Replica, _ReplicaRun] = {}
        for replica in schedule.all_replicas():
            if replica not in valid_set:
                continue
            preds = graph.predecessors(replica.task)
            pred_bit = {pred: 1 << i for i, pred in enumerate(preds)}
            self._states[replica] = _ReplicaRun(
                replica=replica,
                processor=schedule.processor_of(replica),
                duration=schedule.execution_time_of(replica),
                pred_bit=pred_bit,
                full_mask=(1 << len(preds)) - 1,
            )
        self._entry_states = [s for s in self._states.values() if not s.pred_bit]

        # communications between valid replicas only, resolved to run states
        # (including the receiver's input bit for the sender's task)
        for event in schedule.comm_events:
            if event.source in self._states and event.destination in self._states:
                dst = self._states[event.destination]
                self._states[event.source].links.append(
                    (dst, event.duration, dst.pred_bit[event.source.task])
                )

        names = schedule.platform.processor_names
        self._compute_free: dict[str, float] = {p: 0.0 for p in names}
        self._out_free: dict[str, float] = dict(self._compute_free)
        self._in_free: dict[str, float] = dict(self._compute_free)

        self._dead: set[str] = set()  # processors crashed *after* construction
        self._queue = EventQueue()
        self._now = 0.0
        self._exit_tasks = graph.exit_tasks()
        self._exit_done: dict[int, dict[str, float]] = {}
        self._completion: dict[int, float] = {}
        self._admitted: dict[int, float] = {}  # dataset -> release instant
        self._fresh: list[tuple[int, float]] = []  # completions since last drain
        self.retain_history = bool(retain_history)
        #: dataset -> outstanding events referencing it (eviction mode only);
        #: ``None`` is the retained mode's zero-overhead marker.
        self._refs: dict[int, int] | None = None if self.retain_history else {}
        self._evicted = 0
        self._max_evicted = -1  # highest retired index: re-admission guard
        self._peak_live = 0
        self._probe = probe
        if fast_forward and self.retain_history:
            raise ScheduleError(
                "fast_forward requires the evicting memory model "
                "(retain_history=False)"
            )
        #: the driver may snapshot/fast-forward this kernel (see
        #: :mod:`repro.sim.steady`); purely a capability marker — the kernel
        #: itself processes events identically either way.
        self.fast_forward = bool(fast_forward)

    # ------------------------------------------------------------------ queries
    @property
    def now(self) -> float:
        """Simulation clock (time of the last processed event)."""
        return self._now

    @property
    def completions(self) -> dict[int, float]:
        """Completion instant of every completed, non-evicted data set."""
        return dict(self._completion)

    def completion_of(self, dataset: int) -> float | None:
        """Completion instant of *dataset* (``None`` while in flight — or,
        with ``retain_history=False``, once it has been evicted)."""
        return self._completion.get(dataset)

    def pending_datasets(self) -> tuple[int, ...]:
        """Admitted data sets that have not completed yet, in admission order."""
        return tuple(j for j in self._admitted if j not in self._completion)

    @property
    def live_datasets(self) -> int:
        """Data sets currently holding kernel state (admitted, not evicted)."""
        return len(self._admitted)

    @property
    def evicted_datasets(self) -> int:
        """Data sets whose state has been retired at their watermark."""
        return self._evicted

    @property
    def peak_live_datasets(self) -> int:
        """High-water mark of :attr:`live_datasets` over the run so far."""
        return max(self._peak_live, len(self._admitted))

    def completed_tasks(self, dataset: int) -> frozenset[str]:
        """Tasks whose output for *dataset* has actually been produced.

        This is the checkpoint of the data set: every task here has at least
        one replica that finished computing (or whose output was restored from
        a previous checkpoint), so its output is in stable storage and can be
        replayed into a rebuilt schedule with :meth:`admit_restored`.
        """
        return frozenset(
            s.replica.task for s in self._states.values() if dataset in s.done
        )

    # ---------------------------------------------------------------- admission
    def admit(self, dataset: int, release: float) -> None:
        """Admit one data set: entry replicas receive it at *release*."""
        self._register(dataset, release)
        refs = self._refs
        if refs is not None:
            refs[dataset] = refs.get(dataset, 0) + 1
        self._queue.push(release, _RELEASE_ALL, (dataset,))

    def admit_batch(self, releases: Sequence[float], first_index: int = 0) -> None:
        """Admit a whole stream up front (offline-simulator event order).

        Release events are pushed replica-major — for each entry replica, all
        data sets in order — which is the historical push order of
        :class:`~repro.failures.simulator.StreamingSimulator`; same-instant
        ties therefore resolve exactly as they always did.
        """
        for k, release in enumerate(releases):
            self._register(first_index + k, release)
        refs = self._refs
        if refs is not None:
            entries = len(self._entry_states)
            for k in range(len(releases)):
                j = first_index + k
                refs[j] = refs.get(j, 0) + entries
        for state in self._entry_states:
            for k, release in enumerate(releases):
                self._queue.push(release, _RELEASE, (state, first_index + k))

    def admit_batch_vectorized(
        self, num_datasets: int, period: float, first_index: int = 0, offset: float = 0.0
    ) -> None:
        """Admit the uniform stream ``release(j) = offset + j·period`` at once.

        Event-for-event identical to :meth:`admit_batch` on
        ``[offset + k * period for k in range(num_datasets)]`` (numpy computes
        the same IEEE-754 products), but the release instants come from one
        ``numpy.arange`` and the ``num_datasets × entry_replicas`` release
        events land in the queue through a single ``heapify`` instead of one
        ``heappush`` each — O(n) instead of O(n log n), with no Python-level
        arithmetic per data set.  This is the admission path for 10⁵+-dataset
        streams.
        """
        if num_datasets < 1:
            raise ScheduleError(f"num_datasets must be >= 1, got {num_datasets}")
        if period < 0 or offset < 0:
            raise ScheduleError("period and offset must be non-negative")
        indices = range(first_index, first_index + num_datasets)
        times = (np.arange(num_datasets, dtype=np.float64) * period + offset).tolist()
        if first_index <= self._max_evicted:
            raise ScheduleError(f"data set {first_index} was already admitted")
        if self._admitted:
            for j in indices:
                if j in self._admitted:
                    raise ScheduleError(f"data set {j} was already admitted")
        self._admitted.update(zip(indices, times))
        refs = self._refs
        if refs is not None:
            entries = len(self._entry_states)
            refs.update((j, refs.get(j, 0) + entries) for j in indices)
        queue = self._queue
        heap = queue.heap
        seq = queue.next_seq()
        for state in self._entry_states:
            heap.extend(
                (t, s, _RELEASE, (state, j))
                for s, (j, t) in enumerate(zip(indices, times), start=seq)
            )
            seq += num_datasets
        queue.set_next_seq(seq)
        heapq.heapify(heap)

    def admit_stream_window(
        self, start: int, stop: int, period: float, stream_total: int
    ) -> None:
        """Admit data sets ``[start, stop)`` of the uniform ``j·period`` stream.

        The windowed form of :meth:`admit_batch_vectorized` for a stream of
        *stream_total* data sets: release events carry the **exact sequence
        numbers** the one-shot vectorized admission would have assigned
        (``1 + entry_index·stream_total + j``), and the queue counter is
        floored at ``entry_replicas·stream_total`` so every event pushed by
        the run loop sorts after every release.  A windowed drive —
        ``admit_stream_window`` + ``run_until`` just *below* each window
        boundary, repeated — therefore pops events in an order identical to
        the one-shot admission, tie for tie, which is what lets the
        steady-state fast path (:mod:`repro.sim.steady`) snapshot at window
        boundaries without perturbing results.
        """
        if not 0 <= start < stop <= stream_total:
            raise ScheduleError(
                f"window [{start}, {stop}) outside stream of {stream_total}"
            )
        if period < 0:
            raise ScheduleError("period must be non-negative")
        indices = range(start, stop)
        times = (np.arange(start, stop, dtype=np.float64) * period).tolist()
        if start <= self._max_evicted:
            raise ScheduleError(f"data set {start} was already admitted")
        if self._admitted:
            for j in indices:
                if j in self._admitted:
                    raise ScheduleError(f"data set {j} was already admitted")
        self._admitted.update(zip(indices, times))
        refs = self._refs
        if refs is not None:
            entries = len(self._entry_states)
            refs.update((j, refs.get(j, 0) + entries) for j in indices)
        queue = self._queue
        heap = queue.heap
        for e, state in enumerate(self._entry_states):
            base = 1 + e * stream_total
            heap.extend(
                (t, base + j, _RELEASE, (state, j)) for j, t in zip(indices, times)
            )
        floor = len(self._entry_states) * stream_total
        if queue._count < floor:
            queue._count = floor
        heapq.heapify(heap)

    def admit_restored(
        self, dataset: int, restore: float, done_tasks: Iterable[str] = ()
    ) -> None:
        """Admit a data set whose *done_tasks* outputs come from a checkpoint.

        Restored outputs are delivered to every consumer at *restore* with no
        transfer cost; replicas of restored tasks never recompute.  Replicas
        whose inputs are fully satisfied by the checkpoint (including entry
        replicas of non-restored tasks) are kicked at *restore*.
        """
        done = frozenset(done_tasks)
        self._register(dataset, restore)
        exit_done = self._exit_done.setdefault(dataset, {})
        for task in done:
            if task in self._exit_tasks:
                exit_done[task] = restore
        if exit_done and len(exit_done) == len(self._exit_tasks):
            self._complete(dataset, restore)
            if self._refs is not None and not self._refs.get(dataset):
                self._evict(dataset)
            return
        refs = self._refs
        for state in self._states.values():
            if state.replica.task in done:
                state.finished[dataset] = restore
                state.done[dataset] = restore
                continue
            if state.pred_bit:
                bits = state.received.get(dataset, 0)
                for task in done.intersection(state.pred_bit):
                    bits |= state.pred_bit[task]
                state.received[dataset] = bits
                if bits != state.full_mask:
                    continue
            if refs is not None:
                refs[dataset] = refs.get(dataset, 0) + 1
            self._queue.push(restore, _RELEASE, (state, dataset))

    def _register(self, dataset: int, release: float) -> None:
        if dataset in self._admitted or dataset <= self._max_evicted:
            # the second arm keeps the duplicate-admission guard alive in
            # evicting mode: a retired index left no per-dataset record to
            # collide with, but the eviction watermark (indices are admitted
            # in increasing order by every driver) still catches the reuse
            raise ScheduleError(f"data set {dataset} was already admitted")
        self._admitted[dataset] = release

    # ----------------------------------------------------------------- failures
    def crash(self, processor: str) -> None:
        """Mark *processor* dead from now on (fail-stop, see module docstring).

        Pending events touching the processor are cancelled lazily when they
        surface; call :meth:`run_until` with the crash instant *before* this so
        that operations finishing at or before the crash still count.
        """
        self._dead.add(processor)

    # ---------------------------------------------------------------- execution
    def run_until(self, time: float) -> list[tuple[int, float]]:
        """Process every event up to and including *time*; return completions.

        The returned list holds ``(dataset, completion_instant)`` pairs for
        every data set that completed since the previous drain, in completion
        order.
        """
        self._run_loop(time)
        return self._drain()

    def run_to_completion(self) -> list[tuple[int, float]]:
        """Process every pending event; return the completions since last drain."""
        self._run_loop(None)
        return self._drain()

    def _run_loop(self, limit: float | None) -> None:
        """The hot loop: pop and dispatch events (bounded by *limit* if given).

        One flat function, everything in locals: the event arithmetic is a
        few dict operations per event, so per-event *dispatch* cost — method
        calls, attribute loads, the push wrapper — used to dominate.  Popping
        the raw heap, pushing with ``heapq.heappush`` directly (the sequence
        counter is a local, written back on exit) and inlining the
        try-to-start logic keeps the kernel at the speed of the
        pre-extraction closure-based simulator loop.  The eviction watermark
        (``refs is not None``) settles after each event; the retained mode
        pays one pointer comparison for the feature.
        """
        queue = self._queue
        heap = queue.heap
        pop = heapq.heappop
        push = heapq.heappush
        count = queue._count
        dead = self._dead
        compute_free = self._compute_free
        out_free = self._out_free
        in_free = self._in_free
        exit_tasks = self._exit_tasks
        exit_done_map = self._exit_done
        completion = self._completion
        fresh = self._fresh
        entry_states = self._entry_states
        refs = self._refs
        evict = self._evict
        now = self._now
        probe = self._probe
        # per-kind event tallies, flushed once at loop exit: with no probe
        # attached the loop pays exactly one `is None` check per event
        ev_counts = None if probe is None else [0, 0, 0, 0]
        if refs is not None:
            live = len(self._admitted)
            if live > self._peak_live:
                self._peak_live = live

        def try_start(state: _ReplicaRun, dataset: int) -> None:
            nonlocal count
            if dataset in state.finished or state.processor in dead:
                return
            if state.full_mask and state.received.get(dataset, 0) != state.full_mask:
                return
            free = compute_free[state.processor]
            start = now if now > free else free
            finish = start + state.duration
            compute_free[state.processor] = finish
            state.finished[dataset] = finish
            if refs is not None:
                refs[dataset] += 1
            count += 1
            push(heap, (finish, count, _COMPUTED, (state, dataset)))

        while heap:
            if limit is not None and heap[0][0] > limit:
                break
            now, _, kind, payload = pop(heap)
            if ev_counts is not None:
                ev_counts[kind] += 1
            if kind == _ARRIVED:
                src_state, dst_state, bit, dataset = payload
                if not dead or (
                    src_state.processor not in dead
                    and dst_state.processor not in dead
                ):
                    received = dst_state.received
                    got = received.get(dataset, 0)
                    new = got | bit
                    if new != got:
                        received[dataset] = new
                        if (
                            new == dst_state.full_mask
                            and dataset not in dst_state.finished
                            and dst_state.processor not in dead
                        ):
                            # every input is in: start the compute (inline —
                            # this is the single most frequent path)
                            free = compute_free[dst_state.processor]
                            start = now if now > free else free
                            finish = start + dst_state.duration
                            compute_free[dst_state.processor] = finish
                            dst_state.finished[dataset] = finish
                            if refs is not None:
                                refs[dataset] += 1
                            count += 1
                            push(heap, (finish, count, _COMPUTED, (dst_state, dataset)))
                # else: the transfer was in flight when an endpoint died
            elif kind == _COMPUTED:
                state, dataset = payload
                if dead and state.processor in dead:
                    pass  # the processor died while this compute was in flight
                else:
                    state.done[dataset] = now
                    task = state.replica.task
                    if task in exit_tasks:
                        exit_done = exit_done_map.get(dataset)
                        if exit_done is None:
                            exit_done = exit_done_map[dataset] = {}
                        if task not in exit_done:
                            exit_done[task] = now
                            if len(exit_done) == len(exit_tasks):
                                completion[dataset] = now
                                fresh.append((dataset, now))
                    # forward the result along every recorded communication
                    src_proc = state.processor
                    for dst_state, duration, bit in state.links:
                        if dead and dst_state.processor in dead:
                            continue  # no point sending to a dead receiver
                        if refs is not None:
                            refs[dataset] += 1
                        count += 1
                        if duration == 0.0:
                            push(heap, (now, count, _ARRIVED, (state, dst_state, bit, dataset)))
                        else:
                            start = out_free[src_proc]
                            if now > start:
                                start = now
                            free = in_free[dst_state.processor]
                            if free > start:
                                start = free
                            arrive = start + duration
                            out_free[src_proc] = arrive
                            in_free[dst_state.processor] = arrive
                            push(heap, (arrive, count, _ARRIVED, (state, dst_state, bit, dataset)))
            elif kind == _RELEASE_ALL:
                dataset = payload[0]
                for state in entry_states:
                    try_start(state, dataset)
            else:  # _RELEASE: one (replica, data set) kick from batch admission
                state, dataset = payload
                try_start(state, dataset)
            if refs is not None:
                dataset = payload[-1]
                left = refs[dataset] - 1
                if left:
                    refs[dataset] = left
                elif dataset in completion:
                    evict(dataset)
                else:
                    refs[dataset] = 0
        queue._count = count
        self._now = now
        if ev_counts is not None and any(ev_counts):
            probe.on_kernel_events(ev_counts, now)

    def _evict(self, dataset: int) -> None:
        """Retire every trace of a completed, quiescent data set (watermark)."""
        for state in self._states.values():
            state.received.pop(dataset, None)
            state.finished.pop(dataset, None)
            state.done.pop(dataset, None)
        self._exit_done.pop(dataset, None)
        self._admitted.pop(dataset, None)
        self._completion.pop(dataset, None)
        self._refs.pop(dataset, None)
        self._evicted += 1
        if dataset > self._max_evicted:
            self._max_evicted = dataset

    def _drain(self) -> list[tuple[int, float]]:
        fresh, self._fresh = self._fresh, []
        return fresh

    def _complete(self, dataset: int, time: float) -> None:
        self._completion[dataset] = time
        self._fresh.append((dataset, time))
