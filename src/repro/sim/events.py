"""The event queue and simulation clock of the kernel.

A single binary heap keyed by ``(time, sequence)``: the sequence number is a
monotonically increasing insertion counter, so events at the same instant pop
in push order.  This tie-breaking rule is part of the kernel's contract — the
offline simulator relies on it to stay bit-for-bit reproducible across runs
(and across the PR that extracted this kernel out of it).
"""

from __future__ import annotations

import heapq

__all__ = ["EventQueue"]


class EventQueue:
    """Time-ordered event heap with deterministic FIFO tie-breaking."""

    __slots__ = ("heap", "_count", "_now")

    def __init__(self) -> None:
        #: the raw heap of ``(time, seq, kind, payload)`` tuples.  The kernel's
        #: hot loop reads ``heap[0][0]`` and pops it directly to avoid a method
        #: call per event; every other caller must treat it as read-only.
        self.heap: list[tuple[float, int, str, object]] = []
        self._count = 0
        self._now = 0.0

    def __len__(self) -> int:
        return len(self.heap)

    def __bool__(self) -> bool:
        return bool(self.heap)

    @property
    def now(self) -> float:
        """Time of the most recently popped event (the simulation clock)."""
        return self._now

    def push(self, time: float, kind: str, payload: object) -> None:
        """Schedule *payload* of type *kind* at *time*."""
        self._count += 1
        heapq.heappush(self.heap, (time, self._count, kind, payload))

    def peek_time(self) -> float:
        """Time of the earliest pending event (the queue must be non-empty)."""
        return self.heap[0][0]

    def pop(self) -> tuple[float, str, object]:
        """Pop and return the earliest event as ``(time, kind, payload)``."""
        time, _, kind, payload = heapq.heappop(self.heap)
        self._now = time
        return time, kind, payload
