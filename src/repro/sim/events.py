"""The event queue and simulation clock of the kernel.

A single binary heap keyed by ``(time, sequence)``: the sequence number is a
monotonically increasing insertion counter, so events at the same instant pop
in push order.  This tie-breaking rule is part of the kernel's contract — the
offline simulator relies on it to stay bit-for-bit reproducible across runs
(and across the PR that extracted this kernel out of it).

Event kinds are small ints (interned by CPython), not strings: the kind is
dispatched on once per event in the kernel's hot loop, and it never takes
part in heap ordering — ``(time, sequence)`` is always a unique sort key, so
the comparison chain never reaches the kind or the payload.
"""

from __future__ import annotations

import heapq

__all__ = ["EventQueue"]


class EventQueue:
    """Time-ordered event heap with deterministic FIFO tie-breaking."""

    __slots__ = ("heap", "_count", "_now")

    def __init__(self) -> None:
        #: the raw heap of ``(time, seq, kind, payload)`` tuples.  The kernel's
        #: hot loop reads ``heap[0][0]`` and pops it directly to avoid a method
        #: call per event; every other caller must treat it as read-only.
        self.heap: list[tuple[float, int, int, object]] = []
        self._count = 0
        self._now = 0.0

    def __len__(self) -> int:
        return len(self.heap)

    def __bool__(self) -> bool:
        return bool(self.heap)

    @property
    def now(self) -> float:
        """Time of the most recently popped event (the simulation clock)."""
        return self._now

    def push(self, time: float, kind: int, payload: object) -> None:
        """Schedule *payload* of type *kind* at *time*."""
        self._count += 1
        heapq.heappush(self.heap, (time, self._count, kind, payload))

    def next_seq(self) -> int:
        """The sequence number the *next* pushed event would receive.

        Batch admission builds ``(time, seq, kind, payload)`` tuples itself
        (extending :attr:`heap` then heapifying once is O(n), n pushes are
        O(n log n)); it must draw the same consecutive sequence numbers a
        push loop would have, so ties keep resolving in admission order.
        Pair with :meth:`set_next_seq` after extending the heap.
        """
        return self._count + 1

    def set_next_seq(self, seq: int) -> None:
        """Record that sequence numbers below *seq* are now taken."""
        if seq <= self._count:
            raise ValueError(
                f"sequence numbers must grow: next_seq {seq} <= current {self._count}"
            )
        self._count = seq - 1

    def peek_time(self) -> float:
        """Time of the earliest pending event (the queue must be non-empty)."""
        return self.heap[0][0]

    def pop(self) -> tuple[float, int, object]:
        """Pop and return the earliest event as ``(time, kind, payload)``."""
        time, _, kind, payload = heapq.heappop(self.heap)
        self._now = time
        return time, kind, payload
