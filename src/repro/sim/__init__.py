"""Shared discrete-event simulation kernel.

This package is the single event loop under both execution front ends of the
reproduction:

* the **offline simulator** (:mod:`repro.failures.simulator`) drives the
  kernel in *batch* mode: every data set is admitted up front and the kernel
  runs to completion under a fixed crash scenario — this is the sanity check
  of the analytic latency model ``L = (2S − 1)·Δ``;
* the **online runtime** (:mod:`repro.runtime.engine`) drives the kernel
  *incrementally*: data sets are admitted as the stream releases them, fault
  events interleave with compute/transfer events in a single loop
  (:meth:`PipelineKernel.crash` cancels the work of a processor mid-run), and
  :meth:`PipelineKernel.completed_tasks` / :meth:`PipelineKernel.admit_restored`
  implement checkpoint/restart across online rebuilds.

Layering (bottom to top)::

    repro.sim            event queue + one-port pipeline kernel
      │                  + steady-state fast forward (repro.sim.steady)
      ├── repro.failures.simulator   batch driver  (StreamingSimulator)
      └── repro.runtime.engine       incremental driver (OnlineRuntime)
            └── repro.experiments / repro.cli   campaigns, sweeps, reports

Both drivers can skip provably-quiet stretches of a uniform stream in
closed form via :mod:`repro.sim.steady` (certificate-guarded, bit-identical
results — see ``docs/performance.md``).

The kernel only ever *reads* the :class:`~repro.schedule.schedule.Schedule`
(mapping, communication topology, per-replica execution times via
:meth:`~repro.schedule.schedule.Schedule.execution_time_of`); all mutable
simulation state lives here.
"""

from repro.sim.events import EventQueue
from repro.sim.kernel import PipelineKernel
from repro.sim.steady import SteadyStateDetector, certified_grid

__all__ = [
    "EventQueue",
    "PipelineKernel",
    "SteadyStateDetector",
    "certified_grid",
]
