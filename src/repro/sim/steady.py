"""Steady-state detection and closed-form fast-forward of quiet streams.

A fault-free stretch of a uniform stream is *periodic*: once the pipeline is
warm, data set ``j+W`` repeats data set ``j``'s record shifted by exactly
``W·Δ``.  Simulating every event of such a stretch is pure waste — the kernel
state itself repeats modulo a time shift, so the remaining records can be
written down in closed form (arithmetic progressions of completion instants)
and the clock jumped to the next boundary that actually changes anything: a
fault arrival, a repair, the trace end, or an admission-regime change.

The hard part is the correctness bar: traces must stay **bit-identical** to
the full event-driven simulation.  Floating-point timestamps make naive
extrapolation unsound — two windows can look equal while their continuations
drift apart in the last ulp.  This module therefore only ever fast-forwards
under an *exactness certificate*:

* every compute/transfer duration and the stream period must be an integer
  multiple of one power-of-two grid ``g = 2**grid_exp``
  (:func:`certified_grid`), with enough headroom that every timestamp of the
  run stays far below ``2**52·g``;
* every live timestamp of a candidate snapshot must itself sit on the grid
  (:func:`capture` refuses otherwise).

Under the certificate all kernel arithmetic (sums of grid multiples, ``max``,
comparisons) is **exact**, so the event step function commutes with a time
shift by any grid multiple.  Two successive admission-window boundaries with
identical shift-normalized snapshots and an exact delta of ``W·Δ`` therefore
*prove* that the stream repeats forever (until an external control event):
the extrapolated records equal the simulated ones bit for bit, by
construction rather than by hope.  Workloads that fail the certificate — the
random paper workloads with full-mantissa durations — simply never enter the
fast path and are simulated exactly as before.

The snapshot (:func:`capture`) normalizes away the two running offsets:

* **time** — every live instant is stored as ``t - t_base`` (exact on the
  grid); port-free instants at or before ``t_base`` are collapsed to a
  ``PAST`` sentinel, because a one-port reservation in the past is
  unobservable (every future operation starts at ``max(event_time, free)``
  with ``event_time > t_base``);
* **dataset index** — every index is stored as ``j - j_base`` where
  ``j_base`` is the next index to admit, so window ``k`` and window ``k+1``
  produce identical tuples in steady state.

Heap events are normalized in ``(time, seq)`` order with their payloads
resolved to replica-state indices; re-materializing them with fresh
consecutive sequence numbers (:func:`restore`) preserves the pop order the
tie-breaking contract of :mod:`repro.sim.events` promises.

Drivers (:class:`repro.failures.simulator.StreamingSimulator` offline,
:class:`repro.runtime.engine.OnlineRuntime` between fault arrivals) own the
admission loop; they feed window boundaries to :class:`SteadyStateDetector`
and, on a lock, synthesize the skipped records themselves from the last
window's drained completions before calling :func:`restore` to land the
kernel at the far end of the jump.
"""

from __future__ import annotations

import math

from repro.sim.kernel import _ARRIVED, _RELEASE, _RELEASE_ALL

__all__ = [
    "DEFAULT_WINDOW",
    "certified_grid",
    "capture",
    "restore",
    "SteadyStateDetector",
]

#: admission-window size (data sets per fingerprint boundary) used by drivers
#: that do not already have a window of their own.  Matches the online
#: runtime's ``_ADMIT_WINDOW`` so both drivers lock after the same warm-up.
DEFAULT_WINDOW = 256

#: headroom exponent of the range screen: every timestamp of the run must
#: stay below ``2**_RANGE_EXP`` grid units, far enough under the 53-bit
#: mantissa that sums, differences and tolerance-perturbed comparisons of
#: grid multiples are all exact (see :func:`certified_grid`).
_RANGE_EXP = 48

#: per-value representability bound: a normalized timestamp must be an
#: integer multiple of the grid with magnitude below ``2**52`` grid units.
_VALUE_BOUND = float(2**52)


class _OffGrid(Exception):
    """A live timestamp does not sit exactly on the certified grid."""


def _lsb_exp(x: float) -> int | None:
    """Exponent of the largest power of two dividing *x* exactly.

    ``x = m · 2**e`` with *m* an odd integer; returns *e*.  ``None`` for
    non-finite values, and for zero (which is a multiple of every grid and
    never constrains it).
    """
    if x == 0.0:
        return None
    if not math.isfinite(x):
        raise _OffGrid(f"non-finite duration {x!r}")
    mantissa, exp = math.frexp(x)
    scaled = int(mantissa * 2**53)  # exact: |mantissa| in [0.5, 1)
    trailing = (scaled & -scaled).bit_length() - 1
    return exp - 53 + trailing


def certified_grid(kernel, period: float, horizon: float) -> int | None:
    """The exactness certificate: grid exponent, or ``None`` (no fast path).

    Collects every duration the kernel can ever add to a timestamp (compute
    durations, transfer durations, the admission period) and finds the
    coarsest power-of-two grid ``g = 2**grid_exp`` they all sit on.  The
    certificate additionally requires

    * ``4·horizon < 2**48 · g`` — every timestamp of the run stays so far
      below the 53-bit mantissa limit that all grid-multiple additions,
      subtractions and shifted comparisons are exact;
    * ``tol < g/4`` for the runtime's release tolerance ``1e-9·Δ`` — a
      tolerance-perturbed comparison can never separate two grid points.

    Full-mantissa durations (the random paper workloads) produce a grid of
    ``~2**-45`` and fail the range screen immediately: the fast path then
    disables itself and the driver simulates every event, exactly as before.
    """
    if period <= 0.0 or not math.isfinite(period) or not math.isfinite(horizon):
        return None
    if not getattr(kernel, "fast_forward", False) or kernel.retain_history:
        return None
    values = [period]
    for state in kernel._states.values():
        values.append(state.duration)
        for _dst, duration, _bit in state.links:
            values.append(duration)
    grid_exp: int | None = None
    try:
        for value in values:
            exp = _lsb_exp(value)
            if exp is not None and (grid_exp is None or exp < grid_exp):
                grid_exp = exp
    except _OffGrid:
        return None
    if grid_exp is None:
        grid_exp = 0  # all durations zero: any grid certifies
    if math.ldexp(4.0 * max(horizon, period), -grid_exp) >= float(2**_RANGE_EXP):
        return None
    if 1e-9 * period >= math.ldexp(0.25, grid_exp):
        return None
    return grid_exp


def _norm(t: float, base: float, grid_exp: int) -> float:
    """Exact ``t - base`` for a grid timestamp (raises :class:`_OffGrid`)."""
    scaled = math.ldexp(t, -grid_exp)
    if not (scaled == math.floor(scaled) and abs(scaled) < _VALUE_BOUND):
        raise _OffGrid(f"timestamp {t!r} off the 2**{grid_exp} grid")
    return t - base  # difference of in-range grid multiples: exact


def capture(kernel, t_base: float, j_base: int, grid_exp: int):
    """Shift-normalized snapshot of *kernel* at boundary ``(t_base, j_base)``.

    Returns a plain nested tuple — two captures compare equal exactly when
    the kernel states are time/index shifts of each other — or ``None`` when
    the state is not certifiably extrapolable (a live timestamp off the
    grid, or an undrained completion).  The tuple doubles as the restore
    payload for :func:`restore`.
    """
    if kernel._fresh or kernel._refs is None:
        return None
    states = list(kernel._states.values())
    index = {id(state): i for i, state in enumerate(states)}
    try:
        state_part = tuple(
            (
                tuple(sorted((j - j_base, m) for j, m in s.received.items())),
                tuple(
                    sorted(
                        (j - j_base, _norm(t, t_base, grid_exp))
                        for j, t in s.finished.items()
                    )
                ),
                tuple(
                    sorted(
                        (j - j_base, _norm(t, t_base, grid_exp))
                        for j, t in s.done.items()
                    )
                ),
            )
            for s in states
        )
        # one-port reservations in the past are unobservable: every future
        # start is max(event_time, free) with event_time > t_base, so any
        # free <= t_base behaves identically — collapse them to one sentinel
        frees = tuple(
            tuple(
                None if freemap[name] <= t_base else _norm(freemap[name], t_base, grid_exp)
                for name in sorted(freemap)
            )
            for freemap in (kernel._compute_free, kernel._out_free, kernel._in_free)
        )
        events = []
        for t, _seq, kind, payload in sorted(kernel._queue.heap):
            dt = _norm(t, t_base, grid_exp)
            if kind == _ARRIVED:
                src, dst, bit, j = payload
                events.append((dt, kind, index[id(src)], index[id(dst)], bit, j - j_base))
            elif kind == _RELEASE_ALL:
                events.append((dt, kind, -1, -1, 0, payload[0] - j_base))
            else:  # _RELEASE / _COMPUTED: (state, dataset)
                state, j = payload
                events.append((dt, kind, index[id(state)], -1, 0, j - j_base))
        exit_done = tuple(
            sorted(
                (
                    j - j_base,
                    tuple(
                        sorted(
                            (task, _norm(t, t_base, grid_exp)) for task, t in d.items()
                        )
                    ),
                )
                for j, d in kernel._exit_done.items()
            )
        )
        admitted = tuple(
            sorted(
                (j - j_base, _norm(t, t_base, grid_exp))
                for j, t in kernel._admitted.items()
            )
        )
        completion = tuple(
            sorted(
                (j - j_base, _norm(t, t_base, grid_exp))
                for j, t in kernel._completion.items()
            )
        )
        refs = tuple(sorted((j - j_base, c) for j, c in kernel._refs.items()))
    except _OffGrid:
        return None
    return (
        state_part,
        frees,
        tuple(events),
        exit_done,
        admitted,
        completion,
        refs,
        tuple(sorted(kernel._dead)),
    )


def restore(kernel, snapshot, t_new: float, j_new: int, skipped: int) -> None:
    """Land *kernel* at boundary ``(t_new, j_new)`` from *snapshot*.

    Every normalized instant is re-based onto ``t_new`` and every index onto
    ``j_new`` — exact grid arithmetic, so the materialized state equals the
    one the full simulation would have reached.  Heap events keep their
    captured ``(time, seq)`` order under fresh consecutive sequence numbers
    drawn *above* the queue's counter: pending events must pop before any
    event pushed afterwards at the same instant, which is exactly the
    relative order the full simulation would have produced.  *skipped* data
    sets completed inside the jump and are accounted as evicted.
    """
    state_part, frees, events, exit_done, admitted, completion, refs, dead = snapshot
    states = list(kernel._states.values())
    for state, (received, finished, done) in zip(states, state_part):
        state.received = {dj + j_new: m for dj, m in received}
        state.finished = {dj + j_new: dt + t_new for dj, dt in finished}
        state.done = {dj + j_new: dt + t_new for dj, dt in done}
    for freemap, values in zip(
        (kernel._compute_free, kernel._out_free, kernel._in_free), frees
    ):
        for name, value in zip(sorted(freemap), values):
            freemap[name] = t_new if value is None else value + t_new
    queue = kernel._queue
    seq = queue._count
    heap = []
    for offset, (dt, kind, a, b, bit, dj) in enumerate(events, start=1):
        j = dj + j_new
        if kind == _ARRIVED:
            payload = (states[a], states[b], bit, j)
        elif kind == _RELEASE_ALL:
            payload = (j,)
        else:
            payload = (states[a], j)
        heap.append((dt + t_new, seq + offset, kind, payload))
    queue.heap = heap  # ascending (time, seq): already a valid min-heap
    queue._count = seq + len(events)
    kernel._exit_done = {
        dj + j_new: {task: dt + t_new for task, dt in d} for dj, d in exit_done
    }
    kernel._admitted = {dj + j_new: dt + t_new for dj, dt in admitted}
    kernel._completion = {dj + j_new: dt + t_new for dj, dt in completion}
    kernel._refs = {dj + j_new: c for dj, c in refs}
    kernel._fresh = []
    kernel._now = t_new
    kernel._evicted += skipped
    live = kernel._admitted
    watermark = j_new - 1
    while watermark in live:
        watermark -= 1
    if watermark > kernel._max_evicted:
        kernel._max_evicted = watermark


class SteadyStateDetector:
    """Lock onto a repeating kernel state at admission-window boundaries.

    The driver calls :meth:`observe` at every window boundary of a quiet
    stretch, passing whether the window was *clean* (every release admitted
    at its own release instant — no drop, no defer, no throttled slot).  Two
    successive clean boundaries with equal snapshots and the exact delta
    ``window·Δ`` lock the detector; :attr:`lock` then holds the snapshot the
    driver jumps from.  Any control event must :meth:`reset` the detector —
    the proof of periodicity only covers undisturbed evolution.
    """

    def __init__(self, kernel, grid_exp: int, period: float, window: int):
        self.kernel = kernel
        self.grid_exp = grid_exp
        self.period = period
        self.window = int(window)
        self.delta = self.window * period  # grid multiple in range: exact
        self._prev = None  # (snapshot, t_base, j_base) of the last boundary
        self.lock = None  # (snapshot, t_base, j_base) once locked

    def reset(self) -> None:
        self._prev = None
        self.lock = None

    def observe(self, t_base: float, j_base: int, clean: bool) -> bool:
        """Fingerprint the boundary; return ``True`` on a (re-)lock."""
        if not clean:
            self.reset()
            return False
        snapshot = capture(self.kernel, t_base, j_base, self.grid_exp)
        prev, self._prev = self._prev, None
        if snapshot is None:
            self.lock = None
            return False
        self._prev = (snapshot, t_base, j_base)
        if (
            prev is not None
            and prev[2] + self.window == j_base
            and t_base - prev[1] == self.delta
            and prev[0] == snapshot
        ):
            self.lock = (snapshot, t_base, j_base)
            return True
        self.lock = None
        return False

    def max_windows(self, t_base: float, budget: int, limit: float) -> int:
        """Largest jumpable window count from ``t_base``: at most *budget*
        windows (the remaining stream), landing at or before *limit* (the
        next control event), with the landing instant still safely inside
        the certificate's exact range."""
        m = budget
        if limit != math.inf:
            m = min(m, int((limit - t_base) / self.delta))
            while m > 0 and t_base + m * self.delta > limit:
                m -= 1
        while m > 0 and (
            math.ldexp(t_base + (m + 2) * self.delta, -self.grid_exp)
            >= float(2**_RANGE_EXP)
        ):
            m -= 1
        return max(m, 0)

    def jump(self, m: int) -> tuple[float, int]:
        """Fast-forward the kernel by *m* windows from the locked boundary.

        Returns the landing boundary ``(t_new, j_new)``.  The driver is
        responsible for having synthesized the skipped records first.
        """
        snapshot, t_base, j_base = self.lock
        t_new = t_base + m * self.delta
        j_new = j_base + m * self.window
        restore(self.kernel, snapshot, t_new, j_new, m * self.window)
        # the landed state is (provably) the locked state shifted: seed the
        # next boundary comparison with it so an ongoing quiet stretch
        # re-locks immediately instead of re-warming two windows
        self._prev = (snapshot, t_new, j_new)
        self.lock = None
        return t_new, j_new
