"""Name → factory registries for pluggable runtime policies.

Both policy families of the online runtime — rescheduling
(:mod:`repro.runtime.policies`) and admission
(:mod:`repro.runtime.admission`) — are resolved *by name* from a
:class:`PolicyRegistry`: the CLI builds its ``choices`` from the registry
keys, the Monte-Carlo trial spec validates against it, and the experiment
sweeps iterate it.  Registering a new policy in one place therefore makes it
reachable from every layer (engine, CLI, campaigns) without further wiring.

A registry is an immutable-feeling :class:`~collections.abc.Mapping` from
policy name to zero-argument factory; :meth:`PolicyRegistry.resolve` coerces
either a name or an already-built instance into an instance.
"""

from __future__ import annotations

from collections.abc import Mapping
from typing import Callable, Iterator, TypeVar

__all__ = ["PolicyRegistry"]

T = TypeVar("T")


class PolicyRegistry(Mapping):
    """A mapping of policy name → zero-argument factory."""

    def __init__(self, kind: str):
        self._kind = kind
        self._factories: dict[str, Callable[[], object]] = {}

    # ---------------------------------------------------------------- mutation
    def register(self, factory: Callable[[], T], name: str | None = None) -> Callable[[], T]:
        """Register *factory* under *name* (default: its ``name`` attribute).

        Returns the factory so the method doubles as a class decorator.
        """
        key = name if name is not None else getattr(factory, "name", None)
        if not key:
            raise ValueError(f"cannot register {factory!r} without a name")
        if key in self._factories:
            raise ValueError(f"{self._kind} policy {key!r} is already registered")
        self._factories[key] = factory
        return factory

    # ----------------------------------------------------------------- mapping
    def __getitem__(self, name: str) -> Callable[[], object]:
        return self._factories[name]

    def __iter__(self) -> Iterator[str]:
        return iter(self._factories)

    def __len__(self) -> int:
        return len(self._factories)

    @property
    def names(self) -> tuple[str, ...]:
        """Registered policy names, sorted (used for CLI ``choices``)."""
        return tuple(sorted(self._factories))

    # --------------------------------------------------------------- resolution
    def resolve(self, policy, protocol: type | None = None):
        """Coerce a policy name or instance into a policy instance.

        Raises :class:`ValueError` for unknown names and :class:`TypeError`
        when *policy* is neither a string nor (when *protocol* is given) an
        instance of *protocol*.
        """
        if isinstance(policy, str):
            try:
                return self._factories[policy]()
            except KeyError:
                raise ValueError(
                    f"unknown {self._kind} policy {policy!r}, "
                    f"expected one of {sorted(self._factories)}"
                ) from None
        if protocol is None or isinstance(policy, protocol):
            return policy
        raise TypeError(
            f"{self._kind} policy must be a name or a "
            f"{getattr(protocol, '__name__', protocol)}, got {type(policy).__name__}"
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"PolicyRegistry({self._kind!r}, {sorted(self._factories)})"
