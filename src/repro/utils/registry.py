"""Name → factory registries for pluggable components.

Every pluggable family of the library is resolved *by name* from a
:class:`PolicyRegistry`: the rescheduling and admission policies of the online
runtime (:mod:`repro.runtime.policies`, :mod:`repro.runtime.admission`), and —
since the declarative scenario redesign — the workload generators, platform
builders and schedulers of :mod:`repro.scenario.registries`.  The CLI builds
its ``choices`` from the registry keys, :class:`~repro.scenario.spec.
ScenarioSpec` validates against them, and the experiment sweeps iterate them.
Registering a new entry in one place therefore makes it reachable from every
layer (engine, CLI, scenario files, campaigns) without further wiring.

A registry is an immutable-feeling :class:`~collections.abc.Mapping` from
name to entry; :meth:`PolicyRegistry.resolve` coerces either a name or an
already-built instance into an instance (for zero-argument factories), while
:meth:`PolicyRegistry.lookup` returns the raw registered entry.  Unknown
names never die with a bare :class:`KeyError`: the error message lists the
registered names and suggests close matches
(:func:`difflib.get_close_matches`).
"""

from __future__ import annotations

import difflib
from collections.abc import Mapping
from typing import Callable, Iterator, TypeVar

__all__ = ["PolicyRegistry", "close_matches_hint"]

T = TypeVar("T")


def close_matches_hint(name: object, allowed) -> str:
    """``" — did you mean 'x' or 'y'?"`` for *name* against *allowed* names.

    The one place that owns the suggestion wording — the registries, the
    scenario serializer and the grid expander all append it to their own
    "unknown ..." prefixes.  Empty string when nothing is close.
    """
    matches = difflib.get_close_matches(str(name), list(allowed), n=3, cutoff=0.5)
    if not matches:
        return ""
    return f" — did you mean {' or '.join(repr(m) for m in matches)}?"


class PolicyRegistry(Mapping):
    """A mapping of name → factory (or arbitrary registered entry)."""

    def __init__(self, kind: str):
        self._kind = kind
        self._factories: dict[str, object] = {}

    # ---------------------------------------------------------------- mutation
    def register(self, factory: T, name: str | None = None) -> T:
        """Register *factory* under *name* (default: its ``name`` attribute).

        Returns the factory so the method doubles as a class decorator.
        """
        key = name if name is not None else getattr(factory, "name", None)
        if not key:
            raise ValueError(f"cannot register {factory!r} without a name")
        if key in self._factories:
            raise ValueError(f"{self._kind} {key!r} is already registered")
        self._factories[key] = factory
        return factory

    # ----------------------------------------------------------------- mapping
    def __getitem__(self, name: str) -> object:
        return self._factories[name]

    def __iter__(self) -> Iterator[str]:
        return iter(self._factories)

    def __len__(self) -> int:
        return len(self._factories)

    @property
    def names(self) -> tuple[str, ...]:
        """Registered names, sorted (used for CLI ``choices``)."""
        return tuple(sorted(self._factories))

    # --------------------------------------------------------------- resolution
    def describe_unknown(self, name: object) -> str:
        """Error message for an unknown *name*, with close-match suggestions."""
        return (
            f"unknown {self._kind} {name!r}, expected one of {sorted(self._factories)}"
            f"{close_matches_hint(name, self._factories)}"
        )

    def lookup(self, name: str) -> object:
        """The raw entry registered under *name*.

        Raises :class:`KeyError` with the registered names and close-match
        suggestions when *name* is unknown.
        """
        try:
            return self._factories[name]
        except KeyError:
            raise KeyError(self.describe_unknown(name)) from None

    def resolve(self, policy, protocol: type | None = None):
        """Coerce a policy name or instance into a policy instance.

        Raises :class:`ValueError` for unknown names and :class:`TypeError`
        when *policy* is neither a string nor (when *protocol* is given) an
        instance of *protocol*.
        """
        if isinstance(policy, str):
            try:
                return self._factories[policy]()
            except KeyError:
                raise ValueError(self.describe_unknown(policy)) from None
        if protocol is None or isinstance(policy, protocol):
            return policy
        raise TypeError(
            f"{self._kind} must be a name or a "
            f"{getattr(protocol, '__name__', protocol)}, got {type(policy).__name__}"
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"PolicyRegistry({self._kind!r}, {sorted(self._factories)})"
