"""Busy-interval timelines.

The bi-directional one-port model of the paper states that a processor can be
engaged in **at most one outgoing and one incoming communication at a time**
(while still computing).  The scheduling heuristics therefore need, for every
processor, two *timelines* — one for the out-port, one for the in-port — plus
one timeline per processor for the compute resource itself.  A timeline is a
sorted list of non-overlapping busy :class:`Interval` objects supporting
insertion-based earliest-slot queries ("when is the first instant ``>= ready``
at which this resource is free for ``duration`` time units?").

The same structure is reused for every resource, so it lives in
:mod:`repro.utils` rather than in the schedule package.
"""

from __future__ import annotations

import bisect
import math
from dataclasses import dataclass, field
from typing import Iterator, Sequence

__all__ = ["Interval", "Timeline", "earliest_common_slot"]

#: Tolerance used when comparing interval endpoints; avoids spurious overlaps
#: caused by floating-point rounding in long schedules.
_EPS = 1e-9


@dataclass(frozen=True, order=True)
class Interval:
    """A half-open busy interval ``[start, end)`` with an opaque label.

    The label typically identifies the replica or communication occupying the
    resource; it is never interpreted by the timeline itself and is excluded
    from ordering so intervals sort purely by time.
    """

    start: float
    end: float
    label: object = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if math.isnan(self.start) or math.isnan(self.end):
            raise ValueError("interval endpoints must not be NaN")
        if self.end < self.start - _EPS:
            raise ValueError(f"interval end {self.end} precedes start {self.start}")

    @property
    def duration(self) -> float:
        """Length of the interval."""
        return self.end - self.start

    def overlaps(self, other: "Interval") -> bool:
        """True when the two intervals share more than a boundary point."""
        return self.start < other.end - _EPS and other.start < self.end - _EPS

    def contains(self, instant: float) -> bool:
        """True when *instant* lies inside the half-open interval."""
        return self.start - _EPS <= instant < self.end - _EPS


class Timeline:
    """A set of non-overlapping busy intervals on a single resource.

    Supports the two operations needed by insertion-based list scheduling:

    * :meth:`earliest_slot` — first instant ``>= ready`` at which the resource
      is idle for ``duration`` consecutive time units;
    * :meth:`reserve` — mark ``[start, start + duration)`` as busy.

    The busy intervals are kept sorted by start time; both operations are
    ``O(log n)`` for the search plus ``O(n)`` worst case for the scan /
    insertion, which is ample for the graph sizes used in the paper
    (50–150 tasks, 20 processors).
    """

    def __init__(self, intervals: Sequence[Interval] | None = None):
        self._starts: list[float] = []
        self._intervals: list[Interval] = []
        if intervals:
            for iv in sorted(intervals):
                self.reserve(iv.start, iv.duration, iv.label)

    # ------------------------------------------------------------------ dunder
    def __len__(self) -> int:
        return len(self._intervals)

    def __iter__(self) -> Iterator[Interval]:
        return iter(self._intervals)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        body = ", ".join(f"[{iv.start:g},{iv.end:g})" for iv in self._intervals)
        return f"Timeline({body})"

    # ----------------------------------------------------------------- queries
    @property
    def intervals(self) -> tuple[Interval, ...]:
        """The busy intervals, sorted by start time."""
        return tuple(self._intervals)

    @property
    def busy_time(self) -> float:
        """Total busy duration."""
        return sum(iv.duration for iv in self._intervals)

    @property
    def makespan(self) -> float:
        """End of the last busy interval (0 when the timeline is empty)."""
        if not self._intervals:
            return 0.0
        return self._intervals[-1].end

    def is_free(self, start: float, duration: float) -> bool:
        """True when ``[start, start + duration)`` does not overlap any busy interval."""
        if duration <= _EPS:
            return True
        probe = Interval(start, start + duration)
        idx = bisect.bisect_left(self._starts, start) - 1
        for i in range(max(idx, 0), len(self._intervals)):
            iv = self._intervals[i]
            if iv.start >= probe.end - _EPS:
                break
            if iv.overlaps(probe):
                return False
        return True

    def earliest_slot(self, ready: float, duration: float) -> float:
        """Earliest instant ``>= ready`` at which a gap of *duration* starts.

        A zero-duration request returns ``ready`` immediately (local
        communications cost nothing in the model).
        """
        if duration <= _EPS:
            return ready
        candidate = ready
        for iv in self._intervals:
            if iv.end <= candidate + _EPS:
                continue
            if iv.start >= candidate + duration - _EPS:
                break
            candidate = max(candidate, iv.end)
        return candidate

    # --------------------------------------------------------------- mutation
    def reserve(self, start: float, duration: float, label: object = None) -> Interval:
        """Mark ``[start, start + duration)`` busy and return the new interval.

        Raises
        ------
        ValueError
            If the requested span overlaps an existing busy interval.
        """
        interval = Interval(start, start + duration, label)
        if duration <= _EPS:
            return interval
        if not self.is_free(start, duration):
            raise ValueError(
                f"cannot reserve [{start:g}, {start + duration:g}): resource busy"
            )
        idx = bisect.bisect_left(self._starts, start)
        self._starts.insert(idx, start)
        self._intervals.insert(idx, interval)
        return interval

    def copy(self) -> "Timeline":
        """Shallow copy of the timeline (intervals are immutable)."""
        clone = Timeline()
        clone._starts = list(self._starts)
        clone._intervals = list(self._intervals)
        return clone


def earliest_common_slot(
    timelines: Sequence[Timeline], ready: float, duration: float
) -> float:
    """Earliest instant ``>= ready`` at which *all* timelines are simultaneously free.

    Used to schedule a communication, which must occupy the sender's out-port
    and the receiver's in-port during the same time window (one-port model).

    The search alternates between the timelines: whenever a timeline pushes the
    candidate instant forward, the scan restarts with the later candidate, and
    terminates because each timeline only ever moves the candidate to the end
    of one of its finitely many busy intervals.
    """
    if duration <= _EPS or not timelines:
        return ready
    candidate = ready
    while True:
        moved = False
        for tl in timelines:
            slot = tl.earliest_slot(candidate, duration)
            if slot > candidate + _EPS:
                candidate = slot
                moved = True
        if not moved:
            return candidate
