"""Pause the cyclic garbage collector around allocation-heavy hot loops.

The simulation kernel and the online engine allocate millions of small,
acyclic objects per run (heap events, payload tuples, per-dataset records).
None of them form reference cycles — every collection during a long stream
frees exactly zero objects — yet the collector's generation scans grow with
the accumulated stream history and turn per-dataset cost super-linear on
10⁵-dataset streams (~30% of wall clock at 10⁵, measured).

:func:`gc_paused` disables collection for the duration of a run and restores
the previous state on exit (exceptions included).  Reference counting — the
thing that actually frees this workload — is unaffected; only the cycle
detector pauses, and anything cyclic allocated meanwhile is collected at the
first collection after the pause ends.  Nested pauses are safe (the inner
one sees collection already disabled and changes nothing).
"""

from __future__ import annotations

import gc
from contextlib import contextmanager

__all__ = ["gc_paused"]


@contextmanager
def gc_paused():
    """Context manager: cyclic GC off inside, previous state restored after."""
    if not gc.isenabled():
        yield
        return
    gc.disable()
    try:
        yield
    finally:
        gc.enable()
