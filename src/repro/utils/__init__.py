"""Small generic utilities shared across the library.

* :mod:`repro.utils.rng` — deterministic random-number helpers.
* :mod:`repro.utils.intervals` — busy-interval timelines used to enforce the
  one-port communication model.
* :mod:`repro.utils.checks` — argument validation helpers.
* :mod:`repro.utils.ascii` — plain-text tables and plots for experiment reports.
"""

from repro.utils.rng import ensure_rng, spawn_rngs
from repro.utils.intervals import Interval, Timeline, earliest_common_slot
from repro.utils.checks import (
    check_positive,
    check_non_negative,
    check_probability,
    check_type,
)
from repro.utils.ascii import format_table, ascii_plot

__all__ = [
    "ensure_rng",
    "spawn_rngs",
    "Interval",
    "Timeline",
    "earliest_common_slot",
    "check_positive",
    "check_non_negative",
    "check_probability",
    "check_type",
    "format_table",
    "ascii_plot",
]
