"""Deterministic random-number-generation helpers.

Every stochastic component of the library (workload generators, crash-scenario
sampling, experiment campaigns) accepts either an integer seed, an existing
:class:`numpy.random.Generator`, or ``None``.  Centralising the coercion here
keeps experiments reproducible and avoids the classic pitfall of mixing the
global :mod:`random` state with local generators.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

__all__ = ["ensure_rng", "spawn_rngs", "derive_seed"]

#: Upper bound (exclusive) used when deriving child seeds.
_SEED_SPACE = 2**32


def ensure_rng(seed: int | np.random.Generator | None = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for *seed*.

    Parameters
    ----------
    seed:
        ``None`` (fresh entropy), an ``int`` seed, or an already-constructed
        generator (returned unchanged).

    Examples
    --------
    >>> rng = ensure_rng(42)
    >>> rng2 = ensure_rng(rng)
    >>> rng is rng2
    True
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if seed is None:
        return np.random.default_rng()
    if isinstance(seed, (int, np.integer)):
        return np.random.default_rng(int(seed))
    raise TypeError(
        f"seed must be None, an int, or a numpy Generator, got {type(seed).__name__}"
    )


def derive_seed(rng: np.random.Generator) -> int:
    """Draw an integer seed from *rng* suitable for seeding a child generator."""
    return int(rng.integers(0, _SEED_SPACE))


def spawn_rngs(seed: int | np.random.Generator | None, count: int) -> list[np.random.Generator]:
    """Spawn *count* independent child generators from a parent seed.

    The children are derived with :meth:`numpy.random.Generator.spawn`, which
    guarantees statistical independence, so campaigns can be parallelised per
    seed without correlation between repetitions.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    rng = ensure_rng(seed)
    if count == 0:
        return []
    return list(rng.spawn(count))


def uniform_int(rng: np.random.Generator, low: int, high: int) -> int:
    """Inclusive uniform integer in ``[low, high]`` (paper-style ranges)."""
    if high < low:
        raise ValueError(f"empty range [{low}, {high}]")
    return int(rng.integers(low, high + 1))


def uniform_float(rng: np.random.Generator, low: float, high: float) -> float:
    """Uniform float in ``[low, high]``."""
    if high < low:
        raise ValueError(f"empty range [{low}, {high}]")
    return float(rng.uniform(low, high))


def sample_without_replacement(
    rng: np.random.Generator, population: Iterable, k: int
) -> list:
    """Sample *k* distinct elements from *population* (order randomised)."""
    pop = list(population)
    if k > len(pop):
        raise ValueError(f"cannot sample {k} items from a population of {len(pop)}")
    idx = rng.choice(len(pop), size=k, replace=False)
    return [pop[i] for i in idx]
