"""Plain-text reporting helpers.

The experiment harness reproduces the paper's figures as *series of numbers*
(one row per granularity value).  Because the execution environment is
head-less, the reports are rendered as aligned ASCII tables and, optionally, as
small ASCII line plots so that the shape of a curve (who wins, where the gap
widens) can be eyeballed straight from the benchmark output.
"""

from __future__ import annotations

from typing import Mapping, Sequence

__all__ = ["format_table", "ascii_plot", "format_series"]


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    float_fmt: str = "{:.2f}",
    title: str | None = None,
) -> str:
    """Render *rows* as an aligned, pipe-separated text table.

    Floats are formatted with *float_fmt*; every other value is ``str()``-ed.
    """
    rendered: list[list[str]] = []
    for row in rows:
        rendered.append(
            [
                float_fmt.format(cell) if isinstance(cell, float) else str(cell)
                for cell in row
            ]
        )
    header_cells = [str(h) for h in headers]
    widths = [len(h) for h in header_cells]
    for row in rendered:
        if len(row) != len(header_cells):
            raise ValueError(
                f"row has {len(row)} cells but the table has {len(header_cells)} columns"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt_row(cells: Sequence[str]) -> str:
        return " | ".join(cell.rjust(widths[i]) for i, cell in enumerate(cells))

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt_row(header_cells))
    lines.append("-+-".join("-" * w for w in widths))
    lines.extend(fmt_row(row) for row in rendered)
    return "\n".join(lines)


def format_series(series: Mapping[str, Sequence[float]], x: Sequence[float], x_name: str = "x") -> str:
    """Render several y-series sharing the same x axis as a table."""
    headers = [x_name, *series.keys()]
    rows = []
    for i, xv in enumerate(x):
        rows.append([float(xv), *[float(vals[i]) for vals in series.values()]])
    return format_table(headers, rows)


def ascii_plot(
    series: Mapping[str, Sequence[float]],
    width: int = 60,
    height: int = 15,
    markers: str = "*+ox#@",
) -> str:
    """Draw a crude ASCII line plot of one or more series.

    Each series is a sequence of y-values plotted against its index.  Values
    are linearly rescaled into a ``height`` x ``width`` character grid.  The
    function is intentionally simple: its purpose is to show curve ordering and
    crossovers in benchmark logs, not to produce publication figures.
    """
    if not series:
        return "(empty plot)"
    all_vals = [v for vals in series.values() for v in vals if v == v]  # drop NaN
    if not all_vals:
        return "(empty plot)"
    lo, hi = min(all_vals), max(all_vals)
    if hi - lo < 1e-12:
        hi = lo + 1.0
    max_len = max(len(vals) for vals in series.values())
    grid = [[" "] * width for _ in range(height)]

    def to_col(idx: int, n: int) -> int:
        if n <= 1:
            return 0
        return round(idx * (width - 1) / (n - 1))

    def to_row(value: float) -> int:
        frac = (value - lo) / (hi - lo)
        return (height - 1) - round(frac * (height - 1))

    legend = []
    for k, (name, vals) in enumerate(series.items()):
        marker = markers[k % len(markers)]
        legend.append(f"{marker} = {name}")
        for i, v in enumerate(vals):
            if v != v:  # NaN
                continue
            grid[to_row(v)][to_col(i, max_len)] = marker

    lines = [f"max={hi:.2f}"]
    lines.extend("|" + "".join(row) for row in grid)
    lines.append("+" + "-" * width + f"  min={lo:.2f}")
    lines.append("   ".join(legend))
    return "\n".join(lines)
