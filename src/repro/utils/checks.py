"""Argument-validation helpers.

The public API validates its inputs eagerly so that configuration mistakes
surface at the call site (e.g. a negative task weight or a probability above 1)
rather than as obscure failures deep inside a heuristic.
"""

from __future__ import annotations

import math
from typing import Any

__all__ = [
    "check_positive",
    "check_non_negative",
    "check_probability",
    "check_type",
    "check_in_range",
]


def check_positive(value: float, name: str) -> float:
    """Return *value* if it is a finite number ``> 0``, raise ``ValueError`` otherwise."""
    _check_finite_number(value, name)
    if value <= 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")
    return float(value)


def check_non_negative(value: float, name: str) -> float:
    """Return *value* if it is a finite number ``>= 0``, raise ``ValueError`` otherwise."""
    _check_finite_number(value, name)
    if value < 0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")
    return float(value)


def check_probability(value: float, name: str) -> float:
    """Return *value* if it lies in ``[0, 1]``, raise ``ValueError`` otherwise."""
    _check_finite_number(value, name)
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be within [0, 1], got {value!r}")
    return float(value)


def check_in_range(value: float, low: float, high: float, name: str) -> float:
    """Return *value* if ``low <= value <= high``, raise ``ValueError`` otherwise."""
    _check_finite_number(value, name)
    if not low <= value <= high:
        raise ValueError(f"{name} must be within [{low}, {high}], got {value!r}")
    return float(value)


def check_type(value: Any, expected: type | tuple[type, ...], name: str) -> Any:
    """Return *value* if it is an instance of *expected*, raise ``TypeError`` otherwise."""
    if not isinstance(value, expected):
        if isinstance(expected, tuple):
            names = " or ".join(t.__name__ for t in expected)
        else:
            names = expected.__name__
        raise TypeError(f"{name} must be {names}, got {type(value).__name__}")
    return value


def _check_finite_number(value: Any, name: str) -> None:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise TypeError(f"{name} must be a number, got {type(value).__name__}")
    if math.isnan(value) or math.isinf(value):
        raise ValueError(f"{name} must be finite, got {value!r}")
