"""Shared fixtures for the test-suite, plus the hypothesis CI profile."""

from __future__ import annotations

import os

import pytest

try:  # hypothesis is a test-only dependency; unit tests run without it
    from hypothesis import settings

    # CI runs derandomized (reproducible failures, no flaky shrinks) with a
    # deeper example budget than the fast local default.  Activate with
    # HYPOTHESIS_PROFILE=ci; per-test @settings(...) decorators still apply
    # their own max_examples on top.
    settings.register_profile("ci", derandomize=True, max_examples=200, deadline=None)
    settings.register_profile("dev", deadline=None)
    settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "dev"))
except ImportError:  # pragma: no cover
    pass

from repro.graph.dag import TaskGraph
from repro.graph.examples import figure1_graph, figure2_graph
from repro.graph.generator import chain_graph, fork_join_graph, random_layered_dag, random_paper_workload
from repro.platform.builders import (
    figure1_platform,
    figure2_platform,
    heterogeneous_platform,
    homogeneous_platform,
)


@pytest.fixture
def diamond() -> TaskGraph:
    """The Figure 1 diamond (4 tasks, all work 15, edge volume 2)."""
    return figure1_graph()


@pytest.fixture
def fig2() -> TaskGraph:
    """The Figure 2 workflow (7 tasks)."""
    return figure2_graph()


@pytest.fixture
def fig1_platform():
    return figure1_platform()


@pytest.fixture
def fig2_platform():
    return figure2_platform(10)


@pytest.fixture
def homo4():
    """Four identical unit-speed processors."""
    return homogeneous_platform(4)


@pytest.fixture
def hetero8():
    """Eight random heterogeneous processors (fixed seed)."""
    return heterogeneous_platform(8, seed=7)


@pytest.fixture
def chain6() -> TaskGraph:
    return chain_graph(6, work=10.0, volume=4.0)


@pytest.fixture
def forkjoin() -> TaskGraph:
    return fork_join_graph(branches=3, branch_length=2, work=10.0, volume=4.0)


@pytest.fixture
def random_dag() -> TaskGraph:
    return random_layered_dag(num_tasks=30, seed=11)


@pytest.fixture
def small_workload():
    """A small paper workload (30 tasks, 8 processors) for scheduler tests."""
    return random_paper_workload(1.0, seed=5, num_tasks=30, num_processors=8)
