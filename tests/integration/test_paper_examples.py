"""Integration tests replaying the paper's worked examples end to end."""

import pytest

from repro.core.ltf import ltf_schedule
from repro.core.rltf import rltf_schedule
from repro.exceptions import ThroughputInfeasibleError
from repro.experiments.tables import figure1_scenarios, figure2_example
from repro.graph.examples import figure1_graph, figure2_graph
from repro.platform.builders import figure1_platform, figure2_platform
from repro.schedule.metrics import communication_count, latency_upper_bound
from repro.schedule.stages import num_stages
from repro.schedule.validation import validate_schedule


class TestFigure1:
    def test_pipelined_mapping_matches_paper_numbers(self):
        """The introduction reports S = 2 stages, T = 1/30 and L = (2S-1)/T = 90."""
        graph = figure1_graph()
        platform = figure1_platform()
        schedule = rltf_schedule(graph, platform, period=30.0, epsilon=1)
        validate_schedule(schedule)
        assert num_stages(schedule) == 2
        assert latency_upper_bound(schedule) == pytest.approx(90.0)

    def test_scenario_table_orders_throughputs_as_in_the_paper(self):
        rows = {r.scenario: r for r in figure1_scenarios()}
        # pipelined execution achieves a better throughput than task parallelism
        assert rows["pipelined execution"].throughput > rows["task parallelism"].throughput
        # and task parallelism has the lowest latency of the pipelined/task pair
        assert rows["task parallelism"].latency < rows["pipelined execution"].latency


class TestFigure2:
    def test_ltf_fails_with_eight_processors(self):
        graph = figure2_graph()
        with pytest.raises(ThroughputInfeasibleError):
            ltf_schedule(graph, figure2_platform(8), throughput=0.05, epsilon=1)

    def test_both_succeed_with_ten_processors(self):
        graph = figure2_graph()
        platform = figure2_platform(10)
        ltf = ltf_schedule(graph, platform, throughput=0.05, epsilon=1)
        rltf = rltf_schedule(graph, platform, throughput=0.05, epsilon=1)
        for schedule in (ltf, rltf):
            validate_schedule(schedule)
            assert schedule.max_cycle_time <= 20.0 + 1e-9
        # R-LTF's purpose: never more stages, never more communications
        assert num_stages(rltf) <= num_stages(ltf)
        assert communication_count(rltf) <= communication_count(ltf)

    def test_example_table_is_consistent(self):
        rows = {r.scenario: r for r in figure2_example()}
        assert rows["LTF m=8"].latency is None  # fails, as in the paper
        assert rows["LTF m=10"].latency is not None
        assert rows["R-LTF m=10"].latency is not None
        assert rows["R-LTF m=10"].latency <= rows["LTF m=10"].latency + 1e-9
