"""The service over a real socket: wsgiref server + the stdlib example client.

Everything the unit suite drives through the WSGI callable directly is
exercised here once through actual HTTP — threaded server, urllib client,
headers — including the shipped ``examples/service_client.py`` helpers
(submit → poll → fetch), so the example code is tested code.
"""

from __future__ import annotations

import importlib.util
import json
import sys
import threading
import urllib.error
import urllib.request
from pathlib import Path

import pytest

from repro.cache.disk import DiskCache
from repro.service import JobStore, ServiceApp, WorkerPool, make_threaded_server

REPO = Path(__file__).resolve().parents[2]

SPEC = {
    "name": "http-test",
    "workload": {"num_tasks": 10, "num_processors": 4},
    "scheduler": {"epsilon": 1},
    "faults": {"mttf_periods": 60.0},
    "runtime": {"num_datasets": 25},
}


def _load_client():
    spec = importlib.util.spec_from_file_location(
        "service_client", REPO / "examples" / "service_client.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


client = _load_client()


@pytest.fixture
def server(tmp_path):
    """A live threaded service on an ephemeral loopback port."""
    app = ServiceApp(
        JobStore(
            cache=DiskCache(tmp_path / "cache"),
            pool=WorkerPool(workers=1, queue_capacity=2),
        )
    )
    srv = make_threaded_server(app, "127.0.0.1", 0)
    thread = threading.Thread(target=srv.serve_forever, daemon=True)
    thread.start()
    host, port = srv.server_address[:2]
    try:
        yield f"http://{host}:{port}", app
    finally:
        srv.shutdown()
        srv.server_close()
        app.jobs.pool.shutdown(wait=False)
        thread.join(timeout=5)


class TestOverHTTP:
    def test_submit_poll_fetch_and_cached_resubmit(self, server):
        base, app = server
        job = client.submit(base, SPEC, suite=False, seed=4, trials=None)
        assert job["state"] in ("queued", "running", "done")
        status = client.poll(base, job["job"], quiet=True)
        assert status["state"] == "done"
        assert status["executed"] == SPEC["runtime"]["num_datasets"]
        result = client.fetch(base, job["result_key"])
        assert result["result_key"] == job["result_key"]
        assert result["summary"]["datasets"] == SPEC["runtime"]["num_datasets"]
        # identical re-submit over HTTP: cache-served, nothing executed
        again = client.submit(base, SPEC, suite=False, seed=4, trials=None)
        assert again["state"] == "done"
        assert again["cached"] is True and again["executed"] == 0
        assert again["result_key"] == job["result_key"]

    def test_suite_submit_round_trip(self, server):
        base, _app = server
        suite = {
            "name": "http-suite",
            "trials": 1,
            "base": {
                "workload": {"num_tasks": 8, "num_processors": 4},
                "runtime": {"num_datasets": 10},
            },
            "axes": {"workload.num_processors": [3, 4]},
        }
        job = client.submit(base, suite, suite=True, seed=None, trials=None)
        status = client.poll(base, job["job"], quiet=True)
        assert status["state"] == "done" and status["executed"] == 2
        result = client.fetch(base, job["result_key"])
        assert result["kind"] == "suite" and result["num_points"] == 2
        assert all("campaign_key" in point for point in result["points"])

    def test_validation_error_is_http_422(self, server):
        base, _app = server
        with pytest.raises(SystemExit, match="422.*num_tasks"):
            client.submit(
                base, {"workload": {"num_taskz": 1}}, suite=False, seed=None,
                trials=None,
            )

    def test_saturation_is_http_429_with_retry_after_header(self, server):
        base, app = server
        gate = threading.Event()
        # fill every pool slot (1 worker + 2 queue) out-of-band
        blockers = [app.jobs.pool.submit(gate.wait) for _ in range(3)]
        try:
            body = json.dumps({"scenario": SPEC}).encode()
            request = urllib.request.Request(
                f"{base}/v1/scenarios", data=body,
                headers={"Content-Type": "application/json"},
            )
            with pytest.raises(urllib.error.HTTPError) as err:
                urllib.request.urlopen(request)
            assert err.value.code == 429
            assert int(err.value.headers["Retry-After"]) >= 1
            assert json.load(err.value)["error"]["kind"] == "saturated"
        finally:
            gate.set()
            for blocker in blockers:
                blocker.result(5)

    def test_healthz_while_a_job_runs(self, server):
        base, app = server
        gate = threading.Event()
        app.jobs.pool.submit(gate.wait)
        try:
            # the threaded server answers even with the pool busy
            with urllib.request.urlopen(f"{base}/v1/healthz", timeout=5) as response:
                health = json.load(response)
            assert health["status"] == "ok"
            assert health["pool"]["inflight"] == 1
        finally:
            gate.set()

    def test_client_main_end_to_end(self, server, tmp_path, capsys):
        base, _app = server
        scenario_file = tmp_path / "scenario.json"
        scenario_file.write_text(json.dumps(SPEC))
        assert client.main([str(scenario_file), "--base", base, "--seed", "2"]) == 0
        out = capsys.readouterr().out
        assert "done: cached=False" in out
        # second invocation: the cache answers
        assert client.main([str(scenario_file), "--base", base, "--seed", "2"]) == 0
        out = capsys.readouterr().out
        assert "done: cached=True executed=0" in out
