"""End-to-end integration tests: workloads → schedulers → evaluation → experiments."""

import pytest

from repro.core.fault_free import fault_free_schedule
from repro.core.ltf import ltf_schedule
from repro.core.rltf import rltf_schedule
from repro.exceptions import SchedulingError
from repro.experiments.campaign import run_point
from repro.experiments.config import ExperimentConfig, workload_period
from repro.failures.evaluation import expected_crash_latency
from repro.failures.simulator import simulate_stream
from repro.graph.examples import dsp_filter_bank, sensor_fusion_graph, video_encoding_pipeline
from repro.graph.generator import random_paper_workload
from repro.platform.builders import heterogeneous_platform
from repro.schedule.metrics import collect_metrics, latency_upper_bound
from repro.schedule.stages import num_stages
from repro.schedule.validation import validate_schedule

CONFIG = ExperimentConfig(
    granularities=(0.4, 1.6),
    num_graphs=1,
    num_processors=12,
    task_range=(25, 35),
    crash_samples=2,
    seed=99,
)


def _schedule_workload(granularity, epsilon, algorithm):
    workload = random_paper_workload(
        granularity, seed=13, num_tasks=30, num_processors=CONFIG.num_processors
    )
    period = workload_period(workload, epsilon, CONFIG)
    schedule = algorithm(workload.graph, workload.platform, period=period, epsilon=epsilon)
    return workload, schedule


class TestSchedulerPipeline:
    @pytest.mark.parametrize("algorithm", [ltf_schedule, rltf_schedule])
    @pytest.mark.parametrize("epsilon", [0, 1])
    @pytest.mark.parametrize("granularity", [0.4, 1.6])
    def test_schedule_evaluate_and_simulate(self, algorithm, epsilon, granularity):
        workload, schedule = _schedule_workload(granularity, epsilon, algorithm)
        validate_schedule(schedule)
        metrics = collect_metrics(schedule)
        assert metrics.stages == num_stages(schedule)
        assert metrics.latency == pytest.approx(latency_upper_bound(schedule))

        # crash evaluation never exceeds the analytic upper bound
        crash = expected_crash_latency(
            schedule, crashes=min(epsilon, 1), samples=3, seed=0, on_invalid="upper_bound"
        )
        assert crash <= latency_upper_bound(schedule) + 1e-6

        # the event-driven simulation is broadly consistent with the analytic
        # model: the greedy port arbitration of the simulator may lag a little
        # behind the steady-state bound, so a 30% slack is allowed here (the
        # tight comparisons live in tests/unit/test_failures.py on schedules
        # whose loads are comfortably below the period).
        sim = simulate_stream(schedule, num_datasets=6)
        assert sim.steady_state_latency > 0
        assert sim.achieved_period <= 2.0 * max(schedule.period, schedule.max_cycle_time)

    def test_fault_free_is_a_lower_bound_for_replicated_schedules(self):
        workload, schedule = _schedule_workload(1.6, 1, rltf_schedule)
        ff = fault_free_schedule(
            workload.graph, workload.platform, period=workload_period(workload, 0, CONFIG)
        )
        assert latency_upper_bound(ff) <= latency_upper_bound(schedule) + 1e-9

    def test_higher_epsilon_costs_more_communications(self):
        _, eps1 = _schedule_workload(1.6, 1, ltf_schedule)
        try:
            _, eps2 = _schedule_workload(1.6, 2, ltf_schedule)
        except SchedulingError:
            pytest.skip("epsilon=2 infeasible on this instance")
        assert len(eps2.comm_events) >= len(eps1.comm_events)


class TestRealisticApplications:
    @pytest.mark.parametrize(
        "factory", [video_encoding_pipeline, dsp_filter_bank, sensor_fusion_graph]
    )
    def test_domain_workflows_schedule_and_survive_one_crash(self, factory):
        graph = factory()
        platform = heterogeneous_platform(10, seed=4)
        period = 3.0 * graph.total_work * platform.mean_inverse_speed / platform.num_processors
        period += 2.0 * graph.total_volume * platform.mean_inverse_bandwidth / platform.num_processors
        schedule = rltf_schedule(graph, platform, period=period, epsilon=1)
        validate_schedule(schedule)
        crash = expected_crash_latency(schedule, 1, samples=4, seed=2, on_invalid="upper_bound")
        assert crash <= latency_upper_bound(schedule) + 1e-6


class TestCampaignIntegration:
    def test_run_point_end_to_end(self):
        point = run_point(0.8, epsilon=1, config=CONFIG)
        # at least one algorithm must have produced results on this instance
        produced = [k for k in point.metrics if k.endswith("upper bound")]
        assert produced or sum(point.failures.values()) > 0
        for name in produced:
            assert point.metrics[name] > 0
