"""Property-based tests (hypothesis) on the core data structures and invariants."""

from __future__ import annotations

import math

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.ltf import ltf_schedule
from repro.core.rltf import rltf_schedule
from repro.exceptions import SchedulingError
from repro.graph.analysis import bottom_levels, critical_path_length, granularity, top_levels
from repro.graph.generator import random_layered_dag, random_series_parallel
from repro.platform.builders import heterogeneous_platform, homogeneous_platform
from repro.schedule.metrics import communication_count, latency_upper_bound
from repro.schedule.stages import compute_stages, num_stages
from repro.schedule.validation import check_resilience, validate_schedule
from repro.utils.intervals import Timeline

# Keep hypothesis examples modest: each example builds graphs and schedules.
SLOW = settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
FAST = settings(max_examples=50, deadline=None)


# --------------------------------------------------------------------- timeline
@FAST
@given(
    reservations=st.lists(
        st.tuples(st.floats(0, 50), st.floats(0.1, 5)), min_size=0, max_size=15
    ),
    ready=st.floats(0, 60),
    duration=st.floats(0.1, 5),
)
def test_timeline_earliest_slot_is_free_and_after_ready(reservations, ready, duration):
    tl = Timeline()
    for start, dur in reservations:
        if tl.is_free(start, dur):
            tl.reserve(start, dur)
    slot = tl.earliest_slot(ready, duration)
    assert slot >= ready
    assert tl.is_free(slot, duration)


@FAST
@given(
    reservations=st.lists(
        st.tuples(st.floats(0, 50), st.floats(0.1, 5)), min_size=0, max_size=15
    )
)
def test_timeline_busy_time_is_sum_of_reserved_durations(reservations):
    tl = Timeline()
    total = 0.0
    for start, dur in reservations:
        if tl.is_free(start, dur):
            tl.reserve(start, dur)
            total += dur
    assert tl.busy_time == pytest.approx(total)


# ------------------------------------------------------------------------ graph
graph_strategy = st.builds(
    lambda n, seed: random_layered_dag(num_tasks=n, seed=seed),
    n=st.integers(5, 40),
    seed=st.integers(0, 10_000),
)


@SLOW
@given(graph=graph_strategy)
def test_topological_order_is_consistent(graph):
    order = graph.topological_order()
    assert sorted(order) == sorted(graph.task_names)
    position = {t: i for i, t in enumerate(order)}
    for src, dst, _ in graph.edges():
        assert position[src] < position[dst]


@SLOW
@given(graph=graph_strategy)
def test_levels_are_consistent_with_critical_path(graph):
    tl, bl = top_levels(graph), bottom_levels(graph)
    cp = critical_path_length(graph)
    assert all(tl[t] + bl[t] <= cp + 1e-6 for t in graph.task_names)
    assert any(math.isclose(tl[t] + bl[t], cp, rel_tol=1e-9) for t in graph.task_names)


@SLOW
@given(graph=graph_strategy, factor=st.floats(0.1, 10))
def test_granularity_scales_linearly_with_work(graph, factor):
    if graph.num_edges == 0:
        return
    base = granularity(graph)
    scaled = granularity(graph.scaled(work_factor=factor))
    assert scaled == pytest.approx(base * factor, rel=1e-6)


@SLOW
@given(graph=graph_strategy)
def test_reversed_graph_is_an_involution(graph):
    double = graph.reversed().reversed()
    assert sorted(double.edges()) == sorted(graph.edges())
    assert double.entry_tasks() == graph.entry_tasks()


@SLOW
@given(depth=st.integers(0, 5), seed=st.integers(0, 1000))
def test_series_parallel_has_two_terminals(depth, seed):
    graph = random_series_parallel(depth=depth, seed=seed)
    assert len(graph.entry_tasks()) == 1
    assert len(graph.exit_tasks()) == 1
    graph.validate()


# --------------------------------------------------------------------- schedules
workload_strategy = st.builds(
    lambda n, seed: (random_layered_dag(num_tasks=n, seed=seed), seed),
    n=st.integers(8, 25),
    seed=st.integers(0, 5_000),
)


def _generous_period(graph, platform, epsilon):
    compute = (epsilon + 1) * graph.total_work * platform.mean_inverse_speed / platform.num_processors
    comm = (
        (epsilon + 1)
        * sum(v for _, _, v in graph.edges())
        * platform.mean_inverse_bandwidth
        / platform.num_processors
    )
    return 4.0 * max(compute, comm, 1e-6) + max(t.work for t in graph.tasks) / platform.min_speed


@SLOW
@given(data=workload_strategy, epsilon=st.integers(0, 2))
def test_ltf_schedules_are_structurally_valid(data, epsilon):
    graph, seed = data
    platform = heterogeneous_platform(8, seed=seed)
    period = _generous_period(graph, platform, epsilon)
    try:
        schedule = ltf_schedule(graph, platform, period=period, epsilon=epsilon)
    except SchedulingError:
        return  # infeasible instances are allowed to fail explicitly
    validate_schedule(schedule)
    assert schedule.is_complete()
    # every task has exactly epsilon + 1 replicas on distinct processors
    for task in graph.task_names:
        procs = schedule.processors_of_task(task)
        assert len(procs) == epsilon + 1
        assert len(set(procs)) == epsilon + 1
    # the stage recursion never decreases along recorded communications
    stages = compute_stages(schedule)
    for event in schedule.comm_events:
        assert stages[event.destination] >= stages[event.source]


@SLOW
@given(data=workload_strategy)
def test_rltf_latency_never_worse_than_bound_formula(data):
    graph, seed = data
    platform = heterogeneous_platform(8, seed=seed)
    period = _generous_period(graph, platform, 1)
    try:
        schedule = rltf_schedule(graph, platform, period=period, epsilon=1)
    except SchedulingError:
        return
    s = num_stages(schedule)
    assert latency_upper_bound(schedule) == pytest.approx((2 * s - 1) * period)
    assert 1 <= s <= graph.num_tasks


@SLOW
@given(data=workload_strategy, epsilon=st.integers(1, 2))
def test_strict_resilience_guarantees_survival(data, epsilon):
    """With strict_resilience=True, any c <= epsilon crashes leave every task alive."""
    graph, seed = data
    platform = homogeneous_platform(8)
    period = _generous_period(graph, platform, epsilon)
    try:
        schedule = ltf_schedule(
            graph, platform, period=period, epsilon=epsilon, strict_resilience=True
        )
    except SchedulingError:
        return
    check_resilience(schedule, exhaustive_limit=100, samples=60, seed=seed)


@SLOW
@given(data=workload_strategy)
def test_communication_count_between_chain_and_full_replication(data):
    graph, seed = data
    platform = heterogeneous_platform(8, seed=seed)
    period = _generous_period(graph, platform, 1)
    try:
        schedule = ltf_schedule(graph, platform, period=period, epsilon=1)
    except SchedulingError:
        return
    total = communication_count(schedule, include_local=True)
    assert 2 * graph.num_edges <= total <= 4 * graph.num_edges
