"""Property tests of checkpoint/resume: interruption is invisible in the bytes.

The contract under test: a suite interrupted at *any* trial boundary and then
resumed produces campaigns bit-identical to an uninterrupted run.  Hypothesis
drives the interruption point; the interruption itself is injected by
counting trial-checkpoint writes and tripping the stop event after the k-th —
exactly what a SIGTERM between two trials does through ``drain_signals``.
"""

from __future__ import annotations

import tempfile
import threading
from pathlib import Path

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache import DiskCache
from repro.experiments.sweep import run_suite
from repro.scenario.spec import ScenarioSpec
from repro.scenario.suite import SuiteSpec

SLOW = settings(max_examples=8, deadline=None)

#: 2 points x 2 trials = 4 checkpointable units per run.
TRIALS = 2


def _suite() -> SuiteSpec:
    base = ScenarioSpec.from_dict(
        {
            "name": "resume-property",
            "workload": {"num_tasks": 10, "num_processors": 5},
            "scheduler": {"epsilon": 1},
            "faults": {"mttf_periods": 40.0},
            "runtime": {"num_datasets": 15},
        }
    )
    return SuiteSpec(
        base=base,
        axes={"faults.mttf_periods": [30.0, 60.0]},
        name="resume-property",
        trials=TRIALS,
        seed=4,
    )


def _interrupting_cache(root: Path, stop: threading.Event, after: int) -> DiskCache:
    """A cache that trips *stop* once *after* trial checkpoints were written."""
    cache = DiskCache(root)
    original_put = cache.put
    written = {"n": 0}

    def put(key, value):
        original_put(key, value)
        written["n"] += 1
        if written["n"] >= after:
            stop.set()

    cache.put = put
    return cache


@SLOW
@given(boundary=st.integers(min_value=0, max_value=2 * TRIALS - 1))
def test_interrupt_at_any_trial_boundary_then_resume_is_bit_identical(boundary):
    suite = _suite()
    reference = run_suite(suite, jobs=1)
    assert reference.failed_count == 0 and not reference.interrupted

    with tempfile.TemporaryDirectory() as tmp:
        root = Path(tmp) / "cache"
        if boundary == 0:
            # interrupted before any trial completed: stop pre-set
            stop = threading.Event()
            stop.set()
            cache = DiskCache(root)
        else:
            stop = threading.Event()
            cache = _interrupting_cache(root, stop, after=boundary)
        interrupted = run_suite(
            suite, jobs=1, cache=cache, resume=True, stop=stop
        )
        assert interrupted.interrupted
        # a partial result must never read like a complete one
        assert interrupted.failed_count + interrupted.executed_count >= 0
        assert any(p.failed for p in interrupted.points) or boundary >= 2 * TRIALS

        resumed = run_suite(
            suite, jobs=1, cache=DiskCache(root), resume=True
        )
        assert not resumed.interrupted and resumed.failed_count == 0
        # the resumed run served exactly the interrupted run's trials from
        # checkpoints (unless a whole point completed and its campaign key
        # subsumes them) and executed only the rest
        assert resumed.resumed_trials + resumed.executed_trials <= 2 * TRIALS
        for ref_point, res_point in zip(reference.points, resumed.points):
            assert ref_point.campaign == res_point.campaign
            assert ref_point.stats == res_point.stats


@SLOW
@given(seed=st.integers(min_value=0, max_value=2**32 - 1))
def test_chaos_decisions_are_pure_and_bounded(seed):
    from repro.resilience.chaos import ChaosSpec

    spec = ChaosSpec(crash=0.3, stall=0.2, corrupt=0.1, seed=seed % 1000)
    for token in (0, 17, seed % 97):
        for attempt in range(4):
            first = spec.decide(token, attempt)
            assert first == spec.decide(token, attempt)
            assert first in (None, "crash", "stall", "corrupt")
