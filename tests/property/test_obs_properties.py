"""Property-based tests (hypothesis) of the merge-exact latency histograms.

The load-bearing invariant of `repro.obs.metrics`: because every histogram
lives on one global fixed bucket ladder, merging per-trial histograms and
then asking for a quantile gives *exactly* the answer of histogramming the
whole value set at once — for any partition, in any order.  This is what
lets ``reduce="stats"`` campaigns report the same percentiles as
``reduce="traces"`` without ever shipping a latency list across a process
boundary.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import LatencyHistogram

# The ladder spans [1e-3, 1e6); draw mostly in-range plus under/overflow tails.
values = st.floats(
    min_value=1e-5, max_value=1e8, allow_nan=False, allow_infinity=False
)
value_lists = st.lists(values, min_size=1, max_size=60)
quantiles = st.floats(min_value=0.01, max_value=1.0)

FAST = settings(max_examples=100, deadline=None)


def _split(items, sizes):
    out, start = [], 0
    for size in sizes:
        out.append(items[start : start + size])
        start += size
    out.append(items[start:])
    return [chunk for chunk in out if chunk]


@FAST
@given(data=value_lists, cut=st.integers(min_value=0, max_value=60), q=quantiles)
def test_merged_quantiles_equal_whole_set_quantiles(data, cut, q):
    """Partition-invariance: merge(parts) ≡ histogram(whole), bucket-exactly."""
    cut = min(cut, len(data))
    parts = [LatencyHistogram.from_values(chunk) for chunk in _split(data, [cut])]
    merged = LatencyHistogram()
    for part in parts:
        merged = merged.merge(part)
    whole = LatencyHistogram.from_values(data)
    assert merged == whole
    assert merged.quantile(q) == whole.quantile(q)


@FAST
@given(
    a=value_lists, b=value_lists, c=value_lists, q=quantiles
)
def test_merge_is_associative_and_commutative(a, b, c, q):
    ha, hb, hc = (LatencyHistogram.from_values(v) for v in (a, b, c))
    left = ha.merge(hb).merge(hc)
    right = ha.merge(hb.merge(hc))
    swapped = hc.merge(ha).merge(hb)
    assert left == right == swapped
    assert left.quantile(q) == swapped.quantile(q)


@FAST
@given(data=value_lists)
def test_sparse_transport_round_trips(data):
    """The wire form (sorted non-zero buckets) loses nothing."""
    h = LatencyHistogram.from_values(data)
    sparse = h.as_sparse()
    assert LatencyHistogram.from_sparse(sparse) == h
    assert sorted(sparse) == list(sparse)
    assert sum(count for _, count in sparse) == h.total == len(data)


@FAST
@given(data=value_lists, q=quantiles)
def test_quantile_bounds_the_exact_value(data, q):
    """The reported quantile is an upper edge: ≥ the exact nearest-rank value,
    and within one bucket width (~8.5%) of it for in-range values."""
    h = LatencyHistogram.from_values(data)
    rank = max(1, -int(-q * len(data) // 1))
    exact = sorted(data)[rank - 1]
    reported = h.quantile(q, overflow=max(data))
    if 1e-3 <= exact < 1e6:
        assert exact <= reported or reported == max(data)
        if reported != max(data):
            assert reported <= exact * 1.085


@FAST
@given(data=st.lists(values, min_size=1, max_size=40), q=quantiles)
def test_quantile_is_monotone_in_q(data, q):
    h = LatencyHistogram.from_values(data)
    assert h.quantile(q) <= h.quantile(1.0)
    assert h.quantile(0.01) <= h.quantile(q)
