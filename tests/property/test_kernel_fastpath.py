"""Property tests of the kernel fast path (eviction + vectorized admission).

The constant-memory kernel mode (``retain_history=False``) and the vectorized
batch admission are *pure optimizations*: every event is processed
identically, so the observable outputs — the drained completion sequences,
the set of data sets that never complete under a crash pattern, the
checkpoint contents of in-flight data sets — must be bit-for-bit equal to the
retaining kernel's across arbitrary fault injections.  The memory regression
test then pins down what the eviction buys: peak kernel memory bounded by the
pipeline depth, not the stream length.
"""

from __future__ import annotations

import tracemalloc

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.ltf import ltf_schedule
from repro.graph.examples import figure2_graph
from repro.platform.builders import figure2_platform
from repro.sim.kernel import PipelineKernel

SLOW = settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])

_EPS1 = ltf_schedule(
    figure2_graph(), figure2_platform(10), throughput=0.05, epsilon=1,
    strict_resilience=True,
)


def _drive(kernel: PipelineKernel, num_datasets: int, crashes):
    """One deterministic script: interleaved admission, crashes, final drain.

    Returns everything observable: the concatenated drains (completion order
    and instants), the pending set at the end, and the checkpoint of every
    pending data set.
    """
    period = _EPS1.period
    crash_iter = sorted(crashes)
    drained = []
    for j in range(num_datasets):
        release = j * period
        while crash_iter and crash_iter[0][0] <= release:
            when, victim = crash_iter.pop(0)
            drained += kernel.run_until(when)
            kernel.crash(victim)
        kernel.admit(j, release)
        if j % 7 == 3:
            drained += kernel.run_until(release)
    for when, victim in crash_iter:
        drained += kernel.run_until(when)
        kernel.crash(victim)
    drained += kernel.run_to_completion()
    pending = kernel.pending_datasets()
    checkpoints = {j: kernel.completed_tasks(j) for j in pending}
    return drained, pending, checkpoints


@SLOW
@given(data=st.data(), num_datasets=st.integers(min_value=1, max_value=30))
def test_evicting_kernel_is_bit_identical_to_retaining(data, num_datasets):
    """retain_history=False ≡ retain_history=True under random fault traces."""
    used = sorted(_EPS1.used_processors())
    crashes = data.draw(
        st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=float(num_datasets) * _EPS1.period),
                st.sampled_from(used),
            ),
            max_size=2,
            unique_by=lambda c: c[1],
        )
    )
    retained = _drive(PipelineKernel(_EPS1), num_datasets, crashes)
    evicting = _drive(
        PipelineKernel(_EPS1, retain_history=False), num_datasets, crashes
    )
    assert evicting == retained  # drains, pending sets and checkpoints


@SLOW
@given(num_datasets=st.integers(min_value=1, max_value=40))
def test_vectorized_admission_matches_batch(num_datasets):
    period = _EPS1.period
    batch = PipelineKernel(_EPS1)
    batch.admit_batch([j * period for j in range(num_datasets)])
    batch.run_to_completion()
    vectorized = PipelineKernel(_EPS1)
    vectorized.admit_batch_vectorized(num_datasets, period)
    vectorized.run_to_completion()
    assert vectorized.completions == batch.completions


@SLOW
@given(
    num_datasets=st.integers(min_value=1, max_value=20),
    first_index=st.integers(min_value=0, max_value=100),
    offset_periods=st.floats(min_value=0.0, max_value=3.0),
)
def test_vectorized_admission_with_offset_and_index(
    num_datasets, first_index, offset_periods
):
    period = _EPS1.period
    offset = offset_periods * period
    batch = PipelineKernel(_EPS1)
    batch.admit_batch(
        [offset + j * period for j in range(num_datasets)], first_index=first_index
    )
    drain_b = batch.run_to_completion()
    vectorized = PipelineKernel(_EPS1, retain_history=False)
    vectorized.admit_batch_vectorized(
        num_datasets, period, first_index=first_index, offset=offset
    )
    drain_v = vectorized.run_to_completion()
    assert drain_v == drain_b
    assert vectorized.evicted_datasets == num_datasets


def _peak_memory(num_datasets: int, retain_history: bool) -> int:
    """Peak traced allocation of a windowed incremental run of *num_datasets*."""
    kernel = PipelineKernel(_EPS1, retain_history=retain_history)
    period = _EPS1.period
    tracemalloc.start()
    try:
        for j in range(num_datasets):
            kernel.admit(j, j * period)
            if j % 32 == 31:
                kernel.run_until(j * period)
        kernel.run_to_completion()
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    if not retain_history:
        assert kernel.evicted_datasets == num_datasets
        assert kernel.live_datasets == 0
    return peak


def test_eviction_bounds_peak_memory_sublinearly():
    """4× the stream must cost far less than 4× the memory (and the retaining
    kernel, whose state is the whole history, shows the linear growth the
    eviction removes)."""
    small, large = 400, 1600
    evict_small = _peak_memory(small, retain_history=False)
    evict_large = _peak_memory(large, retain_history=False)
    assert evict_large < 2.0 * evict_small, (
        f"evicting kernel peak grew {evict_large / evict_small:.2f}x "
        f"over a 4x longer stream ({evict_small} -> {evict_large} bytes)"
    )
    retain_small = _peak_memory(small, retain_history=True)
    retain_large = _peak_memory(large, retain_history=True)
    assert retain_large > 2.0 * retain_small  # the baseline really is linear
    assert evict_large < retain_large


def test_eviction_watermark_tracks_live_state():
    kernel = PipelineKernel(_EPS1, retain_history=False)
    period = _EPS1.period
    for j in range(64):
        kernel.admit(j, j * period)
        kernel.run_until(j * period)
    assert kernel.peak_live_datasets < 64  # eviction ran *during* the stream
    kernel.run_to_completion()
    assert kernel.evicted_datasets == 64
    assert kernel.completion_of(0) is None  # history is gone, by design
    assert kernel.pending_datasets() == ()


def test_evicted_index_cannot_be_readmitted():
    """The duplicate-admission guard survives eviction: a retired index is
    rejected (watermark check) instead of silently re-running."""
    import pytest

    from repro.exceptions import ScheduleError

    kernel = PipelineKernel(_EPS1, retain_history=False)
    kernel.admit(0, 0.0)
    kernel.run_to_completion()
    assert kernel.evicted_datasets == 1
    with pytest.raises(ScheduleError, match="already admitted"):
        kernel.admit(0, 1.0)
    with pytest.raises(ScheduleError, match="already admitted"):
        kernel.admit_batch_vectorized(2, _EPS1.period, first_index=0)
    kernel.admit(1, _EPS1.period)  # fresh indices above the watermark are fine
    kernel.run_to_completion()
    assert kernel.evicted_datasets == 2
