"""Property-based and oracle tests for the failure-world regimes.

Two layers lock the new fault vocabulary down:

* **hypothesis invariants** on :class:`FaultTrace` and the samplers — the
  crash < repair < join tie-break is canonical under any input permutation,
  ``failed_at`` agrees with a naive replay of the interleaving at arbitrary
  query times, and sampled traces never crash a down processor or restore an
  up one (per regime family; mixing base renewals with spot preemption is the
  documented exception, as two independent clocks share a processor);
* **degenerate-parameter oracles** — every new regime with its knob at the
  identity value (singleton groups, zero load-coupling, replay of a sampled
  trace, elasticity disabled) is *bit-identical* to the historical
  independent regime, at the ``sample_fault_trace`` level, through
  ``Session.run_online``, and through ``run_suite``.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.api import Session
from repro.experiments.sweep import run_suite
from repro.failures.scenarios import (
    FAULT_EVENT_KINDS,
    FaultEvent,
    FaultTrace,
    sample_fault_trace,
)
from repro.failures.trace_io import dump_fault_trace
from repro.platform.builders import heterogeneous_platform, homogeneous_platform
from repro.runtime.engine import OnlineRuntime
from repro.scenario import ScenarioSpec, SuiteSpec
from repro.scenario.run import (
    active_workload,
    build_fault_trace,
    build_schedule,
    build_workload,
    resolve_period,
    resolve_seeds,
)

SLOW = settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
FAST = settings(max_examples=50, deadline=None)

#: the documented tie-break, restated independently of the implementation.
KIND_RANK = {"crash": 0, "repair": 1, "join": 2}

# A small value pool so hypothesis actually produces (time, processor) ties.
times = st.one_of(st.sampled_from([0.0, 1.0, 2.0, 3.5]), st.floats(0, 50, allow_nan=False))
procs = st.sampled_from(["P1", "P2", "P3"])
events = st.lists(
    st.builds(FaultEvent, time=times, processor=procs, kind=st.sampled_from(FAULT_EVENT_KINDS)),
    max_size=20,
)


# ----------------------------------------------------------- trace invariants
@FAST
@given(events=events)
def test_event_order_is_canonical_under_permutation(events):
    trace = FaultTrace(tuple(events), horizon=100.0)
    expected = sorted(events, key=lambda e: (e.time, e.processor, KIND_RANK[e.kind]))
    assert list(trace.events) == expected
    reversed_trace = FaultTrace(tuple(reversed(events)), horizon=100.0)
    assert reversed_trace.events == trace.events


@FAST
@given(
    events=events,
    initially_down=st.sets(procs, max_size=3),
    query=st.one_of(st.sampled_from([0.0, 1.0, 2.0, 3.5]), st.floats(0, 60, allow_nan=False)),
)
def test_failed_at_matches_naive_replay(events, initially_down, query):
    trace = FaultTrace(tuple(events), horizon=100.0, initially_down=frozenset(initially_down))
    down = set(initially_down)
    for event in sorted(events, key=lambda e: (e.time, e.processor, KIND_RANK[e.kind])):
        if event.time > query:
            break
        if event.kind == "crash":
            down.add(event.processor)
        else:
            down.discard(event.processor)
    assert trace.failed_at(query) == frozenset(down)


def test_simultaneous_events_apply_crash_first():
    # crash+repair at one instant leaves the processor up; the input order of
    # the pair must not matter (the tie-break is intentional, not incidental).
    for pair in [("crash", "repair"), ("repair", "crash"), ("crash", "join"), ("join", "crash")]:
        trace = FaultTrace(
            tuple(FaultEvent(5.0, "P1", kind) for kind in pair), horizon=10.0
        )
        assert [e.kind for e in trace.events] == sorted(pair, key=KIND_RANK.__getitem__)
        assert trace.failed_at(5.0) == frozenset()


@SLOW
@given(
    seed=st.integers(0, 999),
    mttf=st.floats(5.0, 60.0),
    mttr=st.one_of(st.none(), st.floats(1.0, 20.0)),
    group_size=st.sampled_from([None, 2, 3]),
    load_coupling=st.floats(0.0, 2.0),
)
def test_renewal_traces_never_restore_an_up_processor(seed, mttf, mttr, group_size, load_coupling):
    platform = homogeneous_platform(6)
    names = platform.processor_names
    groups = None
    if group_size:
        groups = [names[i : i + group_size] for i in range(0, len(names), group_size)]
    trace = sample_fault_trace(
        platform, horizon=300.0, mttf=mttf, mttr=mttr, seed=seed,
        groups=groups, load_coupling=load_coupling,
        utilization={name: 0.5 for name in names},
    )
    down = set(trace.initially_down)
    for event in trace.events:
        if event.is_crash:
            assert event.processor not in down, "crashed a processor that was already down"
            down.add(event.processor)
        else:
            assert event.processor in down, "restored a processor that was already up"
            down.discard(event.processor)


@SLOW
@given(seed=st.integers(0, 999), spares=st.integers(1, 3), preempt=st.booleans())
def test_elastic_traces_never_restore_an_up_processor(seed, spares, preempt):
    # base renewals effectively disabled (mttf >> horizon) so the elastic
    # process is observed in isolation; see the module docstring for why.
    platform = homogeneous_platform(5)
    trace = sample_fault_trace(
        platform, horizon=200.0, mttf=1e12, seed=seed,
        spares=spares, join_mean=10.0, preempt_mean=40.0 if preempt else None,
    )
    assert trace.initially_down == frozenset(platform.processor_names[5 - spares :])
    down = set(trace.initially_down)
    for event in trace.events:
        if event.is_crash:
            assert event.processor not in down
            down.add(event.processor)
        else:
            assert event.processor in down
            down.discard(event.processor)


# ------------------------------------------------------- degenerate oracles
BASE = ScenarioSpec.from_dict(
    {
        "name": "oracle-base",
        "workload": {"num_tasks": 12, "num_processors": 6},
        "scheduler": {"epsilon": 1},
        "faults": {"mttf_periods": 30.0, "mttr_periods": 10.0},
        "runtime": {"num_datasets": 25},
    }
)


def _base_pipeline(spec, seed):
    """The (workload, schedule, fault trace) triple of one run of *spec*."""
    workload_seed, fault_seed = resolve_seeds(spec, seed)
    workload = build_workload(spec.workload, workload_seed)
    period = resolve_period(workload, spec.scheduler)
    schedule = build_schedule(active_workload(workload, spec.faults), spec.scheduler, period)
    trace = build_fault_trace(
        workload, spec.faults, schedule.period, spec.runtime.num_datasets,
        fault_seed, schedule=schedule,
    )
    return workload, schedule, trace


class TestDegenerateOracles:
    """Identity-knob settings reduce bit-for-bit to the independent regime."""

    @pytest.mark.parametrize("platform_builder", [
        lambda: homogeneous_platform(8),
        lambda: heterogeneous_platform(5, seed=7),
    ])
    def test_singleton_groups_sample_identically(self, platform_builder):
        platform = platform_builder()
        for seed in (0, 3):
            base = sample_fault_trace(platform, horizon=400.0, mttf=40.0, mttr=10.0, seed=seed)
            singleton = sample_fault_trace(
                platform, horizon=400.0, mttf=40.0, mttr=10.0, seed=seed,
                groups=[(name,) for name in platform.processor_names],
            )
            assert singleton == base

    def test_zero_load_coupling_samples_identically(self):
        platform = homogeneous_platform(8)
        util = {name: 0.7 for name in platform.processor_names}
        base = sample_fault_trace(platform, horizon=400.0, mttf=40.0, mttr=10.0, seed=1)
        uncoupled = sample_fault_trace(
            platform, horizon=400.0, mttf=40.0, mttr=10.0, seed=1,
            load_coupling=0.0, utilization=util,
        )
        assert uncoupled == base
        # and the knob is live: any positive coupling perturbs the stream
        coupled = sample_fault_trace(
            platform, horizon=400.0, mttf=40.0, mttr=10.0, seed=1,
            load_coupling=1.0, utilization=util,
        )
        assert coupled != base

    def test_group_size_one_is_identity_through_session(self):
        degenerate = BASE.updated({"faults.group_size": 1})
        for seed in (0, 7):
            assert Session(degenerate).run_online(seed).trace == Session(BASE).run_online(seed).trace

    def test_zero_coupling_is_identity_through_session(self):
        degenerate = BASE.updated({"faults.load_coupling": 0.0})
        for seed in (0, 7):
            assert Session(degenerate).run_online(seed).trace == Session(BASE).run_online(seed).trace

    def test_spares_zero_keeps_workload_object(self):
        workload, _, _ = _base_pipeline(BASE, 0)
        assert active_workload(workload, BASE.faults) is workload

    def test_replay_of_sampled_trace_is_identity_through_session(self, tmp_path):
        seed = 5
        _, _, trace = _base_pipeline(BASE, seed)
        assert trace.num_crashes > 0  # the oracle must replay real events
        path = tmp_path / "recorded.csv"
        dump_fault_trace(trace, path)
        replay = BASE.updated({"faults.trace_file": str(path)})
        assert Session(replay).run_online(seed).trace == Session(BASE).run_online(seed).trace

    def test_engine_platform_pool_is_identity_when_schedule_covers_it(self):
        workload, schedule, trace = _base_pipeline(BASE, 2)
        base = OnlineRuntime(schedule, trace).run(BASE.runtime.num_datasets)
        pooled = OnlineRuntime(schedule, trace, platform=schedule.platform).run(
            BASE.runtime.num_datasets
        )
        assert pooled == base

    def test_degenerate_suite_matches_base_suite_point_for_point(self):
        axes = {"faults.mttf_periods": (30.0, 60.0)}
        base_suite = SuiteSpec(base=BASE, axes=axes, name="oracle", trials=2, seed=4)
        degenerate = SuiteSpec(
            base=BASE.updated({"faults.group_size": 1, "faults.load_coupling": 0.0}),
            axes=axes, name="oracle", trials=2, seed=4,
        )
        a = run_suite(base_suite, jobs=1, reduce="stats")
        b = run_suite(degenerate, jobs=1, reduce="stats")
        assert [p.seed for p in a.points] == [p.seed for p in b.points]
        assert [p.stats for p in a.points] == [p.stats for p in b.points]
