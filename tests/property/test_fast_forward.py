"""Property tests of the steady-state fast forward (`repro.sim.steady`).

The fast path is a *pure optimization* under its exactness certificate:
traces, completion instants and trace summaries must be **bit-identical**
with the flag on and off, across every fault regime — zero faults (the
maximal jump), sparse faults (lock, jump, reset, re-lock), and dense faults
(the detector must keep resetting and never extrapolate at all).  These
properties are the correctness bar of the ISSUE: if any of them fails, the
fast path is wrong, not merely slow.
"""

from __future__ import annotations

import math

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.ltf import ltf_schedule
from repro.failures.scenarios import FaultEvent, FaultTrace
from repro.failures.simulator import StreamingSimulator
from repro.graph.examples import figure2_graph
from repro.obs.probe import MetricsProbe
from repro.platform.builders import figure2_platform
from repro.runtime.engine import OnlineRuntime
from repro.runtime.trace import summarize_trace
from repro.sim import steady
from repro.sim.kernel import PipelineKernel

SLOW = settings(
    max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)

# Integer durations and an integer period: the exactness certificate holds,
# so the fast path really engages on quiet stretches of this schedule.
_EPS1 = ltf_schedule(
    figure2_graph(), figure2_platform(10), throughput=0.05, epsilon=1,
    strict_resilience=True,
)

# One crash of this processor is tolerated under strict resilience (ε = 1),
# so a faulted stream keeps completing data sets after the fault.
_VICTIM = sorted(_EPS1.used_processors())[0]


def _fault_trace(crash_times, n):
    period = _EPS1.period
    events = []
    for t in crash_times:
        events.append(FaultEvent(t, _VICTIM, "crash"))
        events.append(FaultEvent(t + 5 * period, _VICTIM, "repair"))
    return FaultTrace(tuple(events), horizon=n * period)


# ------------------------------------------------------------------ engine
@SLOW
@given(
    n=st.integers(min_value=600, max_value=1600),
    regime=st.sampled_from(["zero", "sparse", "dense"]),
    offset=st.integers(min_value=0, max_value=400),
)
def test_engine_fast_forward_is_bit_identical(n, regime, offset):
    """``fast_forward=True`` ≡ ``fast_forward=False`` for the online engine,
    trace for trace and summary for summary, in every fault regime."""
    period = _EPS1.period
    if regime == "zero":
        crashes = []
    elif regime == "sparse":
        crashes = [(300 + offset) * period + 0.5 * period]
    else:  # dense: every ~50 data sets — never two clean windows in a row
        crashes = [t * period for t in range(40 + offset % 37, n, 50)]
    faults = _fault_trace(crashes, n)
    run = lambda ff: OnlineRuntime(
        _EPS1, faults, rebuild_beyond_epsilon=False, fast_forward=ff
    ).run(n)
    fast, full = run(True), run(False)
    assert fast == full
    assert summarize_trace(fast) == summarize_trace(full)


def test_dense_faults_never_enter_fast_forward():
    """With a fault every two admission windows the detector can never see
    two clean boundaries in a row: zero fast-forward spans, identical trace."""
    import repro.runtime.engine as engine_mod

    n = 1500
    period = _EPS1.period
    gap = engine_mod._ADMIT_WINDOW * 2  # strictly less than the 2-window lock
    crashes = [t * period for t in range(gap // 2, n, gap)]
    faults = _fault_trace(crashes, n)
    probe = MetricsProbe()
    fast = OnlineRuntime(
        _EPS1, faults, rebuild_beyond_epsilon=False, probe=probe
    ).run(n)
    assert probe.registry.counter("runtime.fast_forward.spans") == 0
    full = OnlineRuntime(
        _EPS1, faults, rebuild_beyond_epsilon=False, fast_forward=False
    ).run(n)
    assert fast == full


def test_quiet_stream_does_enter_fast_forward():
    """The flip side of the dense-fault guard: a zero-fault certified stream
    must actually jump (otherwise the properties above test nothing)."""
    n = 2000
    probe = MetricsProbe()
    faults = _fault_trace([], n)
    trace = OnlineRuntime(_EPS1, faults, probe=probe).run(n)
    assert probe.registry.counter("runtime.fast_forward.spans") >= 1
    assert probe.registry.counter("runtime.fast_forward.datasets") > n // 2
    # aggregates stay exact across the bulk path
    assert probe.registry.counter("datasets.completed") == n
    assert probe.registry.histogram("latency").total == n
    records = [r for r in trace.records if r.status == "completed"]
    assert probe.registry.gauge("latency.max") == max(
        r.completion - r.release for r in records
    )


# ----------------------------------------------------------------- offline
@SLOW
@given(
    n=st.integers(min_value=1, max_value=1400),
    crash_first=st.booleans(),
)
def test_offline_fast_forward_is_bit_identical(n, crash_first):
    """StreamingSimulator with the flag on ≡ off, including short streams
    (below the engage threshold) and crash scenarios (one processor down
    from the start — still periodic, still certified)."""
    scenario = (_VICTIM,) if crash_first else ()
    on = StreamingSimulator(_EPS1, scenario, fast_forward=True).run(n)
    off = StreamingSimulator(_EPS1, scenario, fast_forward=False).run(n)
    assert on.latencies == off.latencies
    assert on.completion_times == off.completion_times


def test_offline_fast_forward_engages_and_reports():
    n = 4000
    sim = StreamingSimulator(_EPS1)
    result = sim.run(n)
    assert sim.last_fast_forward["datasets"] > n // 2
    assert len(result.latencies) == n


# ------------------------------------------------------------- certificate
def _ff_kernel(schedule=_EPS1):
    return PipelineKernel(
        schedule, require_exit_coverage=False, retain_history=False,
        fast_forward=True,
    )


def test_certificate_holds_on_integer_schedule():
    kernel = _ff_kernel()
    assert steady.certified_grid(kernel, _EPS1.period, 10_000 * _EPS1.period) is not None


def test_certificate_rejects_off_grid_period():
    """A full-mantissa period produces a ~2**-51 grid: the range screen
    fails immediately and the fast path self-disables."""
    kernel = _ff_kernel()
    assert steady.certified_grid(kernel, math.pi, 1000 * math.pi) is None


def test_certificate_rejects_out_of_range_horizon():
    kernel = _ff_kernel()
    assert steady.certified_grid(kernel, _EPS1.period, float(2**60)) is None


def test_certificate_requires_the_kernel_flag():
    """A kernel built without ``fast_forward=True`` never certifies — the
    flag marks that the driver opted in and history retention is off."""
    kernel = PipelineKernel(_EPS1, require_exit_coverage=False)
    assert steady.certified_grid(kernel, _EPS1.period, 100 * _EPS1.period) is None


@given(x=st.integers(min_value=1, max_value=2**40), e=st.integers(min_value=-20, max_value=20))
@settings(max_examples=50, deadline=None)
def test_lsb_exponent_is_exact(x, e):
    """``_lsb_exp(m·2**e)`` recovers the dyadic valuation for any odd m."""
    odd = 2 * x - 1
    assert steady._lsb_exp(math.ldexp(float(odd), e)) == e


# ----------------------------------------------------- detector mechanics
def test_detector_locks_and_jump_matches_full_simulation():
    """Drive the detector by hand: it must lock on a quiet certified stream,
    and the jumped kernel must finish the stream bit-identically to a kernel
    that simulated every event."""
    n, window = 2000, steady.DEFAULT_WINDOW
    period = _EPS1.period

    def drive(fast):
        kernel = _ff_kernel()
        grid_exp = steady.certified_grid(kernel, period, n * period)
        assert grid_exp is not None
        detector = steady.SteadyStateDetector(kernel, grid_exp, period, window)
        completions = {}
        locked_at = None
        j = 0
        while j < n:
            stop = min(j + window, n)
            kernel.admit_stream_window(j, stop, period, n)
            j = stop
            if j >= n:
                break
            boundary = j * period
            drained = kernel.run_until(math.nextafter(boundary, -math.inf))
            completions.update(drained)
            if detector.observe(boundary, j, True) and fast and locked_at is None:
                locked_at = j
                m = detector.max_windows(boundary, (n - j) // window, math.inf)
                assert m >= 1
                for s in range(1, m + 1):
                    for d, t in drained[-window:]:
                        completions[d + s * window] = (t - boundary) + (
                            boundary + s * detector.delta
                        )
                detector.jump(m)
                j += m * window
        completions.update(kernel.run_to_completion())
        return completions, locked_at

    fast, locked_at = drive(True)
    full, _ = drive(False)
    assert locked_at is not None and locked_at <= 3 * window
    assert fast == full


def test_dirty_boundary_resets_the_detector():
    kernel = _ff_kernel()
    grid_exp = steady.certified_grid(kernel, _EPS1.period, 10_000 * _EPS1.period)
    detector = steady.SteadyStateDetector(kernel, grid_exp, _EPS1.period, 4)
    n, period = 64, _EPS1.period
    kernel.admit_stream_window(0, 8, period, n)
    kernel.run_until(math.nextafter(4 * period, -math.inf))
    assert detector.observe(4 * period, 4, clean=False) is False
    assert detector._prev is None and detector.lock is None
