"""Property-based tests (hypothesis) of the online runtime.

Invariants promised by the design:

* with **zero fault arrivals** the runtime is exactly the offline
  :class:`~repro.failures.simulator.StreamingSimulator` — same per-dataset
  latencies, same achieved period (and the incremental kernel admission is
  equivalent to the batch admission the simulator uses);
* with **at most ε crashes** charged against the initial schedule, active
  replication absorbs every failure: no rebuild happens and no data set is
  ever lost — with *either* admission policy (``queue`` with an unbounded
  buffer loses nothing that shed would have kept);
* with **checkpointing disabled** the engine reproduces the historical
  flush-and-restart traces exactly: each batch of releases between two state
  changes is simulated from a cold pipeline (checked against a direct
  StreamingSimulator oracle).
"""

from __future__ import annotations

import itertools

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.ltf import ltf_schedule
from repro.core.rltf import rltf_schedule
from repro.failures.scenarios import FaultEvent, FaultTrace
from repro.failures.simulator import StreamingSimulator, simulate_stream
from repro.graph.examples import figure2_graph
from repro.platform.builders import figure2_platform
from repro.runtime.admission import QueueAdmissionPolicy
from repro.runtime.engine import OnlineRuntime
from repro.sim.kernel import PipelineKernel

SLOW = settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])

# Built once: hypothesis drives the fault process, not the schedule.  The
# ≤ ε-crash property needs kill-set-disjoint replicas for *every* crash
# pattern, which is exactly what strict_resilience guarantees.
_EPS1 = ltf_schedule(
    figure2_graph(), figure2_platform(10), throughput=0.05, epsilon=1,
    strict_resilience=True,
)
_EPS2 = rltf_schedule(
    figure2_graph(), figure2_platform(10), throughput=0.04, epsilon=2,
    strict_resilience=True,
)


def _empty(schedule, num_datasets: int) -> FaultTrace:
    return FaultTrace((), horizon=num_datasets * schedule.period)


# ------------------------------------------------------- zero-fault equivalence
@SLOW
@given(num_datasets=st.integers(min_value=1, max_value=40))
def test_no_faults_matches_offline_simulator(num_datasets):
    trace = OnlineRuntime(_EPS1, _empty(_EPS1, num_datasets)).run(num_datasets)
    sim = simulate_stream(_EPS1, num_datasets=num_datasets)
    assert trace.latencies == sim.latencies
    assert trace.achieved_period == sim.achieved_period
    assert trace.completed_count == num_datasets
    assert trace.num_rebuilds == 0
    assert trace.downtime == 0.0


@SLOW
@given(num_datasets=st.integers(min_value=2, max_value=30))
def test_default_release_times_are_equivalent(num_datasets):
    period = _EPS1.period
    explicit = StreamingSimulator(_EPS1).run(
        num_datasets, release_times=[j * period for j in range(num_datasets)]
    )
    implicit = StreamingSimulator(_EPS1).run(num_datasets)
    assert explicit == implicit


@SLOW
@given(num_datasets=st.integers(min_value=1, max_value=30))
def test_incremental_kernel_admission_matches_batch(num_datasets):
    """Zero-fault invariant at the kernel level: admit() ≡ admit_batch()."""
    period = _EPS1.period
    batch = PipelineKernel(_EPS1)
    batch.admit_batch([j * period for j in range(num_datasets)])
    batch.run_to_completion()
    incremental = PipelineKernel(_EPS1)
    for j in range(num_datasets):
        incremental.admit(j, j * period)
    incremental.run_to_completion()
    assert incremental.completions == batch.completions
    sim = StreamingSimulator(_EPS1).run(num_datasets)
    assert tuple(batch.completions[j] for j in range(num_datasets)) == sim.completion_times


# ------------------------------------------------- ≤ ε crashes lose no data set
@SLOW
@given(data=st.data(), num_datasets=st.integers(min_value=5, max_value=25))
def test_single_crash_within_epsilon_loses_nothing(data, num_datasets):
    used = sorted(_EPS1.used_processors())
    victim = data.draw(st.sampled_from(used))
    when = data.draw(st.floats(min_value=0.0, max_value=float(num_datasets - 1)))
    events = (FaultEvent(when * _EPS1.period, victim, "crash"),)
    trace = OnlineRuntime(
        _EPS1, FaultTrace(events, horizon=num_datasets * _EPS1.period)
    ).run(num_datasets)
    assert trace.num_rebuilds == 0
    assert trace.lost_count == 0
    assert trace.completed_count == num_datasets
    assert all(record.completed for record in trace.records)


@SLOW
@given(data=st.data(), num_datasets=st.integers(min_value=5, max_value=20))
def test_two_crashes_within_epsilon2_lose_nothing(data, num_datasets):
    used = sorted(_EPS2.used_processors())
    pairs = list(itertools.combinations(used, 2))
    victims = data.draw(st.sampled_from(pairs))
    t1 = data.draw(st.floats(min_value=0.0, max_value=float(num_datasets - 2)))
    t2 = data.draw(st.floats(min_value=t1, max_value=float(num_datasets - 1)))
    events = (
        FaultEvent(t1 * _EPS2.period, victims[0], "crash"),
        FaultEvent(t2 * _EPS2.period, victims[1], "crash"),
    )
    trace = OnlineRuntime(
        _EPS2, FaultTrace(events, horizon=num_datasets * _EPS2.period)
    ).run(num_datasets)
    assert trace.num_rebuilds == 0
    assert trace.lost_count == 0
    assert trace.completed_count == num_datasets


@SLOW
@given(data=st.data(), num_datasets=st.integers(min_value=5, max_value=25))
def test_queue_admission_unbounded_loses_nothing_within_epsilon(data, num_datasets):
    """Queue admission with an unbounded buffer keeps every ≤ε-tolerated data set."""
    used = sorted(_EPS1.used_processors())
    victim = data.draw(st.sampled_from(used))
    when = data.draw(st.floats(min_value=0.0, max_value=float(num_datasets - 1)))
    events = (FaultEvent(when * _EPS1.period, victim, "crash"),)
    trace = OnlineRuntime(
        _EPS1,
        FaultTrace(events, horizon=num_datasets * _EPS1.period),
        admission=QueueAdmissionPolicy(capacity=None),
    ).run(num_datasets)
    assert trace.num_rebuilds == 0
    assert trace.lost_count == 0
    assert trace.completed_count == num_datasets
    assert trace.admission == "queue"


# ------------------------------------- checkpoint off ≡ flush-and-restart trace
def _flush_and_restart_oracle(schedule, victim: str, crash_time: float, num_datasets: int):
    """Reference flush-and-restart records for one tolerated crash.

    The historical engine cuts the stream at the crash: data sets released
    strictly before it are simulated from a cold pipeline under no failures;
    data sets released after it are simulated from a *new* cold pipeline under
    the crash set, with releases measured from the crash instant.  Every data
    set is admitted (one crash within ε never sheds), so the oracle is a pair
    of StreamingSimulator batches.
    """
    period = schedule.period
    tol = 1e-9 * period
    releases = [j * period for j in range(num_datasets)]
    before = [j for j in range(num_datasets) if releases[j] < crash_time - tol]
    after = [j for j in range(num_datasets) if j not in before]
    completions: dict[int, float] = {}
    if before:
        sim = StreamingSimulator(schedule).run(
            len(before), release_times=[releases[j] for j in before]
        )
        for k, j in enumerate(before):
            completions[j] = sim.completion_times[k]
    if after:
        sim = StreamingSimulator(schedule, frozenset([victim])).run(
            len(after),
            release_times=[max(0.0, releases[j] - crash_time) for j in after],
        )
        for k, j in enumerate(after):
            completions[j] = crash_time + sim.completion_times[k]
    return completions


@SLOW
@given(data=st.data(), num_datasets=st.integers(min_value=4, max_value=20))
def test_checkpoint_disabled_equals_flush_and_restart_trace(data, num_datasets):
    used = sorted(_EPS1.used_processors())
    victim = data.draw(st.sampled_from(used))
    when = data.draw(
        st.floats(min_value=0.25, max_value=float(num_datasets) - 0.25)
    )
    crash_time = when * _EPS1.period
    events = (FaultEvent(crash_time, victim, "crash"),)
    trace = OnlineRuntime(
        _EPS1,
        FaultTrace(events, horizon=num_datasets * _EPS1.period),
        checkpoint=False,
    ).run(num_datasets)
    oracle = _flush_and_restart_oracle(_EPS1, victim, crash_time, num_datasets)
    assert trace.completed_count == num_datasets
    for record in trace.records:
        assert record.completed
        assert record.completion == oracle[record.index]
