"""Property-based tests (hypothesis) of the online runtime.

Two invariants promised by the design:

* with **zero fault arrivals** the runtime is exactly the offline
  :class:`~repro.failures.simulator.StreamingSimulator` — same per-dataset
  latencies, same achieved period;
* with **at most ε crashes** charged against the initial schedule, active
  replication absorbs every failure: no rebuild happens and no data set is
  ever lost.
"""

from __future__ import annotations

import itertools

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.ltf import ltf_schedule
from repro.core.rltf import rltf_schedule
from repro.failures.scenarios import FaultEvent, FaultTrace
from repro.failures.simulator import StreamingSimulator, simulate_stream
from repro.graph.examples import figure2_graph
from repro.platform.builders import figure2_platform
from repro.runtime.engine import OnlineRuntime

SLOW = settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])

# Built once: hypothesis drives the fault process, not the schedule.  The
# ≤ ε-crash property needs kill-set-disjoint replicas for *every* crash
# pattern, which is exactly what strict_resilience guarantees.
_EPS1 = ltf_schedule(
    figure2_graph(), figure2_platform(10), throughput=0.05, epsilon=1,
    strict_resilience=True,
)
_EPS2 = rltf_schedule(
    figure2_graph(), figure2_platform(10), throughput=0.04, epsilon=2,
    strict_resilience=True,
)


def _empty(schedule, num_datasets: int) -> FaultTrace:
    return FaultTrace((), horizon=num_datasets * schedule.period)


# ------------------------------------------------------- zero-fault equivalence
@SLOW
@given(num_datasets=st.integers(min_value=1, max_value=40))
def test_no_faults_matches_offline_simulator(num_datasets):
    trace = OnlineRuntime(_EPS1, _empty(_EPS1, num_datasets)).run(num_datasets)
    sim = simulate_stream(_EPS1, num_datasets=num_datasets)
    assert trace.latencies == sim.latencies
    assert trace.achieved_period == sim.achieved_period
    assert trace.completed_count == num_datasets
    assert trace.num_rebuilds == 0
    assert trace.downtime == 0.0


@SLOW
@given(num_datasets=st.integers(min_value=2, max_value=30))
def test_default_release_times_are_equivalent(num_datasets):
    period = _EPS1.period
    explicit = StreamingSimulator(_EPS1).run(
        num_datasets, release_times=[j * period for j in range(num_datasets)]
    )
    implicit = StreamingSimulator(_EPS1).run(num_datasets)
    assert explicit == implicit


# ------------------------------------------------- ≤ ε crashes lose no data set
@SLOW
@given(data=st.data(), num_datasets=st.integers(min_value=5, max_value=25))
def test_single_crash_within_epsilon_loses_nothing(data, num_datasets):
    used = sorted(_EPS1.used_processors())
    victim = data.draw(st.sampled_from(used))
    when = data.draw(st.floats(min_value=0.0, max_value=float(num_datasets - 1)))
    events = (FaultEvent(when * _EPS1.period, victim, "crash"),)
    trace = OnlineRuntime(
        _EPS1, FaultTrace(events, horizon=num_datasets * _EPS1.period)
    ).run(num_datasets)
    assert trace.num_rebuilds == 0
    assert trace.lost_count == 0
    assert trace.completed_count == num_datasets
    assert all(record.completed for record in trace.records)


@SLOW
@given(data=st.data(), num_datasets=st.integers(min_value=5, max_value=20))
def test_two_crashes_within_epsilon2_lose_nothing(data, num_datasets):
    used = sorted(_EPS2.used_processors())
    pairs = list(itertools.combinations(used, 2))
    victims = data.draw(st.sampled_from(pairs))
    t1 = data.draw(st.floats(min_value=0.0, max_value=float(num_datasets - 2)))
    t2 = data.draw(st.floats(min_value=t1, max_value=float(num_datasets - 1)))
    events = (
        FaultEvent(t1 * _EPS2.period, victims[0], "crash"),
        FaultEvent(t2 * _EPS2.period, victims[1], "crash"),
    )
    trace = OnlineRuntime(
        _EPS2, FaultTrace(events, horizon=num_datasets * _EPS2.period)
    ).run(num_datasets)
    assert trace.num_rebuilds == 0
    assert trace.lost_count == 0
    assert trace.completed_count == num_datasets
