"""Unit tests for the parallel Monte-Carlo campaign engine."""

import pytest

from repro.experiments.campaign import instance_seeds, run_campaign, run_point
from repro.experiments.config import ExperimentConfig
from repro.experiments.figures import ablation_rules, baseline_comparison, scaling_study
from repro.experiments.parallel import (
    parallel_map,
    run_runtime_campaign,
)
from repro.experiments.sweep import run_runtime_sweep
from repro.runtime.montecarlo import RuntimeTrialSpec, run_trial

TINY = ExperimentConfig(
    granularities=(0.5, 1.5),
    num_graphs=1,
    num_processors=10,
    task_range=(20, 25),
    crash_samples=2,
    seed=1,
)

SPEC = RuntimeTrialSpec(
    num_tasks=15,
    num_processors=6,
    epsilon=1,
    num_datasets=30,
    mttf_periods=40.0,
)


def _square(x: int) -> int:
    return x * x


class TestParallelMap:
    def test_serial_preserves_order(self):
        assert parallel_map(_square, [3, 1, 2], jobs=1) == [9, 1, 4]

    def test_parallel_matches_serial(self):
        items = list(range(8))
        assert parallel_map(_square, items, jobs=4) == [x * x for x in items]

    def test_none_and_zero_jobs_run_serially(self):
        assert parallel_map(_square, [2], jobs=None) == [4]
        assert parallel_map(_square, [2, 3], jobs=0) == [4, 9]


class TestRuntimeCampaign:
    def test_same_seed_same_traces(self):
        a = run_runtime_campaign(SPEC, trials=3, seed=5, jobs=1)
        b = run_runtime_campaign(SPEC, trials=3, seed=5, jobs=1)
        assert a.traces == b.traces
        assert a.trial_seeds == b.trial_seeds

    def test_jobs_do_not_change_results(self):
        serial = run_runtime_campaign(SPEC, trials=4, seed=0, jobs=1)
        fanned = run_runtime_campaign(SPEC, trials=4, seed=0, jobs=2)
        assert serial.traces == fanned.traces

    def test_stats_aggregate(self):
        result = run_runtime_campaign(SPEC, trials=3, seed=2, jobs=1)
        stats = result.stats
        assert stats.trials == 3
        assert 0.0 <= stats.mean_loss_rate <= 1.0
        assert 0.0 <= stats.mean_availability <= 1.0

    def test_trial_is_pure(self):
        assert run_trial(SPEC, seed=11) == run_trial(SPEC, seed=11)

    def test_validation(self):
        with pytest.raises(ValueError):
            run_runtime_campaign(SPEC, trials=0)
        with pytest.raises(ValueError):
            RuntimeTrialSpec(mttf_periods=-1.0)
        with pytest.raises(ValueError):
            RuntimeTrialSpec(distribution="zipf")
        with pytest.raises(ValueError):
            RuntimeTrialSpec(epsilon=10, num_processors=5)

    def test_spec_overrides(self):
        spec = SPEC.with_overrides(policy="remap")
        assert spec.policy == "remap"
        assert spec.num_tasks == SPEC.num_tasks


class TestCampaignJobs:
    def test_run_campaign_parallel_is_bit_for_bit_identical(self):
        serial = run_campaign(1, TINY, jobs=1)
        fanned = run_campaign(1, TINY, jobs=2)
        assert [p.metrics for p in serial.points] == [p.metrics for p in fanned.points]
        assert [p.failures for p in serial.points] == [p.failures for p in fanned.points]

    def test_instance_seeds_are_stable(self):
        a = instance_seeds(TINY, 0.5, 1)
        b = instance_seeds(TINY, 0.5, 1)
        assert a == b and len(a) == TINY.num_graphs
        assert instance_seeds(TINY, 1.5, 1) != a

    def test_run_point_shards_within_the_point(self):
        """Per-graph fan-out: a single point parallelises bit-for-bit."""
        config = TINY.with_overrides(num_graphs=3)
        serial = run_point(1.0, epsilon=1, config=config, jobs=1)
        fanned = run_point(1.0, epsilon=1, config=config, jobs=3)
        assert serial.metrics == fanned.metrics
        assert serial.failures == fanned.failures

    def test_run_point_agrees_with_run_campaign(self):
        config = TINY.with_overrides(num_graphs=2)
        campaign = run_campaign(1, config, jobs=2)
        point = run_point(config.granularities[0], epsilon=1, config=config)
        assert campaign.points[0].metrics == point.metrics

    def test_scaling_study_jobs_preserve_workloads(self):
        serial = scaling_study(sizes=(10, 20), epsilon=0, config=TINY, jobs=1)
        fanned = scaling_study(sizes=(10, 20), epsilon=0, config=TINY, jobs=2)
        # wall-clock numbers differ, the structure and x axis must not
        assert serial.x == fanned.x == (10.0, 20.0)
        assert set(serial.series) == set(fanned.series) == {"LTF", "R-LTF"}

    def test_runtime_sweep_jobs_are_bit_for_bit_identical(self):
        spec = SPEC.with_overrides(num_datasets=20)
        serial = run_runtime_sweep(
            spec, mttf_grid=(30.0, 60.0), mttr_grid=(None,), shapes=(1.0,),
            trials=2, seed=3, jobs=1,
        )
        fanned = run_runtime_sweep(
            spec, mttf_grid=(30.0, 60.0), mttr_grid=(None,), shapes=(1.0,),
            trials=2, seed=3, jobs=2,
        )
        assert serial.points == fanned.points
        figure = serial.figure("availability")
        assert figure.x == (30.0, 60.0)
        assert set(figure.series) == {"mttr=∞, shape=1"}
        assert len(serial.figures()) == 4

    def test_runtime_sweep_validation(self):
        with pytest.raises(ValueError):
            run_runtime_sweep(SPEC, mttf_grid=(), trials=1)
        with pytest.raises(ValueError):
            run_runtime_sweep(SPEC, trials=0)
        with pytest.raises(ValueError):
            run_runtime_sweep(SPEC, mttf_grid=(None,), trials=1)

    def test_ablations_parallel_identical(self):
        serial = ablation_rules(TINY, jobs=1)
        fanned = ablation_rules(TINY, jobs=2)
        assert serial.series == fanned.series

    def test_baselines_parallel_identical(self):
        serial = baseline_comparison(TINY, jobs=1)
        fanned = baseline_comparison(TINY, jobs=2)
        assert serial.series == fanned.series
