"""Unit tests for the parallel Monte-Carlo campaign engine."""

import pytest

from repro.experiments.campaign import instance_seeds, run_campaign, run_point
from repro.experiments.config import ExperimentConfig
from repro.experiments.figures import ablation_rules, baseline_comparison, scaling_study
from repro.experiments.parallel import (
    parallel_map,
    run_runtime_campaign,
)
from repro.experiments.sweep import run_runtime_sweep
from repro.runtime.montecarlo import RuntimeTrialSpec, run_trial

TINY = ExperimentConfig(
    granularities=(0.5, 1.5),
    num_graphs=1,
    num_processors=10,
    task_range=(20, 25),
    crash_samples=2,
    seed=1,
)

SPEC = RuntimeTrialSpec(
    num_tasks=15,
    num_processors=6,
    epsilon=1,
    num_datasets=30,
    mttf_periods=40.0,
)


def _square(x: int) -> int:
    return x * x


class TestParallelMap:
    def test_serial_preserves_order(self):
        assert parallel_map(_square, [3, 1, 2], jobs=1) == [9, 1, 4]

    def test_parallel_matches_serial(self):
        items = list(range(8))
        assert parallel_map(_square, items, jobs=4) == [x * x for x in items]

    def test_none_and_zero_jobs_run_serially(self):
        assert parallel_map(_square, [2], jobs=None) == [4]
        assert parallel_map(_square, [2, 3], jobs=0) == [4, 9]


class TestRuntimeCampaign:
    def test_same_seed_same_traces(self):
        a = run_runtime_campaign(SPEC, trials=3, seed=5, jobs=1)
        b = run_runtime_campaign(SPEC, trials=3, seed=5, jobs=1)
        assert a.traces == b.traces
        assert a.trial_seeds == b.trial_seeds

    def test_jobs_do_not_change_results(self):
        serial = run_runtime_campaign(SPEC, trials=4, seed=0, jobs=1)
        fanned = run_runtime_campaign(SPEC, trials=4, seed=0, jobs=2)
        assert serial.traces == fanned.traces

    def test_stats_aggregate(self):
        result = run_runtime_campaign(SPEC, trials=3, seed=2, jobs=1)
        stats = result.stats
        assert stats.trials == 3
        assert 0.0 <= stats.mean_loss_rate <= 1.0
        assert 0.0 <= stats.mean_availability <= 1.0

    def test_trial_is_pure(self):
        assert run_trial(SPEC, seed=11) == run_trial(SPEC, seed=11)

    def test_validation(self):
        with pytest.raises(ValueError):
            run_runtime_campaign(SPEC, trials=0)
        with pytest.raises(ValueError):
            RuntimeTrialSpec(mttf_periods=-1.0)
        with pytest.raises(ValueError):
            RuntimeTrialSpec(distribution="zipf")
        with pytest.raises(ValueError):
            RuntimeTrialSpec(epsilon=10, num_processors=5)

    def test_spec_overrides(self):
        spec = SPEC.with_overrides(policy="remap")
        assert spec.policy == "remap"
        assert spec.num_tasks == SPEC.num_tasks


class TestCampaignJobs:
    def test_run_campaign_parallel_is_bit_for_bit_identical(self):
        serial = run_campaign(1, TINY, jobs=1)
        fanned = run_campaign(1, TINY, jobs=2)
        assert [p.metrics for p in serial.points] == [p.metrics for p in fanned.points]
        assert [p.failures for p in serial.points] == [p.failures for p in fanned.points]

    def test_instance_seeds_are_stable(self):
        a = instance_seeds(TINY, 0.5, 1)
        b = instance_seeds(TINY, 0.5, 1)
        assert a == b and len(a) == TINY.num_graphs
        assert instance_seeds(TINY, 1.5, 1) != a

    def test_run_point_shards_within_the_point(self):
        """Per-graph fan-out: a single point parallelises bit-for-bit."""
        config = TINY.with_overrides(num_graphs=3)
        serial = run_point(1.0, epsilon=1, config=config, jobs=1)
        fanned = run_point(1.0, epsilon=1, config=config, jobs=3)
        assert serial.metrics == fanned.metrics
        assert serial.failures == fanned.failures

    def test_run_point_agrees_with_run_campaign(self):
        config = TINY.with_overrides(num_graphs=2)
        campaign = run_campaign(1, config, jobs=2)
        point = run_point(config.granularities[0], epsilon=1, config=config)
        assert campaign.points[0].metrics == point.metrics

    def test_scaling_study_jobs_preserve_workloads(self):
        serial = scaling_study(sizes=(10, 20), epsilon=0, config=TINY, jobs=1)
        fanned = scaling_study(sizes=(10, 20), epsilon=0, config=TINY, jobs=2)
        # wall-clock numbers differ, the structure and x axis must not
        assert serial.x == fanned.x == (10.0, 20.0)
        assert set(serial.series) == set(fanned.series) == {"LTF", "R-LTF"}

    def test_runtime_sweep_jobs_are_bit_for_bit_identical(self):
        spec = SPEC.with_overrides(num_datasets=20)
        serial = run_runtime_sweep(
            spec, mttf_grid=(30.0, 60.0), mttr_grid=(None,), shapes=(1.0,),
            trials=2, seed=3, jobs=1,
        )
        fanned = run_runtime_sweep(
            spec, mttf_grid=(30.0, 60.0), mttr_grid=(None,), shapes=(1.0,),
            trials=2, seed=3, jobs=2,
        )
        assert serial.points == fanned.points
        figure = serial.figure("availability")
        assert figure.x == (30.0, 60.0)
        assert set(figure.series) == {"mttr=∞, shape=1"}
        assert len(serial.figures()) == 4

    def test_runtime_sweep_validation(self):
        with pytest.raises(ValueError):
            run_runtime_sweep(SPEC, mttf_grid=(), trials=1)
        with pytest.raises(ValueError):
            run_runtime_sweep(SPEC, trials=0)
        with pytest.raises(ValueError):
            run_runtime_sweep(SPEC, mttf_grid=(None,), trials=1)

    def test_ablations_parallel_identical(self):
        serial = ablation_rules(TINY, jobs=1)
        fanned = ablation_rules(TINY, jobs=2)
        assert serial.series == fanned.series

    def test_baselines_parallel_identical(self):
        serial = baseline_comparison(TINY, jobs=1)
        fanned = baseline_comparison(TINY, jobs=2)
        assert serial.series == fanned.series


class TestChunkedTransport:
    def test_explicit_chunksize_matches_serial(self):
        items = list(range(23))
        expected = [x * x for x in items]
        assert parallel_map(_square, items, jobs=3, chunksize=5) == expected
        assert parallel_map(_square, items, jobs=3, chunksize=1) == expected
        assert parallel_map(_square, items, jobs=3) == expected  # auto chunking

    def test_auto_chunksize_aims_at_four_chunks_per_worker(self):
        # the heuristic itself: len // (workers * 4), floored at 1
        assert max(1, 100 // (4 * 4)) == 6
        assert max(1, 3 // (2 * 4)) == 1


class TestStatsReduction:
    def test_stats_reduce_equals_trace_summaries(self):
        """Acceptance: reduce='stats' stats ≡ summarize_traces(reduce='traces')."""
        from repro.runtime.trace import summarize_traces

        full = run_runtime_campaign(SPEC.to_scenario(), trials=4, seed=3)
        lean = run_runtime_campaign(
            SPEC.to_scenario(), trials=4, seed=3, reduce="stats"
        )
        assert lean.stats == full.stats == summarize_traces(full.traces)
        assert lean.trial_seeds == full.trial_seeds
        assert lean.traces is None and lean.reduce == "stats"
        assert full.summaries is None and full.reduce == "traces"
        assert lean.trials == full.trials == 4

    def test_stats_reduce_is_jobs_invariant(self):
        serial = run_runtime_campaign(
            SPEC.to_scenario(), trials=4, seed=2, jobs=1, reduce="stats"
        )
        fanned = run_runtime_campaign(
            SPEC.to_scenario(), trials=4, seed=2, jobs=4, reduce="stats"
        )
        assert fanned == serial

    def test_stats_payload_is_a_fraction_of_traces(self):
        # trace pickles grow with the stream (one record per data set);
        # summaries do not — at a realistic stream length the acceptance bar
        # is ≥10× less transfer
        import pickle

        spec = SPEC.with_overrides(num_datasets=200).to_scenario()
        full = run_runtime_campaign(spec, trials=2, seed=3)
        lean = run_runtime_campaign(spec, trials=2, seed=3, reduce="stats")
        assert len(pickle.dumps(lean)) * 10 < len(pickle.dumps(full))

    def test_combine_summaries_is_summarize_traces(self):
        from repro.runtime.trace import (
            combine_summaries,
            summarize_trace,
            summarize_traces,
        )

        traces = [run_trial(SPEC, seed) for seed in (0, 5, 9)]
        assert combine_summaries(map(summarize_trace, traces)) == summarize_traces(
            traces
        )

    def test_invalid_reduce_rejected(self):
        with pytest.raises(ValueError, match="reduce"):
            run_runtime_campaign(SPEC.to_scenario(), trials=2, seed=0, reduce="bogus")

    def test_campaign_result_requires_exactly_one_payload(self):
        from repro.experiments.parallel import RuntimeCampaignResult

        with pytest.raises(ValueError, match="exactly one"):
            RuntimeCampaignResult(
                spec=SPEC.to_scenario(), seed=0, trial_seeds=(1,), traces=None
            )

    def test_session_monte_carlo_stats_mode(self):
        from repro.api import Session

        session = Session(SPEC.to_scenario())
        full = session.monte_carlo(trials=2, seed=1)
        lean = session.monte_carlo(trials=2, seed=1, reduce="stats")
        assert lean.stats == full.stats
        assert lean.summary() == full.summary()
        with pytest.raises(ValueError, match="reduce='stats'"):
            lean.traces

    def test_suite_stats_reduce_matches_traces(self):
        """The sweep report is identical whichever payload the workers ship."""
        from repro.api import Session

        session = Session(SPEC.to_scenario())
        axes = {"faults.mttf_periods": [30.0, 60.0]}
        full = session.sweep(axes, trials=2, seed=4)
        lean = session.sweep(axes, trials=2, seed=4, reduce="stats")
        fanned = session.sweep(axes, trials=2, seed=4, reduce="stats", jobs=3)
        assert [p.stats for p in lean.points] == [p.stats for p in full.points]
        assert [p.seed for p in lean.points] == [p.seed for p in full.points]
        assert fanned.points == lean.points
        assert lean.panel(metric="availability") == full.panel(metric="availability")

    def test_suite_flattened_fanout_is_jobs_invariant(self):
        """trials × points share one pool; any jobs value is bit-identical."""
        serial = run_runtime_sweep(
            SPEC, mttf_grid=(30.0, 60.0), mttr_grid=(None,), shapes=(1.0,),
            trials=3, seed=6, jobs=1,
        )
        fanned = run_runtime_sweep(
            SPEC, mttf_grid=(30.0, 60.0), mttr_grid=(None,), shapes=(1.0,),
            trials=3, seed=6, jobs=4,
        )
        assert fanned.points == serial.points
        assert [p.campaign for p in fanned.sweep.points] == [
            p.campaign for p in serial.sweep.points
        ]

    def test_cli_reduce_flag(self, capsys):
        from repro.cli import main

        code = main(
            [
                "runtime", "--trials", "2", "--datasets", "20", "--tasks", "12",
                "--processors", "6", "--epsilon", "1", "--reduce", "stats",
            ]
        )
        assert code == 0
        assert "availability" in capsys.readouterr().out
