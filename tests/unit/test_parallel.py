"""Unit tests for the parallel Monte-Carlo campaign engine."""

import pytest

from repro.experiments.campaign import run_campaign
from repro.experiments.config import ExperimentConfig
from repro.experiments.figures import ablation_rules, baseline_comparison
from repro.experiments.parallel import (
    parallel_map,
    run_runtime_campaign,
)
from repro.runtime.montecarlo import RuntimeTrialSpec, run_trial

TINY = ExperimentConfig(
    granularities=(0.5, 1.5),
    num_graphs=1,
    num_processors=10,
    task_range=(20, 25),
    crash_samples=2,
    seed=1,
)

SPEC = RuntimeTrialSpec(
    num_tasks=15,
    num_processors=6,
    epsilon=1,
    num_datasets=30,
    mttf_periods=40.0,
)


def _square(x: int) -> int:
    return x * x


class TestParallelMap:
    def test_serial_preserves_order(self):
        assert parallel_map(_square, [3, 1, 2], jobs=1) == [9, 1, 4]

    def test_parallel_matches_serial(self):
        items = list(range(8))
        assert parallel_map(_square, items, jobs=4) == [x * x for x in items]

    def test_none_and_zero_jobs_run_serially(self):
        assert parallel_map(_square, [2], jobs=None) == [4]
        assert parallel_map(_square, [2, 3], jobs=0) == [4, 9]


class TestRuntimeCampaign:
    def test_same_seed_same_traces(self):
        a = run_runtime_campaign(SPEC, trials=3, seed=5, jobs=1)
        b = run_runtime_campaign(SPEC, trials=3, seed=5, jobs=1)
        assert a.traces == b.traces
        assert a.trial_seeds == b.trial_seeds

    def test_jobs_do_not_change_results(self):
        serial = run_runtime_campaign(SPEC, trials=4, seed=0, jobs=1)
        fanned = run_runtime_campaign(SPEC, trials=4, seed=0, jobs=2)
        assert serial.traces == fanned.traces

    def test_stats_aggregate(self):
        result = run_runtime_campaign(SPEC, trials=3, seed=2, jobs=1)
        stats = result.stats
        assert stats.trials == 3
        assert 0.0 <= stats.mean_loss_rate <= 1.0
        assert 0.0 <= stats.mean_availability <= 1.0

    def test_trial_is_pure(self):
        assert run_trial(SPEC, seed=11) == run_trial(SPEC, seed=11)

    def test_validation(self):
        with pytest.raises(ValueError):
            run_runtime_campaign(SPEC, trials=0)
        with pytest.raises(ValueError):
            RuntimeTrialSpec(mttf_periods=-1.0)
        with pytest.raises(ValueError):
            RuntimeTrialSpec(distribution="zipf")
        with pytest.raises(ValueError):
            RuntimeTrialSpec(epsilon=10, num_processors=5)

    def test_spec_overrides(self):
        spec = SPEC.with_overrides(policy="remap")
        assert spec.policy == "remap"
        assert spec.num_tasks == SPEC.num_tasks


class TestCampaignJobs:
    def test_run_campaign_parallel_is_bit_for_bit_identical(self):
        serial = run_campaign(1, TINY, jobs=1)
        fanned = run_campaign(1, TINY, jobs=2)
        assert [p.metrics for p in serial.points] == [p.metrics for p in fanned.points]
        assert [p.failures for p in serial.points] == [p.failures for p in fanned.points]

    def test_ablations_parallel_identical(self):
        serial = ablation_rules(TINY, jobs=1)
        fanned = ablation_rules(TINY, jobs=2)
        assert serial.series == fanned.series

    def test_baselines_parallel_identical(self):
        serial = baseline_comparison(TINY, jobs=1)
        fanned = baseline_comparison(TINY, jobs=2)
        assert serial.series == fanned.series
