"""Unit tests for crash scenarios, fault processes, trace I/O and the simulator.

The second half of the file is the fault-model *statistical harness*: seeded
large-sample checks that the declared laws hold (exponential and Weibull
inter-failure means equal ``mttf``, repair delays equal ``mttr``), plus the
frozen fingerprint goldens under ``tests/golden/`` that pin every sampling
regime bit-for-bit across refactors.
"""

import hashlib
import json
import math
from pathlib import Path

import pytest

from repro.core.ltf import ltf_schedule
from repro.core.rltf import rltf_schedule
from repro.exceptions import FaultTraceError, ScheduleError
from repro.failures.evaluation import crash_latency, evaluate_crashes, expected_crash_latency
from repro.failures.processes import (
    ElasticFaultProcess,
    RenewalFaultProcess,
    resolve_groups,
)
from repro.failures.scenarios import (
    CrashScenario,
    FaultEvent,
    FaultTrace,
    all_crash_scenarios,
    sample_crash_scenarios,
    sample_fault_trace,
)
from repro.failures.simulator import StreamingSimulator, simulate_stream
from repro.failures.trace_io import dump_fault_trace, load_fault_trace
from repro.graph.generator import chain_graph
from repro.platform.builders import (
    figure2_platform,
    heterogeneous_platform,
    homogeneous_platform,
)
from repro.schedule.metrics import latency_upper_bound
from repro.schedule.stages import num_stages


@pytest.fixture
def replicated(fig2, fig2_platform):
    return ltf_schedule(fig2, fig2_platform, throughput=0.05, epsilon=1)


class TestScenarios:
    def test_scenario_basics(self, fig2_platform):
        sc = CrashScenario(frozenset({"P1", "P2"}))
        assert sc.count == 2
        assert not sc.is_alive("P1")
        assert sc.is_alive("P3")
        assert len(sc.alive(fig2_platform)) == 8

    def test_sampling_counts_and_distinctness(self, fig2_platform):
        scenarios = sample_crash_scenarios(fig2_platform, crashes=3, count=20, seed=0)
        assert len(scenarios) == 20
        assert all(sc.count == 3 for sc in scenarios)

    def test_sampling_determinism(self, fig2_platform):
        a = sample_crash_scenarios(fig2_platform, 2, 5, seed=1)
        b = sample_crash_scenarios(fig2_platform, 2, 5, seed=1)
        assert a == b

    def test_sampling_validation(self, fig2_platform):
        with pytest.raises(ValueError):
            sample_crash_scenarios(fig2_platform, -1, 1)
        with pytest.raises(ValueError):
            sample_crash_scenarios(fig2_platform, 11, 1)

    def test_all_scenarios_enumeration(self):
        platform = homogeneous_platform(4)
        assert len(all_crash_scenarios(platform, 2)) == 6
        assert len(all_crash_scenarios(platform, 0)) == 1


class TestCrashLatency:
    def test_zero_crash_at_most_upper_bound(self, replicated):
        ev = crash_latency(replicated, CrashScenario(frozenset()))
        assert ev.latency <= latency_upper_bound(replicated) + 1e-9
        assert ev.stages >= 1

    def test_crash_latency_bounded_by_upper_bound(self, replicated):
        for sc in all_crash_scenarios(replicated.platform, 1):
            try:
                ev = crash_latency(replicated, sc)
            except ScheduleError:
                continue  # some crash pattern may orphan a task in paper mode
            assert ev.latency <= latency_upper_bound(replicated) + 1e-9

    def test_crash_of_unused_processor_changes_nothing(self, replicated):
        unused = set(replicated.platform.processor_names) - set(replicated.used_processors())
        if not unused:
            pytest.skip("all processors are used")
        baseline = crash_latency(replicated, CrashScenario(frozenset())).latency
        ev = crash_latency(replicated, CrashScenario(frozenset({unused.pop()})))
        assert ev.latency == pytest.approx(baseline)

    def test_on_invalid_upper_bound_fallback(self, replicated):
        # crash every used processor: no valid replica anywhere
        everything = frozenset(replicated.used_processors())
        with pytest.raises(ScheduleError):
            crash_latency(replicated, everything)
        ev = crash_latency(replicated, everything, on_invalid="upper_bound")
        assert ev.latency == pytest.approx(latency_upper_bound(replicated))

    def test_on_invalid_validation(self, replicated):
        with pytest.raises(ValueError):
            crash_latency(replicated, frozenset(), on_invalid="bogus")

    def test_evaluate_crashes_sample_count(self, replicated):
        evals = evaluate_crashes(replicated, crashes=1, samples=5, seed=3, on_invalid="upper_bound")
        assert len(evals) == 5
        assert all(ev.crashes == 1 for ev in evals)

    def test_expected_crash_latency_normalization(self, replicated):
        raw = expected_crash_latency(replicated, 0, unit=1.0)
        halved = expected_crash_latency(replicated, 0, unit=2.0)
        assert halved == pytest.approx(raw / 2.0)

    def test_expected_crash_latency_monotone_in_crashes(self, replicated):
        zero = expected_crash_latency(replicated, 0)
        one = expected_crash_latency(replicated, 1, samples=10, seed=0, on_invalid="upper_bound")
        assert one >= zero - 1e-9


class TestSimulator:
    def test_incomplete_schedule_rejected(self, fig2, fig2_platform):
        from repro.schedule.schedule import Schedule

        with pytest.raises(ScheduleError):
            StreamingSimulator(Schedule(fig2, fig2_platform, period=20.0))

    def test_latencies_below_analytic_bound(self, replicated):
        result = simulate_stream(replicated, num_datasets=8)
        assert result.num_datasets == 8
        assert result.max_latency <= latency_upper_bound(replicated) + 1e-6

    def test_achieved_period_close_to_target(self, replicated):
        result = simulate_stream(replicated, num_datasets=12)
        assert result.achieved_period <= replicated.period + 1e-6
        assert result.achieved_throughput >= 1.0 / replicated.period - 1e-9

    def test_steady_state_latency_positive(self, replicated):
        result = simulate_stream(replicated, num_datasets=6)
        assert result.steady_state_latency > 0

    def test_simulation_with_crash_still_completes(self, replicated):
        used = replicated.used_processors()
        result = simulate_stream(replicated, num_datasets=6, failed_processors=[used[0]])
        assert result.num_datasets == 6

    def test_simulation_rejects_fatal_crash_set(self, replicated):
        with pytest.raises(ScheduleError):
            simulate_stream(replicated, 4, failed_processors=replicated.used_processors())

    def test_invalid_dataset_count(self, replicated):
        with pytest.raises(ValueError):
            simulate_stream(replicated, num_datasets=0)

    def test_chain_simulation_matches_pipeline_model(self):
        graph = chain_graph(4, work=10.0, volume=1.0)
        platform = homogeneous_platform(4)
        schedule = rltf_schedule(graph, platform, period=12.0, epsilon=0)
        result = simulate_stream(schedule, num_datasets=10)
        # the analytic model is (2S-1) * period; the event-driven execution can
        # only be faster because stages are not artificially synchronised.
        assert result.steady_state_latency <= latency_upper_bound(schedule) + 1e-6
        assert result.steady_state_latency >= graph.total_work / platform.max_speed - 1e-6


# ---------------------------------------------------------------- fault processes
class TestResolveGroups:
    def test_default_is_one_singleton_per_processor(self, homo4):
        assert resolve_groups(homo4, None) == tuple(
            (name,) for name in homo4.processor_names
        )

    def test_group_positioned_at_first_member_slot(self, homo4):
        names = homo4.processor_names
        groups = resolve_groups(homo4, [(names[1], names[3])])
        assert groups == ((names[0],), (names[1], names[3]), (names[2],))

    def test_exclude_removes_spares_from_groups(self, homo4):
        names = homo4.processor_names
        groups = resolve_groups(homo4, [(names[0], names[3])], exclude=(names[3],))
        assert groups == ((names[0],), (names[1],), (names[2],))

    def test_validation(self, homo4):
        with pytest.raises(ValueError, match="non-empty"):
            resolve_groups(homo4, [()])
        with pytest.raises(ValueError, match="unknown processor"):
            resolve_groups(homo4, [("P1", "ghost")])
        with pytest.raises(ValueError, match="more than one"):
            resolve_groups(homo4, [("P1", "P2"), ("P2", "P3")])


class TestRenewalProcess:
    def test_parameter_validation(self, homo4):
        with pytest.raises(ValueError):
            RenewalFaultProcess(homo4, horizon=-1.0, mttf=10.0)
        with pytest.raises(ValueError):
            RenewalFaultProcess(homo4, horizon=10.0, mttf=0.0)
        with pytest.raises(ValueError, match="distribution"):
            RenewalFaultProcess(homo4, horizon=10.0, mttf=10.0, distribution="zipf")
        with pytest.raises(ValueError, match="load_coupling"):
            RenewalFaultProcess(homo4, horizon=10.0, mttf=10.0, load_coupling=-0.5)
        with pytest.raises(ValueError):
            RenewalFaultProcess(homo4, horizon=10.0, mttf=10.0, mttr=-1.0)

    def test_grouped_members_crash_and_repair_together(self, homo4):
        names = homo4.processor_names
        trace = sample_fault_trace(
            homo4, horizon=500.0, mttf=20.0, mttr=5.0, seed=3,
            groups=[(names[0], names[1]), (names[2], names[3])],
        )
        assert trace.num_crashes > 0
        by_kind_time = {}
        for event in trace.events:
            by_kind_time.setdefault((event.kind, event.time), set()).add(event.processor)
        for (kind, time), members in by_kind_time.items():
            assert members in ({names[0], names[1]}, {names[2], names[3]}), (
                f"{kind}@{time} hit a partial group: {members}"
            )

    def test_hazard_multiplier_formula(self, homo4):
        names = homo4.processor_names
        util = {names[0]: 0.8, names[1]: 0.4}
        process = RenewalFaultProcess(
            homo4, horizon=100.0, mttf=10.0,
            load_coupling=2.0, utilization=util,
        )
        assert process._hazard((names[0],)) == pytest.approx(1.0 + 2.0 * 0.8)
        assert process._hazard((names[0], names[1])) == pytest.approx(1.0 + 2.0 * 0.6)
        assert process._hazard((names[2],)) == pytest.approx(1.0)  # unknown -> load 0


class TestElasticProcess:
    def test_parameter_validation(self, homo4):
        with pytest.raises(ValueError, match="spares"):
            ElasticFaultProcess(homo4, horizon=10.0, spares=-1, join_mean=1.0)
        with pytest.raises(ValueError, match="at least one active"):
            ElasticFaultProcess(homo4, horizon=10.0, spares=4, join_mean=1.0)
        with pytest.raises(ValueError, match="join_mean"):
            ElasticFaultProcess(homo4, horizon=10.0, spares=1)
        with pytest.raises(ValueError, match="join_mean"):
            ElasticFaultProcess(homo4, horizon=10.0, preempt_mean=5.0)

    def test_spares_are_last_declared_processors(self, homo4):
        process = ElasticFaultProcess(homo4, horizon=100.0, spares=2, join_mean=10.0)
        names = homo4.processor_names
        assert process.spare_names == names[2:]
        assert process.active_names == names[:2]
        assert process.initially_down == frozenset(names[2:])

    def test_spares_start_down_join_and_never_fail(self, homo4):
        names = homo4.processor_names
        trace = sample_fault_trace(
            homo4, horizon=2000.0, mttf=5.0, mttr=2.0, seed=0,
            spares=2, join_mean=10.0,
        )
        assert trace.initially_down == frozenset(names[2:])
        spare_kinds = {e.kind for e in trace.events if e.processor in names[2:]}
        assert spare_kinds <= {"join"}  # spares join once; renewal excludes them
        assert trace.failed_at(0.0) == frozenset(names[2:])

    def test_preemption_alternates_crash_join(self, homo4):
        trace = sample_fault_trace(
            homo4, horizon=3000.0, mttf=1e9, seed=1,
            spares=1, join_mean=5.0, preempt_mean=20.0,
        )
        for name in homo4.processor_names[:3]:
            kinds = [e.kind for e in trace.events if e.processor == name]
            # strict alternation starting with a crash
            assert kinds == ["crash", "join"] * (len(kinds) // 2) + (
                ["crash"] if len(kinds) % 2 else []
            )


# ------------------------------------------------------------ statistical harness
class TestStatisticalLaws:
    """Seeded large-sample checks that the declared fault laws hold.

    A single-processor platform makes the event stream a strict
    crash/repair alternation, so inter-failure and repair delays can be
    read straight off the trace.  Sample sizes are ~10^4, putting the
    standard error of each mean well under the 5% tolerance.
    """

    HORIZON = 40_000.0

    @staticmethod
    def _alternating_deltas(trace):
        fail_deltas, repair_deltas = [], []
        up_since, down_since = 0.0, None
        for event in trace.events:
            if event.is_crash:
                fail_deltas.append(event.time - up_since)
                down_since = event.time
            else:
                repair_deltas.append(event.time - down_since)
                up_since = event.time
        return fail_deltas, repair_deltas

    def test_exponential_inter_failure_mean_is_mttf(self):
        trace = sample_fault_trace(
            homogeneous_platform(1), horizon=self.HORIZON, mttf=2.0, mttr=1.0, seed=0
        )
        fails, _ = self._alternating_deltas(trace)
        assert len(fails) > 5_000
        assert sum(fails) / len(fails) == pytest.approx(2.0, rel=0.05)

    @pytest.mark.parametrize("shape", [0.7, 1.5])
    def test_weibull_inter_failure_mean_is_mttf(self, shape):
        # mean == mttf iff scale = mttf / Gamma(1 + 1/shape); a wrong scale
        # identity (e.g. scale = mttf) shifts the mean by Gamma(1 + 1/shape).
        trace = sample_fault_trace(
            homogeneous_platform(1), horizon=self.HORIZON, mttf=2.0, mttr=1.0,
            distribution="weibull", shape=shape, seed=1,
        )
        fails, _ = self._alternating_deltas(trace)
        assert len(fails) > 5_000
        assert sum(fails) / len(fails) == pytest.approx(2.0, rel=0.05)
        assert abs(sum(fails) / len(fails) - 2.0) < abs(
            2.0 * math.gamma(1.0 + 1.0 / shape) - 2.0
        ), "mean matches the identity, not the unscaled law"

    def test_repair_delay_mean_is_mttr(self):
        trace = sample_fault_trace(
            homogeneous_platform(1), horizon=self.HORIZON, mttf=2.0, mttr=1.0, seed=2
        )
        _, repairs = self._alternating_deltas(trace)
        assert len(repairs) > 5_000
        assert sum(repairs) / len(repairs) == pytest.approx(1.0, rel=0.05)

    @pytest.mark.parametrize("repair_shape", [0.7, 1.5])
    def test_weibull_repair_delay_mean_is_mttr(self, repair_shape):
        # same scale identity as the failure law: mean == mttr iff
        # scale = mttr / Gamma(1 + 1/repair_shape).
        trace = sample_fault_trace(
            homogeneous_platform(1), horizon=self.HORIZON, mttf=2.0, mttr=1.0,
            repair_shape=repair_shape, seed=4,
        )
        _, repairs = self._alternating_deltas(trace)
        assert len(repairs) > 5_000
        assert sum(repairs) / len(repairs) == pytest.approx(1.0, rel=0.05)
        assert abs(sum(repairs) / len(repairs) - 1.0) < abs(
            math.gamma(1.0 + 1.0 / repair_shape) - 1.0
        ), "mean matches the identity, not the unscaled law"

    def test_default_repair_draw_is_bit_identical_to_pre_repair_shape(self):
        # repair_shape=None must not silently become weibull(1.0): the law
        # is the same but the RNG stream is not, and golden fingerprints
        # pin the exponential draw.
        a = sample_fault_trace(homogeneous_platform(2), horizon=200.0, mttf=2.0, mttr=1.0, seed=5)
        b = sample_fault_trace(
            homogeneous_platform(2), horizon=200.0, mttf=2.0, mttr=1.0, seed=5,
            repair_shape=None,
        )
        assert a == b

    def test_load_coupling_divides_inter_failure_mean(self):
        # hazard 1 + 1.0 * 1.0 = 2 -> effective MTTF is mttf / 2.
        platform = homogeneous_platform(1)
        trace = sample_fault_trace(
            platform, horizon=self.HORIZON, mttf=2.0, mttr=1.0, seed=3,
            load_coupling=1.0, utilization={platform.processor_names[0]: 1.0},
        )
        fails, _ = self._alternating_deltas(trace)
        assert len(fails) > 8_000
        assert sum(fails) / len(fails) == pytest.approx(1.0, rel=0.05)

    def test_join_delay_mean_is_join_mean(self):
        platform = homogeneous_platform(8)
        joins = []
        for seed in range(60):
            trace = sample_fault_trace(
                platform, horizon=1e6, mttf=1e9, seed=seed, spares=7, join_mean=5.0
            )
            joins.extend(e.time for e in trace.events if e.is_join)
        assert len(joins) == 60 * 7
        assert sum(joins) / len(joins) == pytest.approx(5.0, rel=0.10)


# ------------------------------------------------------------------ trace I/O
class TestTraceIO:
    def test_dump_load_round_trip_is_bit_exact(self, homo4, tmp_path):
        trace = sample_fault_trace(homo4, horizon=300.0, mttf=20.0, mttr=5.0, seed=4)
        path = tmp_path / "trace.csv"
        dump_fault_trace(trace, path)
        loaded = load_fault_trace(path, platform=homo4, horizon=trace.horizon)
        assert loaded.events == trace.events
        assert loaded.horizon == trace.horizon

    def test_comments_blank_lines_and_header_are_skipped(self, homo4, tmp_path):
        path = tmp_path / "log.csv"
        path.write_text(
            "time,node,state\n"
            "# maintenance window\n"
            "\n"
            "5.0, P1 , down\n"
            "8.5,P1,UP\n"
        )
        trace = load_fault_trace(path, platform=homo4)
        assert [(e.time, e.processor, e.kind) for e in trace.events] == [
            (5.0, "P1", "crash"), (8.5, "P1", "repair"),
        ]
        assert trace.horizon == 9.5  # last event + 1

    def test_unknown_node_gets_close_match_hint(self, homo4, tmp_path):
        path = tmp_path / "log.csv"
        path.write_text("1.0,P11,down\n")
        with pytest.raises(FaultTraceError, match=r"unknown node 'P11'.*did you mean 'P1'"):
            load_fault_trace(path, platform=homo4)

    @pytest.mark.parametrize(
        "row, message",
        [
            ("1.0,P1", "expected 3 comma-separated fields"),
            ("soon,P1,down", "invalid time"),
            ("-2.0,P1,down", "negative time"),
            ("1.0,P1,rebooting", "state must be 'down' or 'up'"),
        ],
    )
    def test_malformed_rows_carry_file_and_line(self, tmp_path, row, message):
        path = tmp_path / "log.csv"
        path.write_text(f"# header\n{row}\n")
        with pytest.raises(FaultTraceError, match=message) as err:
            load_fault_trace(path)
        assert f"{path}:2" in str(err.value)

    def test_down_while_down_rejected(self, tmp_path):
        path = tmp_path / "log.csv"
        path.write_text("1.0,P1,down\n2.0,P1,down\n")
        with pytest.raises(FaultTraceError, match="already down"):
            load_fault_trace(path)

    def test_up_while_up_rejected(self, tmp_path):
        path = tmp_path / "log.csv"
        path.write_text("1.0,P1,up\n")
        with pytest.raises(FaultTraceError, match="is not down"):
            load_fault_trace(path)

    def test_rows_may_arrive_out_of_order(self, tmp_path):
        path = tmp_path / "log.csv"
        path.write_text("8.0,P1,up\n1.0,P1,down\n")
        trace = load_fault_trace(path)
        assert [e.kind for e in trace.events] == ["crash", "repair"]

    def test_horizon_clips_events(self, tmp_path):
        path = tmp_path / "log.csv"
        path.write_text("1.0,P1,down\n50.0,P1,up\n")
        trace = load_fault_trace(path, horizon=10.0)
        assert [e.kind for e in trace.events] == ["crash"]
        assert trace.horizon == 10.0

    def test_join_dumps_as_up_and_reloads_as_repair(self, tmp_path):
        trace = FaultTrace(
            events=(FaultEvent(1.0, "P1", "crash"), FaultEvent(3.0, "P1", "join")),
            horizon=10.0,
        )
        path = tmp_path / "trace.csv"
        dump_fault_trace(trace, path)
        assert ",up" in path.read_text()
        loaded = load_fault_trace(path, horizon=10.0)
        assert [e.kind for e in loaded.events] == ["crash", "repair"]

    def test_missing_file_raises_fault_trace_error(self, tmp_path):
        with pytest.raises(FaultTraceError, match="cannot read"):
            load_fault_trace(tmp_path / "absent.csv")


# ------------------------------------------------------------- frozen goldens
GOLDEN_PATH = Path(__file__).resolve().parents[1] / "golden" / "fault_trace_fingerprints.json"


def _trace_fingerprint(trace) -> str:
    """sha256 over horizon, initially-down set and every (time, proc, kind).

    Times hash via exact ``repr`` so the fingerprint is a bit-identity
    witness, not a statistical one.
    """
    digest = hashlib.sha256()
    digest.update(f"horizon={trace.horizon!r}\n".encode())
    digest.update(f"initially_down={sorted(trace.initially_down)!r}\n".encode())
    for event in trace.events:
        digest.update(f"{event.time!r},{event.processor},{event.kind}\n".encode())
    return digest.hexdigest()


def _declaration_chunks(platform, size):
    names = platform.processor_names
    return tuple(tuple(names[i : i + size]) for i in range(0, len(names), size))


def _synthetic_utilization(platform):
    return {name: (i % 4) * 0.25 for i, name in enumerate(platform.processor_names)}


#: regime name -> sample_fault_trace kwargs (as a function of the platform).
GOLDEN_REGIMES = {
    "exp-failstop": lambda p: dict(mttf=40.0),
    "exp-repair": lambda p: dict(mttf=40.0, mttr=10.0),
    "weibull0.7-repair": lambda p: dict(
        mttf=40.0, mttr=10.0, distribution="weibull", shape=0.7
    ),
    "weibull1.5-failstop": lambda p: dict(mttf=40.0, distribution="weibull", shape=1.5),
    "grouped2-repair": lambda p: dict(
        mttf=40.0, mttr=10.0, groups=_declaration_chunks(p, 2)
    ),
    "load0.5-repair": lambda p: dict(
        mttf=40.0, mttr=10.0, load_coupling=0.5, utilization=_synthetic_utilization(p)
    ),
    "elastic2-preempt": lambda p: dict(
        mttf=40.0, mttr=10.0, spares=2, join_mean=20.0, preempt_mean=80.0
    ),
}


class TestGoldenFingerprints:
    """The frozen contract: every sampling regime is a pure function of
    (spec, seed).  The first four regimes were fingerprinted *before* the
    fault-process refactor, so they also pin the refactor as drift-free."""

    def test_every_regime_matches_frozen_fingerprint(self):
        goldens = json.loads(GOLDEN_PATH.read_text())
        platforms = {
            "homo8": homogeneous_platform(8),
            "hetero5": heterogeneous_platform(5, seed=7),
        }
        produced = {}
        for regime, params in GOLDEN_REGIMES.items():
            for pname, platform in platforms.items():
                for seed in (0, 1):
                    trace = sample_fault_trace(
                        platform, horizon=400.0, seed=seed, **params(platform)
                    )
                    produced[f"{regime}/{pname}/seed{seed}"] = _trace_fingerprint(trace)
        assert produced == goldens
