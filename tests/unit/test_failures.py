"""Unit tests for crash scenarios, crash-latency evaluation and the simulator."""

import pytest

from repro.core.ltf import ltf_schedule
from repro.core.rltf import rltf_schedule
from repro.exceptions import ScheduleError
from repro.failures.evaluation import crash_latency, evaluate_crashes, expected_crash_latency
from repro.failures.scenarios import CrashScenario, all_crash_scenarios, sample_crash_scenarios
from repro.failures.simulator import StreamingSimulator, simulate_stream
from repro.graph.generator import chain_graph
from repro.platform.builders import figure2_platform, homogeneous_platform
from repro.schedule.metrics import latency_upper_bound
from repro.schedule.stages import num_stages


@pytest.fixture
def replicated(fig2, fig2_platform):
    return ltf_schedule(fig2, fig2_platform, throughput=0.05, epsilon=1)


class TestScenarios:
    def test_scenario_basics(self, fig2_platform):
        sc = CrashScenario(frozenset({"P1", "P2"}))
        assert sc.count == 2
        assert not sc.is_alive("P1")
        assert sc.is_alive("P3")
        assert len(sc.alive(fig2_platform)) == 8

    def test_sampling_counts_and_distinctness(self, fig2_platform):
        scenarios = sample_crash_scenarios(fig2_platform, crashes=3, count=20, seed=0)
        assert len(scenarios) == 20
        assert all(sc.count == 3 for sc in scenarios)

    def test_sampling_determinism(self, fig2_platform):
        a = sample_crash_scenarios(fig2_platform, 2, 5, seed=1)
        b = sample_crash_scenarios(fig2_platform, 2, 5, seed=1)
        assert a == b

    def test_sampling_validation(self, fig2_platform):
        with pytest.raises(ValueError):
            sample_crash_scenarios(fig2_platform, -1, 1)
        with pytest.raises(ValueError):
            sample_crash_scenarios(fig2_platform, 11, 1)

    def test_all_scenarios_enumeration(self):
        platform = homogeneous_platform(4)
        assert len(all_crash_scenarios(platform, 2)) == 6
        assert len(all_crash_scenarios(platform, 0)) == 1


class TestCrashLatency:
    def test_zero_crash_at_most_upper_bound(self, replicated):
        ev = crash_latency(replicated, CrashScenario(frozenset()))
        assert ev.latency <= latency_upper_bound(replicated) + 1e-9
        assert ev.stages >= 1

    def test_crash_latency_bounded_by_upper_bound(self, replicated):
        for sc in all_crash_scenarios(replicated.platform, 1):
            try:
                ev = crash_latency(replicated, sc)
            except ScheduleError:
                continue  # some crash pattern may orphan a task in paper mode
            assert ev.latency <= latency_upper_bound(replicated) + 1e-9

    def test_crash_of_unused_processor_changes_nothing(self, replicated):
        unused = set(replicated.platform.processor_names) - set(replicated.used_processors())
        if not unused:
            pytest.skip("all processors are used")
        baseline = crash_latency(replicated, CrashScenario(frozenset())).latency
        ev = crash_latency(replicated, CrashScenario(frozenset({unused.pop()})))
        assert ev.latency == pytest.approx(baseline)

    def test_on_invalid_upper_bound_fallback(self, replicated):
        # crash every used processor: no valid replica anywhere
        everything = frozenset(replicated.used_processors())
        with pytest.raises(ScheduleError):
            crash_latency(replicated, everything)
        ev = crash_latency(replicated, everything, on_invalid="upper_bound")
        assert ev.latency == pytest.approx(latency_upper_bound(replicated))

    def test_on_invalid_validation(self, replicated):
        with pytest.raises(ValueError):
            crash_latency(replicated, frozenset(), on_invalid="bogus")

    def test_evaluate_crashes_sample_count(self, replicated):
        evals = evaluate_crashes(replicated, crashes=1, samples=5, seed=3, on_invalid="upper_bound")
        assert len(evals) == 5
        assert all(ev.crashes == 1 for ev in evals)

    def test_expected_crash_latency_normalization(self, replicated):
        raw = expected_crash_latency(replicated, 0, unit=1.0)
        halved = expected_crash_latency(replicated, 0, unit=2.0)
        assert halved == pytest.approx(raw / 2.0)

    def test_expected_crash_latency_monotone_in_crashes(self, replicated):
        zero = expected_crash_latency(replicated, 0)
        one = expected_crash_latency(replicated, 1, samples=10, seed=0, on_invalid="upper_bound")
        assert one >= zero - 1e-9


class TestSimulator:
    def test_incomplete_schedule_rejected(self, fig2, fig2_platform):
        from repro.schedule.schedule import Schedule

        with pytest.raises(ScheduleError):
            StreamingSimulator(Schedule(fig2, fig2_platform, period=20.0))

    def test_latencies_below_analytic_bound(self, replicated):
        result = simulate_stream(replicated, num_datasets=8)
        assert result.num_datasets == 8
        assert result.max_latency <= latency_upper_bound(replicated) + 1e-6

    def test_achieved_period_close_to_target(self, replicated):
        result = simulate_stream(replicated, num_datasets=12)
        assert result.achieved_period <= replicated.period + 1e-6
        assert result.achieved_throughput >= 1.0 / replicated.period - 1e-9

    def test_steady_state_latency_positive(self, replicated):
        result = simulate_stream(replicated, num_datasets=6)
        assert result.steady_state_latency > 0

    def test_simulation_with_crash_still_completes(self, replicated):
        used = replicated.used_processors()
        result = simulate_stream(replicated, num_datasets=6, failed_processors=[used[0]])
        assert result.num_datasets == 6

    def test_simulation_rejects_fatal_crash_set(self, replicated):
        with pytest.raises(ScheduleError):
            simulate_stream(replicated, 4, failed_processors=replicated.used_processors())

    def test_invalid_dataset_count(self, replicated):
        with pytest.raises(ValueError):
            simulate_stream(replicated, num_datasets=0)

    def test_chain_simulation_matches_pipeline_model(self):
        graph = chain_graph(4, work=10.0, volume=1.0)
        platform = homogeneous_platform(4)
        schedule = rltf_schedule(graph, platform, period=12.0, epsilon=0)
        result = simulate_stream(schedule, num_datasets=10)
        # the analytic model is (2S-1) * period; the event-driven execution can
        # only be faster because stages are not artificially synchronised.
        assert result.steady_state_latency <= latency_upper_bound(schedule) + 1e-6
        assert result.steady_state_latency >= graph.total_work / platform.max_speed - 1e-6
